//! Quickstart: generate a commercial-workload miss trace, evaluate a
//! destination-set predictor on it, and compare against the snooping
//! and directory endpoints.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use dsp::prelude::*;

fn main() {
    let config = SystemConfig::isca03();
    println!(
        "System: {} nodes, {} B blocks, {} B macroblocks\n",
        config.num_nodes(),
        config.block_bytes(),
        config.macroblock_bytes()
    );

    // An OLTP-like workload, shrunk 64x for a fast demo.
    let workload = WorkloadSpec::preset(Workload::Oltp, &config).scaled(1.0 / 64.0);
    let trace: Vec<TraceRecord> = workload.generator(42).take(100_000).collect();
    println!("Generated {} misses of {}", trace.len(), workload.name());

    let eval = TradeoffEvaluator::new(&config).warmup(20_000);
    let (snooping, directory) = eval.run_baselines(trace.iter().copied());

    // The paper's headline predictor configuration: Owner/Group with
    // 1024-byte macroblock indexing and 8192 entries.
    let predictor = PredictorConfig::owner_group()
        .indexing(Indexing::Macroblock { bytes: 1024 })
        .entries(Capacity::ISCA03);
    let point = eval.run(trace.iter().copied(), &predictor);

    println!(
        "\n{:<40} {:>16} {:>16}",
        "configuration", "req msgs/miss", "indirections %"
    );
    for p in [&snooping, &directory, &point] {
        println!(
            "{:<40} {:>16.2} {:>16.1}",
            p.label,
            p.request_messages_per_miss(),
            p.indirection_pct()
        );
    }
    println!(
        "\n{} removes {:.0}% of the directory protocol's indirections \
         using {:.1}x its request bandwidth ({:.1}x less than snooping).",
        point.label,
        100.0 * (1.0 - point.indirections as f64 / directory.indirections.max(1) as f64),
        point.request_messages_per_miss() / directory.request_messages_per_miss(),
        snooping.request_messages_per_miss() / point.request_messages_per_miss(),
    );
}
