//! Exhaustively verify the multicast snooping protocol — for every
//! possible destination-set prediction — with the explicit-state model
//! checker, then demonstrate bug finding with counterexample traces.
//!
//! This mirrors the formal-verification lineage the paper builds on
//! (Sorin et al., TPDS 2002, verified the multicast snooping protocol
//! the predictors plug into; Token Coherence later generalized the
//! "predictions cannot break correctness" argument).
//!
//! ```bash
//! cargo run --release --example model_check
//! ```

use dsp::verify::{check, Bug, ModelConfig};

fn main() {
    println!("Verifying multicast snooping under ALL possible predictions...\n");
    for nodes in [2usize, 3] {
        let report = check(&ModelConfig::new(nodes));
        println!(
            "{nodes}-node model: {:>8} states, {:>9} transitions -> {}",
            report.states_explored,
            report.transitions,
            match report.violation {
                None => "all invariants hold".to_string(),
                Some(v) => format!("VIOLATION: {}", v.invariant),
            }
        );
    }

    println!("\nInjecting protocol bugs to show the checker finds them:\n");
    for bug in [
        Bug::SkipInvalidation,
        Bug::AcceptInsufficient,
        Bug::StaleDirectoryOwner,
    ] {
        let report = check(&ModelConfig::new(3).with_bug(bug));
        match report.violation {
            Some(v) => println!(
                "{bug:?}: caught after {} states\n    invariant: {}\n    counterexample: {} events",
                report.states_explored,
                v.invariant,
                v.trace.len()
            ),
            None => println!("{bug:?}: NOT caught (checker bug!)"),
        }
    }

    println!(
        "\nBecause the model's destination sets are unconstrained, the clean runs\n\
         cover every predictor this workspace can build — including the random\n\
         chaos predictor — matching the protocol's correctness/performance split."
    );
}
