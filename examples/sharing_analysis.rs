//! Workload sharing-behavior analysis, reproducing the §2
//! characterization: Table 2 columns, the instantaneous-sharing
//! histogram (Fig. 2), and cache-to-cache miss locality (Fig. 4).
//!
//! ```bash
//! cargo run --release --example sharing_analysis [workload]
//! ```

use dsp::analysis::characterize;
use dsp::prelude::*;

fn pick(name: &str) -> Option<Workload> {
    Workload::ALL
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
}

fn main() {
    let config = SystemConfig::isca03();
    let arg = std::env::args().nth(1);
    let workloads: Vec<Workload> = match arg.as_deref() {
        None => Workload::ALL.to_vec(),
        Some(name) => match pick(name) {
            Some(w) => vec![w],
            None => {
                eprintln!(
                    "unknown workload '{name}'; options: {}",
                    Workload::ALL.map(|w| w.name()).join(", ")
                );
                std::process::exit(1);
            }
        },
    };

    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>8} {:>14}",
        "workload", "misses", "blocks", "PCs", "c2c %", "indirection %"
    );
    for w in &workloads {
        let spec = WorkloadSpec::preset(*w, &config).scaled(1.0 / 32.0);
        let r = characterize(&spec, &config, 20_000, 80_000, 7);
        println!(
            "{:<12} {:>10} {:>12} {:>10} {:>8.1} {:>14.1}",
            r.workload,
            r.misses,
            r.blocks_touched,
            r.static_pcs,
            100.0 * r.cache_to_cache as f64 / r.misses as f64,
            r.indirection_pct()
        );
    }

    // Detail views for the first selected workload.
    let w = workloads[0];
    let spec = WorkloadSpec::preset(w, &config).scaled(1.0 / 32.0);
    let r = characterize(&spec, &config, 20_000, 80_000, 7);

    println!(
        "\n{} — misses needing n other processors (Fig. 2):",
        w.name()
    );
    println!("{:>6} {:>10} {:>10}", "n", "reads %", "writes %");
    for (bin, label) in [(0, "0"), (1, "1"), (2, "2"), (3, "3+")] {
        let (reads, writes) = r.sharing.percent(bin);
        println!("{label:>6} {reads:>10.1} {writes:>10.1}");
    }

    println!("\n{} — c2c miss concentration (Fig. 4):", w.name());
    println!(
        "{:>8} {:>12} {:>16} {:>12}",
        "top-k", "blocks %", "macroblocks %", "PCs %"
    );
    for k in [100, 1000, 10_000] {
        println!(
            "{k:>8} {:>12.1} {:>16.1} {:>12.1}",
            r.block_locality.percent_covered_by(k),
            r.macroblock_locality.percent_covered_by(k),
            r.pc_locality.percent_covered_by(k)
        );
    }
}
