//! Sweep the destination-set predictor design space for one workload
//! and print the latency/bandwidth plane of Figure 5, including the
//! sensitivity dimensions of Figure 6 (indexing and capacity).
//!
//! ```bash
//! cargo run --release --example latency_bandwidth [workload]
//! ```

use dsp::prelude::*;

fn main() {
    let config = SystemConfig::isca03();
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Apache".to_string());
    let workload = Workload::ALL
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(&name))
        .unwrap_or_else(|| {
            eprintln!("unknown workload '{name}', defaulting to Apache");
            Workload::Apache
        });

    let spec = WorkloadSpec::preset(workload, &config).scaled(1.0 / 32.0);
    let trace: Vec<TraceRecord> = spec.generator(1).take(150_000).collect();
    let eval = TradeoffEvaluator::new(&config).warmup(30_000);

    let mb = Indexing::Macroblock { bytes: 1024 };
    let sweep: Vec<PredictorConfig> = vec![
        PredictorConfig::owner()
            .indexing(mb)
            .entries(Capacity::ISCA03),
        PredictorConfig::broadcast_if_shared()
            .indexing(mb)
            .entries(Capacity::ISCA03),
        PredictorConfig::group()
            .indexing(mb)
            .entries(Capacity::ISCA03),
        PredictorConfig::owner_group()
            .indexing(mb)
            .entries(Capacity::ISCA03),
        // Sensitivity: block indexing and unbounded capacity.
        PredictorConfig::group().entries(Capacity::ISCA03),
        PredictorConfig::group()
            .indexing(mb)
            .entries(Capacity::Unbounded),
        // The prior-art baseline.
        PredictorConfig::sticky_spatial(1),
    ];

    println!(
        "workload: {}  ({} measured misses)\n",
        workload.name(),
        120_000
    );
    println!(
        "{:<52} {:>14} {:>15} {:>12}",
        "configuration", "msgs/miss", "indirection %", "storage KiB"
    );
    let (snoop, dir) = eval.run_baselines(trace.iter().copied());
    for p in [&snoop, &dir] {
        println!(
            "{:<52} {:>14.2} {:>15.1} {:>12}",
            p.label,
            p.request_messages_per_miss(),
            p.indirection_pct(),
            "-"
        );
    }
    for cfg in &sweep {
        let p = eval.run(trace.iter().copied(), cfg);
        println!(
            "{:<52} {:>14.2} {:>15.1} {:>12.0}",
            p.label,
            p.request_messages_per_miss(),
            p.indirection_pct(),
            p.predictor_storage_bits as f64 / 8.0 / 1024.0 / config.num_nodes() as f64
        );
    }
    println!(
        "\nEvery predictor should sit below the directory's indirections and \
         left of snooping's {:.0} msgs/miss.",
        snoop.request_messages_per_miss()
    );
}
