//! Extending the framework: implement a custom destination-set
//! predictor against the public [`DestSetPredictor`] trait and race it
//! against the paper's policies.
//!
//! The custom policy here is "Owner-Pair": it remembers the *last two*
//! distinct owners of a block and multicasts to both — a middle ground
//! between Owner (one extra target) and Group (up to N).
//!
//! ```bash
//! cargo run --release --example custom_predictor
//! ```

use std::collections::HashMap;

use dsp::predictors::policies::OwnerPredictor;
use dsp::prelude::*;
use dsp_core::{Capacity as TableCapacity, Indexing as Ix};
use dsp_types::Owner;

/// Remembers the last two distinct owners per macroblock.
#[derive(Debug, Default)]
struct OwnerPairPredictor {
    entries: HashMap<u64, [Option<NodeId>; 2]>,
}

impl OwnerPairPredictor {
    fn key(block: BlockAddr) -> u64 {
        block.macroblock(1024).number()
    }

    fn observe(&mut self, block: BlockAddr, node: NodeId) {
        let entry = self.entries.entry(Self::key(block)).or_default();
        if entry[0] == Some(node) {
            return;
        }
        entry[1] = entry[0];
        entry[0] = Some(node);
    }
}

impl dsp::predictors::DestSetPredictor for OwnerPairPredictor {
    fn predict(&mut self, query: &PredictQuery) -> DestSet {
        let mut set = query.minimal;
        if let Some(entry) = self.entries.get(&Self::key(query.block)) {
            for owner in entry.iter().flatten() {
                set.insert(*owner);
            }
        }
        set
    }

    fn train(&mut self, event: &TrainEvent) {
        match *event {
            TrainEvent::DataResponse {
                block,
                responder: Owner::Node(node),
                ..
            } => {
                self.observe(block, node);
            }
            TrainEvent::OtherRequest {
                block,
                requester,
                req,
                ..
            } if req.is_exclusive() => {
                self.observe(block, requester);
            }
            _ => {}
        }
    }

    fn name(&self) -> String {
        "Owner-Pair (custom)".to_string()
    }

    fn entry_payload_bits(&self) -> u64 {
        2 * 5 // two owner ids + valid bits at 16 nodes
    }

    fn storage_bits(&self) -> u64 {
        self.entries.len() as u64 * self.entry_payload_bits()
    }
}

/// Evaluate any boxed predictor per node over a trace (a miniature
/// version of what `TradeoffEvaluator` does for built-in configs).
fn evaluate(
    config: &SystemConfig,
    trace: &[TraceRecord],
    warmup: usize,
    mut predictors: Vec<Box<dyn dsp::predictors::DestSetPredictor>>,
    label: &str,
) {
    use dsp::coherence::multicast;
    let mut tracker = CoherenceTracker::new(config);
    let (mut misses, mut messages, mut indirections) = (0u64, 0u64, 0u64);
    for (i, rec) in trace.iter().enumerate() {
        let info = tracker.classify(rec.requester, rec.request(), rec.block());
        let query = PredictQuery {
            block: rec.block(),
            pc: rec.pc,
            requester: rec.requester,
            req: rec.request(),
            minimal: info.minimal_set(),
        };
        let predicted = predictors[rec.requester.index()].predict(&query);
        let outcome = multicast::evaluate(&info, predicted);
        if i >= warmup {
            misses += 1;
            messages += outcome.request_messages;
            indirections += u64::from(outcome.indirection);
        }
        let delivered = (predicted | info.minimal_set()).without(rec.requester);
        for node in delivered {
            predictors[node.index()].train(&TrainEvent::OtherRequest {
                block: rec.block(),
                requester: rec.requester,
                req: rec.request(),
            });
        }
        predictors[rec.requester.index()].train(&TrainEvent::DataResponse {
            block: rec.block(),
            pc: rec.pc,
            responder: info.owner_before,
            req: rec.request(),
            minimal_sufficient: info.is_sufficient(info.minimal_set()),
        });
        tracker.access(rec.requester, rec.request(), rec.block());
    }
    println!(
        "{:<30} {:>14.2} {:>15.1}",
        label,
        messages as f64 / misses as f64,
        100.0 * indirections as f64 / misses as f64
    );
}

fn main() {
    let config = SystemConfig::isca03();
    let spec = WorkloadSpec::preset(Workload::BarnesHut, &config).scaled(1.0 / 16.0);
    let trace: Vec<TraceRecord> = spec.generator(3).take(120_000).collect();
    let n = config.num_nodes();
    let warmup = 20_000;

    println!("workload: {} (migratory-heavy)\n", spec.name());
    println!(
        "{:<30} {:>14} {:>15}",
        "predictor", "msgs/miss", "indirection %"
    );

    evaluate(
        &config,
        &trace,
        warmup,
        (0..n)
            .map(|_| {
                Box::new(OwnerPredictor::new(
                    Ix::Macroblock { bytes: 1024 },
                    TableCapacity::ISCA03,
                    &config,
                )) as Box<dyn dsp::predictors::DestSetPredictor>
            })
            .collect(),
        "Owner (paper)",
    );
    evaluate(
        &config,
        &trace,
        warmup,
        (0..n)
            .map(|_| {
                Box::new(OwnerPairPredictor::default())
                    as Box<dyn dsp::predictors::DestSetPredictor>
            })
            .collect(),
        "Owner-Pair (custom)",
    );
    println!(
        "\nOn migratory data, remembering two owners covers the common case \
         where ownership ping-pongs between pairs inside a larger rotation."
    );
}
