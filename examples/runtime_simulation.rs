//! Execution-driven timing simulation (the paper's §5): run broadcast
//! snooping, the directory protocol, and predictor-driven multicast
//! snooping on the full target system and compare runtime and traffic.
//!
//! ```bash
//! cargo run --release --example runtime_simulation [workload]
//! ```

use dsp::analysis::RuntimeEvaluator;
use dsp::prelude::*;

fn main() {
    let config = SystemConfig::isca03();
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "OLTP".to_string());
    let workload = Workload::ALL
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(&name))
        .unwrap_or_else(|| {
            eprintln!("unknown workload '{name}', defaulting to OLTP");
            Workload::Oltp
        });
    let spec = WorkloadSpec::preset(workload, &config).scaled(1.0 / 64.0);

    let target = TargetSystem::isca03_default();
    println!(
        "Target system: {} nodes @ {} GHz, {} MB L2, {} GB/s links",
        config.num_nodes(),
        target.clock_ghz,
        target.l2.capacity_bytes() >> 20,
        target.interconnect.link_bytes_per_ns
    );
    println!(
        "Derived latencies: memory {} ns, c2c direct {} ns, c2c indirect {} ns\n",
        target.memory_latency_ns(),
        target.cache_direct_latency_ns(),
        target.cache_indirect_latency_ns()
    );

    let mb = Indexing::Macroblock { bytes: 1024 };
    let protocols = vec![
        ProtocolKind::Multicast(PredictorConfig::owner().indexing(mb)),
        ProtocolKind::Multicast(PredictorConfig::broadcast_if_shared().indexing(mb)),
        ProtocolKind::Multicast(PredictorConfig::group().indexing(mb)),
        ProtocolKind::Multicast(PredictorConfig::owner_group().indexing(mb)),
    ];
    let points = RuntimeEvaluator::new(&config)
        .cpu(CpuModel::Simple)
        .misses(500, 3_000)
        .runs(2)
        .run(&spec, &protocols);

    println!("workload: {}\n", workload.name());
    println!(
        "{:<55} {:>12} {:>14} {:>12} {:>10}",
        "protocol", "runtime", "traffic/miss", "avg miss ns", "retries"
    );
    for p in &points {
        println!(
            "{:<55} {:>12.1} {:>14.1} {:>12.0} {:>10}",
            p.label,
            p.normalized_runtime,
            p.normalized_traffic,
            p.report.avg_miss_latency_ns(),
            p.report.retries
        );
    }
    println!("\n(runtime normalized to directory = 100; traffic to snooping = 100)");
}
