//! Calibration of the synthetic workloads against paper Table 2 and
//! the qualitative shapes of Figures 2–4.
//!
//! Absolute footprints are scaled down (1/64) for test speed; the
//! *rates* — directory indirections, read/write structure, sharing
//! degree, locality — are scale-free and must land in bands around the
//! published values.

use dsp::analysis::{characterize, CharacterizationReport};
use dsp::prelude::*;

fn report(w: Workload) -> CharacterizationReport {
    let config = SystemConfig::isca03();
    let spec = WorkloadSpec::preset(w, &config).scaled(1.0 / 64.0);
    characterize(&spec, &config, 10_000, 50_000, 1234)
}

/// Paper Table 2, rightmost column, with ±7-percentage-point bands
/// (short scaled traces undercount rare sharing slightly).
#[test]
fn directory_indirection_rates_match_table2() {
    let targets = [
        (Workload::Apache, 89.0),
        (Workload::BarnesHut, 96.0),
        (Workload::Ocean, 58.0),
        (Workload::Oltp, 73.0),
        (Workload::Slashcode, 35.0),
        (Workload::SpecJbb, 41.0),
    ];
    for (w, target) in targets {
        let r = report(w);
        let got = r.indirection_pct();
        assert!(
            (got - target).abs() <= 7.0,
            "{w:?}: measured {got:.1}% vs Table 2 {target}%"
        );
    }
}

/// Table 2 columns 5–6: the miss-rate parameters feed the timing model.
#[test]
fn miss_rates_match_table2() {
    let config = SystemConfig::isca03();
    let expect = [
        (Workload::Apache, 5.9),
        (Workload::BarnesHut, 0.4),
        (Workload::Ocean, 0.5),
        (Workload::Oltp, 7.0),
        (Workload::Slashcode, 1.0),
        (Workload::SpecJbb, 3.3),
    ];
    for (w, mpki) in expect {
        let spec = WorkloadSpec::preset(w, &config);
        assert_eq!(spec.misses_per_kilo_instr(), mpki, "{w:?}");
    }
}

/// §2.4 / Figure 2: most misses need few observers; only ~10% need
/// more than one other processor.
#[test]
fn instantaneous_sharing_is_small() {
    for w in Workload::ALL {
        let r = report(w);
        let total = r.misses as f64;
        let multi =
            (r.sharing.reads[2] + r.sharing.reads[3] + r.sharing.writes[2] + r.sharing.writes[3])
                as f64;
        assert!(
            multi / total < 0.25,
            "{w:?}: {:.1}% of misses need >1 other processor",
            100.0 * multi / total
        );
    }
}

/// Figure 3(a): the block-degree histogram is dominated by degree 1.
#[test]
fn most_blocks_touched_by_one_processor() {
    for w in Workload::ALL {
        let r = report(w);
        let total: u64 = r.degree_blocks.iter().sum();
        assert!(
            r.degree_blocks[1] * 2 > total,
            "{w:?}: degree-1 blocks are {}/{total}",
            r.degree_blocks[1]
        );
    }
}

/// Figure 3(b): commercial workloads concentrate misses on widely
/// shared blocks; Ocean concentrates on degree <= 4.
#[test]
fn miss_weighted_degree_shapes() {
    for w in [Workload::Apache, Workload::Oltp, Workload::BarnesHut] {
        let r = report(w);
        let high: u64 = r.degree_misses[8..].iter().sum();
        let low: u64 = r.degree_misses[..4].iter().sum();
        assert!(high > low / 4, "{w:?}: widely-shared misses too rare");
    }
    let ocean = report(Workload::Ocean);
    let low: u64 = ocean.degree_misses[..=4].iter().sum();
    let high: u64 = ocean.degree_misses[5..].iter().sum();
    assert!(
        low > high,
        "Ocean: misses should concentrate at degree <= 4"
    );
}

/// Figure 4: strong temporal locality — the hottest 10k macroblocks
/// cover the overwhelming majority of cache-to-cache misses.
#[test]
fn sharing_locality_concentrates() {
    for w in Workload::ALL {
        let r = report(w);
        let cover = r.macroblock_locality.percent_covered_by(10_000);
        assert!(
            cover > 80.0,
            "{w:?}: top-10k macroblocks cover only {cover:.1}%"
        );
        let pcs = r.pc_locality.percent_covered_by(10_000);
        assert!(pcs > 80.0, "{w:?}: top-10k PCs cover only {pcs:.1}%");
    }
}

/// Footprint ordering from Table 2 survives scaling: SPECjbb >
/// Slashcode > OLTP > Apache > Barnes-Hut.
#[test]
fn footprint_ordering_preserved() {
    let jbb = report(Workload::SpecJbb).blocks_touched;
    let slash = report(Workload::Slashcode).blocks_touched;
    let oltp = report(Workload::Oltp).blocks_touched;
    let barnes = report(Workload::BarnesHut).blocks_touched;
    assert!(jbb > slash / 2, "SPECjbb touches the most memory");
    assert!(slash > oltp);
    assert!(oltp > barnes);
}

/// Reads dominate writes in every workload's miss mix (Figure 2 shows
/// read bars above write bars).
#[test]
fn reads_outnumber_writes() {
    for w in Workload::ALL {
        let r = report(w);
        let reads: u64 = r.sharing.reads.iter().sum();
        let writes: u64 = r.sharing.writes.iter().sum();
        assert!(reads > writes, "{w:?}: reads {reads} vs writes {writes}");
    }
}
