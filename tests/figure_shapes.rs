//! Shape assertions for the paper's Figure 6 sensitivity analysis,
//! checked end-to-end at reduced scale on OLTP (the workload the paper
//! uses for its sensitivity study).

use dsp::analysis::{TradeoffEvaluator, TradeoffPoint};
use dsp::prelude::*;

fn trace() -> Vec<TraceRecord> {
    let config = SystemConfig::isca03();
    WorkloadSpec::preset(Workload::Oltp, &config)
        .scaled(1.0 / 64.0)
        .generator(2026)
        .take(90_000)
        .collect()
}

fn eval() -> TradeoffEvaluator {
    TradeoffEvaluator::new(&SystemConfig::isca03()).warmup(25_000)
}

fn run(t: &[TraceRecord], cfg: PredictorConfig) -> TradeoffPoint {
    eval().run(t.iter().copied(), &cfg)
}

/// Figure 6(a): block indexing strictly beats PC indexing for Owner and
/// Owner/Group; for Broadcast-If-Shared the choice is a
/// bandwidth/latency tradeoff rather than a dominance.
#[test]
fn fig6a_pc_vs_block_indexing() {
    let t = trace();
    let unbounded = Capacity::Unbounded;
    for base in [PredictorConfig::owner(), PredictorConfig::owner_group()] {
        let block = run(&t, base.indexing(Indexing::DataBlock).entries(unbounded));
        let pc = run(
            &t,
            base.indexing(Indexing::ProgramCounter).entries(unbounded),
        );
        assert!(
            block.indirections < pc.indirections,
            "{}: block {} vs PC {}",
            block.label,
            block.indirections,
            pc.indirections
        );
    }
    let bis_block = run(
        &t,
        PredictorConfig::broadcast_if_shared()
            .indexing(Indexing::DataBlock)
            .entries(unbounded),
    );
    let bis_pc = run(
        &t,
        PredictorConfig::broadcast_if_shared()
            .indexing(Indexing::ProgramCounter)
            .entries(unbounded),
    );
    let tradeoff = (bis_pc.indirections < bis_block.indirections)
        != (bis_pc.request_messages < bis_block.request_messages);
    assert!(
        tradeoff || bis_pc.indirections < bis_block.indirections,
        "BIS: PC ({}, {}) vs block ({}, {}) should trade off",
        bis_pc.request_messages,
        bis_pc.indirections,
        bis_block.request_messages,
        bis_block.indirections
    );
}

/// Figure 6(b): growing macroblocks monotonically cut Owner's
/// indirections on OLTP (64 B -> 256 B -> 1024 B).
#[test]
fn fig6b_macroblocks_help_monotonically() {
    let t = trace();
    let mut last = u64::MAX;
    for ix in [
        Indexing::DataBlock,
        Indexing::Macroblock { bytes: 256 },
        Indexing::Macroblock { bytes: 1024 },
    ] {
        let p = run(
            &t,
            PredictorConfig::owner()
                .indexing(ix)
                .entries(Capacity::Unbounded),
        );
        assert!(
            p.indirections <= last,
            "{}: {} should not exceed previous {}",
            ix,
            p.indirections,
            last
        );
        last = p.indirections;
    }
}

/// Figure 6(c): 8192-entry predictors perform comparably to unbounded
/// ones at 1024 B indexing (the hot set fits), and every paper policy
/// beats Sticky-Spatial(1) in at least one criterion without losing
/// both.
#[test]
fn fig6c_sizes_and_prior_work() {
    let t = trace();
    let mb = Indexing::Macroblock { bytes: 1024 };
    for base in [
        PredictorConfig::owner(),
        PredictorConfig::group(),
        PredictorConfig::owner_group(),
    ] {
        let finite = run(&t, base.indexing(mb).entries(Capacity::ISCA03));
        let unbounded = run(&t, base.indexing(mb).entries(Capacity::Unbounded));
        let ratio = finite.indirections as f64 / unbounded.indirections.max(1) as f64;
        assert!(
            (0.8..1.3).contains(&ratio),
            "{}: finite/unbounded indirection ratio {ratio:.2}",
            finite.label
        );
    }
    let sticky = run(&t, PredictorConfig::sticky_spatial(1));
    for base in [
        PredictorConfig::owner(),
        PredictorConfig::broadcast_if_shared(),
        PredictorConfig::group(),
        PredictorConfig::owner_group(),
    ] {
        let ours = run(&t, base.indexing(mb).entries(Capacity::ISCA03));
        let better_somewhere = ours.request_messages < sticky.request_messages
            || ours.indirections < sticky.indirections;
        assert!(
            better_somewhere,
            "{} ({}, {}) never beats Sticky-Spatial ({}, {})",
            ours.label,
            ours.request_messages,
            ours.indirections,
            sticky.request_messages,
            sticky.indirections
        );
    }
}

/// Figure 5's geometric reading: on every workload, the four standout
/// predictors populate the tradeoff frontier between the two protocol
/// endpoints — none is dominated by an endpoint.
#[test]
fn fig5_predictors_are_on_the_frontier() {
    let config = SystemConfig::isca03();
    for w in [Workload::Apache, Workload::Ocean, Workload::SpecJbb] {
        let t: Vec<TraceRecord> = WorkloadSpec::preset(w, &config)
            .scaled(1.0 / 64.0)
            .generator(9)
            .take(60_000)
            .collect();
        let e = TradeoffEvaluator::new(&config).warmup(15_000);
        let (snoop, dir) = e.run_baselines(t.iter().copied());
        let mb = Indexing::Macroblock { bytes: 1024 };
        for base in [
            PredictorConfig::owner(),
            PredictorConfig::broadcast_if_shared(),
            PredictorConfig::group(),
            PredictorConfig::owner_group(),
        ] {
            let p = e.run(t.iter().copied(), &base.indexing(mb));
            assert!(
                p.request_messages < snoop.request_messages,
                "{w:?}/{}: not cheaper than snooping",
                p.label
            );
            assert!(
                p.indirections < dir.indirections,
                "{w:?}/{}: not faster than directory",
                p.label
            );
        }
    }
}
