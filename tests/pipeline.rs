//! Cross-crate integration: the same workload measured through the
//! characterization path, the trace-driven tradeoff path, and the
//! execution-driven timing path must tell one consistent story.

use dsp::analysis::{characterize, RuntimeEvaluator, TradeoffEvaluator};
use dsp::prelude::*;

fn spec(w: Workload, scale: f64) -> WorkloadSpec {
    WorkloadSpec::preset(w, &SystemConfig::isca03()).scaled(scale)
}

#[test]
fn characterization_agrees_with_directory_baseline() {
    // The % of misses classified as directory indirections by the
    // characterizer must equal the directory baseline's indirection
    // rate in the tradeoff evaluator — they implement the same
    // definition through different code paths.
    let config = SystemConfig::isca03();
    let s = spec(Workload::Apache, 1.0 / 128.0);
    let warmup = 4_000;
    let measured = 16_000;
    let report = characterize(&s, &config, warmup, measured, 9);
    let trace: Vec<TraceRecord> = s.generator(9).take(warmup + measured).collect();
    let (_, dir) = TradeoffEvaluator::new(&config)
        .warmup(warmup)
        .run_baselines(trace);
    assert_eq!(report.misses, dir.misses);
    assert_eq!(report.directory_indirections, dir.indirections);
}

#[test]
fn trace_and_timing_agree_on_retry_direction() {
    // A predictor with more trace-driven indirections must also retry
    // more in the timing simulator (same protocol, different engines).
    let config = SystemConfig::isca03();
    let s = spec(Workload::Oltp, 1.0 / 256.0);
    let trace: Vec<TraceRecord> = s.generator(2).take(20_000).collect();
    let eval = TradeoffEvaluator::new(&config).warmup(4_000);
    let owner = eval.run(
        trace.iter().copied(),
        &PredictorConfig::owner().indexing(Indexing::Macroblock { bytes: 1024 }),
    );
    let bis = eval.run(
        trace.iter().copied(),
        &PredictorConfig::broadcast_if_shared().indexing(Indexing::Macroblock { bytes: 1024 }),
    );
    assert!(owner.indirections > bis.indirections);

    let run = |cfg: PredictorConfig| {
        let sim = SimConfig::new(ProtocolKind::Multicast(cfg))
            .misses(100, 500)
            .seed(2);
        System::<4>::new(&config, TargetSystem::isca03_default(), &s, sim).run()
    };
    let owner_sim = run(PredictorConfig::owner().indexing(Indexing::Macroblock { bytes: 1024 }));
    let bis_sim =
        run(PredictorConfig::broadcast_if_shared().indexing(Indexing::Macroblock { bytes: 1024 }));
    assert!(
        owner_sim.retries > bis_sim.retries,
        "timing sim should agree: owner {} vs bis {}",
        owner_sim.retries,
        bis_sim.retries
    );
}

#[test]
fn timing_latencies_track_protocol_structure() {
    // Directory c2c misses pay ~242 ns, snooping c2c ~112 ns; average
    // latencies must reflect that ordering on a sharing-heavy workload.
    let config = SystemConfig::isca03();
    let s = spec(Workload::BarnesHut, 1.0 / 128.0);
    let run = |protocol| {
        let sim = SimConfig::new(protocol).misses(100, 600).seed(4);
        System::<4>::new(&config, TargetSystem::isca03_default(), &s, sim).run()
    };
    let snoop = run(ProtocolKind::Snooping);
    let dir = run(ProtocolKind::Directory);
    assert!(
        snoop.avg_miss_latency_ns() + 30.0 < dir.avg_miss_latency_ns(),
        "snooping {} vs directory {}",
        snoop.avg_miss_latency_ns(),
        dir.avg_miss_latency_ns()
    );
    // Barnes-Hut is ~95% cache-to-cache: snooping's average should sit
    // near the direct transfer latency.
    assert!(
        (100.0..200.0).contains(&snoop.avg_miss_latency_ns()),
        "{}",
        snoop.avg_miss_latency_ns()
    );
}

#[test]
fn broadcast_multicast_equals_snooping_traffic() {
    // Multicast snooping with an always-broadcast predictor IS
    // broadcast snooping: identical request traffic per miss.
    let config = SystemConfig::isca03();
    let s = spec(Workload::SpecJbb, 1.0 / 256.0);
    let run = |protocol| {
        let sim = SimConfig::new(protocol).misses(50, 400).seed(8);
        System::<4>::new(&config, TargetSystem::isca03_default(), &s, sim).run()
    };
    let snoop = run(ProtocolKind::Snooping);
    let multicast = run(ProtocolKind::Multicast(PredictorConfig::always_broadcast()));
    assert_eq!(snoop.measured_misses, multicast.measured_misses);
    assert_eq!(
        snoop.traffic.request_deliveries(),
        multicast.traffic.request_deliveries()
    );
}

#[test]
fn runtime_evaluator_normalizations_consistent_with_reports() {
    let config = SystemConfig::isca03();
    let s = spec(Workload::Slashcode, 1.0 / 256.0);
    let points = RuntimeEvaluator::new(&config).misses(50, 300).run(&s, &[]);
    let snoop = &points[0];
    let dir = &points[1];
    let ratio = snoop.report.runtime_ns as f64 / dir.report.runtime_ns as f64;
    assert!((snoop.normalized_runtime / 100.0 - ratio).abs() < 1e-9);
    let traffic_ratio = dir.report.bytes_per_miss() / snoop.report.bytes_per_miss();
    assert!((dir.normalized_traffic / 100.0 - traffic_ratio).abs() < 1e-9);
}

#[test]
fn trace_io_round_trips_through_files() {
    use dsp::trace::{read_trace_json, write_trace_json};
    let s = spec(Workload::Ocean, 1.0 / 256.0);
    let recs: Vec<TraceRecord> = s.generator(5).take(2_000).collect();
    let mut buf = Vec::new();
    write_trace_json(&mut buf, recs.iter().copied()).expect("write");
    let back = read_trace_json(&buf[..]).expect("read");
    assert_eq!(back, recs);
    // And the round-tripped trace evaluates identically.
    let config = SystemConfig::isca03();
    let eval = TradeoffEvaluator::new(&config);
    let a = eval.run(recs.iter().copied(), &PredictorConfig::group());
    let b = eval.run(back.iter().copied(), &PredictorConfig::group());
    assert_eq!(a, b);
}
