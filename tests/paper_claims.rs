//! The paper's headline quantitative claims, asserted end-to-end at
//! reduced scale. We check *shapes and factors*, not absolute numbers:
//! who wins, by roughly how much, and where each policy sits.

use dsp::analysis::{RuntimeEvaluator, TradeoffEvaluator, TradeoffPoint};
use dsp::prelude::*;

fn trace(w: Workload, n: usize) -> Vec<TraceRecord> {
    let config = SystemConfig::isca03();
    WorkloadSpec::preset(w, &config)
        .scaled(1.0 / 64.0)
        .generator(77)
        .take(n)
        .collect()
}

fn eval() -> TradeoffEvaluator {
    TradeoffEvaluator::new(&SystemConfig::isca03()).warmup(20_000)
}

fn mb() -> Indexing {
    Indexing::Macroblock { bytes: 1024 }
}

fn standouts() -> [PredictorConfig; 4] {
    [
        PredictorConfig::owner().indexing(mb()),
        PredictorConfig::broadcast_if_shared().indexing(mb()),
        PredictorConfig::group().indexing(mb()),
        PredictorConfig::owner_group().indexing(mb()),
    ]
}

/// Abstract: "destination-set predictors can reduce indirections by up
/// to 90%, with respect to a directory protocol, while using less than
/// one third the request bandwidth of a broadcast snooping system".
#[test]
fn headline_indirection_reduction_at_low_bandwidth() {
    let t = trace(Workload::Slashcode, 100_000);
    let (snoop, dir) = eval().run_baselines(t.iter().copied());
    let mut best_reduction: f64 = 0.0;
    for cfg in standouts() {
        let p = eval().run(t.iter().copied(), &cfg);
        if p.request_messages_per_miss() < snoop.request_messages_per_miss() / 3.0 {
            let reduction = 1.0 - p.indirections as f64 / dir.indirections as f64;
            best_reduction = best_reduction.max(reduction);
        }
    }
    assert!(
        best_reduction > 0.75,
        "expected >75% indirection reduction under 1/3 snooping bandwidth, got {:.0}%",
        100.0 * best_reduction
    );
}

/// §4.3 Owner: "In five of our six benchmarks, Owner reduces the rate
/// of indirections to less than 25% of all misses" at small bandwidth
/// cost over the directory.
#[test]
fn owner_keeps_indirections_low_cheaply() {
    let mut under_25 = 0;
    for w in Workload::ALL {
        let t = trace(w, 80_000);
        let (_, dir) = eval().run_baselines(t.iter().copied());
        let p = eval().run(t.iter().copied(), &PredictorConfig::owner().indexing(mb()));
        if p.indirection_pct() < 25.0 {
            under_25 += 1;
        }
        // "less than a 25% increase in request traffic" (five of six).
        let overhead = p.request_messages as f64 / dir.request_messages as f64;
        assert!(
            overhead < 1.6,
            "{w:?}: Owner request overhead {overhead:.2}x vs directory"
        );
    }
    assert!(
        under_25 >= 5,
        "Owner <25% indirections on {under_25}/6 workloads"
    );
}

/// §4.3 Broadcast-If-Shared: "keeping indirections to less than 6% of
/// misses for all of our benchmarks while using less bandwidth".
#[test]
fn broadcast_if_shared_near_snooping_latency() {
    for w in Workload::ALL {
        let t = trace(w, 80_000);
        let (snoop, _) = eval().run_baselines(t.iter().copied());
        let p = eval().run(
            t.iter().copied(),
            &PredictorConfig::broadcast_if_shared().indexing(mb()),
        );
        assert!(
            p.indirection_pct() < 8.0,
            "{w:?}: BIS indirections {:.1}%",
            p.indirection_pct()
        );
        assert!(
            p.request_messages < snoop.request_messages,
            "{w:?}: BIS must use less bandwidth than snooping"
        );
    }
}

/// §4.3 Group: "For all workloads, Group reduces request traffic to no
/// more than half that of snooping, while keeping indirections below
/// 15% of misses" — and on Slashcode, about one fifth the bandwidth
/// with single-digit indirections.
#[test]
fn group_balances_both_axes() {
    for w in Workload::ALL {
        let t = trace(w, 80_000);
        let (snoop, _) = eval().run_baselines(t.iter().copied());
        let p = eval().run(t.iter().copied(), &PredictorConfig::group().indexing(mb()));
        assert!(
            p.request_messages_per_miss() <= snoop.request_messages_per_miss() / 2.0 + 0.5,
            "{w:?}: Group traffic {:.2} vs snooping {:.2}",
            p.request_messages_per_miss(),
            snoop.request_messages_per_miss()
        );
        // Paper: below 15% for all workloads; our synthetic migratory
        // pair-drift is slightly harsher, so allow up to 20%.
        assert!(
            p.indirection_pct() < 20.0,
            "{w:?}: Group {:.1}%",
            p.indirection_pct()
        );
    }
    let t = trace(Workload::Slashcode, 100_000);
    let (snoop, _) = eval().run_baselines(t.iter().copied());
    let p = eval().run(t.iter().copied(), &PredictorConfig::group().indexing(mb()));
    let factor = snoop.request_messages_per_miss() / p.request_messages_per_miss();
    assert!(
        factor > 4.0,
        "Slashcode Group bandwidth factor {factor:.1} (paper: ~5x)"
    );
    assert!(p.indirection_pct() < 10.0);
}

/// §4.3 Owner/Group sits between Owner and Group on both axes for most
/// workloads, and excels on Ocean (6% indirections at ~1/5 snooping
/// bandwidth in the paper).
#[test]
fn owner_group_is_the_middle_ground() {
    let t = trace(Workload::Oltp, 80_000);
    let owner = eval().run(t.iter().copied(), &PredictorConfig::owner().indexing(mb()));
    let group = eval().run(t.iter().copied(), &PredictorConfig::group().indexing(mb()));
    let og = eval().run(
        t.iter().copied(),
        &PredictorConfig::owner_group().indexing(mb()),
    );
    // "the results for this predictor lie between those of Group and
    // Owner": bandwidth strictly between, indirections near Owner's
    // (Group's write handling trades a little accuracy during sharing-
    // pair drift).
    assert!(og.request_messages <= group.request_messages);
    assert!(og.request_messages >= owner.request_messages);
    assert!(
        (og.indirections as f64) <= owner.indirections as f64 * 1.12,
        "Owner/Group {} vs Owner {}",
        og.indirections,
        owner.indirections
    );

    let t = trace(Workload::Ocean, 80_000);
    let (snoop, _) = eval().run_baselines(t.iter().copied());
    let og = eval().run(
        t.iter().copied(),
        &PredictorConfig::owner_group().indexing(mb()),
    );
    assert!(
        og.indirection_pct() < 12.0,
        "Ocean Owner/Group {:.1}%",
        og.indirection_pct()
    );
    assert!(
        og.request_messages_per_miss() < snoop.request_messages_per_miss() / 3.5,
        "Ocean Owner/Group bandwidth {:.2}",
        og.request_messages_per_miss()
    );
}

/// §4.4: macroblock indexing improves on block indexing on both axes
/// for OLTP-like workloads.
#[test]
fn macroblock_indexing_helps() {
    let t = trace(Workload::Oltp, 80_000);
    let block = eval().run(t.iter().copied(), &PredictorConfig::group());
    let macro1k = eval().run(t.iter().copied(), &PredictorConfig::group().indexing(mb()));
    assert!(
        macro1k.indirections < block.indirections,
        "1024B macroblocks should cut indirections: {} vs {}",
        macro1k.indirections,
        block.indirections
    );
}

/// §4.4: 8192-entry predictors perform comparably to unbounded ones.
#[test]
fn finite_predictors_track_unbounded() {
    let t = trace(Workload::Oltp, 80_000);
    let finite = eval().run(t.iter().copied(), &PredictorConfig::group().indexing(mb()));
    let unbounded = eval().run(
        t.iter().copied(),
        &PredictorConfig::group()
            .indexing(mb())
            .entries(Capacity::Unbounded),
    );
    let ratio = finite.indirections as f64 / unbounded.indirections.max(1) as f64;
    assert!(
        ratio < 1.5,
        "8192 entries should be close to unbounded: {} vs {}",
        finite.indirections,
        unbounded.indirections
    );
}

/// §4.4: our predictors match or beat Sticky-Spatial(1) in one or both
/// criteria (OLTP, like Figure 6c).
#[test]
fn beats_sticky_spatial_prior_work() {
    let t = trace(Workload::Oltp, 80_000);
    let sticky = eval().run(t.iter().copied(), &PredictorConfig::sticky_spatial(1));
    let og = eval().run(
        t.iter().copied(),
        &PredictorConfig::owner_group().indexing(mb()),
    );
    let dominates = |a: &TradeoffPoint, b: &TradeoffPoint| {
        a.request_messages <= b.request_messages && a.indirections <= b.indirections
    };
    assert!(
        dominates(&og, &sticky)
            || og.request_messages < sticky.request_messages
            || og.indirections < sticky.indirections,
        "Owner/Group ({:.2}, {:.1}%) vs Sticky ({:.2}, {:.1}%)",
        og.request_messages_per_miss(),
        og.indirection_pct(),
        sticky.request_messages_per_miss(),
        sticky.indirection_pct()
    );
}

/// §5.3: snooping outperforms the directory but uses about twice the
/// interconnect bandwidth; predictors capture most of snooping's
/// performance at a fraction of its bandwidth.
#[test]
fn runtime_tradeoff_shapes() {
    let config = SystemConfig::isca03();
    let spec = WorkloadSpec::preset(Workload::Oltp, &config).scaled(1.0 / 128.0);
    let points = RuntimeEvaluator::new(&config)
        .misses(200, 1_500)
        .seed(3)
        .run(
            &spec,
            &[
                ProtocolKind::Multicast(PredictorConfig::broadcast_if_shared().indexing(mb())),
                ProtocolKind::Multicast(PredictorConfig::owner_group().indexing(mb())),
            ],
        );
    let snoop = &points[0];
    let dir = &points[1];
    let bis = &points[2];
    let og = &points[3];
    // Snooping wins runtime by a healthy margin on OLTP.
    assert!(
        snoop.normalized_runtime < 85.0,
        "snooping {:.0}",
        snoop.normalized_runtime
    );
    // Directory uses roughly half the traffic (paper: "about twice").
    assert!(
        (30.0..75.0).contains(&dir.normalized_traffic),
        "directory traffic {:.0}",
        dir.normalized_traffic
    );
    // Predictors approach snooping's runtime using much less bandwidth.
    for p in [bis, og] {
        assert!(p.normalized_runtime < dir.normalized_runtime, "{}", p.label);
        assert!(
            p.normalized_traffic < snoop.normalized_traffic,
            "{}",
            p.label
        );
    }
    // "almost 90% of the performance of snooping": within ~15% of
    // snooping's runtime for the latency-oriented predictor.
    assert!(
        bis.normalized_runtime < snoop.normalized_runtime * 1.18,
        "BIS runtime {:.0} vs snooping {:.0}",
        bis.normalized_runtime,
        snoop.normalized_runtime
    );
}

/// Figure 8: the detailed out-of-order model preserves the Figure 7
/// ordering (normalized runtimes similar, absolute runtimes lower).
#[test]
fn detailed_cpu_preserves_ordering() {
    let config = SystemConfig::isca03();
    let spec = WorkloadSpec::preset(Workload::Apache, &config).scaled(1.0 / 128.0);
    let extras = [ProtocolKind::Multicast(
        PredictorConfig::owner_group().indexing(mb()),
    )];
    let simple = RuntimeEvaluator::new(&config)
        .misses(100, 800)
        .run(&spec, &extras);
    let detailed = RuntimeEvaluator::new(&config)
        .cpu(CpuModel::Detailed { max_outstanding: 4 })
        .misses(100, 800)
        .run(&spec, &extras);
    // Same winners under both models.
    assert!(simple[0].normalized_runtime < 100.0);
    assert!(detailed[0].normalized_runtime < 100.0);
    assert!(detailed[2].normalized_traffic < detailed[0].normalized_traffic + 1e-9);
    // Overlapping misses shortens absolute runtime.
    assert!(
        detailed[0].report.runtime_ns <= simple[0].report.runtime_ns,
        "detailed {} vs simple {}",
        detailed[0].report.runtime_ns,
        simple[0].report.runtime_ns
    );
}
