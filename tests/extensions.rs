//! End-to-end tests of the beyond-the-paper extensions: the predictive
//! directory protocol, the two-level owner predictor, system-size
//! scaling, and the protocol model checker.

use dsp::analysis::{RuntimeEvaluator, TradeoffEvaluator};
use dsp::prelude::*;
use dsp::verify::{check, Bug, ModelConfig};

fn mb() -> Indexing {
    Indexing::Macroblock { bytes: 1024 }
}

#[test]
fn predictive_directory_beats_plain_directory_end_to_end() {
    let config = SystemConfig::isca03();
    let spec = WorkloadSpec::preset(Workload::Oltp, &config).scaled(1.0 / 128.0);
    let points = RuntimeEvaluator::new(&config)
        .misses(200, 1_200)
        .seed(17)
        .run(
            &spec,
            &[ProtocolKind::DirectoryPredicted(
                PredictorConfig::owner().indexing(mb()),
            )],
        );
    let dir = &points[1];
    let pred = &points[2];
    assert!(pred.normalized_runtime < dir.normalized_runtime);
    assert!(
        pred.report.indirection_pct() < dir.report.indirection_pct() / 2.0,
        "owner prediction should at least halve 3-hop misses: {:.1} vs {:.1}",
        pred.report.indirection_pct(),
        dir.report.indirection_pct()
    );
    // It keeps directory-class traffic: far below snooping.
    assert!(
        pred.normalized_traffic < 60.0,
        "{:.1}",
        pred.normalized_traffic
    );
}

#[test]
fn two_level_owner_is_more_conservative_than_owner() {
    let config = SystemConfig::isca03();
    let trace: Vec<TraceRecord> = WorkloadSpec::preset(Workload::Oltp, &config)
        .scaled(1.0 / 128.0)
        .generator(23)
        .take(40_000)
        .collect();
    let eval = TradeoffEvaluator::new(&config).warmup(10_000);
    let owner = eval.run(
        trace.iter().copied(),
        &PredictorConfig::owner().indexing(mb()),
    );
    let two_level = eval.run(
        trace.iter().copied(),
        &PredictorConfig::two_level_owner().indexing(mb()),
    );
    // The confidence gate suppresses some predictions, so more first
    // attempts are insufficient (in multicast snooping the saved
    // request message is repaid as a costlier reissue).
    assert!(two_level.insufficient_first >= owner.insufficient_first);
    assert!(two_level.indirections >= owner.indirections);
    // It still predicts usefully — well under the directory's
    // indirections — but the gate reads lock ping-pong (owner
    // alternating every episode) as instability, so it gives back a
    // chunk of Owner's coverage on migratory-heavy workloads.
    let (_, dir) = eval.run_baselines(trace.iter().copied());
    assert!((two_level.indirections as f64) < 0.7 * dir.indirections as f64);
}

#[test]
fn predictors_scale_better_than_broadcast() {
    // As the machine grows, predictor traffic stays near-constant while
    // broadcast grows linearly.
    let mut group_msgs = Vec::new();
    for nodes in [8usize, 32] {
        let config = SystemConfig::builder()
            .num_nodes(nodes)
            .build()
            .expect("valid");
        let trace: Vec<TraceRecord> = WorkloadSpec::preset(Workload::Oltp, &config)
            .scaled(1.0 / 128.0)
            .generator(31)
            .take(40_000)
            .collect();
        let eval = TradeoffEvaluator::new(&config).warmup(10_000);
        let p = eval.run(
            trace.iter().copied(),
            &PredictorConfig::group().indexing(mb()),
        );
        group_msgs.push(p.request_messages_per_miss());
    }
    let growth = group_msgs[1] / group_msgs[0];
    assert!(
        growth < 2.0,
        "Group traffic grew {growth:.2}x from 8 to 32 nodes (broadcast grows 4.4x)"
    );
}

#[test]
fn model_checker_passes_clean_and_catches_bugs() {
    assert!(check(&ModelConfig::new(3)).violation.is_none());
    for bug in [
        Bug::SkipInvalidation,
        Bug::AcceptInsufficient,
        Bug::StaleDirectoryOwner,
    ] {
        let report = check(&ModelConfig::new(3).with_bug(bug));
        assert!(report.violation.is_some(), "{bug:?} must be caught");
    }
}

#[test]
fn simulator_and_model_agree_on_retry_bound() {
    // The model proves at most 2 reissues; the simulator must never
    // exceed that either, even under chaos.
    let config = SystemConfig::isca03();
    let spec = WorkloadSpec::preset(Workload::BarnesHut, &config).scaled(1.0 / 256.0);
    let sim = SimConfig::new(ProtocolKind::Multicast(PredictorConfig::random(0xfeed)))
        .cpu(CpuModel::Detailed { max_outstanding: 4 })
        .misses(100, 800)
        .seed(41);
    let report = System::<4>::new(&config, TargetSystem::isca03_default(), &spec, sim).run();
    assert_eq!(report.measured_misses, 800 * 16);
    assert!(
        report.retries <= 2 * report.measured_misses,
        "retry bound violated"
    );
}
