//! Explicit-state model checking of multicast snooping.
//!
//! The paper builds on a formally specified protocol: Sorin et al.,
//! *Specifying and Verifying a Broadcast and a Multicast Snooping Cache
//! Coherence Protocol* (IEEE TPDS, 2002) — including the reissue
//! optimization and the window-of-vulnerability race this workspace's
//! simulator models. This crate closes the loop: it exhaustively
//! explores an abstract model of that protocol — one block, a few nodes,
//! a totally ordered request channel, in-flight data responses, and
//! **nondeterministic destination sets** standing in for *every possible
//! predictor* — and checks the safety and bounded-liveness invariants on
//! every reachable state:
//!
//! * at most one owner; a Modified copy excludes all other copies;
//! * the directory's owner/sharer view is consistent with node states
//!   (modulo in-flight grants);
//! * every outstanding request has a request or response in flight
//!   (no wedged requesters), and no request is reissued more than twice
//!   (the third attempt broadcasts, which always succeeds).
//!
//! Because predictions are unconstrained, a successful check covers the
//! protocol under *any* destination-set predictor — exactly the
//! correctness-decoupling argument the paper inherits from multicast
//! snooping. Deliberate bugs can be injected ([`Bug`]) to demonstrate
//! that the checker actually finds violations and produces
//! counterexample traces.
//!
//! # Example
//!
//! ```
//! use dsp_verify::{check, ModelConfig};
//!
//! let report = check(&ModelConfig::new(2));
//! assert!(report.violation.is_none());
//! assert!(report.states_explored > 100);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod checker;
mod model;

pub use checker::{check, CheckReport, Violation};
pub use model::{Bug, ModelConfig, ModelState, NodeState, ProtocolEvent};
