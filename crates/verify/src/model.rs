//! The abstract protocol model: states, events, and the transition
//! relation.
//!
//! Abstractions relative to the full simulator (standard for protocol
//! model checking):
//!
//! * one block (coherence is per-block, so one suffices);
//! * the home directory is a separate agent, always reached by every
//!   request (it is the ordering point);
//! * the totally ordered interconnect is a FIFO channel of requests;
//! * data/ack responses are unordered in-flight messages;
//! * each node has at most one outstanding request.
//!
//! Nondeterminism: which node issues next, the destination set it
//! predicts (any subset of the other nodes), and the interleaving of
//! channel processing vs. response delivery.

use serde::{Deserialize, Serialize};

/// Maximum nodes the packed state representation supports.
pub const MAX_NODES: usize = 4;

/// Per-node cache state for the single modeled block, including the
/// transient waiting states.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeState {
    /// No copy.
    Invalid,
    /// Read-only copy.
    Shared,
    /// Dirty copy, other sharers may exist.
    Owned,
    /// Sole dirty copy.
    Modified,
    /// Waiting for a Shared grant.
    WaitShared,
    /// Waiting for an Exclusive grant.
    WaitExclusive,
}

impl NodeState {
    /// Whether this node currently holds any copy.
    pub fn holds_copy(self) -> bool {
        matches!(
            self,
            NodeState::Shared | NodeState::Owned | NodeState::Modified
        )
    }

    /// Whether this node is the protocol owner.
    pub fn is_owner(self) -> bool {
        matches!(self, NodeState::Owned | NodeState::Modified)
    }

    /// Whether this node has a request outstanding.
    pub fn is_waiting(self) -> bool {
        matches!(self, NodeState::WaitShared | NodeState::WaitExclusive)
    }
}

/// A coherence request in the ordered channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Request {
    /// Issuing node.
    pub from: u8,
    /// Exclusive (write) or shared (read).
    pub exclusive: bool,
    /// Destination set over *nodes* (bit i = node i); the directory is
    /// always implicitly included.
    pub dests: u8,
    /// Attempt number: 0 = initial, 1 = first reissue, 2 = broadcast.
    pub attempt: u8,
}

/// What an in-flight grant will confer when it arrives. Requests
/// ordered *after* the grant's own request but *before* its delivery
/// can logically demote or invalidate the not-yet-received copy (the
/// receiver still gets its use-once data, so its own access completes —
/// standard ordered-protocol semantics).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GrantOutcome {
    /// Delivers the full requested permission.
    Full,
    /// A later GETS demoted the granted Modified copy to Owned.
    Downgraded,
    /// A later GETX invalidated the copy; delivery leaves Invalid.
    Invalidated,
}

/// An in-flight grant (data or upgrade ack) to a requester.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Grant {
    /// Destination node.
    pub to: u8,
    /// Whether it grants write permission.
    pub exclusive: bool,
    /// Permission actually conferred at delivery (see [`GrantOutcome`]).
    pub outcome: GrantOutcome,
}

/// One global protocol state.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModelState {
    /// Per-node cache state.
    pub nodes: Vec<NodeState>,
    /// Directory: owning node (bit-packed; `None` = memory owns).
    pub dir_owner: Option<u8>,
    /// Directory: sharer bitmask.
    pub dir_sharers: u8,
    /// The totally ordered request channel (front is next to order).
    pub channel: Vec<Request>,
    /// Unordered in-flight grants.
    pub grants: Vec<Grant>,
}

impl ModelState {
    /// The initial state: everything invalid, memory owns.
    pub fn initial(nodes: usize) -> Self {
        ModelState {
            nodes: vec![NodeState::Invalid; nodes],
            dir_owner: None,
            dir_sharers: 0,
            channel: Vec::new(),
            grants: Vec::new(),
        }
    }
}

/// A transition label, used in counterexample traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolEvent {
    /// `node` issued a request with the given predicted destinations.
    Issue {
        /// Issuing node.
        node: u8,
        /// Exclusive?
        exclusive: bool,
        /// Predicted destination mask.
        dests: u8,
    },
    /// The ordering point processed the channel head (sufficient).
    OrderSufficient,
    /// The ordering point processed the channel head (insufficient,
    /// reissued).
    OrderReissue,
    /// A grant was delivered to its requester.
    Deliver {
        /// Receiving node.
        node: u8,
    },
}

/// Deliberate protocol bugs, injected to validate the checker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bug {
    /// On a sufficient exclusive request, skip invalidating the sharers.
    SkipInvalidation,
    /// Accept insufficient destination sets as if they were sufficient.
    AcceptInsufficient,
    /// Forget to update the directory's owner on exclusive requests.
    StaleDirectoryOwner,
}

/// Model-checking configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelConfig {
    /// Number of caching nodes (2..=MAX_NODES).
    pub nodes: usize,
    /// Injected bug, if any.
    pub bug: Option<Bug>,
}

impl ModelConfig {
    /// A correct model of `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= nodes <= MAX_NODES`.
    pub fn new(nodes: usize) -> Self {
        assert!(
            (2..=MAX_NODES).contains(&nodes),
            "model supports 2..={MAX_NODES} nodes, got {nodes}"
        );
        ModelConfig { nodes, bug: None }
    }

    /// The same model with `bug` injected.
    #[must_use]
    pub fn with_bug(mut self, bug: Bug) -> Self {
        self.bug = Some(bug);
        self
    }
}

/// Enumerates every successor of `state` under the transition relation.
pub fn successors(config: &ModelConfig, state: &ModelState) -> Vec<(ProtocolEvent, ModelState)> {
    let mut next = Vec::new();
    issue_transitions(config, state, &mut next);
    order_transition(config, state, &mut next);
    deliver_transitions(state, &mut next);
    next
}

/// Rule 1: a node with no outstanding request may issue a GETS (unless
/// it already has read permission) or a GETX (unless it is already
/// Modified), with *any* predicted destination set.
fn issue_transitions(
    config: &ModelConfig,
    state: &ModelState,
    out: &mut Vec<(ProtocolEvent, ModelState)>,
) {
    let n = config.nodes;
    for node in 0..n {
        let ns = state.nodes[node];
        if ns.is_waiting() {
            continue;
        }
        let mut kinds = Vec::new();
        if !ns.holds_copy() {
            kinds.push(false); // GETS from Invalid
        }
        if ns != NodeState::Modified {
            kinds.push(true); // GETX (miss or upgrade)
        }
        for exclusive in kinds {
            // Every subset of the other nodes is a possible prediction.
            let others: Vec<u8> = (0..n as u8).filter(|i| *i as usize != node).collect();
            for subset in 0..(1u8 << others.len()) {
                let mut dests = 1u8 << node; // requester sees its own request
                for (bit, other) in others.iter().enumerate() {
                    if subset & (1 << bit) != 0 {
                        dests |= 1 << other;
                    }
                }
                let mut s = state.clone();
                s.nodes[node] = if exclusive {
                    NodeState::WaitExclusive
                } else {
                    NodeState::WaitShared
                };
                s.channel.push(Request {
                    from: node as u8,
                    exclusive,
                    dests,
                    attempt: 0,
                });
                out.push((
                    ProtocolEvent::Issue {
                        node: node as u8,
                        exclusive,
                        dests,
                    },
                    s,
                ));
            }
        }
    }
}

/// Rule 2: the ordering point processes the channel head atomically.
fn order_transition(
    config: &ModelConfig,
    state: &ModelState,
    out: &mut Vec<(ProtocolEvent, ModelState)>,
) {
    let Some(req) = state.channel.first().copied() else {
        return;
    };
    let mut s = state.clone();
    s.channel.remove(0);
    // Sufficiency: the owner (if a cache) and, for writes, all sharers
    // must be in the destination set. The requester and directory are
    // always included.
    let owner_covered = match s.dir_owner {
        None => true,
        Some(o) => req.dests & (1 << o) != 0 || o == req.from,
    };
    let sharers_needed = if req.exclusive {
        s.dir_sharers & !(1 << req.from)
    } else {
        0
    };
    let sharers_covered = sharers_needed & !req.dests == 0;
    let mut sufficient = owner_covered && sharers_covered;
    if config.bug == Some(Bug::AcceptInsufficient) {
        sufficient = true;
    }
    if sufficient {
        apply_sufficient(config, &mut s, req);
        out.push((ProtocolEvent::OrderSufficient, s));
    } else {
        // Reissue with the corrected destination set reflecting the
        // *current* owner and sharers; re-enqueued at the tail, so other
        // requests may be ordered first (the window of vulnerability).
        // The third attempt broadcasts.
        let corrected = if req.attempt + 1 >= 2 {
            (1u8 << config.nodes) - 1
        } else {
            let mut d = 1u8 << req.from;
            if let Some(o) = s.dir_owner {
                d |= 1 << o;
            }
            if req.exclusive {
                d |= s.dir_sharers;
            }
            d
        };
        s.channel.push(Request {
            from: req.from,
            exclusive: req.exclusive,
            dests: corrected,
            attempt: req.attempt + 1,
        });
        out.push((ProtocolEvent::OrderReissue, s));
    }
}

/// Applies a sufficient request's transition to directory and peers and
/// puts the grant in flight. Copies held by other nodes — including
/// copies still *in flight* to them — are demoted/invalidated as the
/// total order dictates.
fn apply_sufficient(config: &ModelConfig, s: &mut ModelState, req: Request) {
    let from = req.from as usize;
    // Only nodes inside the destination set observe the request; a
    // holder outside it would keep a stale copy (which is exactly why
    // sufficiency matters — and why the AcceptInsufficient bug is
    // catastrophic).
    let observes = |i: usize| req.dests & (1 << i) != 0;
    if req.exclusive {
        if config.bug != Some(Bug::SkipInvalidation) {
            // Invalidate every other observed copy...
            for (i, ns) in s.nodes.iter_mut().enumerate() {
                if i != from && observes(i) && ns.holds_copy() {
                    *ns = NodeState::Invalid;
                }
            }
            // ...and every other observed copy still in flight: those
            // receivers get use-once data, their accesses complete, but
            // the copy is dead on arrival in the total order.
            for g in &mut s.grants {
                if g.to as usize != from && observes(g.to as usize) {
                    g.outcome = GrantOutcome::Invalidated;
                }
            }
        }
        if config.bug != Some(Bug::StaleDirectoryOwner) {
            s.dir_owner = Some(req.from);
        }
        s.dir_sharers = 0;
        s.grants.push(Grant {
            to: req.from,
            exclusive: true,
            outcome: GrantOutcome::Full,
        });
    } else {
        // The owner (cache or memory) supplies data and is demoted to
        // Owned if it was Modified; the requester becomes a sharer.
        if let Some(o) = s.dir_owner {
            if o != req.from && observes(o as usize) {
                if s.nodes[o as usize] == NodeState::Modified {
                    s.nodes[o as usize] = NodeState::Owned;
                }
                // An in-flight Modified grant to the owner is demoted:
                // the owner will supply data after its own (earlier-
                // ordered) write completes.
                for g in &mut s.grants {
                    if g.to == o && g.exclusive && g.outcome == GrantOutcome::Full {
                        g.outcome = GrantOutcome::Downgraded;
                    }
                }
            }
            if o == req.from {
                // Re-request by the recorded owner: its copy must have
                // been dropped; memory owns again.
                s.dir_owner = None;
            }
        }
        s.dir_sharers |= 1 << req.from;
        s.grants.push(Grant {
            to: req.from,
            exclusive: false,
            outcome: GrantOutcome::Full,
        });
    }
}

/// Rule 3: any in-flight grant may be delivered, conferring whatever
/// permission the total order has left it.
fn deliver_transitions(state: &ModelState, out: &mut Vec<(ProtocolEvent, ModelState)>) {
    for (i, grant) in state.grants.iter().enumerate() {
        let mut s = state.clone();
        s.grants.remove(i);
        let node = grant.to as usize;
        s.nodes[node] = match (grant.exclusive, grant.outcome) {
            (_, GrantOutcome::Invalidated) => NodeState::Invalid,
            (true, GrantOutcome::Downgraded) => NodeState::Owned,
            (true, _) => NodeState::Modified,
            (false, _) => NodeState::Shared,
        };
        out.push((ProtocolEvent::Deliver { node: grant.to }, s));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_is_all_invalid() {
        let s = ModelState::initial(3);
        assert_eq!(s.nodes.len(), 3);
        assert!(s.nodes.iter().all(|n| *n == NodeState::Invalid));
        assert_eq!(s.dir_owner, None);
    }

    #[test]
    fn initial_state_has_issue_successors_only_processing_later() {
        let config = ModelConfig::new(2);
        let s = ModelState::initial(2);
        let succ = successors(&config, &s);
        // 2 nodes x 2 kinds x 2 subsets of the single other node.
        assert_eq!(succ.len(), 8);
        assert!(succ
            .iter()
            .all(|(e, _)| matches!(e, ProtocolEvent::Issue { .. })));
    }

    #[test]
    fn sufficient_exclusive_invalidates_everyone() {
        let config = ModelConfig::new(3);
        let mut s = ModelState::initial(3);
        s.nodes[1] = NodeState::Shared;
        s.nodes[2] = NodeState::Owned;
        s.dir_owner = Some(2);
        s.dir_sharers = 0b010;
        s.nodes[0] = NodeState::WaitExclusive;
        s.channel.push(Request {
            from: 0,
            exclusive: true,
            dests: 0b111,
            attempt: 0,
        });
        let succ = successors(&config, &s);
        let (event, next) = succ
            .iter()
            .find(|(e, _)| matches!(e, ProtocolEvent::OrderSufficient))
            .expect("broadcast is sufficient");
        assert_eq!(*event, ProtocolEvent::OrderSufficient);
        assert_eq!(next.nodes[1], NodeState::Invalid);
        assert_eq!(next.nodes[2], NodeState::Invalid);
        assert_eq!(next.dir_owner, Some(0));
        assert_eq!(
            next.grants,
            vec![Grant {
                to: 0,
                exclusive: true,
                outcome: GrantOutcome::Full
            }]
        );
    }

    #[test]
    fn insufficient_request_is_reissued_with_corrected_set() {
        let config = ModelConfig::new(3);
        let mut s = ModelState::initial(3);
        s.nodes[2] = NodeState::Modified;
        s.dir_owner = Some(2);
        s.nodes[0] = NodeState::WaitShared;
        // Prediction misses the owner.
        s.channel.push(Request {
            from: 0,
            exclusive: false,
            dests: 0b001,
            attempt: 0,
        });
        let succ = successors(&config, &s);
        let (_, next) = succ
            .iter()
            .find(|(e, _)| matches!(e, ProtocolEvent::OrderReissue))
            .expect("must reissue");
        let reissued = next.channel.last().expect("requeued");
        assert_eq!(reissued.attempt, 1);
        assert!(
            reissued.dests & 0b100 != 0,
            "corrected set includes the owner"
        );
    }

    #[test]
    fn second_reissue_broadcasts() {
        let config = ModelConfig::new(3);
        let mut s = ModelState::initial(3);
        s.nodes[2] = NodeState::Modified;
        s.dir_owner = Some(2);
        s.nodes[0] = NodeState::WaitShared;
        s.channel.push(Request {
            from: 0,
            exclusive: false,
            dests: 0b001,
            attempt: 1,
        });
        let succ = successors(&config, &s);
        let (_, next) = succ
            .iter()
            .find(|(e, _)| matches!(e, ProtocolEvent::OrderReissue))
            .expect("reissue");
        assert_eq!(
            next.channel.last().expect("requeued").dests,
            0b111,
            "broadcast fallback"
        );
    }

    #[test]
    fn delivery_grants_permission() {
        let config = ModelConfig::new(2);
        let mut s = ModelState::initial(2);
        s.nodes[1] = NodeState::WaitExclusive;
        s.grants.push(Grant {
            to: 1,
            exclusive: true,
            outcome: GrantOutcome::Full,
        });
        let succ = successors(&config, &s);
        let (_, next) = succ
            .iter()
            .find(|(e, _)| matches!(e, ProtocolEvent::Deliver { node: 1 }))
            .expect("deliverable");
        assert_eq!(next.nodes[1], NodeState::Modified);
        assert!(next.grants.is_empty());
    }

    #[test]
    #[should_panic(expected = "model supports")]
    fn config_rejects_too_many_nodes() {
        let _ = ModelConfig::new(MAX_NODES + 1);
    }
}
