//! Breadth-first reachability checking with counterexample traces.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::model::{successors, ModelConfig, ModelState, NodeState, ProtocolEvent};

/// An invariant violation found by the checker.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Violation {
    /// Human-readable description of the violated invariant.
    pub invariant: String,
    /// The offending state.
    pub state: ModelState,
    /// The event sequence from the initial state to the violation.
    pub trace: Vec<ProtocolEvent>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "invariant violated: {}", self.invariant)?;
        writeln!(f, "state: {:?}", self.state)?;
        writeln!(f, "trace ({} events):", self.trace.len())?;
        for (i, e) in self.trace.iter().enumerate() {
            writeln!(f, "  {i:>3}: {e:?}")?;
        }
        Ok(())
    }
}

/// The result of an exhaustive exploration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CheckReport {
    /// Reachable states visited.
    pub states_explored: usize,
    /// Transitions taken.
    pub transitions: usize,
    /// The first violation found, if any (`None` = all invariants hold
    /// on every reachable state).
    pub violation: Option<Violation>,
}

/// Checks all invariants on one state, returning the first failure.
fn check_invariants(config: &ModelConfig, s: &ModelState) -> Option<String> {
    let n = config.nodes;
    // (1) At most one owner.
    let owners: Vec<usize> = (0..n).filter(|i| s.nodes[*i].is_owner()).collect();
    if owners.len() > 1 {
        return Some(format!("two owners: nodes {owners:?}"));
    }
    // (2) Modified excludes every other copy.
    if let Some(m) = (0..n).find(|i| s.nodes[*i] == NodeState::Modified) {
        for i in 0..n {
            if i != m && s.nodes[i].holds_copy() {
                return Some(format!(
                    "node {m} is Modified but node {i} holds {:?}",
                    s.nodes[i]
                ));
            }
        }
    }
    // (3) Directory owner consistency: a cache the directory believes
    // owns the block must own it, or its grant must still be in flight,
    // or its (re)request must still be in the channel (a re-request by
    // the recorded owner implies its copy was dropped).
    if let Some(o) = s.dir_owner {
        let node_ok = s.nodes[o as usize].is_owner();
        let grant_inflight = s.grants.iter().any(|g| g.to == o && g.exclusive);
        let rerequest = s.channel.iter().any(|r| r.from == o);
        if !node_ok && !grant_inflight && !rerequest {
            return Some(format!(
                "directory says node {o} owns, but it holds {:?}",
                s.nodes[o as usize]
            ));
        }
    }
    // (4) Every actual owner is known to the directory.
    for i in owners {
        if s.dir_owner != Some(i as u8) {
            return Some(format!(
                "node {i} owns but directory says {:?}",
                s.dir_owner
            ));
        }
    }
    // (5) Every Shared copy is tracked as a sharer (or is the recorded
    // owner demoted concurrently — excluded by construction here).
    for i in 0..n {
        if s.nodes[i] == NodeState::Shared
            && s.dir_sharers & (1 << i) == 0
            && s.dir_owner != Some(i as u8)
        {
            return Some(format!("node {i} is Shared but untracked by the directory"));
        }
    }
    // (6) Bounded liveness: every waiting node has its request in the
    // channel or its grant in flight; attempts never exceed 2.
    for i in 0..n {
        if s.nodes[i].is_waiting() {
            let in_channel = s.channel.iter().any(|r| r.from == i as u8);
            let in_grants = s.grants.iter().any(|g| g.to == i as u8);
            if !in_channel && !in_grants {
                return Some(format!(
                    "node {i} waits forever (no request or grant in flight)"
                ));
            }
        }
    }
    if let Some(r) = s.channel.iter().find(|r| r.attempt > 2) {
        return Some(format!(
            "request from node {} retried more than twice",
            r.from
        ));
    }
    None
}

/// Exhaustively explores the model from the initial state and checks
/// every invariant on every reachable state.
///
/// The state space is finite (each node has at most one outstanding
/// request, so channel and grant populations are bounded), so the
/// search always terminates. On a violation, the report carries the
/// event trace from the initial state — a counterexample.
///
/// # Example
///
/// ```
/// use dsp_verify::{check, Bug, ModelConfig};
///
/// // The protocol is correct for any destination-set prediction...
/// assert!(check(&ModelConfig::new(2)).violation.is_none());
/// // ...and the checker proves it can find real bugs.
/// let buggy = ModelConfig::new(2).with_bug(Bug::SkipInvalidation);
/// assert!(check(&buggy).violation.is_some());
/// ```
pub fn check(config: &ModelConfig) -> CheckReport {
    let initial = ModelState::initial(config.nodes);
    let mut seen: HashSet<ModelState> = HashSet::new();
    let mut parent: HashMap<ModelState, (ModelState, ProtocolEvent)> = HashMap::new();
    let mut queue: VecDeque<ModelState> = VecDeque::new();
    seen.insert(initial.clone());
    queue.push_back(initial.clone());
    let mut transitions = 0usize;

    let trace_to = |state: &ModelState,
                    parent: &HashMap<ModelState, (ModelState, ProtocolEvent)>|
     -> Vec<ProtocolEvent> {
        let mut trace = Vec::new();
        let mut cur = state.clone();
        while let Some((prev, event)) = parent.get(&cur) {
            trace.push(*event);
            cur = prev.clone();
        }
        trace.reverse();
        trace
    };

    while let Some(state) = queue.pop_front() {
        if let Some(invariant) = check_invariants(config, &state) {
            return CheckReport {
                states_explored: seen.len(),
                transitions,
                violation: Some(Violation {
                    invariant,
                    trace: trace_to(&state, &parent),
                    state,
                }),
            };
        }
        for (event, next) in successors(config, &state) {
            transitions += 1;
            if seen.insert(next.clone()) {
                parent.insert(next.clone(), (state.clone(), event));
                queue.push_back(next);
            }
        }
    }
    CheckReport {
        states_explored: seen.len(),
        transitions,
        violation: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Bug;

    #[test]
    fn two_node_protocol_is_correct() {
        let report = check(&ModelConfig::new(2));
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.states_explored > 100);
        assert!(report.transitions > report.states_explored);
    }

    #[test]
    fn three_node_protocol_is_correct() {
        let report = check(&ModelConfig::new(3));
        assert!(
            report.violation.is_none(),
            "violation in 3-node model: {}",
            report
                .violation
                .as_ref()
                .map(|v| v.to_string())
                .unwrap_or_default()
        );
        assert!(report.states_explored > 10_000);
    }

    #[test]
    fn skip_invalidation_bug_is_caught() {
        let report = check(&ModelConfig::new(2).with_bug(Bug::SkipInvalidation));
        let v = report
            .violation
            .expect("checker must catch missing invalidations");
        assert!(!v.invariant.is_empty());
        assert!(
            !v.trace.is_empty(),
            "counterexample trace must be non-empty"
        );
    }

    #[test]
    fn accept_insufficient_bug_is_caught() {
        let report = check(&ModelConfig::new(2).with_bug(Bug::AcceptInsufficient));
        assert!(
            report.violation.is_some(),
            "unchecked sufficiency must break coherence"
        );
    }

    #[test]
    fn stale_directory_owner_bug_is_caught() {
        let report = check(&ModelConfig::new(2).with_bug(Bug::StaleDirectoryOwner));
        let v = report.violation.expect("stale directory must be caught");
        assert!(v.invariant.contains("directory"), "{}", v.invariant);
    }

    #[test]
    fn counterexample_traces_replay_to_the_violation() {
        let config = ModelConfig::new(2).with_bug(Bug::SkipInvalidation);
        let report = check(&config);
        let v = report.violation.expect("violation");
        // Replay the trace from the initial state.
        let mut state = ModelState::initial(2);
        for event in &v.trace {
            let succ = successors(&config, &state);
            let (_, next) = succ
                .into_iter()
                .find(|(e, _)| e == event)
                .expect("trace event must be a valid transition");
            state = next;
        }
        assert_eq!(state, v.state, "trace must reproduce the violating state");
        assert!(check_invariants(&config, &state).is_some());
    }

    #[test]
    fn violation_display_is_informative() {
        let report = check(&ModelConfig::new(2).with_bug(Bug::SkipInvalidation));
        let text = report.violation.expect("violation").to_string();
        assert!(text.contains("invariant violated"));
        assert!(text.contains("trace"));
    }
}
