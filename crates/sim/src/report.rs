//! Simulation results.

use serde::{Deserialize, Serialize};

use dsp_coherence::LatencyClass;
use dsp_interconnect::TrafficStats;

/// A log₂-bucketed histogram of miss latencies in nanoseconds.
///
/// Bucket `i` counts latencies in `[2^i, 2^(i+1))` ns; bucket 0 absorbs
/// sub-nanosecond values and the last bucket absorbs everything ≥ 2^15
/// ns. Uncontended misses land in buckets 6–7 (64–255 ns, covering the
/// 112/180/242 ns protocol paths); higher buckets indicate queuing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: [u64; 16],
}

impl LatencyHistogram {
    /// Records one latency sample.
    pub fn record(&mut self, ns: u64) {
        let bucket = (63 - ns.max(1).leading_zeros() as usize).min(15);
        self.buckets[bucket] += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Samples in bucket `i` (latencies in `[2^i, 2^(i+1))` ns).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Upper-bound estimate of the p-th percentile latency (the upper
    /// edge of the bucket containing it), `p` in 0..=100.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (total as f64 * (p / 100.0)).ceil() as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        1 << 16
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// Per-latency-class miss counts (memory / direct / indirect paths).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounts {
    counts: [u64; 4],
}

impl ClassCounts {
    fn index(class: LatencyClass) -> usize {
        match class {
            LatencyClass::Memory => 0,
            LatencyClass::CacheDirect => 1,
            LatencyClass::CacheIndirect => 2,
            LatencyClass::MemoryIndirect => 3,
        }
    }

    /// Increments the count of `class`.
    pub fn record(&mut self, class: LatencyClass) {
        self.counts[Self::index(class)] += 1;
    }

    /// Count of misses serviced in `class`.
    pub fn get(&self, class: LatencyClass) -> u64 {
        self.counts[Self::index(class)]
    }

    /// Total misses recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merges another counter block into this one.
    pub fn merge(&mut self, other: &ClassCounts) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

/// The measured outcome of one timing-simulation run.
///
/// All counters cover only the *measurement window* (after per-node
/// warmup); the runtime is the wall-clock span of that window in
/// simulated nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Simulated nanoseconds from the end of warmup to completion.
    pub runtime_ns: u64,
    /// Misses completed in the measurement window.
    pub measured_misses: u64,
    /// Instructions executed in the measurement window (computation
    /// gaps between misses).
    pub instructions: u64,
    /// Endpoint traffic attributed to measured misses.
    pub traffic: TrafficStats,
    /// Misses that suffered an indirection (3-hop directory transfer or
    /// multicast reissue).
    pub indirections: u64,
    /// Multicast reissues (attempts beyond the first); 0 for the base
    /// protocols.
    pub retries: u64,
    /// Misses that fell back to the guaranteed broadcast (3rd attempt).
    pub broadcast_fallbacks: u64,
    /// Misses serviced by another cache (data supplied cache-to-cache).
    pub cache_to_cache: u64,
    /// Sum of individual miss latencies (ns) for averaging.
    pub total_miss_latency_ns: u64,
    /// Distribution of measured miss latencies.
    pub latency_histogram: LatencyHistogram,
    /// Measured misses by service path (memory / direct / indirect).
    pub class_counts: ClassCounts,
}

impl SimReport {
    /// Mean latency of measured misses in ns.
    pub fn avg_miss_latency_ns(&self) -> f64 {
        if self.measured_misses == 0 {
            0.0
        } else {
            self.total_miss_latency_ns as f64 / self.measured_misses as f64
        }
    }

    /// Endpoint traffic bytes per measured miss (the x-axis of the
    /// paper's Figures 7 and 8 before normalization).
    pub fn bytes_per_miss(&self) -> f64 {
        if self.measured_misses == 0 {
            0.0
        } else {
            self.traffic.total_bytes() as f64 / self.measured_misses as f64
        }
    }

    /// Request-class message deliveries per measured miss (the x-axis of
    /// Figures 5 and 6).
    pub fn request_messages_per_miss(&self) -> f64 {
        if self.measured_misses == 0 {
            0.0
        } else {
            self.traffic.request_deliveries() as f64 / self.measured_misses as f64
        }
    }

    /// Fraction of measured misses that indirected, as a percentage.
    pub fn indirection_pct(&self) -> f64 {
        if self.measured_misses == 0 {
            0.0
        } else {
            100.0 * self.indirections as f64 / self.measured_misses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_types::MessageClass;

    #[test]
    fn ratios_guard_against_zero_misses() {
        let r = SimReport::default();
        assert_eq!(r.avg_miss_latency_ns(), 0.0);
        assert_eq!(r.bytes_per_miss(), 0.0);
        assert_eq!(r.request_messages_per_miss(), 0.0);
        assert_eq!(r.indirection_pct(), 0.0);
    }

    #[test]
    fn derived_ratios() {
        let mut traffic = TrafficStats::default();
        traffic.record(MessageClass::Request, 15);
        traffic.record(MessageClass::DataResponse, 1);
        let r = SimReport {
            runtime_ns: 1000,
            measured_misses: 2,
            instructions: 500,
            traffic,
            indirections: 1,
            retries: 1,
            broadcast_fallbacks: 0,
            cache_to_cache: 1,
            total_miss_latency_ns: 300,
            latency_histogram: LatencyHistogram::default(),
            class_counts: ClassCounts::default(),
        };
        assert_eq!(r.avg_miss_latency_ns(), 150.0);
        assert_eq!(r.bytes_per_miss(), (15.0 * 8.0 + 72.0) / 2.0);
        assert_eq!(r.request_messages_per_miss(), 7.5);
        assert_eq!(r.indirection_pct(), 50.0);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = LatencyHistogram::default();
        h.record(100); // bucket 6 (64..128)
        h.record(180); // bucket 7 (128..256)
        h.record(242); // bucket 7
        h.record(1); // bucket 0
        assert_eq!(h.count(), 4);
        assert_eq!(h.bucket(6), 1);
        assert_eq!(h.bucket(7), 2);
        assert_eq!(h.bucket(0), 1);
    }

    #[test]
    fn histogram_percentiles_monotone() {
        let mut h = LatencyHistogram::default();
        for ns in [100u64, 120, 150, 200, 300, 500, 3000] {
            h.record(ns);
        }
        let p50 = h.percentile_ns(50.0);
        let p99 = h.percentile_ns(99.0);
        assert!(p50 <= p99);
        assert!((128..=512).contains(&p50), "{p50}");
        assert!(p99 >= 2048, "{p99}");
        assert_eq!(LatencyHistogram::default().percentile_ns(50.0), 0);
    }

    #[test]
    fn histogram_saturates_extremes() {
        let mut h = LatencyHistogram::default();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(15), 1);
    }

    #[test]
    fn class_counts_roundtrip() {
        let mut c = ClassCounts::default();
        c.record(LatencyClass::Memory);
        c.record(LatencyClass::CacheDirect);
        c.record(LatencyClass::CacheDirect);
        assert_eq!(c.get(LatencyClass::CacheDirect), 2);
        assert_eq!(c.get(LatencyClass::Memory), 1);
        assert_eq!(c.get(LatencyClass::MemoryIndirect), 0);
        assert_eq!(c.total(), 3);
        let mut d = ClassCounts::default();
        d.record(LatencyClass::CacheIndirect);
        c.merge(&d);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = LatencyHistogram::default();
        a.record(100);
        let mut b = LatencyHistogram::default();
        b.record(100);
        b.record(5000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket(6), 2);
    }
}
