//! Lazy per-node predictor-training inboxes.
//!
//! The paper's multicast protocols train every destination's predictor
//! on each request arrival, and the eager simulation path models that
//! literally: one queued [`crate::Event::RequestArrive`] per
//! destination per miss, existing *only* to call `train`. At 256 nodes
//! a broadcast-class miss costs up to 255 timing-wheel pushes and pops
//! whose sole observable effect is predictor state.
//!
//! Training, however, is only *observable* at a predictor's next call:
//! its own prediction, its `DataResponse`/`Reissue` training, or
//! end-of-run state. So arrivals can be buffered — `(arrival time,
//! virtual sequence, payload)` records in a per-node
//! [`InlineRing`] — and drained immediately before the node's next
//! observation, in exactly the (time, seq) order the eager event loop
//! would have applied. The virtual sequence is drawn from the same
//! counter the simulator uses for real queue pushes
//! ([`crate::WheelQueue::push_at`]), so ties between a buffered record
//! and a queued event resolve identically in both modes; property tests
//! in `tests/train_equivalence.rs` pin the equivalence.
//!
//! Request-class arrival times at one node are non-decreasing in send
//! order (the crossbar's ordering point is monotone and each
//! destination link only fills forward), so each inbox is naturally
//! sorted and drains from the front; a debug assertion guards the
//! invariant.

use dsp_core::{DestSetPredictor, TrainEvent};
use dsp_types::{BlockAddr, InlineRing, NodeId, ReqType};

/// Inline inbox slots per node. Bursts beyond this (broadcast storms on
/// large machines) spill to a capacity-retaining `Vec`, so the steady
/// state stays allocation-free either way.
const INBOX_INLINE: usize = 16;

/// One deferred `OtherRequest` training record. Only initial
/// request-class arrivals are buffered — retries keep their eager
/// events (they are rare, and the requester's `Reissue` training reads
/// request state at arrival time) — so the payload is the fixed-at-send
/// `(block, requester, req)` triple.
#[derive(Clone, Copy, Debug)]
struct BufferedTrain {
    time: u64,
    vseq: u64,
    block: BlockAddr,
    requester: NodeId,
    req: ReqType,
}

impl Default for BufferedTrain {
    fn default() -> Self {
        BufferedTrain {
            time: 0,
            vseq: 0,
            block: BlockAddr::new(0),
            requester: NodeId::new(0),
            req: ReqType::GetShared,
        }
    }
}

/// The per-node training inboxes plus the reusable drain scratch.
#[derive(Debug)]
pub(crate) struct TrainBuffers<const W: usize = 4> {
    inboxes: Vec<InlineRing<BufferedTrain, INBOX_INLINE>>,
    /// Reused batch buffer handed to `train_batch`.
    scratch: Vec<TrainEvent<W>>,
}

impl<const W: usize> Default for TrainBuffers<W> {
    fn default() -> Self {
        TrainBuffers {
            inboxes: Vec::new(),
            scratch: Vec::new(),
        }
    }
}

impl<const W: usize> TrainBuffers<W> {
    /// Inboxes for `n` nodes.
    pub(crate) fn new(n: usize) -> Self {
        TrainBuffers {
            inboxes: (0..n).map(|_| InlineRing::new()).collect(),
            scratch: Vec::new(),
        }
    }

    /// Records an `OtherRequest` training that the eager path would
    /// have applied at `(time, vseq)`.
    #[inline]
    pub(crate) fn buffer(
        &mut self,
        node: usize,
        time: u64,
        vseq: u64,
        block: BlockAddr,
        requester: NodeId,
        req: ReqType,
    ) {
        let inbox = &mut self.inboxes[node];
        debug_assert!(
            inbox
                .front()
                .is_none_or(|f| (f.time, f.vseq) <= (time, vseq)),
            "inbox records must arrive in (time, seq) order"
        );
        inbox.push_back(BufferedTrain {
            time,
            vseq,
            block,
            requester,
            req,
        });
    }

    /// Whether `node` has no pending records (the drain fast path).
    #[inline]
    pub(crate) fn is_empty(&self, node: usize) -> bool {
        self.inboxes[node].is_empty()
    }

    /// Number of records pending for `node`.
    #[inline]
    pub(crate) fn len(&self, node: usize) -> usize {
        self.inboxes[node].len()
    }

    /// Applies every record of `node` that the eager path would have
    /// dispatched strictly before the event at `(limit_time,
    /// limit_seq)`, in that order, via the predictor's batch entry
    /// point.
    pub(crate) fn drain(
        &mut self,
        node: usize,
        limit_time: u64,
        limit_seq: u64,
        predictor: &mut dyn DestSetPredictor<W>,
    ) {
        let inbox = &mut self.inboxes[node];
        while let Some(front) = inbox.front() {
            if (front.time, front.vseq) >= (limit_time, limit_seq) {
                break;
            }
            let rec = inbox.pop_front().expect("front exists");
            self.scratch.push(TrainEvent::OtherRequest {
                block: rec.block,
                requester: rec.requester,
                req: rec.req,
            });
        }
        if !self.scratch.is_empty() {
            predictor.train_batch(&self.scratch);
            self.scratch.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_core::{PredictQuery, TrainEvent};
    use dsp_types::DestSet;

    /// Minimal predictor that logs training order.
    #[derive(Debug, Default)]
    struct Log {
        seen: Vec<TrainEvent>,
        batches: usize,
    }

    impl DestSetPredictor for Log {
        fn predict(&mut self, query: &PredictQuery) -> DestSet {
            query.minimal
        }
        fn train(&mut self, event: &TrainEvent) {
            self.seen.push(*event);
        }
        fn train_batch(&mut self, events: &[TrainEvent]) {
            self.batches += 1;
            for e in events {
                self.train(e);
            }
        }
        fn name(&self) -> String {
            "Log".to_string()
        }
        fn entry_payload_bits(&self) -> u64 {
            0
        }
        fn storage_bits(&self) -> u64 {
            0
        }
    }

    fn rec(i: u64) -> (BlockAddr, NodeId, ReqType) {
        (BlockAddr::new(i), NodeId::new((i % 4) as usize), {
            if i.is_multiple_of(2) {
                ReqType::GetShared
            } else {
                ReqType::GetExclusive
            }
        })
    }

    #[test]
    fn drains_strictly_below_the_limit_in_order() {
        let mut buf = TrainBuffers::new(2);
        for (t, v) in [(10u64, 1u64), (10, 3), (20, 5)] {
            let (b, r, q) = rec(v);
            buf.buffer(0, t, v, b, r, q);
        }
        let mut p = Log::default();
        // Limit (10, 3): only the (10, 1) record is strictly earlier.
        buf.drain(0, 10, 3, &mut p);
        assert_eq!(p.seen.len(), 1);
        assert_eq!(p.seen[0].block(), BlockAddr::new(1));
        // Limit (20, 99): the rest follows, in order, as one batch.
        buf.drain(0, 20, 99, &mut p);
        assert_eq!(p.seen.len(), 3);
        assert_eq!(p.seen[1].block(), BlockAddr::new(3));
        assert_eq!(p.seen[2].block(), BlockAddr::new(5));
        assert_eq!(p.batches, 2, "each drain applies one batch");
        assert!(buf.is_empty(0));
    }

    #[test]
    fn nodes_are_independent_and_bursts_spill() {
        let mut buf = TrainBuffers::new(2);
        for v in 0..(INBOX_INLINE as u64 * 3) {
            let (b, r, q) = rec(v);
            buf.buffer(1, 100, v + 1, b, r, q);
        }
        assert!(buf.is_empty(0));
        assert!(!buf.is_empty(1));
        let mut p = Log::default();
        buf.drain(1, u64::MAX, u64::MAX, &mut p);
        assert_eq!(p.seen.len(), INBOX_INLINE * 3);
        // FIFO across the inline/spill boundary.
        for (i, e) in p.seen.iter().enumerate() {
            assert_eq!(e.block(), BlockAddr::new(i as u64));
        }
    }

    #[test]
    fn empty_drain_is_a_no_op() {
        let mut buf = TrainBuffers::new(1);
        let mut p = Log::default();
        buf.drain(0, u64::MAX, u64::MAX, &mut p);
        assert_eq!(p.batches, 0, "no batch call without records");
    }
}
