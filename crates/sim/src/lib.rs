//! Discrete-event timing simulation of the three coherence protocols.
//!
//! This crate assembles the full target system of the paper's §5:
//! trace-driven processor models (a simple blocking core and a
//! simplified out-of-order core with multiple outstanding misses),
//! per-node L2 caches and destination-set predictors, the global MOSI
//! coherence substrate, and the totally ordered crossbar — then runs
//! broadcast snooping, a GS320-style directory protocol, or multicast
//! snooping over them and reports runtime, traffic, latency, and
//! indirection statistics.
//!
//! Timing follows paper Table 4 ([`TargetSystem::isca03_default`]):
//! uncontended latencies come out at 180 ns for memory fetches, 112 ns
//! for direct cache-to-cache transfers, and 242 ns for indirected ones,
//! with link serialization and queuing added by the crossbar model.
//!
//! Multicast snooping's races are modeled faithfully: an insufficient
//! destination set is detected by the home directory, which reissues
//! with a corrected set; a racing request ordered inside the *window of
//! vulnerability* can invalidate the correction, and the third attempt
//! falls back to broadcast, which always succeeds.
//!
//! # Example
//!
//! ```
//! use dsp_core::PredictorConfig;
//! use dsp_sim::{ProtocolKind, SimConfig, TargetSystem};
//! use dsp_trace::{Workload, WorkloadSpec};
//! use dsp_types::SystemConfig;
//!
//! let sys = SystemConfig::isca03();
//! let spec = WorkloadSpec::preset(Workload::Apache, &sys).scaled(1.0 / 256.0);
//! let sim = SimConfig::new(ProtocolKind::Multicast(PredictorConfig::owner_group()))
//!     .misses(50, 200);
//! let report = dsp_sim::simulate(&sys, TargetSystem::isca03_default(), &spec, sim);
//! println!("runtime: {} ns, {:.1} B/miss", report.runtime_ns, report.bytes_per_miss());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
pub mod queue;
mod report;
mod system;
mod train;

pub use config::{
    CpuModel, DispatchMode, ProtocolKind, SetWidth, SimConfig, TargetSystem, TrainingMode,
};
pub use dsp_interconnect::{Topology, TopologySpec, Toxic, ToxicSpec};
pub use queue::{
    Event, EventBatch, EventKind, EventQueue, QueueCounters, ReferenceQueue, SlotDrain, WheelQueue,
};
pub use report::{ClassCounts, LatencyHistogram, SimReport};
pub use system::{
    simulate, simulate_with_partition, simulate_with_queue_stats, System, TracePartition,
};
