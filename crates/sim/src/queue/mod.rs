//! The scheduling core: simulation events and the queues that order
//! them.
//!
//! Every simulated miss flows through half a dozen queued events, so
//! the event queue is — after the coherence tracker and the crossbar —
//! the last per-miss hot path. The production queue is
//! [`WheelQueue`], a hierarchical timing wheel: a near-horizon array of
//! per-nanosecond slot buckets (FIFO within a slot, found by a bitmap
//! scan instead of heap sifting) backed by an overflow binary heap for
//! far-future events, which are promoted into the wheel as the cursor
//! approaches them. The seed `BinaryHeap` implementation survives as
//! [`ReferenceQueue`] — the oracle for the pop-order equivalence
//! property tests and the baseline the `queue` hot-path benchmark
//! measures against.
//!
//! Both queues pop in identical order: time, then push sequence (FIFO
//! among equal times).

mod reference;
mod wheel;

pub use reference::ReferenceQueue;
pub use wheel::WheelQueue;

/// The queue driving [`crate::System`]'s event loop.
pub type EventQueue = WheelQueue;

/// Cheap occupancy counters a [`WheelQueue`] maintains over its
/// lifetime, surfaced by the `hotpath-bench` `sim` row so queue-pressure
/// changes (like the lazy-training fan-out removal) are visible without
/// re-profiling.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueCounters {
    /// Events pushed (wheel buckets and overflow heap combined).
    pub pushed: u64,
    /// Events popped.
    pub popped: u64,
    /// Events still pending when the counters were read — a finished
    /// run leaves the events scheduled after its last completion
    /// undrained, so `pushed == popped + remaining` is the
    /// reconciliation every consumer asserts.
    pub remaining: u64,
    /// Far-future events promoted from the overflow heap into the
    /// wheel as the cursor advanced.
    pub promoted: u64,
}

impl QueueCounters {
    /// Accumulates another queue's counters (for summing across runs).
    pub fn merge(&mut self, other: &QueueCounters) {
        self.pushed += other.pushed;
        self.popped += other.popped;
        self.remaining += other.remaining;
        self.promoted += other.promoted;
    }

    /// Asserts the push/pop/remaining books balance.
    ///
    /// # Panics
    ///
    /// Panics if `pushed != popped + remaining` — an event was lost or
    /// double-counted somewhere in the scheduling core.
    pub fn assert_reconciled(&self) {
        assert_eq!(
            self.pushed,
            self.popped + self.remaining,
            "queue counters must reconcile: {self:?}"
        );
    }
}

/// Events driving the simulation. `req` indexes the pending-request
/// table; `node` is a node index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A node is ready to issue its next miss (subject to its window).
    CpuIssue {
        /// Node index.
        node: usize,
    },
    /// The L2 detected the miss; the request enters the interconnect.
    Inject {
        /// Pending-request index.
        req: usize,
    },
    /// A request (attempt `attempt`) passed the ordering point.
    Ordered {
        /// Pending-request index.
        req: usize,
        /// 1 = initial multicast, 2 = first reissue, 3 = broadcast.
        attempt: u8,
    },
    /// A request-class message arrived at a node (predictor training).
    RequestArrive {
        /// Pending-request index.
        req: usize,
        /// Receiving node.
        node: usize,
        /// Whether this was a directory reissue.
        retry: bool,
    },
    /// The home directory is ready to forward / respond / reissue.
    HomeReady {
        /// Pending-request index.
        req: usize,
        /// Attempt being processed.
        attempt: u8,
    },
    /// The cache owner is ready to inject the data response.
    OwnerReady {
        /// Pending-request index.
        req: usize,
        /// The owner node injecting the response.
        owner: usize,
    },
    /// The data (or upgrade ack) arrived at the requester.
    Complete {
        /// Pending-request index.
        req: usize,
    },
}

impl Event {
    /// The event's kind tag (the lane it batches into).
    #[inline]
    pub fn kind(&self) -> EventKind {
        match self {
            Event::CpuIssue { .. } => EventKind::CpuIssue,
            Event::Inject { .. } => EventKind::Inject,
            Event::Ordered { .. } => EventKind::Ordered,
            Event::RequestArrive { .. } => EventKind::RequestArrive,
            Event::HomeReady { .. } => EventKind::HomeReady,
            Event::OwnerReady { .. } => EventKind::OwnerReady,
            Event::Complete { .. } => EventKind::Complete,
        }
    }
}

/// Payload-free tag identifying an [`Event`] variant: the lane key of
/// [`EventBatch`] and the kind column of the dispatch-order logs the
/// batched/per-event equivalence tests compare.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// [`Event::CpuIssue`].
    CpuIssue,
    /// [`Event::Inject`].
    Inject,
    /// [`Event::Ordered`].
    Ordered,
    /// [`Event::RequestArrive`].
    RequestArrive,
    /// [`Event::HomeReady`].
    HomeReady,
    /// [`Event::OwnerReady`].
    OwnerReady,
    /// [`Event::Complete`].
    Complete,
}

/// Outcome of [`WheelQueue::pop_slot`]: how the earliest pending
/// timestamp was delivered.
///
/// Most timestamps hold exactly one event (measured ~79 % of slots on
/// the paper's 16-node OLTP runs), and for those the struct-of-arrays
/// round-trip through an [`EventBatch`] is pure overhead — so the
/// singleton case hands the event back by value, untouched by the
/// batch, and only genuinely plural slots pay for lane formation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotDrain {
    /// The queue was empty; the batch is cleared.
    Empty,
    /// The earliest timestamp held exactly one event, returned here as
    /// `(time, seq, event)`; the batch is cleared and untouched.
    Single(u64, u64, Event),
    /// The earliest timestamp held two or more events, drained into
    /// the batch in sequence order.
    Batch,
}

/// One drained wheel slot in struct-of-arrays layout: every event of a
/// single timestamp, split into one lane per [`EventKind`] with the
/// payload fields as parallel columns, plus a run list recording the
/// maximal same-kind runs in push-sequence order.
///
/// The batched event loop walks the run list and dispatches each run
/// with a tight per-kind loop over the lane columns — the `(time, seq)`
/// dispatch order is exactly the per-event pop order, because lanes are
/// appended in pop order and runs never reorder across kinds. Events
/// pushed *while* a batch dispatches carry later sequence numbers and
/// land in a subsequent batch (the wheel slot they join is re-drained),
/// which is precisely where the per-event loop would pop them.
///
/// Buffers retain capacity across [`WheelQueue::pop_batch`] calls, so
/// a steady-state simulation batches without allocating.
#[derive(Debug, Default)]
pub struct EventBatch {
    /// Timestamp shared by every event in the batch.
    pub time: u64,
    /// Maximal same-kind runs in sequence order: `(kind, length)`.
    pub runs: Vec<(EventKind, u32)>,
    /// `CpuIssue` lane: push sequence.
    pub cpu_seq: Vec<u64>,
    /// `CpuIssue` lane: issuing node.
    pub cpu_node: Vec<u32>,
    /// `Inject` lane: push sequence.
    pub inject_seq: Vec<u64>,
    /// `Inject` lane: pending-request index.
    pub inject_req: Vec<u32>,
    /// `Ordered` lane: push sequence.
    pub ordered_seq: Vec<u64>,
    /// `Ordered` lane: pending-request index.
    pub ordered_req: Vec<u32>,
    /// `Ordered` lane: attempt number.
    pub ordered_attempt: Vec<u8>,
    /// `RequestArrive` lane: push sequence.
    pub arrive_seq: Vec<u64>,
    /// `RequestArrive` lane: pending-request index.
    pub arrive_req: Vec<u32>,
    /// `RequestArrive` lane: receiving node.
    pub arrive_node: Vec<u32>,
    /// `RequestArrive` lane: whether the arrival was a directory
    /// reissue.
    pub arrive_retry: Vec<bool>,
    /// `HomeReady` lane: push sequence.
    pub home_seq: Vec<u64>,
    /// `HomeReady` lane: pending-request index.
    pub home_req: Vec<u32>,
    /// `HomeReady` lane: attempt number.
    pub home_attempt: Vec<u8>,
    /// `OwnerReady` lane: push sequence.
    pub owner_seq: Vec<u64>,
    /// `OwnerReady` lane: pending-request index.
    pub owner_req: Vec<u32>,
    /// `OwnerReady` lane: responding owner node.
    pub owner_owner: Vec<u32>,
    /// `Complete` lane: push sequence.
    pub complete_seq: Vec<u64>,
    /// `Complete` lane: pending-request index.
    pub complete_req: Vec<u32>,
}

impl EventBatch {
    /// An empty batch.
    pub fn new() -> Self {
        EventBatch::default()
    }

    /// Number of events in the batch.
    pub fn len(&self) -> usize {
        self.runs.iter().map(|&(_, n)| n as usize).sum()
    }

    /// Whether the batch holds no events.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Empties every populated lane, retaining capacity.
    ///
    /// The run list names exactly the kinds with populated lanes, so
    /// only those columns are touched — every column of a named kind,
    /// always: the columns of a lane fill in lockstep, and clearing a
    /// subset would desynchronize them into stale payloads. (Batches
    /// are small — a handful of runs — so this is a few length resets,
    /// not seventeen.)
    pub fn clear(&mut self) {
        for i in 0..self.runs.len() {
            match self.runs[i].0 {
                EventKind::CpuIssue => {
                    self.cpu_seq.clear();
                    self.cpu_node.clear();
                }
                EventKind::Inject => {
                    self.inject_seq.clear();
                    self.inject_req.clear();
                }
                EventKind::Ordered => {
                    self.ordered_seq.clear();
                    self.ordered_req.clear();
                    self.ordered_attempt.clear();
                }
                EventKind::RequestArrive => {
                    self.arrive_seq.clear();
                    self.arrive_req.clear();
                    self.arrive_node.clear();
                    self.arrive_retry.clear();
                }
                EventKind::HomeReady => {
                    self.home_seq.clear();
                    self.home_req.clear();
                    self.home_attempt.clear();
                }
                EventKind::OwnerReady => {
                    self.owner_seq.clear();
                    self.owner_req.clear();
                    self.owner_owner.clear();
                }
                EventKind::Complete => {
                    self.complete_seq.clear();
                    self.complete_req.clear();
                }
            }
        }
        self.runs.clear();
    }

    /// Appends `event` (with push sequence `seq`) to its lane,
    /// extending the current run or opening a new one.
    #[inline]
    pub fn push(&mut self, seq: u64, event: Event) {
        let kind = event.kind();
        match self.runs.last_mut() {
            Some((last, n)) if *last == kind => *n += 1,
            _ => self.runs.push((kind, 1)),
        }
        match event {
            Event::CpuIssue { node } => {
                self.cpu_seq.push(seq);
                self.cpu_node.push(node as u32);
            }
            Event::Inject { req } => {
                self.inject_seq.push(seq);
                self.inject_req.push(req as u32);
            }
            Event::Ordered { req, attempt } => {
                self.ordered_seq.push(seq);
                self.ordered_req.push(req as u32);
                self.ordered_attempt.push(attempt);
            }
            Event::RequestArrive { req, node, retry } => {
                self.arrive_seq.push(seq);
                self.arrive_req.push(req as u32);
                self.arrive_node.push(node as u32);
                self.arrive_retry.push(retry);
            }
            Event::HomeReady { req, attempt } => {
                self.home_seq.push(seq);
                self.home_req.push(req as u32);
                self.home_attempt.push(attempt);
            }
            Event::OwnerReady { req, owner } => {
                self.owner_seq.push(seq);
                self.owner_req.push(req as u32);
                self.owner_owner.push(owner as u32);
            }
            Event::Complete { req } => {
                self.complete_seq.push(seq);
                self.complete_req.push(req as u32);
            }
        }
    }

    /// Reconstructs the batch's events in dispatch (= push-sequence)
    /// order, as `(time, seq, event)` — the flattened view the batch
    /// equivalence tests compare against per-event pops.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, Event)> + '_ {
        let mut cursors = [0usize; 7];
        self.runs
            .iter()
            .flat_map(move |&(kind, n)| {
                let lane = kind as usize;
                let start = cursors[lane];
                cursors[lane] += n as usize;
                (start..start + n as usize).map(move |i| (kind, i))
            })
            .map(|(kind, i)| {
                let (seq, event) = match kind {
                    EventKind::CpuIssue => (
                        self.cpu_seq[i],
                        Event::CpuIssue {
                            node: self.cpu_node[i] as usize,
                        },
                    ),
                    EventKind::Inject => (
                        self.inject_seq[i],
                        Event::Inject {
                            req: self.inject_req[i] as usize,
                        },
                    ),
                    EventKind::Ordered => (
                        self.ordered_seq[i],
                        Event::Ordered {
                            req: self.ordered_req[i] as usize,
                            attempt: self.ordered_attempt[i],
                        },
                    ),
                    EventKind::RequestArrive => (
                        self.arrive_seq[i],
                        Event::RequestArrive {
                            req: self.arrive_req[i] as usize,
                            node: self.arrive_node[i] as usize,
                            retry: self.arrive_retry[i],
                        },
                    ),
                    EventKind::HomeReady => (
                        self.home_seq[i],
                        Event::HomeReady {
                            req: self.home_req[i] as usize,
                            attempt: self.home_attempt[i],
                        },
                    ),
                    EventKind::OwnerReady => (
                        self.owner_seq[i],
                        Event::OwnerReady {
                            req: self.owner_req[i] as usize,
                            owner: self.owner_owner[i] as usize,
                        },
                    ),
                    EventKind::Complete => (
                        self.complete_seq[i],
                        Event::Complete {
                            req: self.complete_req[i] as usize,
                        },
                    ),
                };
                (self.time, seq, event)
            })
    }
}
