//! The scheduling core: simulation events and the queues that order
//! them.
//!
//! Every simulated miss flows through half a dozen queued events, so
//! the event queue is — after the coherence tracker and the crossbar —
//! the last per-miss hot path. The production queue is
//! [`WheelQueue`], a hierarchical timing wheel: a near-horizon array of
//! per-nanosecond slot buckets (FIFO within a slot, found by a bitmap
//! scan instead of heap sifting) backed by an overflow binary heap for
//! far-future events, which are promoted into the wheel as the cursor
//! approaches them. The seed `BinaryHeap` implementation survives as
//! [`ReferenceQueue`] — the oracle for the pop-order equivalence
//! property tests and the baseline the `queue` hot-path benchmark
//! measures against.
//!
//! Both queues pop in identical order: time, then push sequence (FIFO
//! among equal times).

mod reference;
mod wheel;

pub use reference::ReferenceQueue;
pub use wheel::WheelQueue;

/// The queue driving [`crate::System`]'s event loop.
pub type EventQueue = WheelQueue;

/// Cheap occupancy counters a [`WheelQueue`] maintains over its
/// lifetime, surfaced by the `hotpath-bench` `sim` row so queue-pressure
/// changes (like the lazy-training fan-out removal) are visible without
/// re-profiling.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueCounters {
    /// Events pushed (wheel buckets and overflow heap combined).
    pub pushed: u64,
    /// Events popped.
    pub popped: u64,
    /// Far-future events promoted from the overflow heap into the
    /// wheel as the cursor advanced.
    pub promoted: u64,
}

impl QueueCounters {
    /// Accumulates another queue's counters (for summing across runs).
    pub fn merge(&mut self, other: &QueueCounters) {
        self.pushed += other.pushed;
        self.popped += other.popped;
        self.promoted += other.promoted;
    }
}

/// Events driving the simulation. `req` indexes the pending-request
/// table; `node` is a node index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A node is ready to issue its next miss (subject to its window).
    CpuIssue {
        /// Node index.
        node: usize,
    },
    /// The L2 detected the miss; the request enters the interconnect.
    Inject {
        /// Pending-request index.
        req: usize,
    },
    /// A request (attempt `attempt`) passed the ordering point.
    Ordered {
        /// Pending-request index.
        req: usize,
        /// 1 = initial multicast, 2 = first reissue, 3 = broadcast.
        attempt: u8,
    },
    /// A request-class message arrived at a node (predictor training).
    RequestArrive {
        /// Pending-request index.
        req: usize,
        /// Receiving node.
        node: usize,
        /// Whether this was a directory reissue.
        retry: bool,
    },
    /// The home directory is ready to forward / respond / reissue.
    HomeReady {
        /// Pending-request index.
        req: usize,
        /// Attempt being processed.
        attempt: u8,
    },
    /// The cache owner is ready to inject the data response.
    OwnerReady {
        /// Pending-request index.
        req: usize,
        /// The owner node injecting the response.
        owner: usize,
    },
    /// The data (or upgrade ack) arrived at the requester.
    Complete {
        /// Pending-request index.
        req: usize,
    },
}
