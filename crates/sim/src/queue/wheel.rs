//! The hierarchical timing-wheel event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use super::{Event, EventBatch, QueueCounters, SlotDrain};

/// Near-horizon wheel span in time units (one slot per nanosecond).
/// Power of two so slot lookup is a mask. 4096 ns comfortably covers
/// the simulator's protocol latencies (≤ ~500 ns end to end) — only the
/// exponential tail of CPU computation gaps overflows to the far heap.
const WHEEL_SLOTS: usize = 4096;
const SLOT_MASK: u64 = WHEEL_SLOTS as u64 - 1;
/// Occupancy bitmap words (one bit per slot).
const BITMAP_WORDS: usize = WHEEL_SLOTS / 64;

/// One wheel bucket: the events of a single timestamp in push order.
/// `head` marks the next event to pop; storage is reused across wheel
/// rotations (the `Vec` keeps its capacity when cleared).
#[derive(Clone, Debug, Default)]
struct SlotBuf {
    head: usize,
    items: Vec<(u64, Event)>, // (push sequence, event)
}

/// A far-future (or late/past) event parked in the overflow heap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Far {
    time: u64,
    seq: u64,
    event: Event,
}

impl Ord for Far {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Far {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue with FIFO tie-breaking, built as a
/// two-level timing wheel.
///
/// The near level is a [`WHEEL_SLOTS`]-entry array of per-nanosecond
/// buckets covering `[cursor, cursor + WHEEL_SLOTS)`; push appends to a
/// bucket (O(1), no comparisons) and pop finds the next non-empty
/// bucket with a 64-slots-per-instruction bitmap scan. Events beyond
/// the horizon wait in an overflow binary heap — the far level — and
/// are promoted into the wheel when the cursor reaches within a horizon
/// of them. In the simulator's steady state nearly every event lands
/// and pops in the near level, replacing the seed `BinaryHeap`'s
/// O(log n) pointer-chasing sift per operation (see
/// [`super::ReferenceQueue`]) with bucket appends and word scans over
/// slot storage that is recycled every wheel rotation.
///
/// Pop order is exactly the reference queue's: time, then push
/// sequence — property tests in `tests/queue_equivalence.rs` pin the
/// two queues' pop sequences against each other, including dense
/// equal-time bursts and far-future promotion.
#[derive(Debug)]
pub struct WheelQueue {
    /// Fixed-size (boxed) slot array: indexing with `time & SLOT_MASK`
    /// is provably in-bounds, so the per-push/per-pop bucket accesses
    /// compile without bounds checks.
    slots: Box<[SlotBuf; WHEEL_SLOTS]>,
    occupied: [u64; BITMAP_WORDS],
    /// Lower bound of every wheel-resident timestamp; advances to each
    /// popped event's time (never backwards).
    cursor: u64,
    overflow: BinaryHeap<Far>,
    seq: u64,
    len: usize,
    counters: QueueCounters,
}

impl Default for WheelQueue {
    fn default() -> Self {
        WheelQueue::new()
    }
}

impl WheelQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        WheelQueue {
            slots: vec![SlotBuf::default(); WHEEL_SLOTS]
                .into_boxed_slice()
                .try_into()
                .expect("exactly WHEEL_SLOTS slots"),
            occupied: [0; BITMAP_WORDS],
            cursor: 0,
            overflow: BinaryHeap::new(),
            seq: 0,
            len: 0,
            counters: QueueCounters::default(),
        }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: u64, event: Event) {
        self.push_at(time, self.seq + 1, event);
    }

    /// Schedules `event` at absolute time `time` with a caller-assigned
    /// tie-break sequence.
    ///
    /// `seq` must exceed every sequence previously seen by this queue
    /// (pushes and `push_at` calls share one counter). This lets a
    /// caller interleave queued events with records it keeps *outside*
    /// the queue — the simulator's lazy training inboxes — under one
    /// total (time, seq) order: the caller draws all sequence numbers
    /// from its own counter and compares popped entries against
    /// buffered records directly.
    pub fn push_at(&mut self, time: u64, seq: u64, event: Event) {
        debug_assert!(seq > self.seq, "sequence numbers must increase");
        self.seq = seq;
        self.len += 1;
        self.counters.pushed += 1;
        // In-horizon events go straight to their bucket; everything
        // else — far-future, or behind the cursor (a push earlier than
        // the last pop, which the simulator never does but the heap
        // semantics allow) — parks in the overflow heap.
        if time >= self.cursor && time - self.cursor < WHEEL_SLOTS as u64 {
            self.slot_push(time, seq, event);
        } else {
            self.overflow.push(Far { time, seq, event });
        }
    }

    /// Pops the earliest event (FIFO among equal times).
    pub fn pop(&mut self) -> Option<(u64, Event)> {
        self.pop_entry().map(|(time, _, event)| (time, event))
    }

    /// Pops the earliest event along with its tie-break sequence.
    pub fn pop_entry(&mut self) -> Option<(u64, u64, Event)> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        self.counters.popped += 1;
        // Late events (behind the cursor) are strictly earlier than all
        // wheel content and sort first in the overflow heap.
        if let Some(top) = self.overflow.peek() {
            if top.time < self.cursor {
                let f = self.overflow.pop().expect("peeked");
                return Some((f.time, f.seq, f.event));
            }
        }
        loop {
            if let Some(offset) = self.next_occupied_offset() {
                let time = self.cursor + offset as u64;
                if offset > 0 {
                    // The cursor moves: the horizon now covers newly
                    // reachable far-future times, whose events must be
                    // promoted *before* any later push can append to
                    // their buckets (preserving FIFO seq order). All
                    // promoted times exceed `time`, so the event we are
                    // about to pop stays the earliest.
                    self.cursor = time;
                    self.promote_overflow();
                }
                let (seq, event) = self.slot_pop(time);
                return Some((time, seq, event));
            }
            // Wheel empty: jump the cursor to the earliest far event
            // (one exists — len > 0) and promote a batch.
            let top_time = self.overflow.peek().expect("len > 0").time;
            debug_assert!(top_time >= self.cursor);
            self.cursor = top_time;
            self.promote_overflow();
        }
    }

    /// Drains every event of the earliest pending timestamp into
    /// `batch` (cleared first), in pop order. Returns `false` if the
    /// queue is empty.
    ///
    /// Equivalent to calling [`WheelQueue::pop_entry`] until the time
    /// changes — but a wheel bucket holds exactly one timestamp, so the
    /// whole slot moves in one pass with a single bitmap-scan/cursor
    /// advance, and the per-event pops inside a slot disappear. Events
    /// pushed at the drained time *after* the drain carry later
    /// sequences and surface in the next `pop_batch` at the same
    /// cursor, exactly where per-event pops would yield them.
    pub fn pop_batch(&mut self, batch: &mut EventBatch) -> bool {
        match self.pop_slot(batch) {
            SlotDrain::Empty => false,
            SlotDrain::Single(time, seq, event) => {
                batch.time = time;
                batch.push(seq, event);
                true
            }
            SlotDrain::Batch => true,
        }
    }

    /// Drains the earliest pending timestamp, clearing `batch` first:
    /// a lone event comes back by value ([`SlotDrain::Single`],
    /// skipping lane formation entirely — the common case), while a
    /// plural slot fills `batch` in pop order ([`SlotDrain::Batch`]).
    ///
    /// Same ordering contract as [`WheelQueue::pop_batch`] (which is
    /// this method plus folding the singleton into the batch).
    pub fn pop_slot(&mut self, batch: &mut EventBatch) -> SlotDrain {
        batch.clear();
        if self.len == 0 {
            return SlotDrain::Empty;
        }
        // Late events (behind the cursor) are strictly earlier than all
        // wheel content; no bucket can share their timestamp, so the
        // slot is the equal-time run at the top of the overflow heap.
        if let Some(top) = self.overflow.peek() {
            if top.time < self.cursor {
                let first = self.overflow.pop().expect("peeked");
                self.len -= 1;
                self.counters.popped += 1;
                let time = first.time;
                if self.overflow.peek().is_none_or(|top| top.time != time) {
                    return SlotDrain::Single(time, first.seq, first.event);
                }
                batch.time = time;
                batch.push(first.seq, first.event);
                while let Some(top) = self.overflow.peek() {
                    if top.time != time {
                        break;
                    }
                    let f = self.overflow.pop().expect("peeked");
                    batch.push(f.seq, f.event);
                    self.len -= 1;
                    self.counters.popped += 1;
                }
                return SlotDrain::Batch;
            }
        }
        loop {
            if let Some(offset) = self.next_occupied_offset() {
                let time = self.cursor + offset as u64;
                if offset > 0 {
                    // Same promotion rule as `pop_entry`: far-future
                    // events the horizon now covers must reach their
                    // buckets before later pushes append behind them.
                    // Promoted times exceed `time`, so this bucket
                    // stays the earliest and already holds every event
                    // of its timestamp.
                    self.cursor = time;
                    self.promote_overflow();
                }
                let idx = (time & SLOT_MASK) as usize;
                let slot = &mut self.slots[idx];
                let drained = slot.items.len() - slot.head;
                self.len -= drained;
                self.counters.popped += drained as u64;
                let drain = if drained == 1 {
                    let (seq, event) = slot.items[slot.head];
                    SlotDrain::Single(time, seq, event)
                } else {
                    batch.time = time;
                    for &(seq, event) in &slot.items[slot.head..] {
                        batch.push(seq, event);
                    }
                    SlotDrain::Batch
                };
                slot.items.clear();
                slot.head = 0;
                self.occupied[idx / 64] &= !(1 << (idx % 64));
                return drain;
            }
            // Wheel empty: jump the cursor to the earliest far event
            // (one exists — len > 0) and promote a batch.
            let top_time = self.overflow.peek().expect("len > 0").time;
            debug_assert!(top_time >= self.cursor);
            self.cursor = top_time;
            self.promote_overflow();
        }
    }

    /// Lifetime occupancy counters (pushes, pops, promotions), with
    /// `remaining` snapshotting the current queue length so
    /// `pushed == popped + remaining` reconciles at any point.
    pub fn counters(&self) -> QueueCounters {
        QueueCounters {
            remaining: self.len as u64,
            ..self.counters
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends to the bucket of `time` (which must be in horizon).
    #[inline]
    fn slot_push(&mut self, time: u64, seq: u64, event: Event) {
        let idx = (time & SLOT_MASK) as usize;
        self.slots[idx].items.push((seq, event));
        self.occupied[idx / 64] |= 1 << (idx % 64);
    }

    /// Pops the front of `time`'s bucket, recycling the bucket storage
    /// and clearing its occupancy bit when it empties.
    #[inline]
    fn slot_pop(&mut self, time: u64) -> (u64, Event) {
        let idx = (time & SLOT_MASK) as usize;
        let slot = &mut self.slots[idx];
        let (seq, event) = slot.items[slot.head];
        slot.head += 1;
        if slot.head == slot.items.len() {
            slot.items.clear();
            slot.head = 0;
            self.occupied[idx / 64] &= !(1 << (idx % 64));
        }
        (seq, event)
    }

    /// Distance (in slots, hence nanoseconds) from the cursor to the
    /// next occupied bucket, scanning the bitmap circularly from the
    /// cursor's slot.
    #[inline]
    fn next_occupied_offset(&self) -> Option<usize> {
        let start = (self.cursor & SLOT_MASK) as usize;
        let (start_word, start_bit) = (start / 64, start % 64);
        // The start word's bits at/above the cursor, the remaining
        // words in circular order, then the start word's low bits.
        let mut word_idx = start_word;
        let mut word = self.occupied[word_idx] & (u64::MAX << start_bit);
        for step in 0..=BITMAP_WORDS {
            if word != 0 {
                let bit = word_idx * 64 + word.trailing_zeros() as usize;
                return Some((bit + WHEEL_SLOTS - start) & (WHEEL_SLOTS - 1));
            }
            if step == BITMAP_WORDS {
                break;
            }
            word_idx = (word_idx + 1) % BITMAP_WORDS;
            word = self.occupied[word_idx];
            if word_idx == start_word {
                // Wrapped around: only the bits below the cursor remain.
                word &= !(u64::MAX << start_bit);
            }
        }
        None
    }

    /// Moves every overflow event the horizon now covers into its
    /// bucket. Heap order is (time, seq), so equal-time events are
    /// appended in push order — FIFO is preserved across promotion.
    fn promote_overflow(&mut self) {
        while let Some(top) = self.overflow.peek() {
            debug_assert!(top.time >= self.cursor, "past events pop before promotion");
            if top.time - self.cursor >= WHEEL_SLOTS as u64 {
                break;
            }
            let f = self.overflow.pop().expect("peeked");
            self.counters.promoted += 1;
            self.slot_push(f.time, f.seq, f.event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut WheelQueue) -> Vec<(u64, Event)> {
        std::iter::from_fn(|| q.pop()).collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = WheelQueue::new();
        q.push(30, Event::CpuIssue { node: 3 });
        q.push(10, Event::CpuIssue { node: 1 });
        q.push(20, Event::CpuIssue { node: 2 });
        let order: Vec<u64> = drain(&mut q).into_iter().map(|(t, _)| t).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = WheelQueue::new();
        for node in 0..5 {
            q.push(5, Event::CpuIssue { node });
        }
        let order: Vec<usize> = drain(&mut q)
            .into_iter()
            .map(|(_, e)| match e {
                Event::CpuIssue { node } => node,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = WheelQueue::new();
        assert!(q.is_empty());
        q.push(1, Event::Complete { req: 0 });
        assert_eq!(q.len(), 1);
        let _ = q.pop();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_events_promote_in_fifo_order() {
        let mut q = WheelQueue::new();
        let far = WHEEL_SLOTS as u64 * 3 + 17;
        // Two equal-time events pushed while far out of horizon...
        q.push(far, Event::CpuIssue { node: 0 });
        q.push(far, Event::CpuIssue { node: 1 });
        // ...an in-horizon event to advance the cursor...
        q.push(10, Event::CpuIssue { node: 9 });
        assert_eq!(q.pop(), Some((10, Event::CpuIssue { node: 9 })));
        // ...then a *direct* push at the same far time once the cursor
        // jump promotes the first two: seq order must survive.
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| {
                assert_eq!(t, far);
                match e {
                    Event::CpuIssue { node } => node,
                    _ => unreachable!(),
                }
            })
            .collect();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn cursor_jump_spans_multiple_horizons() {
        let mut q = WheelQueue::new();
        let times = [
            0u64,
            WHEEL_SLOTS as u64 - 1,
            WHEEL_SLOTS as u64,
            WHEEL_SLOTS as u64 * 10,
            WHEEL_SLOTS as u64 * 1000 + 5,
            u64::MAX - 3,
        ];
        for (i, &t) in times.iter().enumerate() {
            q.push(t, Event::Complete { req: i });
        }
        let popped: Vec<u64> = drain(&mut q).into_iter().map(|(t, _)| t).collect();
        assert_eq!(popped, times.to_vec());
    }

    #[test]
    fn late_pushes_behind_the_cursor_pop_first() {
        let mut q = WheelQueue::new();
        q.push(100, Event::Complete { req: 0 });
        assert_eq!(q.pop(), Some((100, Event::Complete { req: 0 })));
        // The simulator never does this, but heap semantics allow it:
        // a push earlier than the last pop still pops before anything
        // later.
        q.push(40, Event::Complete { req: 1 });
        q.push(40, Event::Complete { req: 2 });
        q.push(120, Event::Complete { req: 3 });
        let popped: Vec<(u64, Event)> = drain(&mut q);
        assert_eq!(
            popped,
            vec![
                (40, Event::Complete { req: 1 }),
                (40, Event::Complete { req: 2 }),
                (120, Event::Complete { req: 3 }),
            ]
        );
    }

    #[test]
    fn external_sequences_order_ties_and_pop_returns_them() {
        let mut q = WheelQueue::new();
        q.push_at(5, 10, Event::CpuIssue { node: 0 });
        q.push_at(5, 12, Event::CpuIssue { node: 1 });
        q.push_at(3, 20, Event::CpuIssue { node: 2 });
        assert_eq!(q.pop_entry(), Some((3, 20, Event::CpuIssue { node: 2 })));
        assert_eq!(q.pop_entry(), Some((5, 10, Event::CpuIssue { node: 0 })));
        assert_eq!(q.pop_entry(), Some((5, 12, Event::CpuIssue { node: 1 })));
        assert_eq!(q.pop_entry(), None);
    }

    #[test]
    fn counters_track_pushes_pops_and_promotions() {
        let mut q = WheelQueue::new();
        q.push(10, Event::CpuIssue { node: 0 });
        q.push(WHEEL_SLOTS as u64 * 2, Event::CpuIssue { node: 1 });
        assert_eq!(q.counters().pushed, 2);
        assert_eq!(q.counters().popped, 0);
        drain(&mut q);
        let c = q.counters();
        assert_eq!(c.popped, 2);
        assert_eq!(c.promoted, 1, "the far event promoted on cursor jump");
        let mut sum = QueueCounters::default();
        sum.merge(&c);
        sum.merge(&c);
        assert_eq!(sum.pushed, 4);
    }

    #[test]
    fn pop_batch_matches_per_event_pops() {
        let build = || {
            let mut q = WheelQueue::new();
            q.push(5, Event::CpuIssue { node: 0 });
            q.push(5, Event::CpuIssue { node: 1 });
            q.push(5, Event::Inject { req: 7 });
            q.push(5, Event::CpuIssue { node: 2 });
            q.push(9, Event::Complete { req: 1 });
            q.push(WHEEL_SLOTS as u64 * 2 + 3, Event::Complete { req: 2 });
            q.push(
                WHEEL_SLOTS as u64 * 2 + 3,
                Event::Ordered { req: 2, attempt: 1 },
            );
            q
        };
        let mut per_event = build();
        let mut batched = build();
        let mut batch = EventBatch::new();
        let mut flat = Vec::new();
        while batched.pop_batch(&mut batch) {
            flat.extend(batch.iter());
        }
        let popped: Vec<_> = std::iter::from_fn(|| per_event.pop_entry()).collect();
        assert_eq!(flat, popped);
        assert_eq!(batched.counters(), per_event.counters());
        batched.counters().assert_reconciled();
    }

    #[test]
    fn pop_batch_drains_late_pushes_by_time() {
        let mut q = WheelQueue::new();
        q.push(100, Event::Complete { req: 0 });
        let mut batch = EventBatch::new();
        assert!(q.pop_batch(&mut batch));
        assert_eq!(batch.time, 100);
        // Late pushes behind the cursor: equal times batch together,
        // later times wait for the next batch.
        q.push(40, Event::Complete { req: 1 });
        q.push(40, Event::Complete { req: 2 });
        q.push(60, Event::Complete { req: 3 });
        assert!(q.pop_batch(&mut batch));
        assert_eq!((batch.time, batch.len()), (40, 2));
        assert!(q.pop_batch(&mut batch));
        assert_eq!((batch.time, batch.len()), (60, 1));
        assert!(!q.pop_batch(&mut batch));
        assert!(batch.is_empty());
    }

    #[test]
    fn counters_reconcile_mid_run() {
        let mut q = WheelQueue::new();
        for t in 0..10 {
            q.push(t, Event::Complete { req: t as usize });
        }
        let _ = q.pop();
        let _ = q.pop();
        let c = q.counters();
        assert_eq!(c.remaining, 8);
        c.assert_reconciled();
    }

    #[test]
    fn dense_wrap_around_reuses_slots() {
        let mut q = WheelQueue::new();
        // Three full wheel rotations of interleaved push/pop at full
        // density: every slot is filled, emptied, and refilled.
        let mut expect = Vec::new();
        for t in 0..(WHEEL_SLOTS as u64 * 3) {
            q.push(t, Event::Complete { req: t as usize });
            expect.push(t);
            if t % 2 == 0 {
                let (pt, _) = q.pop().expect("non-empty");
                assert_eq!(pt, expect.remove(0));
            }
        }
        let rest: Vec<u64> = drain(&mut q).into_iter().map(|(t, _)| t).collect();
        assert_eq!(rest, expect);
    }
}
