//! The seed event queue: a binary heap with a sequence tie-breaker.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use super::Event;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Queued {
    time: u64,
    seq: u64,
    event: Event,
}

impl Ord for Queued {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The seed time-ordered event queue with FIFO tie-breaking: a
/// `BinaryHeap` over `(time, seq)`.
///
/// Kept as the oracle for [`super::WheelQueue`]'s pop-order equivalence
/// property tests and as the recorded baseline of the `queue` hot-path
/// benchmark — every pop pays O(log n) sift with pointer-chasing
/// comparisons, which is exactly the cost the timing wheel removes.
#[derive(Debug, Default)]
pub struct ReferenceQueue {
    heap: BinaryHeap<Queued>,
    seq: u64,
}

impl ReferenceQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        ReferenceQueue::default()
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: u64, event: Event) {
        self.push_at(time, self.seq + 1, event);
    }

    /// Schedules `event` with a caller-assigned tie-break sequence,
    /// which must exceed every sequence this queue has seen (mirrors
    /// [`super::WheelQueue::push_at`]).
    pub fn push_at(&mut self, time: u64, seq: u64, event: Event) {
        debug_assert!(seq > self.seq, "sequence numbers must increase");
        self.seq = seq;
        self.heap.push(Queued { time, seq, event });
    }

    /// Pops the earliest event (FIFO among equal times).
    pub fn pop(&mut self) -> Option<(u64, Event)> {
        self.heap.pop().map(|q| (q.time, q.event))
    }

    /// Pops the earliest event along with its tie-break sequence.
    pub fn pop_entry(&mut self) -> Option<(u64, u64, Event)> {
        self.heap.pop().map(|q| (q.time, q.seq, q.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = ReferenceQueue::new();
        q.push(30, Event::CpuIssue { node: 3 });
        q.push(10, Event::CpuIssue { node: 1 });
        q.push(20, Event::CpuIssue { node: 2 });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = ReferenceQueue::new();
        q.push(5, Event::CpuIssue { node: 0 });
        q.push(5, Event::CpuIssue { node: 1 });
        q.push(5, Event::CpuIssue { node: 2 });
        let order: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::CpuIssue { node } => node,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = ReferenceQueue::new();
        assert!(q.is_empty());
        q.push(1, Event::Complete { req: 0 });
        assert_eq!(q.len(), 1);
        let _ = q.pop();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
