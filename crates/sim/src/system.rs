//! The full-system discrete-event timing simulator.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dsp_cache::SetAssocCache;
use dsp_coherence::{CoherenceTracker, MissInfo};
use dsp_core::{DestSetPredictor, PredictQuery, TrainEvent};
use dsp_interconnect::{Arrivals, Message, Topology};
use dsp_trace::{TraceRecord, WorkloadSpec};
use dsp_types::{DestSet, LineState, MessageClass, NodeId, Owner, ReqType, SystemConfig};

use crate::config::{CpuModel, ProtocolKind, SimConfig, TargetSystem, TrainingMode};
use crate::queue::{Event, EventBatch, EventKind, EventQueue, QueueCounters, SlotDrain};
use crate::report::SimReport;
use crate::train::TrainBuffers;
use crate::DispatchMode;

/// Lazy-training inbox depth that triggers an early forced drain (of
/// records already behind the current dispatch time, which is always
/// safe). Bounds inbox memory to roughly the in-flight arrival horizon
/// per node instead of the run length, for nodes that rarely observe
/// their predictor.
const FORCE_DRAIN_DEPTH: usize = 1024;

/// In-flight miss bookkeeping.
#[derive(Debug)]
struct Pending<const W: usize> {
    rec: TraceRecord,
    issue_time: u64,
    measured: bool,
    /// Last warmup miss of its node (for measurement-window timing).
    last_warmup: bool,
    attempt: u8,
    retries: u8,
    indirected: bool,
    minimal_sufficient: bool,
    /// Predictive-directory: the owner answered directly, so the home
    /// only issues invalidations (no data/forward).
    home_invals_only: bool,
    info: Option<MissInfo<W>>,
    /// Destination set of the current attempt (excluding the requester).
    current_dests: DestSet<W>,
    /// Arrival times of the current attempt, indexed by node.
    arrivals: Vec<Option<u64>>,
    /// Fallback arrival for nodes not in the destination set (e.g. the
    /// requester acting as its own home): order time + half traversal.
    self_arrival: u64,
    /// Outstanding queued events referencing this slot; the slot is
    /// recycled only when the count returns to zero *and* the miss has
    /// completed, so late-arriving events (delayed invalidations,
    /// contended training deliveries) can never observe a reused slot.
    refs: u32,
    /// The miss finished (data arrived at the requester).
    done: bool,
}

/// A complete simulated multiprocessor: trace-driven cores, per-node L2
/// caches and predictors, the global MOSI substrate, and the ordered
/// crossbar, advanced by a discrete-event loop.
///
/// # Example
///
/// ```
/// use dsp_sim::{ProtocolKind, SimConfig, System, TargetSystem};
/// use dsp_trace::{Workload, WorkloadSpec};
/// use dsp_types::SystemConfig;
///
/// let sys = SystemConfig::isca03();
/// let spec = WorkloadSpec::preset(Workload::Oltp, &sys).scaled(1.0 / 256.0);
/// let sim = SimConfig::new(ProtocolKind::Snooping).misses(50, 200);
/// let report = dsp_sim::simulate(&sys, TargetSystem::isca03_default(), &spec, sim);
/// assert!(report.measured_misses > 0);
/// assert!(report.runtime_ns > 0);
/// ```
/// The destination-set word width `W` is a compile-time parameter (64
/// nodes per word): `System<1>` covers machines up to 64 nodes with
/// single-word set operations, `System<4>` covers [`dsp_types::MAX_NODES`].
/// The [`crate::simulate`] entry points pick the width at runtime from
/// [`crate::SetWidth`]; reports are byte-identical across widths.
#[derive(Debug)]
pub struct System<const W: usize = 4> {
    sys: SystemConfig,
    target: TargetSystem,
    sim: SimConfig,
    // Per node.
    programs: TracePartition,
    next_miss: Vec<usize>,
    outstanding: Vec<usize>,
    ready_at: Vec<u64>,
    rngs: Vec<SmallRng>,
    caches: Vec<SetAssocCache>,
    predictors: Vec<Box<dyn DestSetPredictor<W>>>,
    warmup_done_at: Vec<Option<u64>>,
    // Global.
    tracker: CoherenceTracker<W>,
    xbar: Topology,
    /// Scratch buffer for crossbar deliveries, reused across every send
    /// so the event loop performs no per-message allocation or copy.
    xbar_arrivals: Arrivals,
    queue: EventQueue,
    /// Lazy-training inboxes (empty in eager mode); see [`TrainBuffers`].
    train: TrainBuffers<W>,
    /// Virtual event sequence: the (time, seq) total order spanning
    /// queued events *and* buffered training records. Every queue push
    /// and every inbox append draws the next value, mirroring exactly
    /// the push order the eager path's queue would see, so a buffered
    /// record's position relative to any popped event is decided by
    /// comparing keys — including ties at equal times.
    vseq: u64,
    pending: Vec<Pending<W>>,
    free_slots: Vec<usize>,
    completed: u64,
    total_misses: u64,
    end_time: u64,
    mean_gap_instructions: f64,
    report: SimReport,
    /// When set, every dispatched event appends `(time, seq, kind)` —
    /// the observable order the batched/per-event equivalence tests
    /// compare. `None` (the default) keeps the hot loop log-free.
    dispatch_log: Option<Vec<(u64, u64, EventKind)>>,
}

impl<const W: usize> System<W> {
    /// Builds a system running `spec` under `sim` on the `target`
    /// machine.
    pub fn new(
        sys: &SystemConfig,
        target: TargetSystem,
        spec: &WorkloadSpec,
        sim: SimConfig,
    ) -> Self {
        let quota = sim.warmup_misses_per_node + sim.measured_misses_per_node;
        let partition = TracePartition::build(spec, sim.seed, sys.num_nodes(), quota);
        System::with_partition(sys, target, spec, sim, partition)
    }

    /// Builds a system over a precomputed [`TracePartition`].
    ///
    /// Partitioning the miss stream costs a sizeable fraction of short
    /// runs (the generator is drawn until every node's program fills),
    /// and the partition depends only on `(spec, seed, nodes, quota)` —
    /// not on the protocol, CPU model, or target machine — so sweep
    /// harnesses that simulate many protocols over one workload build
    /// it once and clone it into every simulation. Behavior is
    /// byte-identical to [`System::new`] with the same parameters.
    ///
    /// # Panics
    ///
    /// Panics if the partition's node count, seed, or per-node quota
    /// disagree with `sys`/`sim` (it would silently change the
    /// simulated programs otherwise).
    pub fn with_partition(
        sys: &SystemConfig,
        target: TargetSystem,
        spec: &WorkloadSpec,
        sim: SimConfig,
        partition: TracePartition,
    ) -> Self {
        let n = sys.num_nodes();
        assert_eq!(partition.nodes(), n, "partition built for another size");
        assert_eq!(partition.seed(), sim.seed, "partition seed mismatch");
        assert_eq!(
            partition.quota(),
            sim.warmup_misses_per_node + sim.measured_misses_per_node,
            "partition quota mismatch"
        );
        let programs = partition;
        let total_misses = programs.per_node().iter().map(|p| p.len() as u64).sum();
        let predictors: Vec<Box<dyn DestSetPredictor<W>>> = match &sim.protocol {
            ProtocolKind::Multicast(cfg) | ProtocolKind::DirectoryPredicted(cfg) => {
                (0..n).map(|_| cfg.build_width::<W>(sys)).collect()
            }
            _ => Vec::new(),
        };
        System {
            sys: *sys,
            target,
            rngs: (0..n)
                .map(|i| SmallRng::seed_from_u64(sim.seed ^ (0xabcd_0001 + i as u64)))
                .collect(),
            caches: (0..n).map(|_| SetAssocCache::new(target.l2)).collect(),
            predictors,
            programs,
            next_miss: vec![0; n],
            outstanding: vec![0; n],
            ready_at: vec![0; n],
            warmup_done_at: vec![None; n],
            // Presized to skip most of the block-state table's growth
            // rehashes. Workloads reuse blocks heavily, so a quarter of
            // the miss count is a close distinct-block estimate — a
            // deliberate underestimate, since overshooting pays a
            // bigger zeroed allocation per run than the rehashes it
            // avoids; the cap bounds paper-scale runs, where growth
            // simply resumes.
            tracker: CoherenceTracker::with_block_capacity(
                sys,
                (total_misses as usize / 4).min(1 << 15),
            ),
            // Toxic streams derive from the run seed through a salt so
            // they stay decoupled from the gap-draw streams: enabling a
            // toxic never shifts any other random sequence.
            xbar: Topology::new(
                target.interconnect,
                n,
                &sim.topology,
                &sim.toxics,
                sim.seed ^ 0x70c5_1c5e_ed00_cafe,
            ),
            xbar_arrivals: Arrivals::new(),
            queue: EventQueue::new(),
            train: TrainBuffers::new(n),
            vseq: 0,
            pending: Vec::new(),
            free_slots: Vec::new(),
            completed: 0,
            total_misses,
            end_time: 0,
            mean_gap_instructions: spec.mean_gap_instructions(),
            sim,
            report: SimReport::default(),
            dispatch_log: None,
        }
    }

    /// Runs to completion and returns the measured report.
    pub fn run(self) -> SimReport {
        self.run_with_queue_stats().0
    }

    /// Runs to completion, also returning the event queue's occupancy
    /// counters (pushes/pops/promotions/remaining) — the queue-pressure
    /// trend line the `hotpath-bench` `sim` row records. The counters
    /// always reconcile (`pushed == popped + remaining`); their split
    /// differs between dispatch modes, because a finishing batch drains
    /// (pops) its whole timestamp while the per-event loop leaves
    /// post-completion events queued.
    pub fn run_with_queue_stats(mut self) -> (SimReport, QueueCounters) {
        self.run_core();
        let counters = self.queue.counters();
        counters.assert_reconciled();
        (self.report, counters)
    }

    /// Runs to completion, recording every dispatched event as
    /// `(time, seq, kind)`.
    ///
    /// The dispatch log is the observable event order: the
    /// batched/per-event equivalence property tests run both
    /// [`crate::DispatchMode`]s and require identical logs *and*
    /// identical reports.
    pub fn run_with_dispatch_log(mut self) -> (SimReport, Vec<(u64, u64, EventKind)>) {
        self.dispatch_log = Some(Vec::new());
        self.run_core();
        let log = self.dispatch_log.take().expect("installed above");
        (self.report, log)
    }

    fn run_core(&mut self) {
        let n = self.sys.num_nodes();
        for node in 0..n {
            if self.sim.warmup_misses_per_node == 0 {
                self.warmup_done_at[node] = Some(0);
            }
            let gap = self.draw_gap(node);
            self.ready_at[node] = gap;
            self.push_event(gap, Event::CpuIssue { node });
        }
        // The last dispatched event's (time, seq): the loop applies
        // exactly the trainings scheduled strictly before the point it
        // stops, so the final lazy drain uses it as its limit. A
        // starved run (some node had no misses at all) drains its whole
        // queue, training events included — limit (MAX, MAX).
        let stop = match self.sim.dispatch {
            DispatchMode::Batched => self.run_batched(),
            DispatchMode::PerEvent => self.run_per_event(),
        };
        if self.sim.protocol.uses_predictors() {
            for node in 0..n {
                self.drain_training(node, stop.0, stop.1);
            }
        }
        let warm_end = self
            .warmup_done_at
            .iter()
            .map(|t| t.unwrap_or(0))
            .max()
            .unwrap_or(0);
        self.report.runtime_ns = self.end_time.saturating_sub(warm_end);
        // Message conservation: every delivery committed at injection
        // was recorded at a destination — toxics delay, never drop.
        self.xbar.assert_conserved();
    }

    /// The per-event loop: pop one entry, dispatch, repeat. Kept both
    /// as the reference semantics the batched loop must reproduce
    /// exactly and as the baseline the `dispatch` hot-path bench row
    /// measures against.
    fn run_per_event(&mut self) -> (u64, u64) {
        let mut stop = (0u64, 0u64);
        while self.completed < self.total_misses {
            let Some((time, seq, event)) = self.queue.pop_entry() else {
                stop = (u64::MAX, u64::MAX);
                break;
            };
            stop = (time, seq);
            self.dispatch(time, seq, event);
        }
        stop
    }

    /// The data-oriented loop: drain each timing-wheel slot (one
    /// timestamp) as a struct-of-arrays [`EventBatch`] and dispatch its
    /// same-kind runs in tight per-kind loops.
    ///
    /// Exactness: a wheel bucket holds exactly one timestamp in push
    /// (= sequence) order, every simulator push is at `time >= now`,
    /// and runs never reorder across kinds — so the dispatch order is
    /// the per-event loop's `(time, seq)` order, event for event.
    /// Events pushed at the current time *during* the batch carry later
    /// sequences and surface in the next `pop_batch`, exactly where the
    /// per-event loop would pop them. When the final miss completes
    /// mid-batch the tail of the batch is dropped undispatched — the
    /// same events the per-event loop would have left queued.
    fn run_batched(&mut self) -> (u64, u64) {
        let mut stop = (0u64, 0u64);
        let mut batch = EventBatch::new();
        while self.completed < self.total_misses {
            match self.queue.pop_slot(&mut batch) {
                SlotDrain::Empty => {
                    stop = (u64::MAX, u64::MAX);
                    break;
                }
                // Most timestamps hold one event; dispatching it
                // directly skips lane formation (and is bit-exact with
                // the per-event loop by construction).
                SlotDrain::Single(time, seq, event) => {
                    stop = (time, seq);
                    self.dispatch(time, seq, event);
                }
                SlotDrain::Batch => {
                    let last_seq = self.dispatch_batch(&batch);
                    stop = (batch.time, last_seq);
                }
            }
        }
        stop
    }

    /// Dispatches `batch` run by run, returning the last dispatched
    /// sequence. Returns early (dropping the batch tail) as soon as the
    /// final miss completes.
    fn dispatch_batch(&mut self, batch: &EventBatch) -> u64 {
        let time = batch.time;
        let mut cursors = [0usize; 7];
        let mut last_seq = 0u64;
        for &(kind, n) in &batch.runs {
            let start = cursors[kind as usize];
            let end = start + n as usize;
            cursors[kind as usize] = end;
            match kind {
                EventKind::CpuIssue => {
                    for i in start..end {
                        last_seq = batch.cpu_seq[i];
                        self.log_dispatch(time, last_seq, kind);
                        self.try_issue(batch.cpu_node[i] as usize, time);
                    }
                }
                EventKind::Inject => {
                    for i in start..end {
                        last_seq = batch.inject_seq[i];
                        let req = batch.inject_req[i] as usize;
                        self.log_dispatch(time, last_seq, kind);
                        self.inject_request(req, time, last_seq);
                        self.release(req);
                    }
                }
                EventKind::Ordered => {
                    for i in start..end {
                        last_seq = batch.ordered_seq[i];
                        let req = batch.ordered_req[i] as usize;
                        self.log_dispatch(time, last_seq, kind);
                        self.ordered(req, batch.ordered_attempt[i], time);
                        self.release(req);
                    }
                }
                EventKind::RequestArrive => {
                    for i in start..end {
                        last_seq = batch.arrive_seq[i];
                        let req = batch.arrive_req[i] as usize;
                        self.log_dispatch(time, last_seq, kind);
                        self.request_arrive(
                            req,
                            batch.arrive_node[i] as usize,
                            batch.arrive_retry[i],
                            time,
                            last_seq,
                        );
                        self.release(req);
                    }
                }
                EventKind::HomeReady => {
                    for i in start..end {
                        last_seq = batch.home_seq[i];
                        let req = batch.home_req[i] as usize;
                        self.log_dispatch(time, last_seq, kind);
                        self.home_ready(req, batch.home_attempt[i], time);
                        self.release(req);
                    }
                }
                EventKind::OwnerReady => {
                    for i in start..end {
                        last_seq = batch.owner_seq[i];
                        let req = batch.owner_req[i] as usize;
                        self.log_dispatch(time, last_seq, kind);
                        self.owner_ready(req, batch.owner_owner[i] as usize, time);
                        self.release(req);
                    }
                }
                EventKind::Complete => {
                    for i in start..end {
                        last_seq = batch.complete_seq[i];
                        let req = batch.complete_req[i] as usize;
                        self.log_dispatch(time, last_seq, kind);
                        self.complete(req, time, last_seq);
                        self.release(req);
                        // Only `Complete` advances the completion count,
                        // so the end-of-run check lives in this lane
                        // alone; the other kinds dispatch check-free.
                        if self.completed == self.total_misses {
                            return last_seq;
                        }
                    }
                }
            }
        }
        last_seq
    }

    #[inline]
    fn log_dispatch(&mut self, time: u64, seq: u64, kind: EventKind) {
        if let Some(log) = &mut self.dispatch_log {
            log.push((time, seq, kind));
        }
    }

    /// Drops one queued-event reference to slot `req`, recycling the
    /// slot once the miss is done and unreferenced.
    #[inline]
    fn release(&mut self, req: usize) {
        let p = &mut self.pending[req];
        p.refs -= 1;
        if p.refs == 0 && p.done {
            self.free_slots.push(req);
        }
    }

    fn dispatch(&mut self, time: u64, seq: u64, event: Event) {
        self.log_dispatch(time, seq, event.kind());
        match event {
            Event::CpuIssue { node } => self.try_issue(node, time),
            Event::Inject { req } => {
                self.inject_request(req, time, seq);
                self.release(req);
            }
            Event::Ordered { req, attempt } => {
                self.ordered(req, attempt, time);
                self.release(req);
            }
            Event::RequestArrive { req, node, retry } => {
                self.request_arrive(req, node, retry, time, seq);
                self.release(req);
            }
            Event::HomeReady { req, attempt } => {
                self.home_ready(req, attempt, time);
                self.release(req);
            }
            Event::OwnerReady { req, owner } => {
                self.owner_ready(req, owner, time);
                self.release(req);
            }
            Event::Complete { req } => {
                self.complete(req, time, seq);
                self.release(req);
            }
        }
    }

    /// Schedules `event`, drawing the next virtual sequence number.
    /// Every scheduling call funnels through here (or buffers a
    /// training record) so the (time, seq) order spans both worlds.
    #[inline]
    fn push_event(&mut self, time: u64, event: Event) {
        self.vseq += 1;
        self.queue.push_at(time, self.vseq, event);
    }

    /// Schedules an event that references pending slot `req`, pinning
    /// the slot until the event has been dispatched.
    fn push_req(&mut self, req: usize, time: u64, event: Event) {
        self.pending[req].refs += 1;
        self.push_event(time, event);
    }

    /// Applies `node`'s buffered trainings that the eager path would
    /// have dispatched strictly before the event at `(time, seq)`. A
    /// no-op when the inbox is empty (always, in eager mode).
    #[inline]
    fn drain_training(&mut self, node: usize, time: u64, seq: u64) {
        if !self.train.is_empty(node) {
            self.train
                .drain(node, time, seq, self.predictors[node].as_mut());
        }
    }

    // ---- CPU model -----------------------------------------------------

    fn draw_gap(&mut self, node: usize) -> u64 {
        let mean_ns = self.mean_gap_instructions * self.target.ns_per_instruction();
        let u: f64 = self.rngs[node].gen();
        ((-mean_ns * (1.0 - u).ln()).round() as u64).max(1)
    }

    fn try_issue(&mut self, node: usize, now: u64) {
        let window = self.sim.cpu.window();
        while self.outstanding[node] < window && self.next_miss[node] < self.programs[node].len() {
            if self.ready_at[node] > now {
                self.push_event(self.ready_at[node], Event::CpuIssue { node });
                return;
            }
            let idx = self.next_miss[node];
            self.next_miss[node] += 1;
            self.outstanding[node] += 1;
            let rec = self.programs[node][idx];
            let measured = idx >= self.sim.warmup_misses_per_node;
            let last_warmup =
                self.sim.warmup_misses_per_node > 0 && idx + 1 == self.sim.warmup_misses_per_node;
            if let CpuModel::Detailed { .. } = self.sim.cpu {
                // Program order: the next miss is reachable one
                // computation gap after this one *issues* (independent
                // instructions overlap outstanding misses).
                let gap = self.draw_gap(node);
                if measured {
                    self.report.instructions +=
                        (gap as f64 / self.target.ns_per_instruction()) as u64;
                }
                self.ready_at[node] = now + gap;
            }
            // `arrivals` is sized (or recycled) by `alloc_pending`; an
            // empty `Vec` does not allocate.
            let slot = self.alloc_pending(Pending {
                rec,
                issue_time: now,
                measured,
                last_warmup,
                attempt: 0,
                retries: 0,
                indirected: false,
                minimal_sufficient: false,
                home_invals_only: false,
                refs: 0,
                done: false,
                info: None,
                current_dests: DestSet::empty(),
                arrivals: Vec::new(),
                self_arrival: 0,
            });
            // The L2 lookup detects the miss, then the request is injected.
            self.push_req(
                slot,
                now + self.target.l2_access_ns,
                Event::Inject { req: slot },
            );
        }
    }

    // ---- Request lifecycle ----------------------------------------------

    fn inject_request(&mut self, req: usize, now: u64, seq: u64) {
        let rec = self.pending[req].rec;
        let block = rec.block();
        let requester = rec.requester;
        let home = block.home(self.sys.num_nodes());
        let minimal = DestSet::single(requester).with(home);
        let predicted = match &self.sim.protocol {
            ProtocolKind::Snooping => self.sys.broadcast_set_w::<W>(),
            ProtocolKind::Directory => minimal,
            ProtocolKind::Multicast(_) | ProtocolKind::DirectoryPredicted(_) => {
                // The prediction observes predictor state: apply every
                // buffered training the eager path would have delivered
                // before this Inject event.
                self.drain_training(requester.index(), now, seq);
                let query = PredictQuery {
                    block,
                    pc: rec.pc,
                    requester,
                    req: rec.request(),
                    minimal,
                };
                self.predictors[requester.index()].predict(&query)
            }
        };
        let dests = (predicted | minimal).without(requester);
        self.send_request(req, requester, dests, MessageClass::Request, now, 1);
    }

    /// Sends a request-class message, records arrivals, and schedules
    /// ordering + training events.
    fn send_request(
        &mut self,
        req: usize,
        src: NodeId,
        dests: DestSet<W>,
        class: MessageClass,
        now: u64,
        attempt: u8,
    ) {
        let order_time =
            self.xbar
                .send_into(now, &Message { src, dests, class }, &mut self.xbar_arrivals);
        self.record_traffic(req, class, dests.len() as u64);
        let p = &mut self.pending[req];
        p.attempt = attempt;
        p.current_dests = dests;
        p.arrivals.iter_mut().for_each(|a| *a = None);
        for &(node, t) in &self.xbar_arrivals {
            p.arrivals[node.index()] = Some(t);
        }
        let ser = self.xbar.serialization_ns(class);
        p.self_arrival = order_time + self.xbar.dst_half_ns(src) + ser;
        self.push_req(req, order_time, Event::Ordered { req, attempt });
        if self.sim.protocol.uses_predictors() {
            let rec = self.pending[req].rec;
            let requester = rec.requester;
            let retry = class == MessageClass::Retry;
            if retry || self.sim.training == TrainingMode::Eager {
                // Retries keep their queued events in both modes: they
                // are rare, and the requester's `Reissue` training
                // reads the request's state at arrival time.
                for i in 0..self.xbar_arrivals.len() {
                    let (node, t) = self.xbar_arrivals[i];
                    if node != requester || retry {
                        self.push_req(
                            req,
                            t,
                            Event::RequestArrive {
                                req,
                                node: node.index(),
                                retry,
                            },
                        );
                    }
                }
            } else {
                // Lazy mode, initial request: no wheel traffic. Each
                // destination's inbox records the arrival under the
                // same virtual sequence a queued event would have
                // drawn, to be drained at that node's next predictor
                // observation.
                for i in 0..self.xbar_arrivals.len() {
                    let (node, t) = self.xbar_arrivals[i];
                    if node != requester {
                        self.vseq += 1;
                        self.train.buffer(
                            node.index(),
                            t,
                            self.vseq,
                            rec.block(),
                            requester,
                            rec.request(),
                        );
                        // A node that rarely misses rarely observes its
                        // predictor, so under broadcast-heavy traffic
                        // its inbox would grow with the whole run
                        // (the eager path stores nothing — it trains
                        // at each arrival event). Bound the backlog:
                        // at this dispatch point every event earlier
                        // than `now` has already run and any future
                        // observation keys later, so records strictly
                        // older than `now` can be applied right away.
                        if self.train.len(node.index()) >= FORCE_DRAIN_DEPTH {
                            self.drain_training(node.index(), now, 0);
                        }
                    }
                }
            }
        }
    }

    fn arrival_at(&self, req: usize, node: NodeId) -> u64 {
        let p = &self.pending[req];
        p.arrivals[node.index()].unwrap_or(p.self_arrival)
    }

    fn ordered(&mut self, req: usize, attempt: u8, _now: u64) {
        let rec = self.pending[req].rec;
        // Snooping and the directory protocols apply the MOSI
        // transition unconditionally at the ordering point, so they use
        // the tracker's single combined classify+apply probe; multicast
        // must classify first (an insufficient request leaves the state
        // untouched until the reissue succeeds) and pays the second
        // probe only when it applies.
        let info = match self.sim.protocol {
            ProtocolKind::Multicast(_) => {
                self.tracker
                    .classify(rec.requester, rec.request(), rec.block())
            }
            _ => {
                let info = self
                    .tracker
                    .access(rec.requester, rec.request(), rec.block());
                self.mirror_transition(&info);
                info
            }
        };
        if attempt == 1 {
            self.pending[req].minimal_sufficient = info.is_sufficient(info.minimal_set());
        }
        let home = info.home;
        match self.sim.protocol {
            ProtocolKind::Snooping => {
                self.pending[req].info = Some(info);
                self.schedule_response(req, &info, home);
            }
            ProtocolKind::Directory => {
                if info.is_directory_indirection() {
                    self.pending[req].indirected = true;
                }
                self.pending[req].info = Some(info);
                // The home directory resolves the request after its
                // lookup (co-located with memory).
                let t = self.arrival_at(req, home) + self.target.mem_access_ns;
                self.push_req(req, t, Event::HomeReady { req, attempt });
            }
            ProtocolKind::Multicast(_) => {
                // The requester covers itself, and the home node always
                // participates (initial multicasts include it by
                // construction; reissues originate from it).
                let covered = self.pending[req]
                    .current_dests
                    .with(rec.requester)
                    .with(home);
                if info.is_sufficient(covered) {
                    self.apply_transition(&info);
                    self.pending[req].info = Some(info);
                    self.schedule_response(req, &info, home);
                } else {
                    // Insufficient: the home will reissue after its
                    // directory lookup. No state change now.
                    self.pending[req].indirected = true;
                    self.pending[req].retries += 1;
                    let t = self.arrival_at(req, home) + self.target.mem_access_ns;
                    self.push_req(req, t, Event::HomeReady { req, attempt });
                }
            }
            ProtocolKind::DirectoryPredicted(_) => {
                self.pending[req].info = Some(info);
                match info.owner_before {
                    Owner::Node(owner) if self.pending[req].current_dests.contains(owner) => {
                        // Prediction hit: the owner replies directly
                        // (2-hop); the home handles invalidations only.
                        self.pending[req].home_invals_only = true;
                        let t = self.arrival_at(req, owner) + self.target.l2_access_ns;
                        self.push_req(
                            req,
                            t,
                            Event::OwnerReady {
                                req,
                                owner: owner.index(),
                            },
                        );
                        let invals = info.required_observers().without(owner);
                        if rec.request().is_exclusive() && !invals.is_empty() {
                            let th = self.arrival_at(req, home) + self.target.mem_access_ns;
                            self.push_req(req, th, Event::HomeReady { req, attempt });
                        }
                    }
                    _ => {
                        // Prediction miss (or memory-owned): classic
                        // directory resolution through the home.
                        if info.is_cache_to_cache() {
                            self.pending[req].indirected = true;
                        }
                        let t = self.arrival_at(req, home) + self.target.mem_access_ns;
                        self.push_req(req, t, Event::HomeReady { req, attempt });
                    }
                }
            }
        }
    }

    /// For snooping-style (direct) resolution: the owner cache or the
    /// home memory supplies the data.
    fn schedule_response(&mut self, req: usize, info: &MissInfo<W>, home: NodeId) {
        match info.owner_before {
            Owner::Node(owner) => {
                let t = self.arrival_at(req, owner) + self.target.l2_access_ns;
                self.push_req(
                    req,
                    t,
                    Event::OwnerReady {
                        req,
                        owner: owner.index(),
                    },
                );
            }
            Owner::Memory => {
                let t = self.arrival_at(req, home) + self.target.mem_access_ns;
                let attempt = self.pending[req].attempt;
                self.push_req(req, t, Event::HomeReady { req, attempt });
            }
        }
    }

    /// The home node is ready: respond with data/ack, forward, or
    /// reissue, depending on protocol and request state.
    fn home_ready(&mut self, req: usize, attempt: u8, now: u64) {
        let rec = self.pending[req].rec;
        let home = rec.block().home(self.sys.num_nodes());
        match self.sim.protocol {
            ProtocolKind::Snooping => {
                // Memory-owned block: home responds directly.
                self.send_response(req, home, now);
            }
            ProtocolKind::Directory | ProtocolKind::DirectoryPredicted(_) => {
                let info = self.pending[req].info.expect("resolved at ordering");
                if self.pending[req].home_invals_only {
                    // Predictive directory, owner already answering:
                    // the home only fans out the invalidations.
                    let invals = info.required_observers().without(rec.requester) - {
                        match info.owner_before {
                            Owner::Node(o) => DestSet::single(o),
                            Owner::Memory => DestSet::empty(),
                        }
                    };
                    if !invals.is_empty() {
                        self.xbar.send_into(
                            now,
                            &Message {
                                src: home,
                                dests: invals,
                                class: MessageClass::Forward,
                            },
                            &mut self.xbar_arrivals,
                        );
                        self.record_traffic(req, MessageClass::Forward, invals.len() as u64);
                    }
                    return;
                }
                match info.owner_before {
                    Owner::Memory => {
                        // Invalidate sharers (no acks needed on the
                        // totally ordered network), then respond.
                        let invals = info.sharers_before.without(rec.requester);
                        if rec.request().is_exclusive() && !invals.is_empty() {
                            self.xbar.send_into(
                                now,
                                &Message {
                                    src: home,
                                    dests: invals,
                                    class: MessageClass::Forward,
                                },
                                &mut self.xbar_arrivals,
                            );
                            self.record_traffic(req, MessageClass::Forward, invals.len() as u64);
                        }
                        self.send_response(req, home, now);
                    }
                    Owner::Node(owner) => {
                        // 3-hop: forward to the owner (and invalidations
                        // to sharers for writes).
                        let mut fwd = DestSet::single(owner);
                        if rec.request().is_exclusive() {
                            fwd |= info.sharers_before.without(rec.requester);
                        }
                        self.xbar.send_into(
                            now,
                            &Message {
                                src: home,
                                dests: fwd,
                                class: MessageClass::Forward,
                            },
                            &mut self.xbar_arrivals,
                        );
                        self.record_traffic(req, MessageClass::Forward, fwd.len() as u64);
                        let arrive = self
                            .xbar_arrivals
                            .iter()
                            .find(|(n, _)| *n == owner)
                            .map(|(_, t)| *t)
                            .expect("owner is a forward destination");
                        self.push_req(
                            req,
                            arrive + self.target.l2_access_ns,
                            Event::OwnerReady {
                                req,
                                owner: owner.index(),
                            },
                        );
                    }
                }
            }
            ProtocolKind::Multicast(_) => {
                let applied = self.pending[req].info.is_some();
                if applied {
                    // Sufficient request on a memory-owned block.
                    self.send_response(req, home, now);
                } else {
                    // Reissue with the corrected destination set
                    // reflecting the *current* owner and sharers. The
                    // window of vulnerability between this injection and
                    // its ordering can still race; the third attempt
                    // broadcasts, which always succeeds.
                    let next_attempt = attempt.saturating_add(1).min(3);
                    let fresh = self
                        .tracker
                        .classify(rec.requester, rec.request(), rec.block());
                    let dests = if next_attempt >= 3 {
                        self.sys.broadcast_set_w::<W>().without(home)
                    } else {
                        fresh.sufficient_set().with(rec.requester).without(home)
                    };
                    if next_attempt >= 3 {
                        self.report_broadcast_fallback(req);
                    }
                    self.send_request(req, home, dests, MessageClass::Retry, now, next_attempt);
                }
            }
        }
    }

    fn report_broadcast_fallback(&mut self, req: usize) {
        if self.pending[req].measured {
            self.report.broadcast_fallbacks += 1;
        }
    }

    /// The owning cache injects the data response.
    fn owner_ready(&mut self, req: usize, owner: usize, now: u64) {
        self.send_response(req, NodeId::new(owner), now);
    }

    /// Sends the data (or upgrade-ack) response from `responder` to the
    /// requester and schedules completion.
    fn send_response(&mut self, req: usize, responder: NodeId, now: u64) {
        let p = &self.pending[req];
        let requester = p.rec.requester;
        let was_upgrade = p.info.map(|i| i.was_upgrade).unwrap_or(false);
        let class = if was_upgrade {
            MessageClass::Control
        } else {
            MessageClass::DataResponse
        };
        if responder == requester {
            // Home == requester: purely local response.
            let t = now + self.xbar.serialization_ns(class);
            self.push_req(req, t, Event::Complete { req });
            return;
        }
        self.xbar.send_into(
            now,
            &Message::<W> {
                src: responder,
                dests: DestSet::single(requester),
                class,
            },
            &mut self.xbar_arrivals,
        );
        self.record_traffic(req, class, 1);
        let arrive = self.xbar_arrivals[0].1;
        self.push_req(req, arrive, Event::Complete { req });
    }

    /// Predictor training on request arrival: every arrival in eager
    /// mode, retries only in lazy mode (initial requests buffer into
    /// the training inboxes instead).
    fn request_arrive(&mut self, req: usize, node: usize, retry: bool, now: u64, seq: u64) {
        // This training observes predictor state order: buffered
        // arrivals scheduled before this event apply first.
        self.drain_training(node, now, seq);
        let p = &self.pending[req];
        let rec = p.rec;
        let event = if retry && node == rec.requester.index() {
            let home = rec.block().home(self.sys.num_nodes());
            TrainEvent::Reissue {
                block: rec.block(),
                corrected: p.current_dests.with(home),
            }
        } else {
            TrainEvent::OtherRequest {
                block: rec.block(),
                requester: rec.requester,
                req: rec.request(),
            }
        };
        self.predictors[node].train(&event);
    }

    fn complete(&mut self, req: usize, now: u64, seq: u64) {
        let p = &self.pending[req];
        let rec = p.rec;
        let node = rec.requester.index();
        let info = p.info.expect("completed requests were resolved");
        let measured = p.measured;
        let last_warmup = p.last_warmup;
        let issue_time = p.issue_time;
        let indirected = p.indirected;
        let retries = p.retries;
        let minimal_sufficient = p.minimal_sufficient;
        // Train the requester's predictor with the responder identity
        // (draining its buffered arrivals first, in eager order).
        if self.sim.protocol.uses_predictors() {
            self.drain_training(node, now, seq);
            self.predictors[node].train(&TrainEvent::DataResponse {
                block: rec.block(),
                pc: rec.pc,
                responder: info.owner_before,
                req: rec.request(),
                minimal_sufficient,
            });
        }
        // Fill the L2 with a line state consistent with the tracker.
        let state = self.tracker.state(rec.block());
        let fill_state = if state.owner == Owner::Node(rec.requester) {
            Some(if state.sharers.is_empty() {
                LineState::Modified
            } else {
                LineState::Owned
            })
        } else if state.sharers.contains(rec.requester) {
            Some(LineState::Shared)
        } else {
            None // a racing GETX already invalidated us
        };
        if let Some(fill_state) = fill_state {
            if let Some(victim) = self.caches[node].fill(rec.block(), fill_state) {
                let eviction = self.tracker.evict(rec.requester, victim.block);
                if eviction == dsp_coherence::Eviction::Writeback {
                    let victim_home = victim.block.home(self.sys.num_nodes());
                    if victim_home != rec.requester {
                        self.xbar.send_into(
                            now,
                            &Message::<W> {
                                src: rec.requester,
                                dests: DestSet::single(victim_home),
                                class: MessageClass::Writeback,
                            },
                            &mut self.xbar_arrivals,
                        );
                        self.record_traffic(req, MessageClass::Writeback, 1);
                    }
                }
            }
        }
        // Measurement.
        if measured {
            self.report.measured_misses += 1;
            self.report.total_miss_latency_ns += now - issue_time;
            self.report.indirections += u64::from(indirected);
            self.report.retries += retries as u64;
            self.report.cache_to_cache += u64::from(info.is_cache_to_cache());
            self.report.latency_histogram.record(now - issue_time);
            let class = match (info.is_cache_to_cache(), indirected) {
                (true, false) => dsp_coherence::LatencyClass::CacheDirect,
                (true, true) => dsp_coherence::LatencyClass::CacheIndirect,
                (false, false) => dsp_coherence::LatencyClass::Memory,
                (false, true) => dsp_coherence::LatencyClass::MemoryIndirect,
            };
            self.report.class_counts.record(class);
        }
        if last_warmup {
            self.warmup_done_at[node] = Some(now);
        }
        self.end_time = self.end_time.max(now);
        self.completed += 1;
        self.outstanding[node] -= 1;
        self.pending[req].done = true;
        // Wake the CPU.
        match self.sim.cpu {
            CpuModel::Simple => {
                let gap = self.draw_gap(node);
                if measured {
                    self.report.instructions +=
                        (gap as f64 / self.target.ns_per_instruction()) as u64;
                }
                self.ready_at[node] = now + gap;
                self.push_event(now + gap, Event::CpuIssue { node });
            }
            CpuModel::Detailed { .. } => self.try_issue(node, now),
        }
    }

    // ---- Plumbing -------------------------------------------------------

    /// Applies the MOSI transition to the global tracker and mirrors it
    /// into the per-node caches.
    fn apply_transition(&mut self, info: &MissInfo<W>) {
        let _ = self.tracker.access(info.requester, info.req, info.block);
        self.mirror_transition(info);
    }

    /// Mirrors an already-applied MOSI transition into the per-node
    /// caches (invalidations / owner demotion).
    fn mirror_transition(&mut self, info: &MissInfo<W>) {
        match info.req {
            ReqType::GetShared => {
                if let Owner::Node(owner) = info.owner_before {
                    self.caches[owner.index()].set_state(info.block, LineState::Owned);
                }
            }
            ReqType::GetExclusive => {
                if let Owner::Node(owner) = info.owner_before {
                    self.caches[owner.index()].invalidate(info.block);
                }
                for sharer in info.sharers_before {
                    self.caches[sharer.index()].invalidate(info.block);
                }
            }
        }
    }

    fn record_traffic(&mut self, req: usize, class: MessageClass, deliveries: u64) {
        if self.pending[req].measured {
            self.report.traffic.record(class, deliveries);
        }
    }

    /// Installs `p` in a pending slot, recycling a completed slot's
    /// arrival buffer when one is free so the steady-state miss path
    /// performs no heap allocation. The recycled buffer may hold stale
    /// entries: `send_request` clears it before the first read
    /// (`arrival_at` is only reachable from events it schedules).
    fn alloc_pending(&mut self, mut p: Pending<W>) -> usize {
        let n = self.sys.num_nodes();
        if let Some(slot) = self.free_slots.pop() {
            p.arrivals = std::mem::take(&mut self.pending[slot].arrivals);
            self.pending[slot] = p;
            slot
        } else {
            p.arrivals = vec![None; n];
            self.pending.push(p);
            self.pending.len() - 1
        }
    }

    /// Coherence-substrate statistics (for tests and diagnostics).
    pub fn tracker_stats(&self) -> dsp_coherence::TrackerStats {
        self.tracker.stats()
    }

    /// Replaces each node's predictor with `wrap(node, predictor)`
    /// before the run.
    ///
    /// Instrumentation hook for the training-equivalence tests: a
    /// wrapper that records every `predict`/`train` call (and
    /// delegates) exposes the exact per-node observation sequence,
    /// which the eager and lazy modes must produce identically. The
    /// wrapper must preserve the inner predictor's behavior.
    pub fn instrument_predictors(
        &mut self,
        mut wrap: impl FnMut(usize, Box<dyn DestSetPredictor<W>>) -> Box<dyn DestSetPredictor<W>>,
    ) {
        let predictors = std::mem::take(&mut self.predictors);
        self.predictors = predictors
            .into_iter()
            .enumerate()
            .map(|(node, p)| wrap(node, p))
            .collect();
    }
}

/// Runs one simulation, selecting the [`DestSet`] word width at
/// runtime from `sim.width` (see [`crate::SetWidth`]): machines of at
/// most 64 nodes dispatch to the monomorphized `System<1>` (single-word
/// set operations throughout the tracker, crossbar, and predictors),
/// larger machines to `System<4>`. Reports are byte-identical across
/// widths — the width-equivalence property tests pin this.
pub fn simulate(
    sys: &SystemConfig,
    target: TargetSystem,
    spec: &WorkloadSpec,
    sim: SimConfig,
) -> SimReport {
    match sim.width.words(sys.num_nodes()) {
        1 => System::<1>::new(sys, target, spec, sim).run(),
        _ => System::<4>::new(sys, target, spec, sim).run(),
    }
}

/// [`simulate`] over a precomputed [`TracePartition`] (see
/// [`System::with_partition`]).
pub fn simulate_with_partition(
    sys: &SystemConfig,
    target: TargetSystem,
    spec: &WorkloadSpec,
    sim: SimConfig,
    partition: TracePartition,
) -> SimReport {
    match sim.width.words(sys.num_nodes()) {
        1 => System::<1>::with_partition(sys, target, spec, sim, partition).run(),
        _ => System::<4>::with_partition(sys, target, spec, sim, partition).run(),
    }
}

/// [`simulate_with_partition`], also returning the event queue's
/// occupancy counters (the `hotpath-bench` `sim` row).
pub fn simulate_with_queue_stats(
    sys: &SystemConfig,
    target: TargetSystem,
    spec: &WorkloadSpec,
    sim: SimConfig,
    partition: TracePartition,
) -> (SimReport, QueueCounters) {
    match sim.width.words(sys.num_nodes()) {
        1 => System::<1>::with_partition(sys, target, spec, sim, partition).run_with_queue_stats(),
        _ => System::<4>::with_partition(sys, target, spec, sim, partition).run_with_queue_stats(),
    }
}

/// A precomputed per-node partition of one workload's miss stream: the
/// programs [`System`] replays, shareable across simulations.
///
/// The partition depends only on the workload spec, the seed, the node
/// count, and the per-node miss quota — every protocol, CPU model, and
/// target machine simulated over the same trace replays the *same*
/// programs. Cloning is cheap (the programs live behind an `Arc`), so
/// sweep harnesses build each distinct partition once and hand clones
/// to [`System::with_partition`].
#[derive(Clone, Debug)]
pub struct TracePartition {
    programs: Arc<Vec<Vec<TraceRecord>>>,
    seed: u64,
    quota: usize,
}

impl TracePartition {
    /// Partitions `spec`'s miss stream (seeded with `seed`) into `n`
    /// per-node programs of `quota` misses each.
    pub fn build(spec: &WorkloadSpec, seed: u64, n: usize, quota: usize) -> Self {
        TracePartition {
            programs: Arc::new(partition_trace(spec, seed, n, quota)),
            seed,
            quota,
        }
    }

    /// Number of per-node programs (= the node count it was built for).
    pub fn nodes(&self) -> usize {
        self.programs.len()
    }

    /// The generator seed the partition was drawn with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-node miss quota (warmup + measured).
    pub fn quota(&self) -> usize {
        self.quota
    }

    /// The per-node programs.
    pub fn per_node(&self) -> &[Vec<TraceRecord>] {
        &self.programs
    }
}

impl std::ops::Index<usize> for TracePartition {
    type Output = [TraceRecord];

    fn index(&self, node: usize) -> &[TraceRecord] {
        &self.programs[node]
    }
}

/// Splits a generated global miss stream into per-node programs of
/// `quota` misses each. If the generator starves a node (it emitted too
/// few misses for it), that node's program is padded by cycling its own
/// earlier misses, preserving its access mix.
fn partition_trace(
    spec: &WorkloadSpec,
    seed: u64,
    n: usize,
    quota: usize,
) -> Vec<Vec<TraceRecord>> {
    let mut programs: Vec<Vec<TraceRecord>> = vec![Vec::with_capacity(quota); n];
    if quota == 0 {
        return programs;
    }
    let limit = (quota * n).saturating_mul(64);
    let mut drawn = 0usize;
    for rec in spec.generator(seed) {
        drawn += 1;
        if drawn > limit {
            break;
        }
        let slot = &mut programs[rec.requester.index()];
        if slot.len() < quota {
            slot.push(rec);
            if programs.iter().all(|p| p.len() >= quota) {
                break;
            }
        }
    }
    for program in &mut programs {
        if program.is_empty() {
            continue; // node genuinely inactive in this workload
        }
        let mut i = 0usize;
        while program.len() < quota {
            let rec = program[i % program.len()];
            program.push(rec);
            i += 1;
        }
    }
    programs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_core::PredictorConfig;
    use dsp_trace::Workload;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::preset(Workload::Oltp, &SystemConfig::isca03()).scaled(1.0 / 256.0)
    }

    fn run(protocol: ProtocolKind) -> SimReport {
        let sys = SystemConfig::isca03();
        let sim = SimConfig::new(protocol).misses(100, 400).seed(11);
        System::<4>::new(&sys, TargetSystem::isca03_default(), &spec(), sim).run()
    }

    #[test]
    fn snooping_completes_all_misses() {
        let r = run(ProtocolKind::Snooping);
        assert_eq!(r.measured_misses, 400 * 16);
        assert!(r.runtime_ns > 0);
        assert_eq!(r.indirections, 0, "snooping never indirects");
        assert_eq!(r.retries, 0);
    }

    #[test]
    fn directory_completes_with_indirections() {
        let r = run(ProtocolKind::Directory);
        assert_eq!(r.measured_misses, 400 * 16);
        assert!(r.indirections > 0, "OLTP has sharing misses");
        assert_eq!(r.retries, 0);
    }

    #[test]
    fn multicast_minimal_behaves_like_directory_bandwidth() {
        let r = run(ProtocolKind::Multicast(PredictorConfig::always_minimal()));
        assert_eq!(r.measured_misses, 400 * 16);
        assert!(
            r.retries > 0,
            "minimal prediction must retry on sharing misses"
        );
    }

    #[test]
    fn multicast_broadcast_never_retries() {
        let r = run(ProtocolKind::Multicast(PredictorConfig::always_broadcast()));
        assert_eq!(r.retries, 0);
        assert_eq!(r.indirections, 0);
    }

    #[test]
    fn snooping_is_fastest_directory_cheapest() {
        let snoop = run(ProtocolKind::Snooping);
        let dir = run(ProtocolKind::Directory);
        assert!(
            snoop.runtime_ns < dir.runtime_ns,
            "snooping {} should beat directory {}",
            snoop.runtime_ns,
            dir.runtime_ns
        );
        assert!(
            dir.traffic.total_bytes() < snoop.traffic.total_bytes(),
            "directory traffic should be lower"
        );
    }

    #[test]
    fn group_predictor_lands_between_endpoints() {
        let snoop = run(ProtocolKind::Snooping);
        let dir = run(ProtocolKind::Directory);
        let group = run(ProtocolKind::Multicast(
            PredictorConfig::group().indexing(dsp_core::Indexing::Macroblock { bytes: 1024 }),
        ));
        assert!(group.traffic.total_bytes() < snoop.traffic.total_bytes());
        assert!(group.runtime_ns < dir.runtime_ns);
    }

    #[test]
    fn detailed_cpu_is_no_slower_than_simple() {
        let sys = SystemConfig::isca03();
        let mk = |cpu| {
            let sim = SimConfig::new(ProtocolKind::Snooping)
                .cpu(cpu)
                .misses(50, 300)
                .seed(3);
            System::<4>::new(&sys, TargetSystem::isca03_default(), &spec(), sim).run()
        };
        let simple = mk(CpuModel::Simple);
        let detailed = mk(CpuModel::Detailed { max_outstanding: 4 });
        assert!(
            detailed.runtime_ns <= simple.runtime_ns,
            "overlapping misses should not hurt: {} vs {}",
            detailed.runtime_ns,
            simple.runtime_ns
        );
    }

    #[test]
    fn zero_warmup_measures_everything() {
        let sys = SystemConfig::isca03();
        let sim = SimConfig::new(ProtocolKind::Snooping)
            .misses(0, 100)
            .seed(5);
        let r = System::<4>::new(&sys, TargetSystem::isca03_default(), &spec(), sim).run();
        assert_eq!(r.measured_misses, 100 * 16);
    }

    #[test]
    fn random_predictions_never_wedge_the_protocol() {
        // Liveness under chaos: arbitrary destination sets must always
        // complete via reissue and the broadcast fallback.
        let r = run(ProtocolKind::Multicast(PredictorConfig::random(0xbad_5eed)));
        assert_eq!(r.measured_misses, 400 * 16);
        assert!(r.retries > 0, "random predictions must cause reissues");
    }

    #[test]
    fn predictive_directory_reduces_indirections() {
        let dir = run(ProtocolKind::Directory);
        let pred = run(ProtocolKind::DirectoryPredicted(
            PredictorConfig::owner().indexing(dsp_core::Indexing::Macroblock { bytes: 1024 }),
        ));
        assert_eq!(pred.measured_misses, dir.measured_misses);
        assert!(
            pred.indirections < dir.indirections,
            "owner prediction should convert 3-hop to 2-hop: {} vs {}",
            pred.indirections,
            dir.indirections
        );
        assert!(
            pred.avg_miss_latency_ns() < dir.avg_miss_latency_ns(),
            "2-hop transfers should shorten latency: {} vs {}",
            pred.avg_miss_latency_ns(),
            dir.avg_miss_latency_ns()
        );
        assert_eq!(pred.retries, 0, "predictive directory never retries");
    }

    #[test]
    fn predictive_directory_traffic_between_endpoints() {
        let snoop = run(ProtocolKind::Snooping);
        let pred = run(ProtocolKind::DirectoryPredicted(
            PredictorConfig::owner().indexing(dsp_core::Indexing::Macroblock { bytes: 1024 }),
        ));
        assert!(pred.traffic.total_bytes() < snoop.traffic.total_bytes());
    }

    #[test]
    fn partition_pads_starved_nodes() {
        let spec = spec();
        let programs = partition_trace(&spec, 7, 16, 50);
        for p in &programs {
            assert_eq!(p.len(), 50);
        }
    }

    #[test]
    fn shared_partition_is_byte_identical_to_fresh() {
        let sys = SystemConfig::isca03();
        let spec = spec();
        let sim = |p| SimConfig::new(p).misses(50, 200).seed(11);
        let partition = TracePartition::build(&spec, 11, sys.num_nodes(), 250);
        for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
            let fresh =
                System::<4>::new(&sys, TargetSystem::isca03_default(), &spec, sim(protocol)).run();
            let shared = System::<4>::with_partition(
                &sys,
                TargetSystem::isca03_default(),
                &spec,
                sim(protocol),
                partition.clone(),
            )
            .run();
            assert_eq!(fresh, shared, "{protocol:?} diverged on a shared partition");
        }
    }

    #[test]
    #[should_panic(expected = "partition seed mismatch")]
    fn partition_seed_mismatch_is_rejected() {
        let sys = SystemConfig::isca03();
        let spec = spec();
        let partition = TracePartition::build(&spec, 12, sys.num_nodes(), 250);
        let sim = SimConfig::new(ProtocolKind::Snooping)
            .misses(50, 200)
            .seed(11);
        let _ = System::<4>::with_partition(
            &sys,
            TargetSystem::isca03_default(),
            &spec,
            sim,
            partition,
        );
    }

    #[test]
    fn average_latency_in_physical_range() {
        let r = run(ProtocolKind::Snooping);
        let avg = r.avg_miss_latency_ns();
        // Between the direct c2c (112) and well under 10x memory (1800):
        // queueing can add, but the system is generously provisioned.
        assert!((112.0..1000.0).contains(&avg), "avg latency {avg}");
    }

    #[test]
    fn widths_and_dispatch_modes_agree() {
        use crate::{simulate, DispatchMode, SetWidth};
        let sys = SystemConfig::isca03();
        let base = SimConfig::new(ProtocolKind::Multicast(
            PredictorConfig::group().indexing(dsp_core::Indexing::Macroblock { bytes: 1024 }),
        ))
        .misses(20, 60)
        .seed(11);
        let reference = simulate(
            &sys,
            TargetSystem::isca03_default(),
            &spec(),
            base.clone().width(SetWidth::Wide),
        );
        for width in [SetWidth::Auto, SetWidth::Narrow] {
            for dispatch in [DispatchMode::Batched, DispatchMode::PerEvent] {
                let r = simulate(
                    &sys,
                    TargetSystem::isca03_default(),
                    &spec(),
                    base.clone().width(width).dispatch(dispatch),
                );
                assert_eq!(r, reference, "{width:?}/{dispatch:?} diverged");
            }
        }
    }
}
