//! The discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Events driving the simulation. `req` indexes the pending-request
/// table; `node` is a node index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A node is ready to issue its next miss (subject to its window).
    CpuIssue {
        /// Node index.
        node: usize,
    },
    /// The L2 detected the miss; the request enters the interconnect.
    Inject {
        /// Pending-request index.
        req: usize,
    },
    /// A request (attempt `attempt`) passed the ordering point.
    Ordered {
        /// Pending-request index.
        req: usize,
        /// 1 = initial multicast, 2 = first reissue, 3 = broadcast.
        attempt: u8,
    },
    /// A request-class message arrived at a node (predictor training).
    RequestArrive {
        /// Pending-request index.
        req: usize,
        /// Receiving node.
        node: usize,
        /// Whether this was a directory reissue.
        retry: bool,
    },
    /// The home directory is ready to forward / respond / reissue.
    HomeReady {
        /// Pending-request index.
        req: usize,
        /// Attempt being processed.
        attempt: u8,
    },
    /// The cache owner is ready to inject the data response.
    OwnerReady {
        /// Pending-request index.
        req: usize,
        /// The owner node injecting the response.
        owner: usize,
    },
    /// The data (or upgrade ack) arrived at the requester.
    Complete {
        /// Pending-request index.
        req: usize,
    },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Queued {
    time: u64,
    seq: u64,
    event: Event,
}

impl Ord for Queued {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue with FIFO tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Queued>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: u64, event: Event) {
        self.seq += 1;
        self.heap.push(Queued {
            time,
            seq: self.seq,
            event,
        });
    }

    /// Pops the earliest event (FIFO among equal times).
    pub fn pop(&mut self) -> Option<(u64, Event)> {
        self.heap.pop().map(|q| (q.time, q.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::CpuIssue { node: 3 });
        q.push(10, Event::CpuIssue { node: 1 });
        q.push(20, Event::CpuIssue { node: 2 });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        q.push(5, Event::CpuIssue { node: 0 });
        q.push(5, Event::CpuIssue { node: 1 });
        q.push(5, Event::CpuIssue { node: 2 });
        let order: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::CpuIssue { node } => node,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, Event::Complete { req: 0 });
        assert_eq!(q.len(), 1);
        let _ = q.pop();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
