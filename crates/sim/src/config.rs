//! Target-system parameters (paper Table 4) and simulation configuration.

use serde::{Deserialize, Serialize};

use dsp_cache::CacheConfig;
use dsp_core::PredictorConfig;
use dsp_interconnect::{InterconnectConfig, TopologySpec, ToxicSpec};

/// The simulated machine of paper Table 4: per-node latencies, link
/// parameters, cache geometry, and processor speed.
///
/// The paper derives three end-to-end latencies from these parameters,
/// which [`TargetSystem::memory_latency_ns`] and friends reproduce:
///
/// * 180 ns to obtain a block from memory (50 + 80 + 50),
/// * 112 ns for a direct cache-to-cache transfer (50 + 12 + 50),
/// * 242 ns for an indirected transfer (50 + 80 + 50 + 12 + 50).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TargetSystem {
    /// Unified L2 access latency in ns (12 in Table 4).
    pub l2_access_ns: u64,
    /// Memory (and co-located directory) access latency in ns (80).
    pub mem_access_ns: u64,
    /// Crossbar link/traversal parameters.
    pub interconnect: InterconnectConfig,
    /// L2 cache geometry (4 MB, 4-way).
    pub l2: CacheConfig,
    /// Core clock in GHz (2.0).
    pub clock_ghz: f64,
    /// Sustained IPC between misses (2.0: "four billion instructions
    /// per second if the L1 caches were perfect" on a 2 GHz core).
    pub ipc: f64,
}

impl TargetSystem {
    /// The paper's target system.
    pub fn isca03_default() -> Self {
        TargetSystem {
            l2_access_ns: 12,
            mem_access_ns: 80,
            interconnect: InterconnectConfig::isca03(),
            l2: CacheConfig::isca03_l2(),
            clock_ghz: 2.0,
            ipc: 2.0,
        }
    }

    /// Nanoseconds to execute one instruction when not missing.
    pub fn ns_per_instruction(&self) -> f64 {
        1.0 / (self.clock_ghz * self.ipc)
    }

    /// Uncontended memory-fetch latency (~180 ns).
    pub fn memory_latency_ns(&self) -> u64 {
        self.interconnect.traversal_ns + self.mem_access_ns + self.interconnect.traversal_ns
    }

    /// Uncontended direct cache-to-cache latency (~112 ns): snooping and
    /// successful multicast requests.
    pub fn cache_direct_latency_ns(&self) -> u64 {
        self.interconnect.traversal_ns + self.l2_access_ns + self.interconnect.traversal_ns
    }

    /// Uncontended indirected cache-to-cache latency (~242 ns):
    /// directory 3-hop transfers and multicast reissues.
    pub fn cache_indirect_latency_ns(&self) -> u64 {
        self.interconnect.traversal_ns
            + self.mem_access_ns
            + self.interconnect.traversal_ns
            + self.l2_access_ns
            + self.interconnect.traversal_ns
    }
}

impl Default for TargetSystem {
    fn default() -> Self {
        TargetSystem::isca03_default()
    }
}

/// Processor model driving each node (paper §5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CpuModel {
    /// "Simple, in-order, blocking processor model": one outstanding
    /// miss at a time.
    Simple,
    /// Simplified dynamically-scheduled core: overlaps up to
    /// `max_outstanding` misses, standing in for the paper's TFsim
    /// configuration (64-entry ROB, 4-wide).
    Detailed {
        /// Maximum overlapped misses (miss-level parallelism).
        max_outstanding: usize,
    },
}

impl CpuModel {
    /// The issue window width this model permits.
    pub fn window(self) -> usize {
        match self {
            CpuModel::Simple => 1,
            CpuModel::Detailed { max_outstanding } => max_outstanding.max(1),
        }
    }
}

/// Which coherence protocol the system runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProtocolKind {
    /// MOSI broadcast snooping over the totally ordered crossbar.
    Snooping,
    /// Bandwidth-efficient MOSI directory protocol in the style of the
    /// AlphaServer GS320 (no explicit acks thanks to total order).
    Directory,
    /// Multicast snooping driven by the given destination-set predictor.
    Multicast(PredictorConfig),
    /// Directory protocol with owner prediction (the Acacio-style
    /// hybrid cited by the paper's introduction): the request is sent to
    /// the home *and* a predicted set; a covered owner replies directly,
    /// turning the 3-hop indirection into a 2-hop transfer.
    DirectoryPredicted(PredictorConfig),
}

impl ProtocolKind {
    /// Display label for reports.
    pub fn label(&self) -> String {
        match self {
            ProtocolKind::Snooping => "Broadcast Snooping".to_string(),
            ProtocolKind::Directory => "Directory".to_string(),
            ProtocolKind::Multicast(p) => format!("Multicast [{}]", p.label()),
            ProtocolKind::DirectoryPredicted(p) => {
                format!("Predictive Directory [{}]", p.label())
            }
        }
    }

    /// Whether nodes carry destination-set predictors under this
    /// protocol.
    pub fn uses_predictors(&self) -> bool {
        matches!(
            self,
            ProtocolKind::Multicast(_) | ProtocolKind::DirectoryPredicted(_)
        )
    }
}

/// How the simulator delivers request-arrival training to the
/// destination-set predictors.
///
/// Training is only *observable* at a predictor's next call (a
/// prediction, a response/reissue training, or end-of-run state), so
/// the two modes are behaviorally identical — property tests in
/// `tests/train_equivalence.rs` pin every predictor call sequence and
/// every report byte against each other.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TrainingMode {
    /// The seed path: one queued [`crate::Event::RequestArrive`] per
    /// request destination, trained when the event fires. Kept as the
    /// reference implementation and benchmark baseline.
    Eager,
    /// The production path: request arrivals append to allocation-free
    /// per-node inboxes and are drained — in the exact (time, sequence)
    /// order the eager path would have applied — immediately before the
    /// node's next predictor observation. The event wheel carries
    /// O(misses) events instead of O(misses × destinations).
    #[default]
    Lazy,
}

/// How the simulator's event loop drains the timing wheel.
///
/// Both modes dispatch the exact same `(time, seq)` event sequence —
/// the property tests in `tests/dispatch_equivalence.rs` pin every
/// dispatched event and every report byte against each other — so the
/// choice is purely a throughput knob.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DispatchMode {
    /// The production path: each wheel slot (all events sharing one
    /// timestamp, FIFO by push sequence) is drained wholesale into
    /// struct-of-arrays event lanes and dispatched per-kind in tight
    /// runs, paying one bitmap scan and one `match` per run instead of
    /// per event.
    #[default]
    Batched,
    /// The seed path: one pop, one `match`, one handler call per
    /// event. Kept as the reference implementation and benchmark
    /// baseline.
    PerEvent,
}

/// Compile-time destination-set width selection for a run.
///
/// The simulator is monomorphized over the [`dsp_types::DestSet`]
/// word count `W`: machines of at most 64 nodes fit every set in one
/// word (`DestSet<1>`), which removes the multi-word loops and the
/// upper-words-zero checks from the tracker, crossbar, and predictor
/// hot paths. Width is *observationally invisible* — the golden suite
/// pins every table byte-identical under both widths.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SetWidth {
    /// Pick from the node count: ≤ 64 nodes runs `DestSet<1>`, larger
    /// machines `DestSet<4>`.
    #[default]
    Auto,
    /// Force the single-word monomorphization (requires ≤ 64 nodes).
    Narrow,
    /// Force the four-word monomorphization (any node count up to 256).
    Wide,
}

impl SetWidth {
    /// The `DestSet` word count this selection resolves to on a
    /// machine of `num_nodes` nodes.
    pub fn words(self, num_nodes: usize) -> usize {
        match self {
            SetWidth::Auto => {
                if num_nodes <= 64 {
                    1
                } else {
                    4
                }
            }
            SetWidth::Narrow => 1,
            SetWidth::Wide => 4,
        }
    }
}

/// One timing-simulation run: protocol, CPU model, and run lengths.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Protocol to simulate.
    pub protocol: ProtocolKind,
    /// Processor model.
    pub cpu: CpuModel,
    /// Misses per node simulated before measurement starts (warms
    /// caches, coherence state, and predictors).
    pub warmup_misses_per_node: usize,
    /// Misses per node in the measurement window.
    pub measured_misses_per_node: usize,
    /// RNG seed (trace generation and computation-gap draws).
    pub seed: u64,
    /// Predictor-training delivery (lazy inboxes by default; the eager
    /// per-arrival events survive as the reference).
    pub training: TrainingMode,
    /// Event-loop draining strategy (batched slot drains by default;
    /// the per-event pop loop survives as the reference).
    pub dispatch: DispatchMode,
    /// Destination-set width selection, honored by the width-dispatch
    /// entry points ([`crate::simulate`] and friends). `System::<W>`
    /// constructors ignore it — the turbofish already chose.
    pub width: SetWidth,
    /// Interconnect fault-injection chain (empty by default, which
    /// keeps the crossbar on its untouched fast path). Toxic streams
    /// are seeded from [`SimConfig::seed`], independently of the trace
    /// and gap-draw streams.
    pub toxics: ToxicSpec,
    /// Network shape (the paper's crossbar by default).
    pub topology: TopologySpec,
}

impl SimConfig {
    /// A reasonable default: simple CPU, snooping, 500 + 2000 misses per
    /// node.
    pub fn new(protocol: ProtocolKind) -> Self {
        SimConfig {
            protocol,
            cpu: CpuModel::Simple,
            warmup_misses_per_node: 500,
            measured_misses_per_node: 2000,
            seed: 1,
            training: TrainingMode::default(),
            dispatch: DispatchMode::default(),
            width: SetWidth::default(),
            toxics: ToxicSpec::none(),
            topology: TopologySpec::Crossbar,
        }
    }

    /// Sets the CPU model.
    #[must_use]
    pub fn cpu(mut self, cpu: CpuModel) -> Self {
        self.cpu = cpu;
        self
    }

    /// Sets warmup and measured miss counts per node.
    #[must_use]
    pub fn misses(mut self, warmup: usize, measured: usize) -> Self {
        self.warmup_misses_per_node = warmup;
        self.measured_misses_per_node = measured;
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the training-delivery mode.
    #[must_use]
    pub fn training(mut self, training: TrainingMode) -> Self {
        self.training = training;
        self
    }

    /// Selects the event-loop draining strategy.
    #[must_use]
    pub fn dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Selects the destination-set width.
    #[must_use]
    pub fn width(mut self, width: SetWidth) -> Self {
        self.width = width;
        self
    }

    /// Sets the interconnect fault-injection chain.
    #[must_use]
    pub fn toxics(mut self, toxics: ToxicSpec) -> Self {
        self.toxics = toxics;
        self
    }

    /// Selects the network shape.
    #[must_use]
    pub fn topology(mut self, topology: TopologySpec) -> Self {
        self.topology = topology;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_latencies_match_paper() {
        let t = TargetSystem::isca03_default();
        assert_eq!(t.memory_latency_ns(), 180);
        assert_eq!(t.cache_direct_latency_ns(), 112);
        assert_eq!(t.cache_indirect_latency_ns(), 242);
    }

    #[test]
    fn instruction_rate_is_four_gips() {
        let t = TargetSystem::isca03_default();
        assert!((t.ns_per_instruction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cpu_windows() {
        assert_eq!(CpuModel::Simple.window(), 1);
        assert_eq!(CpuModel::Detailed { max_outstanding: 4 }.window(), 4);
        assert_eq!(CpuModel::Detailed { max_outstanding: 0 }.window(), 1);
    }

    #[test]
    fn protocol_labels() {
        assert_eq!(ProtocolKind::Snooping.label(), "Broadcast Snooping");
        assert_eq!(ProtocolKind::Directory.label(), "Directory");
        assert!(ProtocolKind::Multicast(PredictorConfig::group())
            .label()
            .contains("Group"));
    }

    #[test]
    fn sim_config_builder() {
        let c = SimConfig::new(ProtocolKind::Snooping)
            .cpu(CpuModel::Detailed { max_outstanding: 4 })
            .misses(100, 400)
            .seed(9);
        assert_eq!(c.warmup_misses_per_node, 100);
        assert_eq!(c.measured_misses_per_node, 400);
        assert_eq!(c.seed, 9);
        assert_eq!(c.cpu.window(), 4);
        assert_eq!(c.training, TrainingMode::Lazy, "lazy is the default");
        let c = c.training(TrainingMode::Eager);
        assert_eq!(c.training, TrainingMode::Eager);
    }
}
