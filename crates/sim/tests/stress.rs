//! Stress and conservation tests of the timing simulator.

use proptest::prelude::*;

use dsp_core::{Capacity, Indexing, PredictorConfig};
use dsp_sim::{CpuModel, ProtocolKind, SimConfig, System, TargetSystem};
use dsp_trace::{Workload, WorkloadSpec};
use dsp_types::SystemConfig;

fn spec(w: Workload) -> WorkloadSpec {
    WorkloadSpec::preset(w, &SystemConfig::isca03()).scaled(1.0 / 512.0)
}

fn run(protocol: ProtocolKind, cpu: CpuModel, seed: u64) -> dsp_sim::SimReport {
    let sys = SystemConfig::isca03();
    let sim = SimConfig::new(protocol).cpu(cpu).misses(20, 150).seed(seed);
    System::<4>::new(
        &sys,
        TargetSystem::isca03_default(),
        &spec(Workload::Apache),
        sim,
    )
    .run()
}

/// Every protocol × CPU-model combination completes exactly the
/// configured number of misses — conservation, no deadlock, no
/// double-completion.
#[test]
fn conservation_across_all_protocols() {
    let protocols = [
        ProtocolKind::Snooping,
        ProtocolKind::Directory,
        ProtocolKind::Multicast(PredictorConfig::group()),
        ProtocolKind::Multicast(PredictorConfig::always_minimal()),
        ProtocolKind::Multicast(PredictorConfig::always_broadcast()),
        ProtocolKind::Multicast(PredictorConfig::sticky_spatial(1)),
        ProtocolKind::DirectoryPredicted(PredictorConfig::owner()),
    ];
    for protocol in protocols {
        for cpu in [CpuModel::Simple, CpuModel::Detailed { max_outstanding: 4 }] {
            let label = protocol.label();
            let r = run(protocol, cpu, 7);
            assert_eq!(r.measured_misses, 150 * 16, "{label} / {cpu:?}");
            assert!(r.runtime_ns > 0, "{label} / {cpu:?}");
        }
    }
}

/// Simulations are deterministic: identical config + seed => identical
/// report.
#[test]
fn simulation_is_deterministic() {
    let mk = || {
        run(
            ProtocolKind::Multicast(
                PredictorConfig::owner_group().indexing(Indexing::Macroblock { bytes: 1024 }),
            ),
            CpuModel::Detailed { max_outstanding: 4 },
            99,
        )
    };
    let a = mk();
    let b = mk();
    assert_eq!(a, b);
}

/// Latency accounting is self-consistent: total latency >= misses ×
/// the cheapest possible service latency.
#[test]
fn latency_floor_holds() {
    let r = run(ProtocolKind::Snooping, CpuModel::Simple, 3);
    let target = TargetSystem::isca03_default();
    let floor = target.cache_direct_latency_ns() * r.measured_misses;
    assert!(
        r.total_miss_latency_ns >= floor,
        "{} < {floor}",
        r.total_miss_latency_ns
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Chaos monkey: random predictors with arbitrary seeds never stall
    /// the protocol, and always finish with bounded retries (at most 2
    /// per miss thanks to the broadcast fallback).
    #[test]
    fn random_predictions_always_complete(seed in any::<u64>()) {
        let r = run(
            ProtocolKind::Multicast(PredictorConfig::random(seed)),
            CpuModel::Detailed { max_outstanding: 2 },
            seed ^ 0xf00d,
        );
        prop_assert_eq!(r.measured_misses, 150 * 16);
        prop_assert!(r.retries <= 2 * r.measured_misses);
    }

    /// Tiny predictor tables (heavy eviction pressure) and odd
    /// associativities still complete and stay between the endpoints on
    /// traffic.
    #[test]
    fn degenerate_tables_complete(entries_log2 in 3u32..10, ways in 1usize..4) {
        let entries = 1usize << entries_log2;
        let ways = ways.min(entries);
        let entries = entries - (entries % ways);
        let cfg = PredictorConfig::group()
            .indexing(Indexing::Macroblock { bytes: 1024 })
            .entries(Capacity::Finite { entries: entries.max(ways), ways });
        let r = run(ProtocolKind::Multicast(cfg), CpuModel::Simple, 5);
        prop_assert_eq!(r.measured_misses, 150 * 16);
    }
}
