//! Eager-vs-lazy training equivalence.
//!
//! The lazy training path (per-node inboxes drained before each
//! predictor observation) must be *observationally identical* to the
//! seed eager path (one queued `RequestArrive` event per destination):
//! training order only matters at the points where predictor state is
//! read. These tests machine-check that claim two ways:
//!
//! 1. **Prediction/training sequences**: every predictor is wrapped in
//!    a recording decorator; for each node, the full ordered sequence
//!    of `predict` calls (query + returned set) and `train` events must
//!    match between the two modes — including ties, where a buffered
//!    arrival and a queued event share a timestamp and the virtual
//!    sequence number decides.
//! 2. **Reports**: the measured `SimReport` (runtime, traffic,
//!    latencies, retries, ...) and the tracker statistics must be
//!    equal, so the experiment goldens cannot drift.
//!
//! The property tests sweep protocols (every policy family, both
//! multicast and predictive-directory), node counts up to 64, CPU
//! models, and seeds.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use dsp_core::{Capacity, DestSetPredictor, Indexing, PredictQuery, PredictorConfig, TrainEvent};
use dsp_sim::{CpuModel, ProtocolKind, SimConfig, System, TargetSystem, TrainingMode};
use dsp_trace::{Workload, WorkloadSpec};
use dsp_types::{DestSet, SystemConfig};

/// One recorded predictor observation.
#[derive(Clone, Debug, PartialEq)]
enum Call {
    Predict(PredictQuery, DestSet),
    Train(TrainEvent),
}

/// One node's shared observation log.
type CallLog = Arc<Mutex<Vec<Call>>>;

/// Decorator that logs every call and delegates to the wrapped policy.
/// `train_batch` is inherited from the trait default, so batched drains
/// log exactly like the eager per-event calls they replace.
#[derive(Debug)]
struct Recorder {
    inner: Box<dyn DestSetPredictor>,
    log: CallLog,
}

impl DestSetPredictor for Recorder {
    fn predict(&mut self, query: &PredictQuery) -> DestSet {
        let result = self.inner.predict(query);
        self.log.lock().unwrap().push(Call::Predict(*query, result));
        result
    }

    fn train(&mut self, event: &TrainEvent) {
        self.log.lock().unwrap().push(Call::Train(*event));
        self.inner.train(event);
    }

    fn name(&self) -> String {
        self.inner.name()
    }

    fn entry_payload_bits(&self) -> u64 {
        self.inner.entry_payload_bits()
    }

    fn storage_bits(&self) -> u64 {
        self.inner.storage_bits()
    }
}

/// Runs one simulation in `mode` with recording predictors, returning
/// the report and each node's observation sequence.
fn run_recorded(
    sys: &SystemConfig,
    spec: &WorkloadSpec,
    sim: SimConfig,
    mode: TrainingMode,
) -> (dsp_sim::SimReport, Vec<Vec<Call>>) {
    let mut system = System::<4>::new(
        sys,
        TargetSystem::isca03_default(),
        spec,
        sim.training(mode),
    );
    let logs: Arc<Mutex<Vec<CallLog>>> = Arc::default();
    {
        let logs = Arc::clone(&logs);
        system.instrument_predictors(move |_, inner| {
            let log = Arc::new(Mutex::new(Vec::new()));
            logs.lock().unwrap().push(Arc::clone(&log));
            Box::new(Recorder { inner, log })
        });
    }
    let report = system.run();
    let calls: Vec<Vec<Call>> = logs
        .lock()
        .unwrap()
        .iter()
        .map(|l| l.lock().unwrap().clone())
        .collect();
    (report, calls)
}

/// Asserts both modes agree for one configuration.
fn check_equivalence(sys: &SystemConfig, spec: &WorkloadSpec, sim: SimConfig) {
    let (eager_report, eager_calls) = run_recorded(sys, spec, sim.clone(), TrainingMode::Eager);
    let (lazy_report, lazy_calls) = run_recorded(sys, spec, sim.clone(), TrainingMode::Lazy);
    assert_eq!(
        eager_report, lazy_report,
        "reports diverged for {:?}",
        sim.protocol
    );
    assert_eq!(eager_calls.len(), lazy_calls.len());
    for (node, (eager, lazy)) in eager_calls.iter().zip(&lazy_calls).enumerate() {
        assert_eq!(eager.len(), lazy.len(), "node {node}: call count diverged");
        for (i, (a, b)) in eager.iter().zip(lazy).enumerate() {
            assert_eq!(
                a, b,
                "node {node}: observation {i} diverged under {:?}",
                sim.protocol
            );
        }
    }
}

fn predictor_strategy() -> impl Strategy<Value = PredictorConfig> {
    prop_oneof![
        Just(PredictorConfig::owner().indexing(Indexing::Macroblock { bytes: 1024 })),
        Just(PredictorConfig::group().indexing(Indexing::Macroblock { bytes: 1024 })),
        Just(PredictorConfig::owner_group().indexing(Indexing::Macroblock { bytes: 1024 })),
        Just(PredictorConfig::broadcast_if_shared()),
        Just(PredictorConfig::sticky_spatial(1)),
        Just(
            PredictorConfig::group()
                .indexing(Indexing::ProgramCounter)
                .entries(Capacity::Finite {
                    entries: 512,
                    ways: 2
                })
        ),
        Just(PredictorConfig::always_minimal()),
        Just(PredictorConfig::always_broadcast()),
        Just(PredictorConfig::random(0xdead_beef)),
    ]
}

fn protocol_strategy() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        predictor_strategy().prop_map(ProtocolKind::Multicast),
        predictor_strategy().prop_map(ProtocolKind::Multicast),
        predictor_strategy().prop_map(ProtocolKind::Multicast),
        predictor_strategy().prop_map(ProtocolKind::DirectoryPredicted),
    ]
}

fn workload_strategy() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(Workload::Oltp),
        Just(Workload::Apache),
        Just(Workload::BarnesHut),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The paper's 16-node machine across protocols, policies,
    /// workloads, CPU models, and seeds.
    #[test]
    fn isca03_machines_match(
        protocol in protocol_strategy(),
        workload in workload_strategy(),
        seed in 1u64..1000,
        detailed in prop_oneof![Just(false), Just(true)],
        warmup in prop_oneof![Just(0usize), Just(30usize)],
    ) {
        let sys = SystemConfig::isca03();
        let spec = WorkloadSpec::preset(workload, &sys).scaled(1.0 / 256.0);
        let cpu = if detailed {
            CpuModel::Detailed { max_outstanding: 4 }
        } else {
            CpuModel::Simple
        };
        let sim = SimConfig::new(protocol).cpu(cpu).misses(warmup, 120).seed(seed);
        check_equivalence(&sys, &spec, sim);
    }

    /// Wide machines: fan-out past one `DestSet` word, heavier inbox
    /// pressure (bursts spill past the inline ring).
    #[test]
    fn wide_machines_match(
        protocol in protocol_strategy(),
        nodes in prop_oneof![Just(4usize), Just(32usize), Just(64usize)],
        seed in 1u64..500,
    ) {
        let sys = SystemConfig::builder().num_nodes(nodes).build().expect("valid");
        let spec = WorkloadSpec::preset(Workload::Oltp, &sys).scaled(1.0 / 256.0);
        let sim = SimConfig::new(protocol).misses(10, 60).seed(seed);
        check_equivalence(&sys, &spec, sim);
    }
}

/// The always-minimal multicast forces reissues and broadcast
/// fallbacks: the retained eager `Reissue` path must interleave with
/// drained `OtherRequest` records correctly.
#[test]
fn reissue_heavy_runs_match() {
    let sys = SystemConfig::isca03();
    let spec = WorkloadSpec::preset(Workload::Oltp, &sys).scaled(1.0 / 256.0);
    for seed in [3u64, 11, 42] {
        let sim = SimConfig::new(ProtocolKind::Multicast(PredictorConfig::always_minimal()))
            .misses(50, 300)
            .seed(seed);
        check_equivalence(&sys, &spec, sim);
    }
    // Sticky-Spatial is the one policy that trains on reissues.
    let sim = SimConfig::new(ProtocolKind::Multicast(PredictorConfig::sticky_spatial(1)))
        .misses(50, 300)
        .seed(7);
    check_equivalence(&sys, &spec, sim);
}

/// Protocols without predictors are untouched by the training mode.
#[test]
fn predictor_free_protocols_are_identical() {
    let sys = SystemConfig::isca03();
    let spec = WorkloadSpec::preset(Workload::Oltp, &sys).scaled(1.0 / 256.0);
    for protocol in [ProtocolKind::Snooping, ProtocolKind::Directory] {
        let mk = |mode| {
            let sim = SimConfig::new(protocol)
                .misses(50, 200)
                .seed(5)
                .training(mode);
            System::<4>::new(&sys, TargetSystem::isca03_default(), &spec, sim).run()
        };
        assert_eq!(mk(TrainingMode::Eager), mk(TrainingMode::Lazy));
    }
}
