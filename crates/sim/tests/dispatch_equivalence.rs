//! Property tests pinning batched dispatch to the per-event baseline.
//!
//! Batched mode drains whole timing-wheel slots into a
//! struct-of-arrays [`dsp_sim::EventBatch`] and dispatches kind-runs in
//! tight loops; exactness is non-negotiable, so these tests replay the
//! same configuration under both [`DispatchMode`]s and require the
//! *complete* dispatch traces — every `(time, seq, kind)` triple in
//! order — and the final reports to be identical, across protocols,
//! predictor policies, system sizes from 4 to 256 nodes, both set
//! widths, and both CPU models.

use proptest::prelude::*;

use dsp_core::PredictorConfig;
use dsp_sim::{
    CpuModel, DispatchMode, EventKind, ProtocolKind, SimConfig, SimReport, System, TargetSystem,
};
use dsp_trace::{Workload, WorkloadSpec};
use dsp_types::SystemConfig;

/// Runs one configuration at width `W` under `mode`, returning the
/// report and the full `(time, seq, kind)` dispatch trace.
fn run_logged<const W: usize>(
    nodes: usize,
    protocol: ProtocolKind,
    cpu: CpuModel,
    seed: u64,
    measured: usize,
    mode: DispatchMode,
) -> (SimReport, Vec<(u64, u64, EventKind)>) {
    let sys = SystemConfig::builder()
        .num_nodes(nodes)
        .build()
        .expect("valid node count");
    let spec = WorkloadSpec::preset(Workload::Apache, &sys).scaled(1.0 / 512.0);
    let sim = SimConfig::new(protocol)
        .cpu(cpu)
        .misses(5, measured)
        .seed(seed)
        .dispatch(mode);
    System::<W>::new(&sys, TargetSystem::isca03_default(), &spec, sim).run_with_dispatch_log()
}

/// Asserts batched and per-event dispatch produce byte-identical
/// traces and reports for one configuration at width `W`.
fn assert_modes_agree<const W: usize>(
    nodes: usize,
    protocol: ProtocolKind,
    cpu: CpuModel,
    seed: u64,
    measured: usize,
) {
    let label = protocol.label();
    let (batched_report, batched_log) =
        run_logged::<W>(nodes, protocol, cpu, seed, measured, DispatchMode::Batched);
    let (per_event_report, per_event_log) =
        run_logged::<W>(nodes, protocol, cpu, seed, measured, DispatchMode::PerEvent);
    if let Some(i) = (0..batched_log.len().min(per_event_log.len()))
        .find(|&i| batched_log[i] != per_event_log[i])
    {
        panic!(
            "{label}/{nodes} nodes/W={W}: dispatch order diverged at index {i}: \
             batched {:?} vs per-event {:?}",
            batched_log[i], per_event_log[i]
        );
    }
    assert_eq!(
        batched_log.len(),
        per_event_log.len(),
        "{label}/{nodes} nodes/W={W}: trace lengths diverged"
    );
    assert_eq!(
        batched_report, per_event_report,
        "{label}/{nodes} nodes/W={W}: reports diverged"
    );
}

fn protocols() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::Snooping),
        Just(ProtocolKind::Directory),
        Just(ProtocolKind::Multicast(PredictorConfig::group())),
        Just(ProtocolKind::Multicast(PredictorConfig::owner_group())),
        Just(ProtocolKind::Multicast(PredictorConfig::always_minimal())),
        Just(ProtocolKind::Multicast(PredictorConfig::always_broadcast())),
        Just(ProtocolKind::Multicast(PredictorConfig::sticky_spatial(1))),
        Just(ProtocolKind::DirectoryPredicted(PredictorConfig::owner())),
    ]
}

fn cpus() -> impl Strategy<Value = CpuModel> {
    prop_oneof![
        Just(CpuModel::Simple),
        Just(CpuModel::Detailed { max_outstanding: 4 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Narrow-width systems (4–64 nodes, `DestSet<1>`): batched and
    /// per-event dispatch are trace-identical.
    #[test]
    fn narrow_width_modes_agree(
        protocol in protocols(),
        cpu in cpus(),
        nodes in prop_oneof![Just(4usize), Just(16), Just(64)],
        seed in 0u64..1_000,
        measured in 10usize..40,
    ) {
        assert_modes_agree::<1>(nodes, protocol, cpu, seed, measured);
    }

    /// Wide-width systems (`DestSet<4>`, up to the 256-node scaling
    /// study): batched and per-event dispatch are trace-identical.
    #[test]
    fn wide_width_modes_agree(
        protocol in protocols(),
        cpu in cpus(),
        nodes in prop_oneof![Just(16usize), Just(256)],
        seed in 0u64..1_000,
        measured in 10usize..30,
    ) {
        assert_modes_agree::<4>(nodes, protocol, cpu, seed, measured);
    }
}

/// Deterministic paper-scale spot check kept out of proptest so a
/// regression names itself without shrinking: every protocol at the
/// ISCA-03 16-node target, both widths.
#[test]
fn all_protocols_trace_identical_at_paper_scale() {
    let protocols = [
        ProtocolKind::Snooping,
        ProtocolKind::Directory,
        ProtocolKind::Multicast(PredictorConfig::group()),
        ProtocolKind::Multicast(PredictorConfig::owner_group()),
        ProtocolKind::DirectoryPredicted(PredictorConfig::owner()),
    ];
    for protocol in protocols {
        assert_modes_agree::<1>(
            16,
            protocol,
            CpuModel::Detailed { max_outstanding: 4 },
            42,
            60,
        );
        assert_modes_agree::<4>(
            16,
            protocol,
            CpuModel::Detailed { max_outstanding: 4 },
            42,
            60,
        );
    }
}
