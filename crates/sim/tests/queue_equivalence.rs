//! Property tests pinning [`WheelQueue`]'s pop order to the seed
//! [`ReferenceQueue`] (the PR 2 oracle pattern: the replaced
//! implementation survives as the equivalence baseline).
//!
//! Both queues order by (time, push-sequence); these tests drive both
//! through identical push/pop interleavings and require identical pop
//! sequences, covering the regimes the wheel handles differently:
//! dense equal-time bursts inside one bucket, events beyond the wheel
//! horizon (overflow parking + promotion on cursor advance), cursor
//! jumps across many empty horizons, and pushes behind the cursor.

use proptest::prelude::*;

use dsp_sim::{Event, EventBatch, ReferenceQueue, WheelQueue};

/// Wheel horizon (mirrors `WHEEL_SLOTS` in the implementation): the
/// strategies below straddle it deliberately.
const HORIZON: u64 = 4096;

#[derive(Clone, Copy, Debug)]
enum Op {
    /// Push at `last_pushed_time + delta` (simulator-like monotone-ish
    /// pushes when deltas are small, far-future when large).
    Push { delta: u64, tag: usize },
    /// Pop one event from both queues and compare.
    Pop,
}

fn op_strategy(max_delta: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..=max_delta, 0usize..1_000_000).prop_map(|(delta, tag)| Op::Push { delta, tag }),
        (0..=max_delta, 0usize..1_000_000).prop_map(|(delta, tag)| Op::Push { delta, tag }),
        Just(Op::Pop),
    ]
}

/// Replays `ops` against both queues, anchoring push times to the last
/// *popped* time plus the op's delta (like the simulator scheduling
/// from `now`), and asserts every pop matches. Returns how many pops
/// produced an event.
fn check_equivalence(ops: &[Op]) -> usize {
    let mut wheel = WheelQueue::new();
    let mut heap = ReferenceQueue::new();
    let mut now = 0u64;
    let mut popped = 0usize;
    for op in ops {
        match *op {
            Op::Push { delta, tag } => {
                let time = now.saturating_add(delta);
                wheel.push(time, Event::Complete { req: tag });
                heap.push(time, Event::Complete { req: tag });
            }
            Op::Pop => {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b, "pop diverged after {popped} agreeing pops");
                if let Some((t, _)) = a {
                    now = t;
                    popped += 1;
                }
            }
        }
        assert_eq!(wheel.len(), heap.len());
        assert_eq!(wheel.is_empty(), heap.is_empty());
    }
    // Drain both: the full residual order must agree too.
    loop {
        let a = wheel.pop();
        let b = heap.pop();
        assert_eq!(a, b, "drain diverged");
        if a.is_none() {
            break;
        }
        popped += 1;
    }
    popped
}

/// Replays `ops` against a batch-drained wheel and a per-event
/// reference heap: each `Pop` takes the next event from the buffered
/// [`EventBatch`] (refilled via [`WheelQueue::pop_batch`] when empty)
/// and must match `ReferenceQueue::pop_entry` exactly — the flattened
/// batch stream is the per-event stream. Also checks the batch-local
/// invariants (single timestamp per batch, run list consistent with
/// the lanes) and that the wheel's counters reconcile throughout.
fn check_batch_equivalence(ops: &[Op]) -> usize {
    let mut wheel = WheelQueue::new();
    let mut heap = ReferenceQueue::new();
    let mut batch = EventBatch::new();
    let mut buffered: Vec<(u64, u64, Event)> = Vec::new();
    let mut cursor = 0usize;
    let mut now = 0u64;
    let mut popped = 0usize;
    for op in ops {
        match *op {
            Op::Push { delta, tag } => {
                let time = now.saturating_add(delta);
                wheel.push(time, Event::Complete { req: tag });
                heap.push(time, Event::Complete { req: tag });
            }
            Op::Pop => {
                if cursor == buffered.len() {
                    buffered.clear();
                    cursor = 0;
                    if wheel.pop_batch(&mut batch) {
                        let run_total: u32 = batch.runs.iter().map(|&(_, n)| n).sum();
                        assert_eq!(run_total as usize, batch.len(), "run list out of sync");
                        buffered.extend(batch.iter());
                        assert!(
                            buffered.iter().all(|&(t, _, _)| t == batch.time),
                            "batch mixed timestamps"
                        );
                    }
                }
                let a = if cursor < buffered.len() {
                    let entry = buffered[cursor];
                    cursor += 1;
                    Some(entry)
                } else {
                    None
                };
                let b = heap.pop_entry();
                assert_eq!(a, b, "batched pop diverged after {popped} agreeing pops");
                if let Some((t, _, _)) = a {
                    now = t;
                    popped += 1;
                }
            }
        }
        wheel.counters().assert_reconciled();
        assert_eq!(wheel.len() + buffered.len() - cursor, heap.len());
    }
    loop {
        if cursor == buffered.len() {
            buffered.clear();
            cursor = 0;
            if wheel.pop_batch(&mut batch) {
                buffered.extend(batch.iter());
            }
        }
        let a = if cursor < buffered.len() {
            let entry = buffered[cursor];
            cursor += 1;
            Some(entry)
        } else {
            None
        };
        let b = heap.pop_entry();
        assert_eq!(a, b, "batched drain diverged");
        if a.is_none() {
            break;
        }
        popped += 1;
    }
    wheel.counters().assert_reconciled();
    popped
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Simulator-like schedules: deltas within the protocol's latency
    /// range, always inside the wheel horizon.
    #[test]
    fn near_horizon_schedules_match(ops in proptest::collection::vec(op_strategy(500), 1..600)) {
        check_equivalence(&ops);
    }

    /// Dense equal-time bursts: many pushes with delta 0 land in the
    /// same bucket and must drain in push order.
    #[test]
    fn equal_time_bursts_match(ops in proptest::collection::vec(op_strategy(2), 1..600)) {
        check_equivalence(&ops);
    }

    /// Deltas straddling the horizon: events park in the overflow heap
    /// and must promote into the wheel in (time, seq) order as the
    /// cursor advances.
    #[test]
    fn far_future_promotion_matches(
        ops in proptest::collection::vec(op_strategy(HORIZON * 3), 1..400)
    ) {
        check_equivalence(&ops);
    }

    /// Sparse, huge jumps: the wheel empties repeatedly and the cursor
    /// leaps across many whole horizons.
    #[test]
    fn sparse_horizon_jumps_match(
        ops in proptest::collection::vec(op_strategy(HORIZON * 1000), 1..200)
    ) {
        check_equivalence(&ops);
    }

    /// Batch draining flattens to the per-event order: simulator-like
    /// schedules popped through `pop_batch` + `EventBatch::iter` match
    /// the reference heap event for event.
    #[test]
    fn batch_drain_matches_near_horizon(
        ops in proptest::collection::vec(op_strategy(500), 1..600)
    ) {
        check_batch_equivalence(&ops);
    }

    /// Dense equal-time bursts drain as one batch whose lane order is
    /// the push order.
    #[test]
    fn batch_drain_matches_equal_time_bursts(
        ops in proptest::collection::vec(op_strategy(2), 1..600)
    ) {
        check_batch_equivalence(&ops);
    }

    /// Overflow promotion feeds batches in (time, seq) order too.
    #[test]
    fn batch_drain_matches_far_future_promotion(
        ops in proptest::collection::vec(op_strategy(HORIZON * 3), 1..400)
    ) {
        check_batch_equivalence(&ops);
    }
}

/// Deterministic interleaving that forces every wheel regime in one
/// run: warmup misses at dense times, a far-future tail, then drain.
#[test]
fn mixed_regimes_fixed_trace() {
    let mut ops = Vec::new();
    for i in 0..200usize {
        ops.push(Op::Push {
            delta: (i as u64 * 37) % 90,
            tag: i,
        });
        if i % 3 == 0 {
            ops.push(Op::Pop);
        }
        if i % 11 == 0 {
            ops.push(Op::Push {
                delta: HORIZON + (i as u64 * 131) % (HORIZON * 4),
                tag: 10_000 + i,
            });
        }
    }
    let popped = check_equivalence(&ops);
    assert!(popped > 200, "trace exercised both levels ({popped} pops)");
    assert_eq!(
        check_batch_equivalence(&ops),
        popped,
        "batch draining saw a different event count"
    );
}
