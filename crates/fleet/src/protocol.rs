//! The fleet wire protocol: newline-delimited JSON over TCP.
//!
//! One [`Request`] line in, one [`Reply`] line out, in strict
//! alternation per connection — no framing beyond `\n`, no pipelining,
//! no async. Every message is a single line of the same JSON dialect
//! the checkpoint journals use, so a captured session is greppable next
//! to the journals it produced.
//!
//! Connections are long-lived: a worker holds one connection for its
//! whole life (hello → challenge → auth → lease → stream cell
//! completions → repeat); observers (`repro fleet-status`) connect,
//! ask, and hang up. Reads on the coordinator side run with a short
//! timeout so connection threads can notice shutdown; [`MessageReader`]
//! buffers partial lines across those timeouts, so a message split
//! across TCP segments is never torn.
//!
//! # Handshake (v2)
//!
//! ```text
//! worker → Hello { worker, proto }
//! coord  → Challenge { nonce }            (or Refused: VersionSkew)
//! worker → Auth { worker, mac: mac64(token, nonce), session }
//! coord  → Welcome { proto, scale, identity, session }
//!                                         (or Refused: AuthFailure)
//! ```
//!
//! `session` in `Auth` is `None` on a fresh connection; a worker
//! reconnecting after a dropped TCP session echoes the `SessionId` it
//! was welcomed with, and the coordinator re-adopts its live leases
//! instead of expiring them. Observer requests (`Status` / `Results`)
//! need no auth — they reveal progress, not control.

use std::fmt;
use std::io::{self, Read, Write};

use serde::{Deserialize, Serialize};

use dsp_bench::engine::{manifest_digest, CellId, CellOutput, ExperimentPlan};

use crate::stats::{ResultsPage, StatusReport};

/// Protocol revision; bumped on any incompatible message change.
/// v2 added the challenge/auth handshake and session ids.
pub const PROTOCOL_VERSION: u32 = 2;

/// Typed protocol violations — every way the coordinator can refuse a
/// client, distinguishable by the client without parsing prose.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolError {
    /// A line that is not a well-formed message.
    Malformed {
        /// Decoder detail.
        detail: String,
    },
    /// A well-formed message that is not valid in this connection
    /// state (e.g. `Lease` before `Auth`).
    UnknownRequest {
        /// What was rejected and why.
        detail: String,
    },
    /// The challenge response did not verify, or a mutating request
    /// arrived on an unauthenticated connection.
    AuthFailure {
        /// Refusal detail (never echoes the expected MAC).
        detail: String,
    },
    /// The client speaks a different protocol revision.
    VersionSkew {
        /// The coordinator's [`PROTOCOL_VERSION`].
        coordinator: u32,
        /// What the client announced.
        client: u32,
    },
    /// Coordinator-side failure while serving the request.
    Internal {
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Malformed { detail } => write!(f, "malformed message: {detail}"),
            ProtocolError::UnknownRequest { detail } => write!(f, "unknown request: {detail}"),
            ProtocolError::AuthFailure { detail } => write!(f, "authentication failed: {detail}"),
            ProtocolError::VersionSkew {
                coordinator,
                client,
            } => write!(
                f,
                "protocol version skew: coordinator v{coordinator}, client v{client}"
            ),
            ProtocolError::Internal { detail } => write!(f, "coordinator error: {detail}"),
        }
    }
}

/// Everything that must match for a worker to lease against a
/// coordinator's plan: the plan universe ([`manifest_digest`] over the
/// `CellId` manifest) plus the run parameters the ids do *not* encode —
/// title, seed, and the exact scale bits (cell ids hash only cell
/// parameters, so two runs of the same cells at different scales share
/// ids but not outputs).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanIdentity {
    /// Experiment name (`fig5`, `table2`, ...): what a worker feeds
    /// back into `experiments::plan_for` to rebuild the plan locally.
    pub experiment: String,
    /// Plan title.
    pub title: String,
    /// Cell count.
    pub cells: usize,
    /// Base seed.
    pub seed: u64,
    /// `Scale::identity()` — exact footprint bits and run lengths.
    pub scale: String,
    /// `manifest_digest` over the plan's `CellId`s, as fixed-width hex.
    pub manifest: String,
}

impl PlanIdentity {
    /// The identity of `plan`, registered under `experiment`.
    pub fn of(experiment: &str, plan: &ExperimentPlan) -> Self {
        let ids = CellId::assign(&plan.cells);
        PlanIdentity {
            experiment: experiment.to_string(),
            title: plan.title.clone(),
            cells: plan.cells.len(),
            seed: plan.seed,
            scale: plan.scale.identity(),
            manifest: format!("{:016x}", manifest_digest(&ids)),
        }
    }

    /// The first field where `self` and `other` disagree, rendered for
    /// an error message; `None` when the identities match.
    pub fn mismatch(&self, other: &PlanIdentity) -> Option<String> {
        let fields = [
            ("experiment", &self.experiment, &other.experiment),
            ("plan title", &self.title, &other.title),
            ("scale", &self.scale, &other.scale),
            ("manifest", &self.manifest, &other.manifest),
        ];
        for (what, mine, theirs) in fields {
            if mine != theirs {
                return Some(format!("{what}: {mine:?} here vs {theirs:?} there"));
            }
        }
        if self.cells != other.cells {
            return Some(format!(
                "cells: {} here vs {} there",
                self.cells, other.cells
            ));
        }
        if self.seed != other.seed {
            return Some(format!("seed: {} here vs {} there", self.seed, other.seed));
        }
        None
    }
}

/// Client → coordinator messages.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Request {
    /// First message on a worker connection.
    Hello {
        /// Worker name (unique per fleet, e.g. `w1`).
        worker: String,
        /// The worker's [`PROTOCOL_VERSION`].
        proto: u32,
    },
    /// Second message: the answer to [`Reply::Challenge`].
    Auth {
        /// Worker name (must match the `Hello`).
        worker: String,
        /// `auth::mac64(token, nonce)` over the challenged nonce.
        mac: u64,
        /// `None` on a fresh connection; the previously-welcomed
        /// `SessionId` when reconnecting, so live leases are re-adopted
        /// instead of expired.
        session: Option<u64>,
    },
    /// Ask for work.
    Lease {
        /// Requesting worker.
        worker: String,
    },
    /// Keep-alive for a held lease (journal growth also counts as
    /// liveness, so this is only needed when no cell has finished and
    /// the journal is not visible to the coordinator).
    Heartbeat {
        /// Reporting worker.
        worker: String,
        /// The held lease.
        lease: u64,
    },
    /// One finished cell, streamed as it completes.
    CellDone {
        /// Reporting worker.
        worker: String,
        /// The lease the cell ran under.
        lease: u64,
        /// The cell's id, fixed-width hex.
        cell: String,
        /// The cell's plan index.
        index: usize,
        /// The deterministic output.
        output: Box<CellOutput>,
    },
    /// Every cell of the lease has been reported.
    Complete {
        /// Reporting worker.
        worker: String,
        /// The finished lease.
        lease: u64,
    },
    /// Observer: progress counters and active leases.
    Status,
    /// Observer: a page of per-cell completion states, in plan order.
    Results {
        /// First plan index of the page.
        start: usize,
        /// Maximum cells in the page.
        limit: usize,
    },
}

/// Coordinator → client messages.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Reply {
    /// Answer to [`Request::Hello`] when the versions agree: prove you
    /// know the fleet token.
    Challenge {
        /// Fresh per-connection nonce to MAC under the shared token.
        nonce: u64,
    },
    /// Answer to a verified [`Request::Auth`]: what this fleet is
    /// running.
    Welcome {
        /// The coordinator's [`PROTOCOL_VERSION`].
        proto: u32,
        /// Scale preset name (`quick` / `standard` / `paper`) the
        /// worker feeds to `Scale::parse`.
        scale: String,
        /// Full plan identity; the worker must verify it against the
        /// plan it builds locally before leasing.
        identity: PlanIdentity,
        /// The connection's session id — echoed in `Auth.session` when
        /// reconnecting to keep held leases alive.
        session: u64,
    },
    /// Work: run exactly these cells, journal to `journal`.
    Grant {
        /// Lease id, echoed in every report about this work.
        lease: u64,
        /// Cell ids (fixed-width hex), in plan order.
        cells: Vec<String>,
        /// Journal filename, relative to the fleet directory. Workers
        /// sharing the coordinator's filesystem journal here so the
        /// coordinator can tail it for liveness and harvest it on
        /// expiry.
        journal: String,
    },
    /// No work available right now (stragglers may yet be re-leased);
    /// ask again after `poll_ms`.
    Wait {
        /// Suggested back-off.
        poll_ms: u64,
    },
    /// The sweep is complete; the worker should exit.
    Shutdown,
    /// Report accepted.
    Ack,
    /// The lease is no longer held by the reporter (expired or the
    /// cell was re-leased); drop the result and ask for fresh work.
    Stale {
        /// The stale lease id.
        lease: u64,
    },
    /// Answer to [`Request::Status`].
    Status(StatusReport),
    /// Answer to [`Request::Results`].
    Results(ResultsPage),
    /// Typed refusal: protocol violation, failed auth, version skew,
    /// or internal failure.
    Refused {
        /// Why.
        error: ProtocolError,
    },
}

/// Writes one message as one flushed JSON line.
///
/// # Errors
///
/// I/O failure, or a message that cannot be encoded (non-finite float).
pub fn send<T: Serialize, W: Write>(to: &mut W, msg: &T) -> io::Result<()> {
    let line = serde_json::to_string(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("cannot encode: {e}")))?;
    debug_assert!(
        !line.contains('\n'),
        "protocol messages must be single-line"
    );
    to.write_all(line.as_bytes())?;
    to.write_all(b"\n")?;
    to.flush()
}

/// Reads newline-delimited messages from a stream, preserving partial
/// lines across read timeouts.
///
/// A plain `BufRead::read_line` would drop already-buffered bytes when
/// a read times out mid-line; this reader keeps them, so coordinator
/// connection threads can poll with short timeouts (to notice
/// shutdown) without ever tearing a message.
#[derive(Debug)]
pub struct MessageReader<R: Read> {
    from: R,
    buf: Vec<u8>,
}

impl<R: Read> MessageReader<R> {
    /// Wraps a stream.
    pub fn new(from: R) -> Self {
        MessageReader {
            from,
            buf: Vec::new(),
        }
    }

    /// Reads the next message.
    ///
    /// Returns `Ok(None)` on clean end-of-stream (the peer hung up
    /// between messages).
    ///
    /// # Errors
    ///
    /// `WouldBlock`/`TimedOut` pass through with buffered bytes intact
    /// — call again. EOF mid-line, malformed JSON, and I/O failures are
    /// terminal.
    pub fn recv<T: Deserialize>(&mut self) -> io::Result<Option<T>> {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                let text = std::str::from_utf8(&line[..line.len() - 1]).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("non-UTF-8 message: {e}"),
                    )
                })?;
                return serde_json::from_str(text)
                    .map(Some)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")));
            }
            let mut chunk = [0u8; 4096];
            match self.from.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "stream closed mid-message",
                        ))
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_round_trip_one_per_line() {
        let msgs = [
            Request::Hello {
                worker: "w1".into(),
                proto: PROTOCOL_VERSION,
            },
            Request::Lease {
                worker: "w1".into(),
            },
            Request::Results {
                start: 0,
                limit: 10,
            },
        ];
        let mut wire = Vec::new();
        for msg in &msgs {
            send(&mut wire, msg).expect("send");
        }
        assert_eq!(wire.iter().filter(|&&b| b == b'\n').count(), msgs.len());
        let mut reader = MessageReader::new(&wire[..]);
        for msg in &msgs {
            let got: Request = reader.recv().expect("recv").expect("some");
            assert_eq!(format!("{got:?}"), format!("{msg:?}"));
        }
        assert!(reader.recv::<Request>().expect("eof").is_none());
    }

    /// A reader fed one byte at a time (worst-case segmentation) still
    /// reassembles whole messages.
    #[test]
    fn reader_survives_split_segments() {
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                match self.0.split_first() {
                    Some((&b, rest)) => {
                        buf[0] = b;
                        self.0 = rest;
                        Ok(1)
                    }
                    None => Ok(0),
                }
            }
        }
        let mut wire = Vec::new();
        send(&mut wire, &Reply::Wait { poll_ms: 250 }).expect("send");
        let mut reader = MessageReader::new(OneByte(&wire));
        let got: Reply = reader.recv().expect("recv").expect("some");
        assert!(matches!(got, Reply::Wait { poll_ms: 250 }));
    }

    #[test]
    fn handshake_messages_and_refusals_round_trip() {
        let mut wire = Vec::new();
        send(
            &mut wire,
            &Request::Auth {
                worker: "w1".into(),
                mac: 0xdead_beef,
                session: Some(3),
            },
        )
        .expect("send auth");
        send(
            &mut wire,
            &Request::Hello {
                worker: "w1".into(),
                proto: 2,
            },
        )
        .expect("send hello");
        let mut reader = MessageReader::new(&wire[..]);
        let got: Request = reader.recv().expect("recv").expect("some");
        assert!(
            matches!(
                got,
                Request::Auth {
                    mac: 0xdead_beef,
                    session: Some(3),
                    ..
                }
            ),
            "{got:?}"
        );
        let mut wire = Vec::new();
        for reply in [
            Reply::Challenge { nonce: 17 },
            Reply::Refused {
                error: ProtocolError::VersionSkew {
                    coordinator: PROTOCOL_VERSION,
                    client: 1,
                },
            },
        ] {
            send(&mut wire, &reply).expect("send");
        }
        let mut reader = MessageReader::new(&wire[..]);
        let challenge: Reply = reader.recv().expect("recv").expect("some");
        assert!(matches!(challenge, Reply::Challenge { nonce: 17 }));
        let refused: Reply = reader.recv().expect("recv").expect("some");
        match refused {
            Reply::Refused { error } => {
                assert_eq!(
                    error,
                    ProtocolError::VersionSkew {
                        coordinator: PROTOCOL_VERSION,
                        client: 1
                    }
                );
                assert!(error.to_string().contains("version skew"), "{error}");
            }
            other => panic!("expected refusal, got {other:?}"),
        }
    }

    #[test]
    fn mismatch_reports_the_differing_field() {
        let a = PlanIdentity {
            experiment: "fig5".into(),
            title: "t".into(),
            cells: 4,
            seed: 7,
            scale: "s".into(),
            manifest: "m".into(),
        };
        assert_eq!(a.mismatch(&a), None);
        let mut b = a.clone();
        b.scale = "other".into();
        let msg = a.mismatch(&b).expect("differs");
        assert!(msg.contains("scale"), "{msg}");
    }
}
