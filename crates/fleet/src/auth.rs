//! Shared-token session authentication for the fleet control plane.
//!
//! The coordinator no longer trusts its network: every mutating
//! connection must prove knowledge of the fleet token before it can
//! lease, report, or heartbeat. The proof is a challenge/response —
//! the coordinator sends a fresh nonce, the client answers with
//! [`mac64`]`(token, nonce)` — so a captured handshake cannot be
//! replayed against a new connection (a new connection gets a new
//! nonce).
//!
//! The MAC is the workspace's [`mix64`] mixer chained over the token
//! bytes and the nonce, std-only like everything else in the fleet.
//! It is an integrity/authorization gate against misconfigured or
//! version-skewed clients and casual port-scanners, **not** a
//! cryptographic MAC: anyone who can read the token (it is shared
//! among the fleet's machines) or the process memory is inside the
//! trust boundary already. The design constraint is "a client that
//! does not know the token, or speaks a different protocol, must get a
//! typed refusal instead of corrupting the sweep".

use std::sync::atomic::{AtomicU64, Ordering};

use dsp_types::hash::{mix64, FX_MIX};

/// Domain separator so a `mac64` output can never collide with a bare
/// `mix64` of the same nonce.
const MAC_DOMAIN: u64 = 0x6d61_6336_3464_7370; // "mac64dsp"

/// Keyed hash of `nonce` under `token`: the challenge response a
/// client sends in `Auth`, and the value the coordinator verifies.
///
/// Deterministic, order-sensitive, and sensitive to the token length
/// (so `"ab" + "c"` and `"a" + "bc"` diverge). An empty token is a
/// valid (open-fleet) key: the handshake shape stays identical, only
/// the secret is trivial.
pub fn mac64(token: &str, nonce: u64) -> u64 {
    let mut h = mix64(nonce ^ MAC_DOMAIN);
    for chunk in token.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = mix64(h ^ u64::from_le_bytes(word) ^ FX_MIX);
    }
    mix64(h ^ (token.len() as u64) ^ nonce.rotate_left(32))
}

/// Process-wide nonce source: a counter mixed through [`mix64`], so
/// nonces are unique per connection and do not reveal the accept
/// order. Uniqueness is what the challenge needs; unpredictability is
/// explicitly not a goal (see the module docs).
pub fn fresh_nonce() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    // Never hand out 0: a zeroed struct must not verify by accident.
    mix64(n ^ MAC_DOMAIN) | 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_is_deterministic_and_keyed() {
        assert_eq!(mac64("secret", 42), mac64("secret", 42));
        assert_ne!(mac64("secret", 42), mac64("secret", 43), "nonce-bound");
        assert_ne!(mac64("secret", 42), mac64("Secret", 42), "token-bound");
        assert_ne!(mac64("", 42), mac64("x", 42), "empty key is distinct");
    }

    #[test]
    fn mac_is_length_sensitive() {
        // Same bytes, different chunk split must not collide: the
        // length fold breaks simple extension shuffles.
        assert_ne!(mac64("abcdefgh", 7), mac64("abcdefg", 7));
        assert_ne!(mac64("a", 7), mac64("a\0", 7));
    }

    #[test]
    fn nonces_are_unique_and_nonzero() {
        let a = fresh_nonce();
        let b = fresh_nonce();
        assert_ne!(a, b);
        assert_ne!(a, 0);
        assert_ne!(b, 0);
    }
}
