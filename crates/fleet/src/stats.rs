//! Fleet bookkeeping shared by the ledger, the protocol, and the CLI:
//! lease-churn counters, status snapshots, and result pages.

use serde::{Deserialize, Serialize};

/// Lease-churn counters, maintained by the
/// [`LeaseLedger`](crate::lease::LeaseLedger) and reported at end of
/// run.
///
/// The reconciliation invariant: every cell-grant event either ended in
/// that grant's completion or in the cell moving to another lease
/// (stolen from a straggler, or requeued when its lease expired), so
/// `cells_granted == cells_completed + cells_stolen` — and every cell
/// completed exactly once.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetCounters {
    /// Leases handed out.
    pub leases_granted: u64,
    /// Leases whose every cell was reported by their holder.
    pub leases_completed: u64,
    /// Leases expired for lost liveness.
    pub leases_expired: u64,
    /// Cell-grant events (a re-granted cell counts again).
    pub cells_granted: u64,
    /// Cells completed (each cell exactly once).
    pub cells_completed: u64,
    /// Cell-reassignment events: stolen from a straggler's tail or
    /// requeued from an expired lease.
    pub cells_stolen: u64,
    /// Completed cells recovered from a dead worker's journal.
    pub cells_harvested: u64,
    /// Reports rejected because the reporter no longer held the cell.
    pub stale_reports: u64,
    /// Reconnects that presented a known `SessionId` and were welcomed
    /// back.
    pub sessions_resumed: u64,
    /// Live leases re-adopted (refreshed instead of expired) across
    /// those reconnects.
    pub leases_readopted: u64,
    /// Ledger transitions replayed from the WAL by `--recover` (zero on
    /// a run that never crashed).
    pub wal_events_replayed: u64,
    /// Completed cells re-adopted from the master journal during
    /// recovery.
    pub cells_recovered: u64,
}

impl FleetCounters {
    /// Whether the ledger reconciles for a finished sweep over
    /// `total_cells` cells.
    pub fn reconciled(&self, total_cells: u64) -> bool {
        self.cells_completed == total_cells
            && self.cells_granted == self.cells_completed + self.cells_stolen
    }
}

/// One active lease, as shown in a status snapshot.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaseInfo {
    /// Lease id.
    pub lease: u64,
    /// Holding worker.
    pub worker: String,
    /// Cells not yet reported.
    pub outstanding: usize,
    /// Cells completed under this lease.
    pub done: usize,
}

/// Progress counters plus the active leases — the coordinator's answer
/// to [`Request::Status`](crate::protocol::Request::Status).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StatusReport {
    /// Experiment name.
    pub experiment: String,
    /// Cells in the plan.
    pub total_cells: usize,
    /// Cells completed so far.
    pub completed_cells: usize,
    /// Whether the sweep has finished (final table rendered).
    pub complete: bool,
    /// Churn counters so far.
    pub counters: FleetCounters,
    /// Active leases.
    pub leases: Vec<LeaseInfo>,
}

/// One cell's completion state in a results page.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellProgress {
    /// Plan index.
    pub index: usize,
    /// Cell id, fixed-width hex.
    pub cell: String,
    /// `pending` / `leased` / `done`.
    pub state: String,
    /// For `done`: the worker whose result was accepted (harvested
    /// cells carry the dead worker's name). For `leased`: the holder.
    pub worker: Option<String>,
}

/// A page of per-cell states in plan order — the incremental-results
/// answer served while the sweep is still running.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResultsPage {
    /// Cells in the plan.
    pub total: usize,
    /// Cells completed so far.
    pub completed: usize,
    /// Plan index of the first entry.
    pub start: usize,
    /// The page.
    pub cells: Vec<CellProgress>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconciliation_requires_full_completion_and_balanced_churn() {
        let mut c = FleetCounters {
            cells_granted: 12,
            cells_completed: 10,
            cells_stolen: 2,
            ..FleetCounters::default()
        };
        assert!(c.reconciled(10));
        assert!(!c.reconciled(12), "two cells never completed");
        c.cells_stolen = 1;
        assert!(!c.reconciled(10), "a grant went unaccounted");
    }

    #[test]
    fn counters_round_trip_as_json() {
        let c = FleetCounters {
            leases_granted: 3,
            cells_granted: 9,
            cells_completed: 7,
            cells_stolen: 2,
            ..FleetCounters::default()
        };
        let text = serde_json::to_string(&c).expect("encode");
        let back: FleetCounters = serde_json::from_str(&text).expect("decode");
        assert_eq!(back, c);
    }
}
