//! The lease state machine: which worker owns which cells, with
//! work-stealing and expiry.
//!
//! Pure and clock-free: every transition takes `now` (milliseconds, any
//! monotonic origin) as an explicit argument, so the machine can be
//! property-tested over arbitrary grant/steal/expire/complete
//! interleavings with simulated time. The coordinator supplies real
//! wall-clock offsets; tests supply whatever adversarial schedule they
//! like.
//!
//! Each cell is always in exactly one state — pending, leased to
//! exactly one lease, or done — and the transitions preserve the churn
//! ledger invariant checked by
//! [`FleetCounters::reconciled`]: every grant event ends in either a
//! completion under that grant or a reassignment (steal / expiry
//! requeue), never both, never neither.
//!
//! Results from a lease that no longer holds a cell are **rejected**
//! ([`CellReport::Stale`]), not merged: outputs are deterministic, so
//! re-running the cell under its new lease produces identical bytes and
//! nothing is lost — while accepting them would let one cell's result
//! enter the master journal from two workers, which is exactly what the
//! reconciliation check forbids.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use dsp_bench::engine::{CellId, JournalTail};

use crate::stats::{FleetCounters, LeaseInfo};

/// One cell's position in the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CellState {
    /// Waiting to be granted (initially, or again after a requeue).
    Pending,
    /// Owned by the lease with this id.
    Leased(u64),
    /// Completed exactly once; terminal.
    Done,
}

/// An active lease.
#[derive(Clone, Debug)]
pub struct Lease {
    /// Lease id (monotonic).
    pub id: u64,
    /// Holding worker.
    pub worker: String,
    /// Outstanding cells in plan order — the order the worker runs
    /// them, so stealing from the *back* takes the cells the holder
    /// would reach last.
    pub cells: Vec<CellId>,
    /// Cells completed under this lease.
    pub done: usize,
    /// Last liveness evidence (protocol message or journal growth).
    pub last_alive: u64,
    /// When the last cell was accepted under this lease (or the grant
    /// time, before any completion) — the baseline the coordinator's
    /// [`LeaseSizer`] measures per-cell wall clock against.
    pub last_progress: u64,
    /// Last observed journal size, for growth detection.
    pub journal_tail: JournalTail,
}

/// What [`LeaseLedger::grant`] produced.
#[derive(Clone, Debug)]
pub enum GrantOutcome {
    /// A new lease.
    Granted {
        /// The lease id.
        lease: u64,
        /// Its cells, in plan order.
        cells: Vec<CellId>,
        /// Whether the cells were stolen from a straggler's tail
        /// rather than drawn from the pending queue.
        stolen: bool,
    },
    /// Nothing grantable right now: everything is leased out in tails
    /// too short to steal. Poll again — an expiry may free work.
    Wait,
    /// Every cell is done; the worker should exit.
    Finished,
}

/// Verdict on one reported cell completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellReport {
    /// First completion: record the output.
    Accepted,
    /// The cell was already done; identical by determinism, drop it.
    Duplicate,
    /// The reporter no longer holds the cell (lease expired or the
    /// cell was stolen); drop it — its current owner will complete it.
    Stale,
}

/// The coordinator's authoritative record of cell ownership.
#[derive(Debug)]
pub struct LeaseLedger {
    /// Every cell id, in plan order.
    order: Vec<CellId>,
    /// Id → plan index.
    index: HashMap<CellId, usize>,
    /// Per-cell state, by plan index.
    state: Vec<CellState>,
    /// Plan indices awaiting a grant (BTreeSet keeps plan order).
    pending: BTreeSet<usize>,
    /// Active leases by id (BTreeMap for deterministic iteration).
    active: BTreeMap<u64, Lease>,
    next_lease: u64,
    /// Churn ledger.
    pub counters: FleetCounters,
}

impl LeaseLedger {
    /// A ledger over `cells` (the plan's `CellId::assign` manifest, in
    /// plan order; ids are unique within a plan by construction).
    pub fn new(cells: Vec<CellId>) -> Self {
        let index = cells.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let pending = (0..cells.len()).collect();
        LeaseLedger {
            state: vec![CellState::Pending; cells.len()],
            index,
            pending,
            active: BTreeMap::new(),
            next_lease: 1,
            counters: FleetCounters::default(),
            order: cells,
        }
    }

    /// Cells in the plan.
    pub fn total(&self) -> usize {
        self.order.len()
    }

    /// Cells completed so far.
    pub fn completed(&self) -> usize {
        self.state
            .iter()
            .filter(|s| matches!(s, CellState::Done))
            .count()
    }

    /// Cells awaiting a grant.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Cells held by active leases.
    pub fn outstanding(&self) -> usize {
        self.active.values().map(|l| l.cells.len()).sum()
    }

    /// Whether every cell is done.
    pub fn is_complete(&self) -> bool {
        self.completed() == self.total()
    }

    /// The active lease with id `lease`.
    pub fn lease(&self, lease: u64) -> Option<&Lease> {
        self.active.get(&lease)
    }

    /// Status-snapshot rows for every active lease.
    pub fn lease_infos(&self) -> Vec<LeaseInfo> {
        self.active
            .values()
            .map(|l| LeaseInfo {
                lease: l.id,
                worker: l.worker.clone(),
                outstanding: l.cells.len(),
                done: l.done,
            })
            .collect()
    }

    /// One cell's state, for results pages: `(id, state-name, holder)`
    /// where `holder` is the owning lease for leased cells.
    pub fn cell_view(&self, index: usize) -> Option<(CellId, &'static str, Option<u64>)> {
        let id = *self.order.get(index)?;
        Some(match self.state[index] {
            CellState::Pending => (id, "pending", None),
            CellState::Leased(lease) => (id, "leased", Some(lease)),
            CellState::Done => (id, "done", None),
        })
    }

    /// Grants up to `max_cells` cells to `worker`: from the pending
    /// queue in plan order, or — when the queue is empty — by stealing
    /// the back half of the largest straggler lease (the cells its
    /// holder would reach last). Single-cell leases are never stolen
    /// from, so two idle workers cannot ping-pong one cell; a wedged
    /// single-cell lease is recovered by expiry instead.
    pub fn grant(&mut self, worker: &str, now: u64, max_cells: usize) -> GrantOutcome {
        if self.is_complete() {
            return GrantOutcome::Finished;
        }
        let max_cells = max_cells.max(1);
        let mut take: Vec<usize> = Vec::new();
        while take.len() < max_cells {
            match self.pending.pop_first() {
                Some(i) => take.push(i),
                None => break,
            }
        }
        let mut stolen = false;
        if take.is_empty() {
            // Steal: largest outstanding tail wins, oldest lease on
            // ties (deterministic under the BTreeMap ordering).
            let victim = self
                .active
                .values()
                .filter(|l| l.cells.len() >= 2)
                .max_by_key(|l| (l.cells.len(), std::cmp::Reverse(l.id)))
                .map(|l| l.id);
            let Some(victim) = victim else {
                return GrantOutcome::Wait;
            };
            let lease = self.active.get_mut(&victim).expect("victim is active");
            let steal = (lease.cells.len() / 2).min(max_cells);
            let tail = lease.cells.split_off(lease.cells.len() - steal);
            self.counters.cells_stolen += tail.len() as u64;
            take = tail.iter().map(|id| self.index[id]).collect();
            stolen = true;
        }
        let id = self.next_lease;
        self.next_lease += 1;
        let cells: Vec<CellId> = take.iter().map(|&i| self.order[i]).collect();
        for &i in &take {
            self.state[i] = CellState::Leased(id);
        }
        self.counters.leases_granted += 1;
        self.counters.cells_granted += cells.len() as u64;
        self.active.insert(
            id,
            Lease {
                id,
                worker: worker.to_string(),
                cells: cells.clone(),
                done: 0,
                last_alive: now,
                last_progress: now,
                journal_tail: JournalTail::default(),
            },
        );
        GrantOutcome::Granted {
            lease: id,
            cells,
            stolen,
        }
    }

    /// Re-applies a grant recorded in the coordinator's WAL: the same
    /// transition [`grant`](Self::grant) made originally, but with the
    /// lease id and cell set forced to what the log says rather than
    /// chosen by policy. Pending cells are drawn from the queue;
    /// still-leased cells are taken from their current holder as a
    /// steal — exactly the two sources a live grant has — so the churn
    /// counters reconcile across the replay the same way they did
    /// across the original run.
    ///
    /// # Errors
    ///
    /// A WAL that grants a completed or unknown cell is corrupt (the
    /// live ledger can never do that); the error names the cell.
    pub fn replay_granted(
        &mut self,
        lease: u64,
        worker: &str,
        cells: &[CellId],
        now: u64,
    ) -> Result<(), String> {
        if self.active.contains_key(&lease) {
            return Err(format!("WAL grants lease {lease} twice"));
        }
        for &cell in cells {
            let Some(&idx) = self.index.get(&cell) else {
                return Err(format!("WAL grants unknown cell {cell}"));
            };
            match self.state[idx] {
                CellState::Pending => {
                    self.pending.remove(&idx);
                }
                CellState::Leased(victim) => {
                    let holder = self
                        .active
                        .get_mut(&victim)
                        .ok_or_else(|| format!("cell {cell} leased to unknown lease {victim}"))?;
                    holder.cells.retain(|c| *c != cell);
                    self.counters.cells_stolen += 1;
                }
                CellState::Done => {
                    return Err(format!("WAL grants completed cell {cell}"));
                }
            }
            self.state[idx] = CellState::Leased(lease);
        }
        self.counters.leases_granted += 1;
        self.counters.cells_granted += cells.len() as u64;
        self.active.insert(
            lease,
            Lease {
                id: lease,
                worker: worker.to_string(),
                cells: cells.to_vec(),
                done: 0,
                last_alive: now,
                last_progress: now,
                journal_tail: JournalTail::default(),
            },
        );
        self.next_lease = self.next_lease.max(lease + 1);
        Ok(())
    }

    /// Records protocol-level liveness. Returns `false` for an unknown
    /// (expired) lease.
    pub fn heartbeat(&mut self, lease: u64, now: u64) -> bool {
        match self.active.get_mut(&lease) {
            Some(l) => {
                l.last_alive = now;
                true
            }
            None => false,
        }
    }

    /// Records a journal-size observation: growth counts as liveness,
    /// so a worker making durable progress is never expired just
    /// because its messages are delayed.
    pub fn observe_journal(&mut self, lease: u64, tail: JournalTail, now: u64) {
        if let Some(l) = self.active.get_mut(&lease) {
            if tail.bytes > l.journal_tail.bytes || tail.lines > l.journal_tail.lines {
                l.journal_tail = tail;
                l.last_alive = now;
            }
        }
    }

    /// Judges one reported cell completion; see [`CellReport`]. Only
    /// the cell's *current* leaseholder may complete it.
    pub fn complete_cell(&mut self, lease: u64, cell: CellId, now: u64) -> CellReport {
        let Some(&idx) = self.index.get(&cell) else {
            self.counters.stale_reports += 1;
            return CellReport::Stale;
        };
        match self.state[idx] {
            CellState::Done => {
                self.heartbeat(lease, now);
                CellReport::Duplicate
            }
            CellState::Leased(holder) if holder == lease && self.active.contains_key(&lease) => {
                self.state[idx] = CellState::Done;
                let l = self.active.get_mut(&lease).expect("checked");
                l.last_alive = now;
                l.last_progress = now;
                l.done += 1;
                l.cells.retain(|c| *c != cell);
                self.counters.cells_completed += 1;
                CellReport::Accepted
            }
            _ => {
                self.counters.stale_reports += 1;
                self.heartbeat(lease, now);
                CellReport::Stale
            }
        }
    }

    /// Retires a lease whose holder reported every cell. Returns
    /// `false` (and keeps the lease) if cells are still outstanding —
    /// the holder is confused, and expiry will reclaim the rest.
    pub fn complete_lease(&mut self, lease: u64) -> bool {
        match self.active.get(&lease) {
            Some(l) if l.cells.is_empty() => {
                self.active.remove(&lease);
                self.counters.leases_completed += 1;
                true
            }
            _ => false,
        }
    }

    /// Leases with no liveness evidence within `timeout_ms` of `now`.
    /// The caller harvests each one's journal (crediting its durable
    /// completions via [`complete_cell`](Self::complete_cell)) before
    /// calling [`expire`](Self::expire).
    pub fn stale_leases(&self, now: u64, timeout_ms: u64) -> Vec<u64> {
        self.active
            .values()
            .filter(|l| now.saturating_sub(l.last_alive) > timeout_ms)
            .map(|l| l.id)
            .collect()
    }

    /// Kills a lease: outstanding cells return to the pending queue
    /// (counted as reassigned — they will be granted again). Returns
    /// how many cells were requeued.
    pub fn expire(&mut self, lease: u64) -> usize {
        let Some(l) = self.active.remove(&lease) else {
            return 0;
        };
        self.counters.leases_expired += 1;
        self.counters.cells_stolen += l.cells.len() as u64;
        let requeued = l.cells.len();
        for cell in l.cells {
            let idx = self.index[&cell];
            debug_assert_eq!(self.state[idx], CellState::Leased(lease));
            self.state[idx] = CellState::Pending;
            self.pending.insert(idx);
        }
        requeued
    }
}

/// Feedback-regulated lease sizing (the LMS-AR idea applied to the
/// control plane): instead of a fixed `--lease-cells`, the grant size
/// tracks an EWMA of observed per-cell wall clock so each lease aims
/// at a constant *time* budget. Early grants are big (nothing observed
/// yet → take the clamp); as the EWMA settles, size becomes
/// `target_ms / ewma`; and near the tail a pending-fraction limit
/// shrinks grants further so work stealing keeps fine grain for the
/// stragglers.
///
/// All-integer and pure: the same sequence of `observe`/`size` calls
/// produces the same sizes, so the policy is deterministic given the
/// report stream (and the final table never depends on it at all —
/// sizing only changes the interleaving, which the merge layer already
/// proves irrelevant).
#[derive(Debug)]
pub struct LeaseSizer {
    /// Wall-clock budget one lease should represent.
    target_ms: u64,
    /// Hard size clamp (the configured `--lease-cells`).
    max_cells: usize,
    /// EWMA of per-cell milliseconds; `None` until the first sample.
    ewma_ms: Option<u64>,
    /// Smallest size granted so far (trajectory, for BENCH rows).
    min_size: usize,
    /// Largest size granted so far.
    max_size: usize,
    /// Most recent size granted.
    last_size: usize,
}

impl LeaseSizer {
    /// A sizer aiming each lease at `target_ms` of work, never granting
    /// more than `max_cells` cells.
    pub fn new(target_ms: u64, max_cells: usize) -> Self {
        LeaseSizer {
            target_ms: target_ms.max(1),
            max_cells: max_cells.max(1),
            ewma_ms: None,
            min_size: 0,
            max_size: 0,
            last_size: 0,
        }
    }

    /// Feeds one observed per-cell duration into the EWMA
    /// (`ewma ← (7·ewma + sample) / 8`, integer, sample floored at
    /// 1 ms so a burst of sub-millisecond cells cannot divide by zero
    /// later).
    pub fn observe(&mut self, cell_ms: u64) {
        let sample = cell_ms.max(1);
        self.ewma_ms = Some(match self.ewma_ms {
            None => sample,
            Some(e) => (7 * e + sample) / 8,
        });
    }

    /// The current per-cell estimate, if anything has been observed.
    pub fn ewma_ms(&self) -> Option<u64> {
        self.ewma_ms
    }

    /// Decides the next grant's size given `pending` cells still
    /// queued, and records it in the trajectory.
    pub fn size(&mut self, pending: usize) -> usize {
        let by_time = match self.ewma_ms {
            // Nothing observed: open big, the clamp is the policy.
            None => self.max_cells,
            Some(ewma) => (self.target_ms / ewma.max(1)).max(1) as usize,
        };
        // Tail limit: never hand one worker more than ~half of what is
        // left, so the endgame stays stealable.
        let by_tail = pending.div_ceil(2).max(1);
        let size = by_time.min(by_tail).min(self.max_cells).max(1);
        if self.last_size == 0 {
            self.min_size = size;
            self.max_size = size;
        } else {
            self.min_size = self.min_size.min(size);
            self.max_size = self.max_size.max(size);
        }
        self.last_size = size;
        size
    }

    /// `(min, max, final)` granted sizes, for the BENCH robustness row;
    /// zeros when nothing was granted.
    pub fn trajectory(&self) -> (usize, usize, usize) {
        (self.min_size, self.max_size, self.last_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<CellId> {
        (0..n)
            .map(|i| CellId::from_hex(&format!("{:016x}", 0x1000 + i as u64)).expect("hex"))
            .collect()
    }

    fn granted(outcome: GrantOutcome) -> (u64, Vec<CellId>, bool) {
        match outcome {
            GrantOutcome::Granted {
                lease,
                cells,
                stolen,
            } => (lease, cells, stolen),
            other => panic!("expected a grant, got {other:?}"),
        }
    }

    #[test]
    fn happy_path_reconciles() {
        let cells = ids(5);
        let mut ledger = LeaseLedger::new(cells.clone());
        let (l1, c1, s1) = granted(ledger.grant("w1", 0, 3));
        assert_eq!(c1, cells[..3]);
        assert!(!s1);
        let (l2, c2, _) = granted(ledger.grant("w2", 0, 3));
        assert_eq!(c2, cells[3..]);
        for &c in &c1 {
            assert_eq!(ledger.complete_cell(l1, c, 10), CellReport::Accepted);
        }
        for &c in &c2 {
            assert_eq!(ledger.complete_cell(l2, c, 10), CellReport::Accepted);
        }
        assert!(ledger.complete_lease(l1));
        assert!(ledger.complete_lease(l2));
        assert!(ledger.is_complete());
        assert!(matches!(ledger.grant("w1", 20, 3), GrantOutcome::Finished));
        assert!(ledger.counters.reconciled(5));
        assert_eq!(ledger.counters.leases_completed, 2);
    }

    #[test]
    fn steal_takes_the_tail_of_the_largest_lease() {
        let cells = ids(6);
        let mut ledger = LeaseLedger::new(cells.clone());
        let (l1, c1, _) = granted(ledger.grant("w1", 0, 6));
        assert_eq!(c1.len(), 6);
        // Queue is empty; an idle worker steals the back half.
        let (l2, c2, stolen) = granted(ledger.grant("w2", 5, 4));
        assert!(stolen);
        assert_eq!(c2, cells[3..]);
        assert_eq!(ledger.lease(l1).expect("active").cells, cells[..3]);
        assert_eq!(ledger.counters.cells_stolen, 3);
        // The victim reporting a stolen cell is rejected...
        assert_eq!(ledger.complete_cell(l1, cells[5], 6), CellReport::Stale);
        // ...the stealer completing it is accepted.
        assert_eq!(ledger.complete_cell(l2, cells[5], 7), CellReport::Accepted);
        // Drain the rest.
        for &c in &cells[..3] {
            assert_eq!(ledger.complete_cell(l1, c, 8), CellReport::Accepted);
        }
        for &c in &cells[3..5] {
            assert_eq!(ledger.complete_cell(l2, c, 8), CellReport::Accepted);
        }
        assert!(ledger.is_complete());
        assert!(ledger.counters.reconciled(6));
        assert_eq!(ledger.counters.stale_reports, 1);
    }

    #[test]
    fn expiry_requeues_and_the_cells_complete_elsewhere() {
        let cells = ids(4);
        let mut ledger = LeaseLedger::new(cells.clone());
        let (l1, _, _) = granted(ledger.grant("w1", 0, 4));
        assert_eq!(
            ledger.complete_cell(l1, cells[0], 100),
            CellReport::Accepted
        );
        // No liveness after t=100; stale only strictly past t=100+timeout.
        assert_eq!(ledger.stale_leases(5_101, 5_000), vec![l1]);
        assert!(ledger.stale_leases(5_100, 5_000).is_empty());
        assert_eq!(ledger.expire(l1), 3);
        assert_eq!(ledger.pending(), 3);
        // A late report from the dead lease is rejected.
        assert_eq!(ledger.complete_cell(l1, cells[1], 6_000), CellReport::Stale);
        let (l2, c2, stolen) = granted(ledger.grant("w2", 6_000, 8));
        assert!(!stolen, "requeued cells come from the pending queue");
        assert_eq!(c2, cells[1..]);
        for &c in &c2 {
            assert_eq!(ledger.complete_cell(l2, c, 6_500), CellReport::Accepted);
        }
        assert!(ledger.is_complete());
        assert!(ledger.counters.reconciled(4));
        assert_eq!(ledger.counters.leases_expired, 1);
        assert_eq!(ledger.counters.cells_stolen, 3);
    }

    #[test]
    fn journal_growth_counts_as_liveness() {
        let cells = ids(2);
        let mut ledger = LeaseLedger::new(cells);
        let (l1, _, _) = granted(ledger.grant("w1", 0, 2));
        ledger.observe_journal(
            l1,
            JournalTail {
                bytes: 100,
                lines: 2,
            },
            900,
        );
        assert!(ledger.stale_leases(1_800, 1_000).is_empty());
        // Same size again: no growth, no liveness.
        ledger.observe_journal(
            l1,
            JournalTail {
                bytes: 100,
                lines: 2,
            },
            1_700,
        );
        assert_eq!(ledger.stale_leases(2_000, 1_000), vec![l1]);
    }

    #[test]
    fn replay_granted_reproduces_grants_and_steals() {
        let cells = ids(6);
        // Original run: one big grant, then a steal of its tail.
        let mut live = LeaseLedger::new(cells.clone());
        let (l1, c1, _) = granted(live.grant("w1", 0, 6));
        let (l2, c2, stolen) = granted(live.grant("w2", 5, 4));
        assert!(stolen);
        // Replay the two Granted transitions into a fresh ledger.
        let mut replayed = LeaseLedger::new(cells.clone());
        replayed.replay_granted(l1, "w1", &c1, 0).expect("grant 1");
        replayed.replay_granted(l2, "w2", &c2, 5).expect("grant 2");
        assert_eq!(replayed.counters.cells_granted, live.counters.cells_granted);
        assert_eq!(replayed.counters.cells_stolen, live.counters.cells_stolen);
        assert_eq!(
            replayed.lease(l1).expect("active").cells,
            live.lease(l1).expect("active").cells
        );
        // New leases continue past the replayed ids.
        let (l3, _, _) = granted({
            for &c in &cells[..2] {
                assert_eq!(replayed.complete_cell(l1, c, 9), CellReport::Accepted);
            }
            assert_eq!(replayed.expire(l2), 3);
            replayed.grant("w3", 10, 8)
        });
        assert!(l3 > l2);
        // A corrupt WAL (granting a done cell) is refused.
        let err = replayed
            .replay_granted(99, "w9", &cells[..1], 11)
            .expect_err("done cell");
        assert!(err.contains("completed cell"), "{err}");
    }

    #[test]
    fn sizer_opens_big_then_tracks_the_ewma_and_the_tail() {
        let mut sizer = LeaseSizer::new(400, 8);
        // No observations yet: clamp wins (tail limit permitting).
        assert_eq!(sizer.size(64), 8);
        // 100 ms/cell settles the EWMA → 400/100 = 4 cells per lease.
        for _ in 0..20 {
            sizer.observe(100);
        }
        assert_eq!(sizer.size(64), 4);
        // Cells slowed down to ~400 ms: one cell per lease.
        for _ in 0..40 {
            sizer.observe(400);
        }
        assert_eq!(sizer.size(64), 1);
        // Near the tail the pending fraction dominates.
        let mut tail_sizer = LeaseSizer::new(10_000, 8);
        assert_eq!(tail_sizer.size(6), 3, "6 pending → ceil(6/2) = 3");
        assert_eq!(tail_sizer.size(1), 1, "1 pending → ceil(1/2) = 1");
        assert_eq!(tail_sizer.size(0), 1, "floor at one cell");
        let (min, max, last) = sizer.trajectory();
        assert_eq!((min, max, last), (1, 8, 1));
    }

    #[test]
    fn duplicates_and_single_cell_leases() {
        let cells = ids(1);
        let mut ledger = LeaseLedger::new(cells.clone());
        let (l1, _, _) = granted(ledger.grant("w1", 0, 4));
        // A single-cell lease cannot be stolen from.
        assert!(matches!(ledger.grant("w2", 1, 4), GrantOutcome::Wait));
        assert_eq!(ledger.complete_cell(l1, cells[0], 2), CellReport::Accepted);
        assert_eq!(ledger.complete_cell(l1, cells[0], 3), CellReport::Duplicate);
        assert_eq!(ledger.counters.cells_completed, 1);
        assert!(ledger.counters.reconciled(1));
    }
}
