//! The fleet worker: pull a lease, run its cells through
//! `SweepSession`, stream each finished cell back, repeat.
//!
//! A worker is a thin shell around the existing sweep machinery. It
//! rebuilds the coordinator's plan locally (from the experiment name
//! and scale preset the coordinator advertises), verifies the full
//! [`PlanIdentity`] — manifest digest, seed, exact scale bits — and
//! then loops on leases: each grant becomes a
//! `SweepSession` over an explicit [`ShardSpec::cells`] set with a
//! checkpoint journal at the coordinator-assigned path, so every
//! completed cell is durable locally *before* it is reported. If the
//! worker dies mid-lease, the coordinator harvests that journal; if the
//! coordinator dies, the journal still merges by hand.
//!
//! # Sessions and reconnects
//!
//! Connecting means the v2 handshake: `Hello` → `Challenge` →
//! `Auth` (a keyed hash of the fleet token over the challenged nonce)
//! → `Welcome`, which carries the worker's `SessionId`. Every connect —
//! initial or reconnect — runs jittered exponential backoff under one
//! wall-clock budget (`connect_timeout_ms`), with attempts surfaced in
//! the worker log. When TCP dies mid-run, [`Fleet::exchange`]
//! reconnects, re-authenticates *with the same `SessionId`*, and
//! retransmits the request: the coordinator re-adopts the session's
//! live leases, a retransmitted `CellDone` lands as a harmless
//! `Duplicate`, and the `SweepSession` keeps running throughout — no
//! journaled cell is ever re-run. Only when the budget is exhausted is
//! the coordinator declared gone, and by then every finished cell is
//! durable in the shard journal anyway.
//!
//! One `SweepRunner` lives across all of a worker's leases, so traces
//! and timing-sim partitions generated for one lease are reused by the
//! next — the same sharing `repro all` gets.

use std::io::{self, ErrorKind};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use dsp_bench::engine::{CellId, CellRecord, CellSink, ExperimentPlan, ShardSpec, SweepRunner};
use dsp_bench::{experiments, Scale};
use dsp_types::hash::mix64;

use crate::auth::mac64;
use crate::protocol::{
    self, MessageReader, PlanIdentity, ProtocolError, Reply, Request, PROTOCOL_VERSION,
};
use crate::stats::{ResultsPage, StatusReport};

/// Worker tuning.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Worker name (unique within the fleet; appears in lease journals
    /// and the coordinator log).
    pub name: String,
    /// Coordinator address, `host:port`.
    pub connect: String,
    /// Fleet directory where lease journals are written. Must be the
    /// coordinator's directory when sharing a filesystem (journal
    /// tailing and harvest depend on it).
    pub dir: PathBuf,
    /// Sweep threads per lease.
    pub threads: usize,
    /// Wall-clock budget for one connect-and-handshake, initial or
    /// reconnect — backoff retries until it succeeds or this elapses.
    pub connect_timeout_ms: u64,
    /// Shared fleet token for the handshake challenge; must match the
    /// coordinator's.
    pub token: String,
}

impl WorkerConfig {
    /// Defaults for a local fleet worker.
    pub fn new(name: &str, connect: &str, dir: impl Into<PathBuf>) -> Self {
        WorkerConfig {
            name: name.to_string(),
            connect: connect.to_string(),
            dir: dir.into(),
            threads: 1,
            connect_timeout_ms: 10_000,
            token: String::new(),
        }
    }
}

/// What one worker did before the coordinator sent it home.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerReport {
    /// Leases run to completion.
    pub leases: usize,
    /// Cells executed and accepted.
    pub cells: usize,
    /// Leases abandoned after a `Stale` verdict (their remaining cells
    /// were re-leased elsewhere).
    pub stale_leases: usize,
    /// Mid-run TCP sessions lost and re-established (same `SessionId`).
    pub reconnects: usize,
    /// Total `TcpStream::connect` attempts across initial connect and
    /// every reconnect.
    pub connect_attempts: usize,
}

/// Runs a worker against the standard experiment registry
/// (`experiments::plan_for`).
///
/// # Errors
///
/// Connection failure, refused auth or version, identity mismatch,
/// protocol violations, or a sweep failure. The coordinator vanishing
/// *after* contact — and staying gone past the reconnect budget — is
/// treated as a clean shutdown: the fleet is done or dead, and either
/// way the worker's journals are already durable.
pub fn run_worker(config: &WorkerConfig) -> Result<WorkerReport, String> {
    run_worker_with(config, |experiment, scale| {
        let scale = Scale::parse(scale)?;
        experiments::plan_for(experiment, &scale)
    })
}

/// [`run_worker`] with an injected plan registry, so tests can fleet
/// tiny custom plans that the public experiment table doesn't know.
pub fn run_worker_with(
    config: &WorkerConfig,
    lookup: impl Fn(&str, &str) -> Option<ExperimentPlan>,
) -> Result<WorkerReport, String> {
    let mut fleet = Fleet::establish(config).map_err(|e| {
        format!(
            "worker {}: cannot join fleet at {}: {e}",
            config.name, config.connect
        )
    })?;

    // Rebuild the plan locally and verify it is the same plan.
    let identity = fleet.identity.clone();
    let plan = lookup(&identity.experiment, &fleet.scale).ok_or_else(|| {
        format!(
            "worker {}: unknown experiment {:?} at scale {:?}",
            config.name, identity.experiment, fleet.scale
        )
    })?;
    let local = PlanIdentity::of(&identity.experiment, &plan);
    if let Some(diff) = local.mismatch(&identity) {
        return Err(format!(
            "worker {}: plan identity mismatch ({diff}) — this binary would compute different \
             cells than the coordinator expects; refusing to lease",
            config.name
        ));
    }
    let ids = CellId::assign(&plan.cells);

    std::fs::create_dir_all(&config.dir).map_err(|e| {
        format!(
            "worker {}: cannot create {:?}: {e}",
            config.name, config.dir
        )
    })?;
    let runner = SweepRunner::with_threads(config.threads);
    let mut report = lease_loop(config, &mut fleet, &plan, &ids, &runner)?;
    report.reconnects = fleet.reconnects;
    report.connect_attempts = fleet.connect_attempts;
    Ok(report)
}

/// The worker's main loop: lease, run, report, repeat until `Shutdown`
/// (or the coordinator stays gone past the reconnect budget).
fn lease_loop(
    config: &WorkerConfig,
    fleet: &mut Fleet<'_>,
    plan: &ExperimentPlan,
    ids: &[CellId],
    runner: &SweepRunner,
) -> Result<WorkerReport, String> {
    let mut report = WorkerReport::default();
    loop {
        let reply = match fleet.exchange(&Request::Lease {
            worker: config.name.clone(),
        }) {
            Ok(Some(reply)) => reply,
            // Coordinator gone past the reconnect budget: treat as
            // shutdown (see the run_worker docs).
            Ok(None) => return Ok(report),
            Err(e) if coordinator_gone(&e) => return Ok(report),
            Err(e) => return Err(format!("worker {}: lease request failed: {e}", config.name)),
        };
        match reply {
            Reply::Grant {
                lease,
                cells,
                journal,
            } => {
                let mut cell_ids = Vec::with_capacity(cells.len());
                for text in &cells {
                    let id = CellId::from_hex(text).ok_or_else(|| {
                        format!("worker {}: malformed cell id {text:?}", config.name)
                    })?;
                    if !ids.contains(&id) {
                        return Err(format!(
                            "worker {}: granted cell {id} is not in the local plan",
                            config.name
                        ));
                    }
                    cell_ids.push(id);
                }
                let mut sink = ReportSink {
                    fleet,
                    worker: &config.name,
                    lease,
                    ids,
                    accepted: 0,
                    stale: false,
                    failure: None,
                };
                let session = runner
                    .session(plan)
                    .shard(ShardSpec::cells(cell_ids))
                    .checkpoint(config.dir.join(&journal));
                session
                    .run(&mut [&mut sink])
                    .map_err(|e| format!("worker {}: lease {lease} failed: {e}", config.name))?;
                let (accepted, stale, failure) = (sink.accepted, sink.stale, sink.failure);
                if let Some(e) = failure {
                    if coordinator_gone(&e) {
                        return Ok(report);
                    }
                    return Err(format!("worker {}: reporting failed: {e}", config.name));
                }
                report.cells += accepted;
                if stale {
                    // The lease was expired or partly stolen while we
                    // ran; whatever we journaled is durable, the rest
                    // belongs to someone else now. Ask for fresh work.
                    report.stale_leases += 1;
                    continue;
                }
                match fleet.exchange(&Request::Complete {
                    worker: config.name.clone(),
                    lease,
                }) {
                    Ok(Some(Reply::Ack)) => report.leases += 1,
                    Ok(Some(Reply::Stale { .. })) => report.stale_leases += 1,
                    Ok(Some(other)) => {
                        return Err(format!(
                            "worker {}: expected Ack for lease {lease}, got {other:?}",
                            config.name
                        ));
                    }
                    Ok(None) => return Ok(report),
                    Err(e) if coordinator_gone(&e) => return Ok(report),
                    Err(e) => {
                        return Err(format!("worker {}: complete failed: {e}", config.name));
                    }
                }
            }
            Reply::Wait { poll_ms } => {
                std::thread::sleep(Duration::from_millis(poll_ms.clamp(10, 2_000)));
            }
            Reply::Shutdown => return Ok(report),
            Reply::Refused { error } => {
                return Err(format!(
                    "worker {}: coordinator refused: {error}",
                    config.name
                ));
            }
            other => {
                return Err(format!(
                    "worker {}: unexpected lease reply: {other:?}",
                    config.name
                ));
            }
        }
    }
}

/// Asks a running coordinator for its status snapshot. Observer
/// requests need no handshake.
///
/// # Errors
///
/// Connection or protocol failure, rendered for the CLI.
pub fn query_status(connect: &str) -> Result<StatusReport, String> {
    match observe(connect, &Request::Status)? {
        Reply::Status(status) => Ok(status),
        other => Err(format!("expected a status reply, got {other:?}")),
    }
}

/// Asks a running coordinator for a page of per-cell completion states.
///
/// # Errors
///
/// Connection or protocol failure, rendered for the CLI.
pub fn query_results(connect: &str, start: usize, limit: usize) -> Result<ResultsPage, String> {
    match observe(connect, &Request::Results { start, limit })? {
        Reply::Results(page) => Ok(page),
        other => Err(format!("expected a results page, got {other:?}")),
    }
}

/// One-shot observer exchange: connect, ask, hang up.
fn observe(connect: &str, request: &Request) -> Result<Reply, String> {
    let stream = TcpStream::connect(connect).map_err(|e| format!("cannot reach {connect}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_millis(5_000)))
        .map_err(|e| e.to_string())?;
    let mut link = Link {
        reader: MessageReader::new(stream.try_clone().map_err(|e| e.to_string())?),
        writer: stream,
    };
    link.exchange(request)
        .map_err(|e| format!("query to {connect} failed: {e}"))?
        .ok_or_else(|| format!("{connect} hung up without answering"))
}

/// A request/reply connection: one writer, one timeout-tolerant reader.
struct Link {
    reader: MessageReader<TcpStream>,
    writer: TcpStream,
}

impl Link {
    fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        Ok(Link {
            reader: MessageReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request and blocks for its reply (`None` = clean EOF).
    fn exchange(&mut self, request: &Request) -> io::Result<Option<Reply>> {
        protocol::send(&mut self.writer, request)?;
        loop {
            match self.reader.recv::<Reply>() {
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    continue;
                }
                other => return other,
            }
        }
    }
}

/// The worker's authenticated, reconnecting view of the coordinator.
struct Fleet<'a> {
    config: &'a WorkerConfig,
    link: Link,
    /// The coordinator-issued session id; presented on reconnect so
    /// live leases are re-adopted.
    session: u64,
    /// Scale preset the coordinator advertised.
    scale: String,
    /// Plan identity the coordinator advertised.
    identity: PlanIdentity,
    reconnects: usize,
    connect_attempts: usize,
}

impl<'a> Fleet<'a> {
    /// Initial connect + handshake, with backoff under the connect
    /// budget (a torn handshake — e.g. through the chaos proxy — is
    /// retried like a failed connect).
    fn establish(config: &'a WorkerConfig) -> io::Result<Fleet<'a>> {
        let started = Instant::now();
        let mut attempts = 0usize;
        loop {
            let stream = connect_with_backoff(config, started, &mut attempts)?;
            let mut link = Link::new(stream)?;
            match handshake(&mut link, config, None) {
                Ok((scale, identity, session)) => {
                    if attempts > 1 {
                        eprintln!(
                            "worker {}: connected to {} after {attempts} attempts",
                            config.name, config.connect
                        );
                    }
                    return Ok(Fleet {
                        config,
                        link,
                        session,
                        scale,
                        identity,
                        reconnects: 0,
                        connect_attempts: attempts,
                    });
                }
                Err(e) if coordinator_gone(&e) && !budget_spent(config, started) => {
                    eprintln!(
                        "worker {}: handshake with {} torn ({e}); retrying",
                        config.name, config.connect
                    );
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Re-establishes a dropped TCP session under the same `SessionId`.
    fn reconnect(&mut self) -> io::Result<()> {
        let started = Instant::now();
        loop {
            let stream = connect_with_backoff(self.config, started, &mut self.connect_attempts)?;
            let mut link = Link::new(stream)?;
            match handshake(&mut link, self.config, Some(self.session)) {
                Ok((_, _, session)) => {
                    eprintln!(
                        "worker {}: reconnected to {} (session {}{})",
                        self.config.name,
                        self.config.connect,
                        session,
                        if session == self.session {
                            " resumed"
                        } else {
                            ", previous one unknown there"
                        },
                    );
                    // A recovered coordinator may not know the old
                    // session; adopt whatever it issued — old lease
                    // reports will be answered Stale, which the sink
                    // already treats as routine.
                    self.session = session;
                    self.link = link;
                    self.reconnects += 1;
                    return Ok(());
                }
                Err(e) if coordinator_gone(&e) && !budget_spent(self.config, started) => {
                    eprintln!(
                        "worker {}: re-handshake with {} torn ({e}); retrying",
                        self.config.name, self.config.connect
                    );
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One request/reply, transparently surviving dropped connections:
    /// on a torn session the worker reconnects (same `SessionId`) and
    /// retransmits. Retransmission is safe for every request we send —
    /// a repeated `CellDone` is judged `Duplicate`, a repeated
    /// `Complete`/`Heartbeat` answers `Stale`, and a `Lease` whose
    /// grant was lost in flight leaves an orphan lease that expiry
    /// reclaims. Returns the original transport error once the
    /// reconnect budget is spent.
    fn exchange(&mut self, request: &Request) -> io::Result<Option<Reply>> {
        loop {
            let torn = match self.link.exchange(request) {
                Ok(Some(reply)) => return Ok(Some(reply)),
                // EOF mid-run is a torn session until proven otherwise
                // — a live coordinator says `Shutdown` explicitly.
                Ok(None) => io::Error::new(ErrorKind::UnexpectedEof, "connection closed mid-run"),
                Err(e) if coordinator_gone(&e) => e,
                Err(e) => return Err(e),
            };
            if self.reconnect().is_err() {
                return Err(torn);
            }
        }
    }
}

/// The v2 handshake on a fresh connection; `resume` is the previous
/// `SessionId` when reconnecting. Returns `(scale, identity, session)`.
fn handshake(
    link: &mut Link,
    config: &WorkerConfig,
    resume: Option<u64>,
) -> io::Result<(String, PlanIdentity, u64)> {
    let hung_up = || {
        io::Error::new(
            ErrorKind::UnexpectedEof,
            "coordinator hung up mid-handshake",
        )
    };
    let reply = link
        .exchange(&Request::Hello {
            worker: config.name.clone(),
            proto: PROTOCOL_VERSION,
        })?
        .ok_or_else(hung_up)?;
    let nonce = match reply {
        Reply::Challenge { nonce } => nonce,
        Reply::Refused { error } => return Err(refused(&error)),
        other => {
            return Err(io::Error::new(
                ErrorKind::InvalidData,
                format!("expected Challenge, got {other:?}"),
            ));
        }
    };
    let reply = link
        .exchange(&Request::Auth {
            worker: config.name.clone(),
            mac: mac64(&config.token, nonce),
            session: resume,
        })?
        .ok_or_else(hung_up)?;
    match reply {
        Reply::Welcome {
            proto,
            scale,
            identity,
            session,
        } => {
            if proto != PROTOCOL_VERSION {
                return Err(io::Error::new(
                    ErrorKind::InvalidData,
                    format!(
                        "coordinator speaks protocol v{proto}, this binary v{PROTOCOL_VERSION}"
                    ),
                ));
            }
            Ok((scale, identity, session))
        }
        Reply::Refused { error } => Err(refused(&error)),
        other => Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("expected Welcome, got {other:?}"),
        )),
    }
}

/// A typed refusal is terminal — retrying with the same token and
/// binary cannot succeed.
fn refused(error: &ProtocolError) -> io::Error {
    io::Error::new(
        ErrorKind::PermissionDenied,
        format!("coordinator refused: {error}"),
    )
}

/// Whether an I/O error means "the coordinator went away" rather than
/// "this worker is broken".
fn coordinator_gone(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
            | ErrorKind::UnexpectedEof
            | ErrorKind::NotConnected
    )
}

fn budget_spent(config: &WorkerConfig, started: Instant) -> bool {
    started.elapsed() >= Duration::from_millis(config.connect_timeout_ms)
}

/// One `TcpStream::connect` with jittered exponential backoff under the
/// budget that began at `started`; `attempts` accumulates across calls
/// for the worker report. Each failed attempt is surfaced in the worker
/// log.
fn connect_with_backoff(
    config: &WorkerConfig,
    started: Instant,
    attempts: &mut usize,
) -> io::Result<TcpStream> {
    // Per-worker jitter stream, so a fleet of workers knocked off by
    // one coordinator restart does not reconnect in lockstep.
    let seed = config
        .name
        .bytes()
        .fold(0x66_6c_65_65_74u64, |h, b| mix64(h ^ u64::from(b)));
    let mut round = 0u32;
    loop {
        *attempts += 1;
        let error = match TcpStream::connect(&config.connect) {
            Ok(stream) => return Ok(stream),
            Err(e) => e,
        };
        round += 1;
        // 50ms << round, capped at 2s, then halved-plus-jitter so two
        // workers at the same round still spread out.
        let base = 50u64.saturating_mul(1 << round.min(6)).min(2_000);
        let jitter = mix64(seed ^ u64::from(round)) % (base / 2 + 1);
        let delay = Duration::from_millis(base / 2 + jitter);
        if started.elapsed() + delay >= Duration::from_millis(config.connect_timeout_ms) {
            return Err(error);
        }
        eprintln!(
            "worker {}: connect attempt {} to {} failed ({error}); retrying in {delay:?}",
            config.name, *attempts, config.connect
        );
        std::thread::sleep(delay);
    }
}

/// Streams each finished cell to the coordinator as the session
/// produces it. The journal write happens first (inside the session),
/// so a cell is durable before it is reported — and because reporting
/// goes through [`Fleet::exchange`], a dropped TCP session mid-lease
/// reconnects and resumes without the sweep ever noticing.
struct ReportSink<'a, 'b> {
    fleet: &'b mut Fleet<'a>,
    worker: &'b str,
    lease: u64,
    /// Plan-order manifest, for index lookup.
    ids: &'b [CellId],
    accepted: usize,
    /// Set on the first `Stale` verdict: stop reporting, the rest of
    /// the lease belongs to someone else.
    stale: bool,
    failure: Option<io::Error>,
}

impl CellSink for ReportSink<'_, '_> {
    fn on_cell(&mut self, _plan: &ExperimentPlan, record: &CellRecord) {
        if self.stale || self.failure.is_some() {
            return;
        }
        let request = Request::CellDone {
            worker: self.worker.to_string(),
            lease: self.lease,
            cell: record.id.to_hex(),
            index: record.index,
            output: Box::new(record.output.clone()),
        };
        debug_assert_eq!(self.ids.get(record.index), Some(&record.id));
        match self.fleet.exchange(&request) {
            Ok(Some(Reply::Ack)) => self.accepted += 1,
            Ok(Some(Reply::Stale { .. })) => self.stale = true,
            Ok(Some(Reply::Refused { error })) => {
                self.failure = Some(io::Error::new(ErrorKind::InvalidData, error.to_string()));
            }
            Ok(Some(other)) => {
                self.failure = Some(io::Error::new(
                    ErrorKind::InvalidData,
                    format!("unexpected reply to CellDone: {other:?}"),
                ));
            }
            Ok(None) => {
                self.failure = Some(io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "coordinator hung up",
                ));
            }
            Err(e) => self.failure = Some(e),
        }
    }
}
