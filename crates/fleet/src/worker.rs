//! The fleet worker: pull a lease, run its cells through
//! `SweepSession`, stream each finished cell back, repeat.
//!
//! A worker is a thin shell around the existing sweep machinery. It
//! rebuilds the coordinator's plan locally (from the experiment name
//! and scale preset the coordinator advertises), verifies the full
//! [`PlanIdentity`] — manifest digest, seed, exact scale bits — and
//! then loops on leases: each grant becomes a
//! `SweepSession` over an explicit [`ShardSpec::cells`] set with a
//! checkpoint journal at the coordinator-assigned path, so every
//! completed cell is durable locally *before* it is reported. If the
//! worker dies mid-lease, the coordinator harvests that journal; if the
//! coordinator dies, the journal still merges by hand.
//!
//! One `SweepRunner` lives across all of a worker's leases, so traces
//! and timing-sim partitions generated for one lease are reused by the
//! next — the same sharing `repro all` gets.

use std::io::{self, ErrorKind};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use dsp_bench::engine::{CellId, CellRecord, CellSink, ExperimentPlan, ShardSpec, SweepRunner};
use dsp_bench::{experiments, Scale};

use crate::protocol::{self, MessageReader, PlanIdentity, Reply, Request, PROTOCOL_VERSION};
use crate::stats::{ResultsPage, StatusReport};

/// Worker tuning.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Worker name (unique within the fleet; appears in lease journals
    /// and the coordinator log).
    pub name: String,
    /// Coordinator address, `host:port`.
    pub connect: String,
    /// Fleet directory where lease journals are written. Must be the
    /// coordinator's directory when sharing a filesystem (journal
    /// tailing and harvest depend on it).
    pub dir: PathBuf,
    /// Sweep threads per lease.
    pub threads: usize,
    /// How long to keep retrying the initial connect (the coordinator
    /// may not be up yet when local fleets spawn workers first).
    pub connect_timeout_ms: u64,
}

impl WorkerConfig {
    /// Defaults for a local fleet worker.
    pub fn new(name: &str, connect: &str, dir: impl Into<PathBuf>) -> Self {
        WorkerConfig {
            name: name.to_string(),
            connect: connect.to_string(),
            dir: dir.into(),
            threads: 1,
            connect_timeout_ms: 10_000,
        }
    }
}

/// What one worker did before the coordinator sent it home.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerReport {
    /// Leases run to completion.
    pub leases: usize,
    /// Cells executed and accepted.
    pub cells: usize,
    /// Leases abandoned after a `Stale` verdict (their remaining cells
    /// were re-leased elsewhere).
    pub stale_leases: usize,
}

/// Runs a worker against the standard experiment registry
/// (`experiments::plan_for`).
///
/// # Errors
///
/// Connection failure, identity mismatch, protocol violations, or a
/// sweep failure. The coordinator vanishing *after* contact is treated
/// as a clean shutdown — the fleet is done or dead, and either way the
/// worker's journals are already durable.
pub fn run_worker(config: &WorkerConfig) -> Result<WorkerReport, String> {
    run_worker_with(config, |experiment, scale| {
        let scale = Scale::parse(scale)?;
        experiments::plan_for(experiment, &scale)
    })
}

/// [`run_worker`] with an injected plan registry, so tests can fleet
/// tiny custom plans that the public experiment table doesn't know.
pub fn run_worker_with(
    config: &WorkerConfig,
    lookup: impl Fn(&str, &str) -> Option<ExperimentPlan>,
) -> Result<WorkerReport, String> {
    let stream = connect_retry(&config.connect, config.connect_timeout_ms).map_err(|e| {
        format!(
            "worker {}: cannot reach {}: {e}",
            config.name, config.connect
        )
    })?;
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .map_err(|e| format!("worker {}: {e}", config.name))?;
    let mut link = Link {
        reader: MessageReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("worker {}: {e}", config.name))?,
        ),
        writer: stream,
    };

    // Handshake: what is this fleet running?
    let welcome = link
        .exchange(&Request::Hello {
            worker: config.name.clone(),
            proto: PROTOCOL_VERSION,
        })
        .map_err(|e| format!("worker {}: handshake failed: {e}", config.name))?;
    let Some(Reply::Welcome {
        proto,
        scale,
        identity,
    }) = welcome
    else {
        return Err(format!(
            "worker {}: expected Welcome, got {welcome:?}",
            config.name
        ));
    };
    if proto != PROTOCOL_VERSION {
        return Err(format!(
            "worker {}: coordinator speaks protocol v{proto}, this binary v{PROTOCOL_VERSION}",
            config.name
        ));
    }

    // Rebuild the plan locally and verify it is the same plan.
    let plan = lookup(&identity.experiment, &scale).ok_or_else(|| {
        format!(
            "worker {}: unknown experiment {:?} at scale {:?}",
            config.name, identity.experiment, scale
        )
    })?;
    let local = PlanIdentity::of(&identity.experiment, &plan);
    if let Some(diff) = local.mismatch(&identity) {
        return Err(format!(
            "worker {}: plan identity mismatch ({diff}) — this binary would compute different \
             cells than the coordinator expects; refusing to lease",
            config.name
        ));
    }
    let ids = CellId::assign(&plan.cells);

    std::fs::create_dir_all(&config.dir).map_err(|e| {
        format!(
            "worker {}: cannot create {:?}: {e}",
            config.name, config.dir
        )
    })?;
    let runner = SweepRunner::with_threads(config.threads);
    let mut report = WorkerReport::default();

    loop {
        let reply = match link.exchange(&Request::Lease {
            worker: config.name.clone(),
        }) {
            Ok(Some(reply)) => reply,
            // Coordinator gone after contact: treat as shutdown (see
            // the function docs).
            Ok(None) => return Ok(report),
            Err(e) if coordinator_gone(&e) => return Ok(report),
            Err(e) => return Err(format!("worker {}: lease request failed: {e}", config.name)),
        };
        match reply {
            Reply::Grant {
                lease,
                cells,
                journal,
            } => {
                let mut cell_ids = Vec::with_capacity(cells.len());
                for text in &cells {
                    let id = CellId::from_hex(text).ok_or_else(|| {
                        format!("worker {}: malformed cell id {text:?}", config.name)
                    })?;
                    if !ids.contains(&id) {
                        return Err(format!(
                            "worker {}: granted cell {id} is not in the local plan",
                            config.name
                        ));
                    }
                    cell_ids.push(id);
                }
                let mut sink = ReportSink {
                    link: &mut link,
                    worker: &config.name,
                    lease,
                    ids: &ids,
                    accepted: 0,
                    stale: false,
                    failure: None,
                };
                let session = runner
                    .session(&plan)
                    .shard(ShardSpec::cells(cell_ids))
                    .checkpoint(config.dir.join(&journal));
                session
                    .run(&mut [&mut sink])
                    .map_err(|e| format!("worker {}: lease {lease} failed: {e}", config.name))?;
                let (accepted, stale, failure) = (sink.accepted, sink.stale, sink.failure);
                if let Some(e) = failure {
                    if coordinator_gone(&e) {
                        return Ok(report);
                    }
                    return Err(format!("worker {}: reporting failed: {e}", config.name));
                }
                report.cells += accepted;
                if stale {
                    // The lease was expired or partly stolen while we
                    // ran; whatever we journaled is durable, the rest
                    // belongs to someone else now. Ask for fresh work.
                    report.stale_leases += 1;
                    continue;
                }
                match link.exchange(&Request::Complete {
                    worker: config.name.clone(),
                    lease,
                }) {
                    Ok(Some(Reply::Ack)) => report.leases += 1,
                    Ok(Some(Reply::Stale { .. })) => report.stale_leases += 1,
                    Ok(Some(other)) => {
                        return Err(format!(
                            "worker {}: expected Ack for lease {lease}, got {other:?}",
                            config.name
                        ));
                    }
                    Ok(None) => return Ok(report),
                    Err(e) if coordinator_gone(&e) => return Ok(report),
                    Err(e) => {
                        return Err(format!("worker {}: complete failed: {e}", config.name));
                    }
                }
            }
            Reply::Wait { poll_ms } => {
                std::thread::sleep(Duration::from_millis(poll_ms.clamp(10, 2_000)));
            }
            Reply::Shutdown => return Ok(report),
            Reply::Error { message } => {
                return Err(format!(
                    "worker {}: coordinator error: {message}",
                    config.name
                ));
            }
            other => {
                return Err(format!(
                    "worker {}: unexpected lease reply: {other:?}",
                    config.name
                ));
            }
        }
    }
}

/// Asks a running coordinator for its status snapshot.
///
/// # Errors
///
/// Connection or protocol failure, rendered for the CLI.
pub fn query_status(connect: &str) -> Result<StatusReport, String> {
    match observe(connect, &Request::Status)? {
        Reply::Status(status) => Ok(status),
        other => Err(format!("expected a status reply, got {other:?}")),
    }
}

/// Asks a running coordinator for a page of per-cell completion states.
///
/// # Errors
///
/// Connection or protocol failure, rendered for the CLI.
pub fn query_results(connect: &str, start: usize, limit: usize) -> Result<ResultsPage, String> {
    match observe(connect, &Request::Results { start, limit })? {
        Reply::Results(page) => Ok(page),
        other => Err(format!("expected a results page, got {other:?}")),
    }
}

/// One-shot observer exchange: connect, ask, hang up.
fn observe(connect: &str, request: &Request) -> Result<Reply, String> {
    let stream = TcpStream::connect(connect).map_err(|e| format!("cannot reach {connect}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_millis(5_000)))
        .map_err(|e| e.to_string())?;
    let mut link = Link {
        reader: MessageReader::new(stream.try_clone().map_err(|e| e.to_string())?),
        writer: stream,
    };
    link.exchange(request)
        .map_err(|e| format!("query to {connect} failed: {e}"))?
        .ok_or_else(|| format!("{connect} hung up without answering"))
}

/// A request/reply connection: one writer, one timeout-tolerant reader.
struct Link {
    reader: MessageReader<TcpStream>,
    writer: TcpStream,
}

impl Link {
    /// Sends one request and blocks for its reply (`None` = clean EOF).
    fn exchange(&mut self, request: &Request) -> io::Result<Option<Reply>> {
        protocol::send(&mut self.writer, request)?;
        loop {
            match self.reader.recv::<Reply>() {
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    continue;
                }
                other => return other,
            }
        }
    }
}

/// Whether an I/O error means "the coordinator went away" rather than
/// "this worker is broken".
fn coordinator_gone(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
            | ErrorKind::UnexpectedEof
            | ErrorKind::NotConnected
    )
}

/// Retries `TcpStream::connect` until it succeeds or the budget runs
/// out (local fleets may start workers before the coordinator binds).
fn connect_retry(connect: &str, budget_ms: u64) -> io::Result<TcpStream> {
    let started = Instant::now();
    loop {
        match TcpStream::connect(connect) {
            Ok(stream) => return Ok(stream),
            Err(e) if started.elapsed() >= Duration::from_millis(budget_ms) => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(200)),
        }
    }
}

/// Streams each finished cell to the coordinator as the session
/// produces it. The journal write happens first (inside the session),
/// so a cell is durable before it is reported.
struct ReportSink<'a> {
    link: &'a mut Link,
    worker: &'a str,
    lease: u64,
    /// Plan-order manifest, for index lookup.
    ids: &'a [CellId],
    accepted: usize,
    /// Set on the first `Stale` verdict: stop reporting, the rest of
    /// the lease belongs to someone else.
    stale: bool,
    failure: Option<io::Error>,
}

impl CellSink for ReportSink<'_> {
    fn on_cell(&mut self, _plan: &ExperimentPlan, record: &CellRecord) {
        if self.stale || self.failure.is_some() {
            return;
        }
        let request = Request::CellDone {
            worker: self.worker.to_string(),
            lease: self.lease,
            cell: record.id.to_hex(),
            index: record.index,
            output: Box::new(record.output.clone()),
        };
        debug_assert_eq!(self.ids.get(record.index), Some(&record.id));
        match self.link.exchange(&request) {
            Ok(Some(Reply::Ack)) => self.accepted += 1,
            Ok(Some(Reply::Stale { .. })) => self.stale = true,
            Ok(Some(Reply::Error { message })) => {
                self.failure = Some(io::Error::new(ErrorKind::InvalidData, message));
            }
            Ok(Some(other)) => {
                self.failure = Some(io::Error::new(
                    ErrorKind::InvalidData,
                    format!("unexpected reply to CellDone: {other:?}"),
                ));
            }
            Ok(None) => {
                self.failure = Some(io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "coordinator hung up",
                ));
            }
            Err(e) => self.failure = Some(e),
        }
    }
}
