//! A seeded flaky-TCP proxy for chaos-testing the fleet control plane.
//!
//! Workers connect to the proxy instead of the coordinator; the proxy
//! forwards bytes both ways while injecting deterministic-per-seed
//! faults at the socket layer: delayed chunks, stalled reads, and
//! mid-message disconnects. This is PR 7's `ToxicSpec` idea moved down
//! the stack — the interconnect faults there perturb the simulated
//! protocol, these perturb the *real* TCP sessions the fleet runs on —
//! and it is what the reconnect/resume machinery is tested against:
//! a whole sweep pushed through the proxy must still reconcile and
//! stay byte-identical to the serial golden.
//!
//! Faults are drawn from a per-connection-per-direction stream seeded
//! by `mix64(seed ^ connection ^ direction)`, so a given seed replays
//! the same fault schedule for the same connection order. Disconnects
//! draw from a shared budget (`max_disconnects`) so a chaos run always
//! terminates: once the budget is spent the proxy degrades into a
//! plain relay.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use dsp_types::hash::mix64;

/// Fault schedule knobs. Every `*_every` is "one fault per N chunks on
/// average" (0 disables that fault).
#[derive(Clone, Copy, Debug)]
pub struct ChaosSpec {
    /// Seed for the fault streams.
    pub seed: u64,
    /// One forwarded chunk in `delay_every` is delayed (0 = never).
    pub delay_every: u64,
    /// Upper bound on an injected delay, in milliseconds.
    pub delay_max_ms: u64,
    /// One forwarded chunk in `stall_every` stalls the pipe for
    /// `stall_ms` (0 = never). Stalls are long delays: they exercise
    /// read-timeout paths rather than reorderings.
    pub stall_every: u64,
    /// Duration of an injected stall, in milliseconds.
    pub stall_ms: u64,
    /// One forwarded chunk in `disconnect_every` tears the connection
    /// down mid-message (0 = never).
    pub disconnect_every: u64,
    /// Total disconnects across the proxy's lifetime; after the budget
    /// is spent the proxy forwards faithfully so runs terminate.
    pub max_disconnects: u64,
}

impl ChaosSpec {
    /// The schedule `repro fleet --chaos <seed>` and CI use: frequent
    /// small delays, occasional stalls, and enough disconnects to force
    /// every worker through at least one reconnect on a quick sweep.
    pub fn from_seed(seed: u64) -> Self {
        ChaosSpec {
            seed,
            delay_every: 3,
            delay_max_ms: 15,
            stall_every: 19,
            stall_ms: 120,
            disconnect_every: 23,
            max_disconnects: 6,
        }
    }
}

/// Counters the proxy accumulates, for logs and BENCH rows.
#[derive(Debug, Default)]
pub struct ChaosCounters {
    /// Connections accepted from workers.
    pub connections: AtomicU64,
    /// Injected mid-message disconnects.
    pub disconnects: AtomicU64,
    /// Injected delays (including stalls).
    pub delays: AtomicU64,
}

/// A running flaky proxy in front of `upstream`.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<ChaosCounters>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

/// Deterministic per-direction fault stream (an xorshift walk started
/// from the mixed seed).
struct FaultStream {
    state: u64,
}

impl FaultStream {
    fn new(seed: u64, connection: u64, direction: u64) -> Self {
        FaultStream {
            state: mix64(seed ^ mix64(connection.wrapping_mul(2) + direction)) | 1,
        }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        mix64(x)
    }

    /// True once per `every` draws on average.
    fn fires(&mut self, every: u64) -> bool {
        every != 0 && self.next().is_multiple_of(every)
    }
}

impl ChaosProxy {
    /// Binds an ephemeral local port and starts proxying to `upstream`.
    ///
    /// # Errors
    ///
    /// Socket failure binding the listener.
    pub fn start(upstream: SocketAddr, spec: ChaosSpec) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ChaosCounters::default());
        let disconnect_budget = Arc::new(AtomicU64::new(spec.max_disconnects));
        let accept_stop = Arc::clone(&stop);
        let accept_counters = Arc::clone(&counters);
        let accept_thread = thread::Builder::new()
            .name("chaos-accept".into())
            .spawn(move || {
                let mut connection = 0u64;
                while !accept_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            accept_counters.connections.fetch_add(1, Ordering::Relaxed);
                            let id = connection;
                            connection += 1;
                            let counters = Arc::clone(&accept_counters);
                            let budget = Arc::clone(&disconnect_budget);
                            let stop = Arc::clone(&accept_stop);
                            thread::Builder::new()
                                .name(format!("chaos-conn-{id}"))
                                .spawn(move || {
                                    relay_connection(
                                        client, upstream, spec, id, counters, budget, stop,
                                    );
                                })
                                .expect("spawn chaos connection thread");
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn chaos accept thread");
        Ok(ChaosProxy {
            addr,
            stop,
            counters,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address workers should connect to instead of the
    /// coordinator.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Injected-disconnect count so far.
    pub fn disconnects(&self) -> u64 {
        self.counters.disconnects.load(Ordering::Relaxed)
    }

    /// Injected-delay count so far (stalls included).
    pub fn delays(&self) -> u64 {
        self.counters.delays.load(Ordering::Relaxed)
    }

    /// Accepted-connection count so far.
    pub fn connections(&self) -> u64 {
        self.counters.connections.load(Ordering::Relaxed)
    }

    /// Stops accepting; live relays die with their sockets.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Pumps one accepted connection: client→upstream and upstream→client,
/// each through its own fault stream. Either pump dying (organically or
/// by injection) tears down both directions, like a real broken TCP
/// session.
fn relay_connection(
    client: TcpStream,
    upstream: SocketAddr,
    spec: ChaosSpec,
    connection: u64,
    counters: Arc<ChaosCounters>,
    budget: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
) {
    let Ok(server) = TcpStream::connect(upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let pump = |from: TcpStream, to: TcpStream, direction: u64| {
        let counters = Arc::clone(&counters);
        let budget = Arc::clone(&budget);
        let stop = Arc::clone(&stop);
        let mut faults = FaultStream::new(spec.seed, connection, direction);
        thread::Builder::new()
            .name(format!("chaos-pump-{connection}-{direction}"))
            .spawn(move || {
                pump_bytes(from, to, spec, &mut faults, &counters, &budget, &stop);
            })
            .expect("spawn chaos pump thread")
    };
    let c2s = pump(
        client.try_clone().expect("clone client socket"),
        server.try_clone().expect("clone upstream socket"),
        0,
    );
    let s2c = pump(server, client, 1);
    let _ = c2s.join();
    let _ = s2c.join();
}

fn pump_bytes(
    mut from: TcpStream,
    mut to: TcpStream,
    spec: ChaosSpec,
    faults: &mut FaultStream,
    counters: &ChaosCounters,
    budget: &AtomicU64,
    stop: &AtomicBool,
) {
    let mut buf = [0u8; 512];
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if faults.fires(spec.disconnect_every) {
            // Spend from the shared budget; a draw after the budget is
            // dry forwards normally, so chaos runs always terminate.
            let spent = budget
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                .is_ok();
            if spent {
                counters.disconnects.fetch_add(1, Ordering::Relaxed);
                // Forward half the chunk first: the disconnect lands
                // mid-message, which is the interesting torn-frame case.
                let half = n / 2;
                if half > 0 {
                    let _ = to.write_all(&buf[..half]);
                    let _ = to.flush();
                }
                let _ = from.shutdown(Shutdown::Both);
                let _ = to.shutdown(Shutdown::Both);
                break;
            }
        }
        if faults.fires(spec.stall_every) {
            counters.delays.fetch_add(1, Ordering::Relaxed);
            thread::sleep(Duration::from_millis(spec.stall_ms));
        } else if faults.fires(spec.delay_every) {
            counters.delays.fetch_add(1, Ordering::Relaxed);
            thread::sleep(Duration::from_millis(
                1 + faults.next() % spec.delay_max_ms.max(1),
            ));
        }
        if to.write_all(&buf[..n]).is_err() || to.flush().is_err() {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A trivial line-echo server for exercising the proxy without the
    /// whole coordinator.
    fn echo_server() -> (SocketAddr, thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        let addr = listener.local_addr().expect("addr");
        let handle = thread::spawn(move || {
            for stream in listener.incoming().take(4) {
                let Ok(stream) = stream else { break };
                thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let mut stream = stream;
                    let mut line = String::new();
                    while reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                        if stream.write_all(line.as_bytes()).is_err() {
                            break;
                        }
                        line.clear();
                    }
                });
            }
        });
        (addr, handle)
    }

    #[test]
    fn relays_lines_without_faults() {
        let (addr, _server) = echo_server();
        let spec = ChaosSpec {
            seed: 1,
            delay_every: 0,
            delay_max_ms: 0,
            stall_every: 0,
            stall_ms: 0,
            disconnect_every: 0,
            max_disconnects: 0,
        };
        let proxy = ChaosProxy::start(addr, spec).expect("start proxy");
        let mut client = TcpStream::connect(proxy.addr()).expect("connect");
        client.write_all(b"hello fleet\n").expect("write");
        let mut reader = BufReader::new(client.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert_eq!(line, "hello fleet\n");
        assert_eq!(proxy.connections(), 1);
        assert_eq!(proxy.disconnects(), 0);
    }

    #[test]
    fn injected_disconnects_respect_the_budget() {
        let (addr, _server) = echo_server();
        let spec = ChaosSpec {
            seed: 7,
            delay_every: 0,
            delay_max_ms: 0,
            stall_every: 0,
            stall_ms: 0,
            disconnect_every: 1, // every chunk wants to disconnect
            max_disconnects: 2,
        };
        let proxy = ChaosProxy::start(addr, spec).expect("start proxy");
        let mut observed = 0u64;
        for _ in 0..3 {
            let mut client = TcpStream::connect(proxy.addr()).expect("connect");
            client
                .set_read_timeout(Some(Duration::from_millis(500)))
                .expect("timeout");
            let _ = client.write_all(b"ping\n");
            let mut reader = BufReader::new(client.try_clone().expect("clone"));
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => observed += 1, // torn by the proxy
                Ok(_) => {}
            }
        }
        assert_eq!(proxy.disconnects(), 2, "budget caps injections");
        assert!(observed >= 2, "clients saw the torn sessions");
    }

    #[test]
    fn fault_stream_is_deterministic_per_seed() {
        let mut a = FaultStream::new(42, 3, 1);
        let mut b = FaultStream::new(42, 3, 1);
        let draws_a: Vec<u64> = (0..16).map(|_| a.next()).collect();
        let draws_b: Vec<u64> = (0..16).map(|_| b.next()).collect();
        assert_eq!(draws_a, draws_b);
        let mut c = FaultStream::new(42, 3, 0);
        let draws_c: Vec<u64> = (0..16).map(|_| c.next()).collect();
        assert_ne!(draws_a, draws_c, "directions get distinct streams");
    }
}
