//! The coordinator's write-ahead log: every ledger transition, durable
//! before it takes effect on the wire.
//!
//! The master journal makes accepted *outputs* durable; the WAL makes
//! the *ledger* durable. Together they let `repro fleet --recover`
//! rebuild a crashed coordinator: replay the WAL to reconstruct the
//! lease state machine (same transitions, same lease ids, same churn
//! counters), re-adopt the master journal's outputs, harvest whatever
//! the orphaned leases journaled before the crash, and resume the
//! sweep — with the reconciliation invariant
//! (`granted == completed + stolen`) still spanning both incarnations.
//!
//! Format is the same greppable JSONL dialect as the checkpoint
//! journals: a header line carrying the full [`PlanIdentity`] (a WAL
//! can never silently recover a different experiment, seed, or scale),
//! then one flushed [`WalEvent`] per transition. Only
//! newline-terminated lines count on read; a torn final line is the
//! crash remnant and is cut away before the recovered coordinator
//! appends — exactly the journal-tail discipline.
//!
//! # Write ordering
//!
//! Two rules make replay sound, both enforced under the coordinator's
//! state mutex:
//!
//! * a [`WalEvent::Granted`] is logged **before** the `Grant` reply is
//!   sent, so no lease can exist on the wire that the WAL does not
//!   know;
//! * a [`WalEvent::CellDone`] is logged **after** the master-journal
//!   append, so a WAL completion always has a durable output behind it.
//!   The converse crash window (master has the record, WAL lost the
//!   completion) is healed at recovery by re-completing the cell from
//!   the master journal — its lease still holds it in the replayed
//!   ledger, because the WAL is at most one transition behind.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::protocol::PlanIdentity;

/// Magic string identifying the WAL format (and its version).
const MAGIC: &str = "dsp-fleet-wal-v1";

/// First line of every WAL: format magic plus the full plan identity.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct WalHeader {
    wal: String,
    identity: PlanIdentity,
}

/// One ledger transition. Cells travel as fixed-width hex (the same
/// rendering the wire protocol and `repro plan` use).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WalEvent {
    /// A lease was granted (from the pending queue or by stealing a
    /// straggler's tail — replay re-derives which from the cell
    /// states, so the steal policy can evolve without versioning the
    /// WAL).
    Granted {
        /// The lease id.
        lease: u64,
        /// The holding worker.
        worker: String,
        /// The granted cells, in plan order.
        cells: Vec<String>,
        /// The shard journal filename assigned to the lease, relative
        /// to the fleet directory — recovery harvests it.
        journal: String,
    },
    /// A cell completion was accepted under `lease`.
    CellDone {
        /// The accepting lease.
        lease: u64,
        /// The completed cell.
        cell: String,
    },
    /// A lease retired cleanly (every cell reported).
    LeaseDone {
        /// The retired lease.
        lease: u64,
    },
    /// A lease was expired; its outstanding cells were requeued.
    Expired {
        /// The expired lease.
        lease: u64,
    },
}

/// Appends ledger transitions to the WAL, one flushed JSON line each.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    file: BufWriter<File>,
}

impl WalWriter {
    /// Creates (truncating) `path` and writes the header line.
    ///
    /// # Errors
    ///
    /// Filesystem failure creating or writing the file.
    pub fn create(path: &Path, identity: &PlanIdentity) -> io::Result<Self> {
        let file = File::create(path)?;
        let mut writer = WalWriter {
            path: path.to_path_buf(),
            file: BufWriter::new(file),
        };
        let header = WalHeader {
            wal: MAGIC.to_string(),
            identity: identity.clone(),
        };
        writer.write_line(&encode(&header)?)?;
        Ok(writer)
    }

    /// Reopens an existing WAL for appending after recovery, first
    /// truncating it to `valid_bytes` (the end of its last intact line
    /// as reported by [`read_wal`]) so the torn crash remnant can never
    /// fuse with the first recovered append.
    ///
    /// # Errors
    ///
    /// Filesystem failure opening or truncating the file.
    pub fn append_to(path: &Path, valid_bytes: u64) -> io::Result<Self> {
        let truncate = OpenOptions::new().write(true).open(path)?;
        truncate.set_len(valid_bytes)?;
        drop(truncate);
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(WalWriter {
            path: path.to_path_buf(),
            file: BufWriter::new(file),
        })
    }

    /// The WAL's path (for logs and CI artifacts).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one transition, durable before the caller acts on it.
    ///
    /// # Errors
    ///
    /// Serialization or write failure — the caller must treat this as
    /// fatal for recoverability (the coordinator records it as the
    /// run's failure).
    pub fn append(&mut self, event: &WalEvent) -> io::Result<()> {
        let line = encode(event)?;
        self.write_line(&line)
    }

    fn write_line(&mut self, line: &str) -> io::Result<()> {
        debug_assert!(!line.contains('\n'), "WAL lines must be single-line");
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        // One transition, one durable line: a crash loses at most the
        // transition in flight.
        self.file.flush()
    }
}

fn encode<T: Serialize>(value: &T) -> io::Result<String> {
    serde_json::to_string(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("cannot encode: {e}")))
}

/// Everything read back from a WAL.
#[derive(Debug)]
pub struct WalContents {
    /// Intact transitions, in append order.
    pub events: Vec<WalEvent>,
    /// Byte offset just past the last intact line; [`WalWriter::append_to`]
    /// truncates here.
    pub valid_bytes: u64,
}

/// Reads a WAL and validates its header against `identity`.
///
/// Only newline-terminated lines count: an unterminated final line is
/// the remnant of a crash mid-append and is skipped. A malformed
/// *terminated* line, or a header naming a different plan, is
/// corruption and errors out — recovery must not guess.
///
/// # Errors
///
/// I/O failure, a missing or malformed header, an identity mismatch,
/// or a corrupt terminated event line.
pub fn read_wal(path: &Path, identity: &PlanIdentity) -> io::Result<WalContents> {
    let text = std::fs::read_to_string(path)?;
    let lines: Vec<&str> = text.lines().collect();
    let complete = if text.ends_with('\n') {
        lines.len()
    } else {
        lines.len().saturating_sub(1)
    };
    let bad = |message: String| io::Error::new(io::ErrorKind::InvalidData, message);
    let Some(header_line) = lines.first().filter(|_| complete > 0) else {
        return Err(bad(format!("{}: empty or headerless WAL", path.display())));
    };
    let header: WalHeader = serde_json::from_str(header_line)
        .map_err(|e| bad(format!("{}: malformed WAL header: {e}", path.display())))?;
    if header.wal != MAGIC {
        return Err(bad(format!(
            "{}: not a fleet WAL (format {:?})",
            path.display(),
            header.wal
        )));
    }
    if let Some(diff) = identity.mismatch(&header.identity) {
        return Err(bad(format!(
            "{}: WAL is from a different run ({diff}); refusing to recover",
            path.display()
        )));
    }
    let mut events = Vec::new();
    let mut valid_bytes = (header_line.len() + 1) as u64;
    for (pos, line) in lines.iter().enumerate().take(complete).skip(1) {
        let event: WalEvent = serde_json::from_str(line).map_err(|e| {
            bad(format!(
                "{}: malformed WAL event at line {}: {e}",
                path.display(),
                pos + 1
            ))
        })?;
        events.push(event);
        valid_bytes += (line.len() + 1) as u64;
    }
    Ok(WalContents {
        events,
        valid_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity() -> PlanIdentity {
        PlanIdentity {
            experiment: "e2e".into(),
            title: "t".into(),
            cells: 4,
            seed: 7,
            scale: "s".into(),
            manifest: "m".into(),
        }
    }

    fn events() -> Vec<WalEvent> {
        vec![
            WalEvent::Granted {
                lease: 1,
                worker: "w1".into(),
                cells: vec!["0000000000001000".into(), "0000000000001001".into()],
                journal: "e2e.lease1.w1.jsonl".into(),
            },
            WalEvent::CellDone {
                lease: 1,
                cell: "0000000000001000".into(),
            },
            WalEvent::Expired { lease: 1 },
        ]
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dsp-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join("fleet.wal.jsonl")
    }

    #[test]
    fn wal_round_trips_in_order() {
        let path = tmp("roundtrip");
        let mut writer = WalWriter::create(&path, &identity()).expect("create");
        for event in events() {
            writer.append(&event).expect("append");
        }
        drop(writer);
        let contents = read_wal(&path, &identity()).expect("read");
        assert_eq!(contents.events, events());
        let _ = std::fs::remove_dir_all(path.parent().expect("parent"));
    }

    #[test]
    fn torn_tail_is_cut_and_appending_resumes_cleanly() {
        let path = tmp("torn");
        let mut writer = WalWriter::create(&path, &identity()).expect("create");
        for event in events() {
            writer.append(&event).expect("append");
        }
        drop(writer);
        // Crash mid-append: chop the final line in half.
        let text = std::fs::read_to_string(&path).expect("read");
        let cut = text.len() - 10;
        std::fs::write(&path, &text[..cut]).expect("write");
        let contents = read_wal(&path, &identity()).expect("torn tail tolerated");
        assert_eq!(contents.events, events()[..2], "only intact events");
        // A recovered writer truncates the remnant and appends whole
        // lines after it.
        let mut writer = WalWriter::append_to(&path, contents.valid_bytes).expect("reopen");
        writer
            .append(&WalEvent::LeaseDone { lease: 9 })
            .expect("append");
        drop(writer);
        let contents = read_wal(&path, &identity()).expect("reread");
        assert_eq!(contents.events.len(), 3);
        assert_eq!(contents.events[2], WalEvent::LeaseDone { lease: 9 });
        let _ = std::fs::remove_dir_all(path.parent().expect("parent"));
    }

    #[test]
    fn mismatched_identity_is_refused() {
        let path = tmp("mismatch");
        let writer = WalWriter::create(&path, &identity()).expect("create");
        drop(writer);
        let mut other = identity();
        other.seed ^= 0xdead;
        let err = read_wal(&path, &other).expect_err("must refuse");
        assert!(err.to_string().contains("different run"), "{err}");
        let _ = std::fs::remove_dir_all(path.parent().expect("parent"));
    }
}
