//! Fleet orchestration for sharded sweeps: a coordinator that leases
//! cells to workers, watches their liveness, steals straggler tails,
//! and folds every journal back into one byte-identical table.
//!
//! The sweep engine (`dsp_bench::engine`) already makes every cell
//! content-addressed, idempotent, and merge-deterministic; multi-machine
//! runs were still "hand-run N `repro --shard i/N` processes, then
//! `repro merge`". This crate turns that checkpoint layer into a
//! serving system:
//!
//! * [`protocol`] — a std-only newline-delimited-JSON message set over
//!   TCP (`std::net` + one thread per connection; no async runtime, no
//!   external dependencies beyond the in-tree serde stubs).
//! * [`lease`] — the pure lease state machine: grant / heartbeat /
//!   complete / steal / expire over explicit [`CellId`] sets, with a
//!   churn ledger that must reconcile (`granted == completed + stolen`)
//!   when the sweep finishes. Time is an explicit parameter, so the
//!   machine is property-testable without clocks.
//! * [`coordinator`] — owns an `ExperimentPlan` and the ledger, serves
//!   leases and incremental results, tails worker journals as
//!   heartbeats, harvests the durable prefix of a dead worker's journal
//!   before re-leasing the rest, and compacts every journal through
//!   `merge_journals` into the final table.
//! * [`worker`] — wraps `SweepSession`: pull a lease, run its cells
//!   (journaling locally), stream each finished cell back, repeat until
//!   the coordinator says the sweep is done.
//! * [`stats`] — counters, status snapshots, and result pages shared by
//!   the protocol and the `repro fleet` / `fleet-status` front-ends.
//!
//! The control plane is hardened to survive a hostile run of luck:
//!
//! * [`auth`] — shared-token challenge/response (std-only keyed hash
//!   over a coordinator nonce) so unauthenticated or version-skewed
//!   clients get a typed refusal instead of a lease.
//! * sessions — every authenticated worker holds a `SessionId`; a
//!   worker that loses TCP but kept its shard journal reconnects with
//!   the same id and its live leases are *re-adopted*, not harvested.
//! * [`wal`] — the coordinator write-ahead-logs every ledger transition
//!   next to the master journal; `repro fleet --recover` replays it,
//!   re-adopts the master journal, harvests orphaned shard journals,
//!   and finishes the sweep with the ledger still reconciling.
//! * [`chaos`] — a seeded flaky-TCP proxy (delays, stalls, mid-message
//!   disconnects) the e2e tests and `repro fleet --chaos` push whole
//!   sweeps through; the result must still be byte-identical to serial.
//!
//! # Determinism
//!
//! Cell outputs are pure functions of the plan, so any interleaving of
//! grants, steals, kills, and harvests yields the same bytes: a cell
//! journaled by a worker presumed dead and re-run by its stealer
//! produces *identical* records, which is why the final compaction can
//! merge the master journal with every surviving lease journal and
//! still demand byte-identity with a serial run. The merge layer
//! enforces the contract — differing duplicate outputs fail the merge
//! loudly instead of folding silently.
//!
//! [`CellId`]: dsp_bench::engine::CellId

pub mod auth;
pub mod chaos;
pub mod coordinator;
pub mod lease;
pub mod protocol;
pub mod stats;
pub mod wal;
pub mod worker;

pub use chaos::{ChaosProxy, ChaosSpec};
pub use coordinator::{Coordinator, CoordinatorHandle, FleetConfig, FleetReport};
pub use lease::{CellReport, GrantOutcome, LeaseLedger, LeaseSizer};
pub use protocol::{MessageReader, PlanIdentity, ProtocolError, Reply, Request, PROTOCOL_VERSION};
pub use stats::{CellProgress, FleetCounters, LeaseInfo, ResultsPage, StatusReport};
pub use wal::{read_wal, WalEvent, WalWriter};
pub use worker::{query_results, query_status, run_worker, run_worker_with, WorkerConfig};
