//! The fleet coordinator: a long-running service that owns an
//! `ExperimentPlan`, leases its cells to workers, and folds every
//! result back into one byte-identical table.
//!
//! # Threading model
//!
//! Plain `std::net` — a non-blocking accept loop on one service thread,
//! one thread per connection, shared state behind a single mutex. The
//! service thread doubles as the maintenance clock: every poll tick it
//! tails active lease journals (growth is liveness), expires leases
//! with no evidence of life within the timeout, **harvests the durable
//! prefix of a dead worker's journal before requeueing the rest**, and
//! checks for completion. Connection threads read with a short timeout
//! so everybody notices shutdown within a tick.
//!
//! # Result flow
//!
//! Every accepted cell completion (streamed over the wire, or harvested
//! from a dead worker's journal) is appended to a **master journal** —
//! a plain full-shard checkpoint journal, so the ordinary `repro merge`
//! and `--resume` machinery can read it. When the last cell lands, the
//! coordinator compacts the master plus every surviving lease journal
//! through `merge_journals`: identical duplicates (a cell journaled by
//! a worker presumed dead *and* re-run by its stealer) fold silently,
//! while a conflicting duplicate — impossible unless two incompatible
//! binaries joined one fleet — fails the run loudly.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufWriter, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dsp_bench::engine::{
    harvest_journal, merge_journals, tail_journal, CellId, CellOutput, CellRecord, ExperimentPlan,
    JournalWriter, ShardSpec,
};

use crate::lease::{CellReport, GrantOutcome, LeaseLedger};
use crate::protocol::{self, MessageReader, PlanIdentity, Reply, Request, PROTOCOL_VERSION};
use crate::stats::{CellProgress, FleetCounters, ResultsPage, StatusReport};

/// Coordinator tuning.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Experiment name workers use to rebuild the plan.
    pub experiment: String,
    /// Scale preset name workers feed to `Scale::parse`.
    pub scale_name: String,
    /// Fleet directory: master journal, lease journals, coordinator
    /// log. Workers on the same machine journal here too.
    pub dir: PathBuf,
    /// Maximum cells per lease.
    pub lease_cells: usize,
    /// Liveness timeout: a lease with no protocol message *and* no
    /// journal growth for this long is expired and its cells re-leased.
    pub timeout_ms: u64,
    /// Maintenance cadence (journal tailing, expiry, accept polling).
    pub poll_ms: u64,
    /// TCP port on 127.0.0.1; 0 picks an ephemeral port.
    pub port: u16,
}

impl FleetConfig {
    /// Defaults sized for a local fleet at quick scale.
    pub fn new(experiment: &str, scale_name: &str, dir: impl Into<PathBuf>) -> Self {
        FleetConfig {
            experiment: experiment.to_string(),
            scale_name: scale_name.to_string(),
            dir: dir.into(),
            lease_cells: 4,
            timeout_ms: 10_000,
            poll_ms: 50,
            port: 0,
        }
    }
}

/// What a finished fleet produced.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// The merged table as CSV — the bytes compared against a serial
    /// run.
    pub csv: String,
    /// The merged table, rendered for humans.
    pub rendered: String,
    /// Final churn counters.
    pub counters: FleetCounters,
    /// Whether the lease ledger reconciled (every cell completed
    /// exactly once, every grant accounted for).
    pub reconciled: bool,
    /// Cells in the plan.
    pub cells: usize,
    /// Wall-clock seconds from coordinator start to the final merge.
    pub wall_s: f64,
}

/// Mutable coordinator state, behind one mutex.
struct State {
    ledger: LeaseLedger,
    /// Master journal writer; taken (closed) at completion.
    master: Option<JournalWriter>,
    /// Journal path per active lease, for tailing and harvest.
    lease_journals: HashMap<u64, PathBuf>,
    /// Every journal path ever assigned, for the final compaction.
    journals: Vec<PathBuf>,
    /// Accepted-result attribution by plan index.
    worker_of_cell: Vec<Option<String>>,
    /// First unrecoverable failure (master-journal I/O, bad merge).
    failure: Option<String>,
    /// Set exactly once, when the sweep finishes (or fails).
    report: Option<Result<FleetReport, String>>,
}

struct Shared {
    plan: ExperimentPlan,
    ids: Vec<CellId>,
    identity: PlanIdentity,
    config: FleetConfig,
    master_path: PathBuf,
    epoch: Instant,
    state: Mutex<State>,
    done: Condvar,
    stop: AtomicBool,
    log: Mutex<BufWriter<File>>,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Appends one timestamped line to the coordinator log (flushed:
    /// the log must survive a crash and is uploaded as a CI artifact).
    fn log(&self, line: &str) {
        let mut log = self.log.lock().expect("log lock poisoned");
        let _ = writeln!(log, "[{:>8}ms] {line}", self.now_ms());
        let _ = log.flush();
    }
}

/// Builder entry point for the fleet service.
pub struct Coordinator;

impl Coordinator {
    /// Starts a coordinator for `plan` and returns a handle to it. The
    /// service runs on background threads until the sweep completes
    /// and [`CoordinatorHandle::shutdown`] is called (or the handle is
    /// dropped).
    ///
    /// # Errors
    ///
    /// Filesystem failures creating the fleet directory, log, or
    /// master journal; failure to bind the listener.
    pub fn start(plan: ExperimentPlan, config: FleetConfig) -> io::Result<CoordinatorHandle> {
        std::fs::create_dir_all(&config.dir)?;
        let log_file = File::create(config.dir.join("coordinator.log"))?;
        let master_path = config
            .dir
            .join(format!("{}.master.jsonl", config.experiment));
        let master = JournalWriter::create(&master_path, &plan, &ShardSpec::full())
            .map_err(|e| io::Error::other(e.to_string()))?;
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let ids = CellId::assign(&plan.cells);
        let identity = PlanIdentity::of(&config.experiment, &plan);
        let cells = plan.cells.len();
        let shared = Arc::new(Shared {
            identity,
            config,
            master_path,
            epoch: Instant::now(),
            state: Mutex::new(State {
                ledger: LeaseLedger::new(ids.clone()),
                master: Some(master),
                lease_journals: HashMap::new(),
                journals: Vec::new(),
                worker_of_cell: vec![None; cells],
                failure: None,
                report: None,
            }),
            done: Condvar::new(),
            stop: AtomicBool::new(false),
            log: Mutex::new(BufWriter::new(log_file)),
            ids,
            plan,
        });
        shared.log(&format!(
            "coordinator up on {addr}: experiment {} ({} cells, manifest {}), scale {}, \
             lease_cells {}, timeout {}ms",
            shared.config.experiment,
            cells,
            shared.identity.manifest,
            shared.config.scale_name,
            shared.config.lease_cells,
            shared.config.timeout_ms,
        ));

        let service = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fleet-coordinator".to_string())
                .spawn(move || service_loop(&shared, &listener))?
        };
        Ok(CoordinatorHandle {
            addr,
            shared,
            service: Some(service),
        })
    }
}

/// A running coordinator.
pub struct CoordinatorHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    service: Option<JoinHandle<()>>,
}

impl CoordinatorHandle {
    /// The bound address workers connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the sweep finishes (or `deadline` passes) and
    /// returns the final report. The service keeps running afterwards
    /// — it still answers `Status`/`Results` and tells late workers to
    /// shut down — until [`shutdown`](Self::shutdown).
    ///
    /// # Errors
    ///
    /// The coordinator's failure (master-journal I/O, merge conflict),
    /// or a timeout message when `deadline` elapses first.
    pub fn wait(&self, deadline: Duration) -> Result<FleetReport, String> {
        let started = Instant::now();
        let mut state = self.shared.state.lock().expect("state lock poisoned");
        loop {
            if let Some(report) = &state.report {
                return report.clone();
            }
            let left = deadline
                .checked_sub(started.elapsed())
                .ok_or_else(|| format!("fleet did not finish within {deadline:?}"))?;
            let (next, timeout) = self
                .shared
                .done
                .wait_timeout(state, left.min(Duration::from_millis(200)))
                .expect("state lock poisoned");
            state = next;
            let _ = timeout;
        }
    }

    /// Stops the service and joins its threads. Called automatically
    /// on drop; explicit calls just make the order visible.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(service) = self.service.take() {
            let _ = service.join();
        }
    }
}

impl Drop for CoordinatorHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Accept loop + maintenance clock.
fn service_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::Relaxed) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(shared);
                    if let Ok(handle) = std::thread::Builder::new()
                        .name("fleet-conn".to_string())
                        .spawn(move || serve_connection(&shared, stream))
                    {
                        connections.push(handle);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => {
                    shared.log(&format!("accept failed: {e}"));
                    break;
                }
            }
        }
        maintain(shared);
        std::thread::sleep(Duration::from_millis(shared.config.poll_ms));
    }
    for handle in connections {
        let _ = handle.join();
    }
    shared.log("coordinator down");
}

/// One maintenance tick: journal liveness, expiry + harvest,
/// completion.
fn maintain(shared: &Shared) {
    let now = shared.now_ms();
    let mut state = shared.state.lock().expect("state lock poisoned");
    let state = &mut *state;

    // Journal growth is a heartbeat (and drop tails of dead leases).
    state
        .lease_journals
        .retain(|lease, _| state.ledger.lease(*lease).is_some());
    for (&lease, path) in &state.lease_journals {
        if let Ok(tail) = tail_journal(path) {
            state.ledger.observe_journal(lease, tail, now);
        }
    }

    // Expire silent leases — harvesting the durable prefix of each
    // one's journal first, so work a dead worker finished is kept.
    for lease in state.ledger.stale_leases(now, shared.config.timeout_ms) {
        let worker = state
            .ledger
            .lease(lease)
            .map(|l| l.worker.clone())
            .unwrap_or_default();
        let mut harvested = 0usize;
        if let Some(path) = state.lease_journals.get(&lease).cloned() {
            if path.exists() {
                match harvest_journal(&shared.plan, &path) {
                    Ok(records) => {
                        for (id, index, output) in records {
                            if accept_cell(shared, state, lease, &worker, id, index, output, now)
                                == CellReport::Accepted
                            {
                                state.ledger.counters.cells_harvested += 1;
                                harvested += 1;
                            }
                        }
                    }
                    Err(e) => shared.log(&format!(
                        "harvest of lease {lease} journal failed (results will be re-run): {e}"
                    )),
                }
            }
        }
        let requeued = state.ledger.expire(lease);
        shared.log(&format!(
            "lease {lease} ({worker}) expired after {}ms silence: {harvested} cells harvested \
             from its journal, {requeued} requeued",
            shared.config.timeout_ms,
        ));
    }

    maybe_finish(shared, state);
}

/// Routes one accepted completion into the ledger and, when it is the
/// first for its cell, the master journal.
#[allow(clippy::too_many_arguments)]
fn accept_cell(
    shared: &Shared,
    state: &mut State,
    lease: u64,
    worker: &str,
    id: CellId,
    index: usize,
    output: CellOutput,
    now: u64,
) -> CellReport {
    let verdict = state.ledger.complete_cell(lease, id, now);
    if verdict == CellReport::Accepted {
        state.worker_of_cell[index] = Some(worker.to_string());
        if let Some(master) = state.master.as_mut() {
            let record = CellRecord {
                id,
                index,
                replayed: false,
                output,
            };
            if let Err(e) = master.append(&record) {
                let message = format!("master journal write failed: {e}");
                shared.log(&message);
                state.failure.get_or_insert(message);
            }
        }
    }
    verdict
}

/// Completion check: renders the final table exactly once.
fn maybe_finish(shared: &Shared, state: &mut State) {
    if state.report.is_some() || !state.ledger.is_complete() {
        return;
    }
    // Every cell is done, so any lease still active is empty: its
    // holder abandoned it after a Stale verdict, or its final Complete
    // has not arrived yet. Retire them so post-completion status never
    // shows ghost leases (the late Complete is answered Stale, which
    // the worker treats as routine).
    for info in state.ledger.lease_infos() {
        state.ledger.complete_lease(info.lease);
    }
    if let Some(master) = state.master.take() {
        if let Err(e) = master.finish() {
            state
                .failure
                .get_or_insert(format!("master journal failed: {e}"));
        }
    }
    // Compact: the master plus every surviving lease journal. Lease
    // journals hold identical duplicates of master records (and that
    // is asserted — a conflicting duplicate fails the merge).
    let mut paths = vec![shared.master_path.clone()];
    for path in &state.journals {
        if path.exists() && !paths.contains(path) {
            paths.push(path.clone());
        }
    }
    let counters = state.ledger.counters;
    let reconciled = counters.reconciled(state.ledger.total() as u64);
    let result = match (&state.failure, merge_journals(&shared.plan, &paths)) {
        (Some(failure), _) => Err(failure.clone()),
        (None, Err(e)) => Err(format!("final compaction failed: {e}")),
        (None, Ok(table)) => Ok(FleetReport {
            csv: table.to_csv(),
            rendered: table.to_string(),
            counters,
            reconciled,
            cells: state.ledger.total(),
            wall_s: shared.epoch.elapsed().as_secs_f64(),
        }),
    };
    shared.log(&format!(
        "sweep complete: {} cells | leases granted {} completed {} expired {} | cells granted {} \
         completed {} stolen {} harvested {} stale-rejected {} | compacted {} journals | \
         leases_reconciled: {reconciled}",
        state.ledger.total(),
        counters.leases_granted,
        counters.leases_completed,
        counters.leases_expired,
        counters.cells_granted,
        counters.cells_completed,
        counters.cells_stolen,
        counters.cells_harvested,
        counters.stale_reports,
        paths.len(),
    ));
    if let Err(e) = &result {
        shared.log(&format!("sweep FAILED: {e}"));
    }
    state.report = Some(result);
    shared.done.notify_all();
}

/// One connection: requests in, replies out, until EOF or shutdown.
fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = MessageReader::new(read_half);
    let mut writer = stream;
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let request = match reader.recv::<Request>() {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(e) => {
                shared.log(&format!("connection dropped: {e}"));
                return;
            }
        };
        let reply = handle(shared, request);
        if protocol::send(&mut writer, &reply).is_err() {
            return;
        }
    }
}

/// The request dispatcher.
fn handle(shared: &Shared, request: Request) -> Reply {
    let now = shared.now_ms();
    match request {
        Request::Hello { worker, proto } => {
            if proto != PROTOCOL_VERSION {
                return Reply::Error {
                    message: format!(
                        "protocol version mismatch: worker {worker} speaks v{proto}, \
                         coordinator speaks v{PROTOCOL_VERSION}"
                    ),
                };
            }
            shared.log(&format!("worker {worker} connected"));
            Reply::Welcome {
                proto: PROTOCOL_VERSION,
                scale: shared.config.scale_name.clone(),
                identity: shared.identity.clone(),
            }
        }
        Request::Lease { worker } => {
            let mut state = shared.state.lock().expect("state lock poisoned");
            match state.ledger.grant(&worker, now, shared.config.lease_cells) {
                GrantOutcome::Granted {
                    lease,
                    cells,
                    stolen,
                } => {
                    let journal =
                        format!("{}.lease{lease}.{worker}.jsonl", shared.config.experiment);
                    let path = shared.config.dir.join(&journal);
                    state.lease_journals.insert(lease, path.clone());
                    state.journals.push(path);
                    shared.log(&format!(
                        "lease {lease} -> {worker}: {} cells{} -> {journal}",
                        cells.len(),
                        if stolen {
                            " (stolen from a straggler)"
                        } else {
                            ""
                        },
                    ));
                    Reply::Grant {
                        lease,
                        cells: cells.iter().map(|id| id.to_hex()).collect(),
                        journal,
                    }
                }
                GrantOutcome::Wait => Reply::Wait { poll_ms: 300 },
                GrantOutcome::Finished => Reply::Shutdown,
            }
        }
        Request::Heartbeat { lease, .. } => {
            let mut state = shared.state.lock().expect("state lock poisoned");
            if state.ledger.heartbeat(lease, now) {
                Reply::Ack
            } else {
                Reply::Stale { lease }
            }
        }
        Request::CellDone {
            worker,
            lease,
            cell,
            index,
            output,
        } => {
            let Some(id) = CellId::from_hex(&cell) else {
                return Reply::Error {
                    message: format!("malformed cell id {cell:?}"),
                };
            };
            if shared.ids.get(index) != Some(&id) {
                return Reply::Error {
                    message: format!("cell {id} is not at plan index {index}"),
                };
            }
            let mut state = shared.state.lock().expect("state lock poisoned");
            let verdict = accept_cell(shared, &mut state, lease, &worker, id, index, *output, now);
            maybe_finish(shared, &mut state);
            match verdict {
                CellReport::Accepted | CellReport::Duplicate => Reply::Ack,
                CellReport::Stale => {
                    shared.log(&format!(
                        "stale report from {worker}: cell {id} no longer held by lease {lease}"
                    ));
                    Reply::Stale { lease }
                }
            }
        }
        Request::Complete { worker, lease } => {
            let mut state = shared.state.lock().expect("state lock poisoned");
            if state.ledger.complete_lease(lease) {
                shared.log(&format!("lease {lease} ({worker}) complete"));
                maybe_finish(shared, &mut state);
                Reply::Ack
            } else {
                Reply::Stale { lease }
            }
        }
        Request::Status => {
            let state = shared.state.lock().expect("state lock poisoned");
            Reply::Status(StatusReport {
                experiment: shared.config.experiment.clone(),
                total_cells: state.ledger.total(),
                completed_cells: state.ledger.completed(),
                complete: state.report.is_some(),
                counters: state.ledger.counters,
                leases: state.ledger.lease_infos(),
            })
        }
        Request::Results { start, limit } => {
            let state = shared.state.lock().expect("state lock poisoned");
            let total = state.ledger.total();
            let end = start.saturating_add(limit.min(1_000)).min(total);
            let mut cells = Vec::new();
            for index in start.min(total)..end {
                let (id, name, holder) = state.ledger.cell_view(index).expect("index in range");
                let worker = match name {
                    "done" => state.worker_of_cell[index].clone(),
                    "leased" => holder
                        .and_then(|lease| state.ledger.lease(lease))
                        .map(|l| l.worker.clone()),
                    _ => None,
                };
                cells.push(CellProgress {
                    index,
                    cell: id.to_hex(),
                    state: name.to_string(),
                    worker,
                });
            }
            Reply::Results(ResultsPage {
                total,
                completed: state.ledger.completed(),
                start: start.min(total),
                cells,
            })
        }
    }
}
