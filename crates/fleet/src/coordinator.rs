//! The fleet coordinator: a long-running service that owns an
//! `ExperimentPlan`, leases its cells to workers, and folds every
//! result back into one byte-identical table.
//!
//! # Threading model
//!
//! Plain `std::net` — a non-blocking accept loop on one service thread,
//! one thread per connection, shared state behind a single mutex. The
//! service thread doubles as the maintenance clock: every poll tick it
//! tails active lease journals (growth is liveness), expires leases
//! with no evidence of life within the timeout, **harvests the durable
//! prefix of a dead worker's journal before requeueing the rest**, and
//! checks for completion. Connection threads read with a short timeout
//! so everybody notices shutdown within a tick.
//!
//! # Result flow
//!
//! Every accepted cell completion (streamed over the wire, or harvested
//! from a dead worker's journal) is appended to a **master journal** —
//! a plain full-shard checkpoint journal, so the ordinary `repro merge`
//! and `--resume` machinery can read it. When the last cell lands, the
//! coordinator compacts the master plus every surviving lease journal
//! through `merge_journals`: identical duplicates (a cell journaled by
//! a worker presumed dead *and* re-run by its stealer) fold silently,
//! while a conflicting duplicate — impossible unless two incompatible
//! binaries joined one fleet — fails the run loudly.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dsp_bench::engine::{
    harvest_journal, merge_journals, scan_journal, tail_journal, CellId, CellOutput, CellRecord,
    ExperimentPlan, JournalWriter, ShardSpec,
};

use crate::auth::{fresh_nonce, mac64};
use crate::lease::{CellReport, GrantOutcome, LeaseLedger, LeaseSizer};
use crate::protocol::{
    self, MessageReader, PlanIdentity, ProtocolError, Reply, Request, PROTOCOL_VERSION,
};
use crate::stats::{CellProgress, FleetCounters, ResultsPage, StatusReport};
use crate::wal::{read_wal, WalEvent, WalWriter};

/// Coordinator tuning.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Experiment name workers use to rebuild the plan.
    pub experiment: String,
    /// Scale preset name workers feed to `Scale::parse`.
    pub scale_name: String,
    /// Fleet directory: master journal, WAL, lease journals,
    /// coordinator log. Workers on the same machine journal here too.
    pub dir: PathBuf,
    /// Maximum cells per lease (the adaptive sizer's clamp).
    pub lease_cells: usize,
    /// Wall-clock budget one lease should represent; the adaptive sizer
    /// divides this by the observed per-cell EWMA.
    pub target_lease_ms: u64,
    /// Liveness timeout: a lease with no protocol message *and* no
    /// journal growth for this long is expired and its cells re-leased.
    pub timeout_ms: u64,
    /// Maintenance cadence (journal tailing, expiry, accept polling).
    pub poll_ms: u64,
    /// TCP port on 127.0.0.1; 0 picks an ephemeral port.
    pub port: u16,
    /// Shared fleet token; clients must answer the handshake challenge
    /// with `mac64(token, nonce)`. Empty string = open fleet (the
    /// handshake still runs, the secret is just trivial).
    pub token: String,
}

impl FleetConfig {
    /// Defaults sized for a local fleet at quick scale.
    pub fn new(experiment: &str, scale_name: &str, dir: impl Into<PathBuf>) -> Self {
        FleetConfig {
            experiment: experiment.to_string(),
            scale_name: scale_name.to_string(),
            dir: dir.into(),
            lease_cells: 4,
            target_lease_ms: 1_500,
            timeout_ms: 10_000,
            poll_ms: 50,
            port: 0,
            token: String::new(),
        }
    }
}

/// What a finished fleet produced.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// The merged table as CSV — the bytes compared against a serial
    /// run.
    pub csv: String,
    /// The merged table, rendered for humans.
    pub rendered: String,
    /// Final churn counters.
    pub counters: FleetCounters,
    /// Whether the lease ledger reconciled (every cell completed
    /// exactly once, every grant accounted for).
    pub reconciled: bool,
    /// Cells in the plan.
    pub cells: usize,
    /// Wall-clock seconds from coordinator start to the final merge.
    pub wall_s: f64,
    /// `(min, max, final)` lease sizes the adaptive sizer granted.
    pub lease_sizes: (usize, usize, usize),
}

/// One authenticated worker session: survives TCP connections, so a
/// reconnecting worker can prove continuity and keep its leases.
struct Session {
    worker: String,
    /// Leases granted under this session (dead ids are skipped on use).
    leases: Vec<u64>,
}

/// Mutable coordinator state, behind one mutex.
struct State {
    ledger: LeaseLedger,
    /// Master journal writer; taken (closed) at completion.
    master: Option<JournalWriter>,
    /// Write-ahead log of ledger transitions, for crash recovery.
    wal: Option<WalWriter>,
    /// Adaptive lease sizing (EWMA of per-cell wall clock).
    sizer: LeaseSizer,
    /// Authenticated sessions by id.
    sessions: HashMap<u64, Session>,
    next_session: u64,
    /// Journal path per active lease, for tailing and harvest.
    lease_journals: HashMap<u64, PathBuf>,
    /// Every journal path ever assigned, for the final compaction.
    journals: Vec<PathBuf>,
    /// Accepted-result attribution by plan index.
    worker_of_cell: Vec<Option<String>>,
    /// First unrecoverable failure (master-journal or WAL I/O, bad
    /// merge).
    failure: Option<String>,
    /// Set exactly once, when the sweep finishes (or fails).
    report: Option<Result<FleetReport, String>>,
}

struct Shared {
    plan: ExperimentPlan,
    ids: Vec<CellId>,
    identity: PlanIdentity,
    config: FleetConfig,
    master_path: PathBuf,
    epoch: Instant,
    state: Mutex<State>,
    done: Condvar,
    stop: AtomicBool,
    log: Mutex<BufWriter<File>>,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Appends one timestamped line to the coordinator log (flushed:
    /// the log must survive a crash and is uploaded as a CI artifact).
    fn log(&self, line: &str) {
        let mut log = self.log.lock().expect("log lock poisoned");
        let _ = writeln!(log, "[{:>8}ms] {line}", self.now_ms());
        let _ = log.flush();
    }
}

/// Builder entry point for the fleet service.
pub struct Coordinator;

impl Coordinator {
    /// Starts a coordinator for `plan` and returns a handle to it. The
    /// service runs on background threads until the sweep completes
    /// and [`CoordinatorHandle::shutdown`] is called (or the handle is
    /// dropped).
    ///
    /// # Errors
    ///
    /// Filesystem failures creating the fleet directory, log, or
    /// master journal; failure to bind the listener.
    pub fn start(plan: ExperimentPlan, config: FleetConfig) -> io::Result<CoordinatorHandle> {
        std::fs::create_dir_all(&config.dir)?;
        let log_file = File::create(config.dir.join("coordinator.log"))?;
        let master_path = master_path(&config);
        let master = JournalWriter::create(&master_path, &plan, &ShardSpec::full())
            .map_err(|e| io::Error::other(e.to_string()))?;
        let identity = PlanIdentity::of(&config.experiment, &plan);
        let wal = WalWriter::create(&wal_path(&config), &identity)?;

        let ids = CellId::assign(&plan.cells);
        let cells = plan.cells.len();
        let state = State {
            ledger: LeaseLedger::new(ids.clone()),
            master: Some(master),
            wal: Some(wal),
            sizer: LeaseSizer::new(config.target_lease_ms, config.lease_cells),
            sessions: HashMap::new(),
            next_session: 1,
            lease_journals: HashMap::new(),
            journals: Vec::new(),
            worker_of_cell: vec![None; cells],
            failure: None,
            report: None,
        };
        let shared = Arc::new(Shared {
            identity,
            config,
            master_path,
            epoch: Instant::now(),
            state: Mutex::new(state),
            done: Condvar::new(),
            stop: AtomicBool::new(false),
            log: Mutex::new(BufWriter::new(log_file)),
            ids,
            plan,
        });
        serve(shared, "up")
    }

    /// Rebuilds a crashed coordinator from its fleet directory and
    /// resumes the sweep: replay the WAL into a fresh ledger (same
    /// transitions, same lease ids, same churn counters), re-adopt the
    /// master journal's durable outputs, harvest whatever the orphaned
    /// leases journaled before the crash, expire them, and serve the
    /// rest of the plan as usual. Sessions do not survive the crash:
    /// an old worker that reconnects gets a fresh session, and its old
    /// lease reports are answered `Stale` — which workers already treat
    /// as routine.
    ///
    /// # Errors
    ///
    /// A missing/corrupt WAL or master journal, a WAL from a different
    /// plan, or the same filesystem/bind failures as
    /// [`start`](Self::start).
    pub fn recover(plan: ExperimentPlan, config: FleetConfig) -> io::Result<CoordinatorHandle> {
        let log_file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(config.dir.join("coordinator.log"))?;
        let master_path = master_path(&config);
        let identity = PlanIdentity::of(&config.experiment, &plan);
        let ids = CellId::assign(&plan.cells);
        let index_of: HashMap<CellId, usize> =
            ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let invalid = |message: String| io::Error::new(ErrorKind::InvalidData, message);

        // 1. Replay the WAL: the ledger goes through the exact
        //    transitions the dead coordinator logged.
        let contents = read_wal(&wal_path(&config), &identity)?;
        let mut ledger = LeaseLedger::new(ids.clone());
        let mut lease_journals = HashMap::new();
        let mut journals: Vec<PathBuf> = Vec::new();
        let mut worker_of_cell: Vec<Option<String>> = vec![None; ids.len()];
        let mut lease_worker: HashMap<u64, String> = HashMap::new();
        for event in &contents.events {
            match event {
                WalEvent::Granted {
                    lease,
                    worker,
                    cells,
                    journal,
                } => {
                    let cell_ids = cells
                        .iter()
                        .map(|hex| {
                            CellId::from_hex(hex)
                                .ok_or_else(|| invalid(format!("WAL has bad cell id {hex:?}")))
                        })
                        .collect::<io::Result<Vec<CellId>>>()?;
                    ledger
                        .replay_granted(*lease, worker, &cell_ids, 0)
                        .map_err(invalid)?;
                    lease_worker.insert(*lease, worker.clone());
                    let path = config.dir.join(journal);
                    lease_journals.insert(*lease, path.clone());
                    if !journals.contains(&path) {
                        journals.push(path);
                    }
                }
                WalEvent::CellDone { lease, cell } => {
                    let id = CellId::from_hex(cell)
                        .ok_or_else(|| invalid(format!("WAL has bad cell id {cell:?}")))?;
                    match ledger.complete_cell(*lease, id, 0) {
                        CellReport::Accepted => {
                            worker_of_cell[index_of[&id]] = lease_worker.get(lease).cloned();
                        }
                        other => {
                            return Err(invalid(format!(
                                "WAL replay: completion of {cell} under lease {lease} \
                                 judged {other:?}"
                            )));
                        }
                    }
                }
                WalEvent::LeaseDone { lease } => {
                    ledger.complete_lease(*lease);
                }
                WalEvent::Expired { lease } => {
                    ledger.expire(*lease);
                }
            }
        }
        ledger.counters.wal_events_replayed = contents.events.len() as u64;
        let mut wal = WalWriter::append_to(&wal_path(&config), contents.valid_bytes)?;

        // 2. Heal the crash window: a master record whose CellDone
        //    never reached the WAL (the WAL is at most one transition
        //    behind the master, but scan everything).
        let (master_records, master_valid) =
            scan_journal(&plan, &master_path).map_err(|e| invalid(e.to_string()))?;
        let mut recovered = 0u64;
        for (id, index, _output) in &master_records {
            let (_, state_name, holder) = ledger
                .cell_view(*index)
                .ok_or_else(|| invalid(format!("master journal cell {id} out of range")))?;
            if state_name == "done" {
                continue; // the WAL already replayed this completion
            }
            let Some(holder) = holder else {
                return Err(invalid(format!(
                    "master journal has cell {id} but no lease holds it in the WAL"
                )));
            };
            if ledger.complete_cell(holder, *id, 0) != CellReport::Accepted {
                return Err(invalid(format!(
                    "master journal cell {id} did not re-complete under lease {holder}"
                )));
            }
            wal.append(&WalEvent::CellDone {
                lease: holder,
                cell: id.to_hex(),
            })?;
            worker_of_cell[*index] = lease_worker.get(&holder).cloned();
            recovered += 1;
        }
        ledger.counters.cells_recovered = recovered;
        let master = JournalWriter::append_to(&master_path, master_valid)
            .map_err(|e| io::Error::other(e.to_string()))?;

        let wal_replayed = ledger.counters.wal_events_replayed;
        let orphans: Vec<u64> = ledger.lease_infos().iter().map(|l| l.lease).collect();
        let cells = plan.cells.len();
        let state = State {
            ledger,
            master: Some(master),
            wal: Some(wal),
            sizer: LeaseSizer::new(config.target_lease_ms, config.lease_cells),
            sessions: HashMap::new(),
            next_session: 1,
            lease_journals,
            journals,
            worker_of_cell,
            failure: None,
            report: None,
        };
        let shared = Arc::new(Shared {
            identity,
            config,
            master_path,
            epoch: Instant::now(),
            state: Mutex::new(state),
            done: Condvar::new(),
            stop: AtomicBool::new(false),
            log: Mutex::new(BufWriter::new(log_file)),
            ids,
            plan,
        });

        // 3. The crashed incarnation's leases are orphans (their
        //    workers died with it, or will be told Stale): harvest each
        //    one's journal, then expire it, through the same path a
        //    live coordinator uses for dead workers.
        {
            let mut state = shared.state.lock().expect("state lock poisoned");
            let state = &mut *state;
            for lease in &orphans {
                harvest_and_expire(&shared, state, *lease, "orphaned by coordinator crash");
            }
            shared.log(&format!(
                "recovered from WAL: {} events replayed, {} cells re-adopted from the master \
                 journal, {} orphaned leases harvested+expired, {}/{} cells already done",
                wal_replayed,
                recovered,
                orphans.len(),
                state.ledger.completed(),
                cells,
            ));
            maybe_finish(&shared, state);
        }
        serve(shared, "recovered and up")
    }
}

fn master_path(config: &FleetConfig) -> PathBuf {
    config
        .dir
        .join(format!("{}.master.jsonl", config.experiment))
}

fn wal_path(config: &FleetConfig) -> PathBuf {
    config.dir.join(format!("{}.wal.jsonl", config.experiment))
}

/// Binds the listener and spawns the service thread for a fully-built
/// `Shared` — the common tail of `start` and `recover`.
fn serve(shared: Arc<Shared>, how: &str) -> io::Result<CoordinatorHandle> {
    let listener = TcpListener::bind(("127.0.0.1", shared.config.port))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    shared.log(&format!(
        "coordinator {how} on {addr}: experiment {} ({} cells, manifest {}), scale {}, \
         lease_cells {} (adaptive, target {}ms), timeout {}ms, auth {}",
        shared.config.experiment,
        shared.plan.cells.len(),
        shared.identity.manifest,
        shared.config.scale_name,
        shared.config.lease_cells,
        shared.config.target_lease_ms,
        shared.config.timeout_ms,
        if shared.config.token.is_empty() {
            "open"
        } else {
            "token"
        },
    ));
    let service = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("fleet-coordinator".to_string())
            .spawn(move || service_loop(&shared, &listener))?
    };
    Ok(CoordinatorHandle {
        addr,
        shared,
        service: Some(service),
    })
}

/// A running coordinator.
pub struct CoordinatorHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    service: Option<JoinHandle<()>>,
}

impl CoordinatorHandle {
    /// The bound address workers connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the sweep finishes (or `deadline` passes) and
    /// returns the final report. The service keeps running afterwards
    /// — it still answers `Status`/`Results` and tells late workers to
    /// shut down — until [`shutdown`](Self::shutdown).
    ///
    /// # Errors
    ///
    /// The coordinator's failure (master-journal I/O, merge conflict),
    /// or a timeout message when `deadline` elapses first.
    pub fn wait(&self, deadline: Duration) -> Result<FleetReport, String> {
        let started = Instant::now();
        let mut state = self.shared.state.lock().expect("state lock poisoned");
        loop {
            if let Some(report) = &state.report {
                return report.clone();
            }
            let left = deadline
                .checked_sub(started.elapsed())
                .ok_or_else(|| format!("fleet did not finish within {deadline:?}"))?;
            let (next, timeout) = self
                .shared
                .done
                .wait_timeout(state, left.min(Duration::from_millis(200)))
                .expect("state lock poisoned");
            state = next;
            let _ = timeout;
        }
    }

    /// Stops the service and joins its threads. Called automatically
    /// on drop; explicit calls just make the order visible.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(service) = self.service.take() {
            let _ = service.join();
        }
    }
}

impl Drop for CoordinatorHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Accept loop + maintenance clock.
fn service_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::Relaxed) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(shared);
                    if let Ok(handle) = std::thread::Builder::new()
                        .name("fleet-conn".to_string())
                        .spawn(move || serve_connection(&shared, stream))
                    {
                        connections.push(handle);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => {
                    shared.log(&format!("accept failed: {e}"));
                    break;
                }
            }
        }
        maintain(shared);
        std::thread::sleep(Duration::from_millis(shared.config.poll_ms));
    }
    for handle in connections {
        let _ = handle.join();
    }
    shared.log("coordinator down");
}

/// One maintenance tick: journal liveness, expiry + harvest,
/// completion.
fn maintain(shared: &Shared) {
    let now = shared.now_ms();
    let mut state = shared.state.lock().expect("state lock poisoned");
    let state = &mut *state;

    // Journal growth is a heartbeat (and drop tails of dead leases).
    state
        .lease_journals
        .retain(|lease, _| state.ledger.lease(*lease).is_some());
    for (&lease, path) in &state.lease_journals {
        if let Ok(tail) = tail_journal(path) {
            state.ledger.observe_journal(lease, tail, now);
        }
    }

    // Expire silent leases — harvesting the durable prefix of each
    // one's journal first, so work a dead worker finished is kept.
    for lease in state.ledger.stale_leases(now, shared.config.timeout_ms) {
        let reason = format!("{}ms silence", shared.config.timeout_ms);
        harvest_and_expire(shared, state, lease, &reason);
    }

    maybe_finish(shared, state);
}

/// Appends one ledger transition to the WAL; a write failure is the
/// run's failure (the sweep would no longer be recoverable).
fn wal_append(shared: &Shared, state: &mut State, event: &WalEvent) {
    if let Some(wal) = state.wal.as_mut() {
        if let Err(e) = wal.append(event) {
            let message = format!("WAL write failed: {e}");
            shared.log(&message);
            state.failure.get_or_insert(message);
        }
    }
}

/// Kills one lease the way a live coordinator always does: harvest the
/// durable prefix of its journal (crediting completed cells), then
/// expire it (requeueing the rest), WAL-logging both steps. Used for
/// liveness expiry and for the orphans found by crash recovery.
fn harvest_and_expire(shared: &Shared, state: &mut State, lease: u64, reason: &str) {
    let worker = state
        .ledger
        .lease(lease)
        .map(|l| l.worker.clone())
        .unwrap_or_default();
    let mut harvested = 0usize;
    if let Some(path) = state.lease_journals.get(&lease).cloned() {
        if path.exists() {
            match harvest_journal(&shared.plan, &path) {
                Ok(records) => {
                    let now = shared.now_ms();
                    for (id, index, output) in records {
                        if accept_cell(shared, state, lease, &worker, id, index, output, now)
                            == CellReport::Accepted
                        {
                            state.ledger.counters.cells_harvested += 1;
                            harvested += 1;
                        }
                    }
                }
                Err(e) => shared.log(&format!(
                    "harvest of lease {lease} journal failed (results will be re-run): {e}"
                )),
            }
        }
    }
    let requeued = state.ledger.expire(lease);
    wal_append(shared, state, &WalEvent::Expired { lease });
    shared.log(&format!(
        "lease {lease} ({worker}) expired after {reason}: {harvested} cells harvested from its \
         journal, {requeued} requeued",
    ));
}

/// Routes one accepted completion into the ledger and, when it is the
/// first for its cell, the master journal.
#[allow(clippy::too_many_arguments)]
fn accept_cell(
    shared: &Shared,
    state: &mut State,
    lease: u64,
    worker: &str,
    id: CellId,
    index: usize,
    output: CellOutput,
    now: u64,
) -> CellReport {
    let verdict = state.ledger.complete_cell(lease, id, now);
    if verdict == CellReport::Accepted {
        state.worker_of_cell[index] = Some(worker.to_string());
        if let Some(master) = state.master.as_mut() {
            let record = CellRecord {
                id,
                index,
                replayed: false,
                output,
            };
            if let Err(e) = master.append(&record) {
                let message = format!("master journal write failed: {e}");
                shared.log(&message);
                state.failure.get_or_insert(message);
            }
        }
        // Master first, then WAL: a WAL completion always has a durable
        // output behind it (recovery heals the converse window).
        wal_append(
            shared,
            state,
            &WalEvent::CellDone {
                lease,
                cell: id.to_hex(),
            },
        );
    }
    verdict
}

/// Completion check: renders the final table exactly once.
fn maybe_finish(shared: &Shared, state: &mut State) {
    if state.report.is_some() || !state.ledger.is_complete() {
        return;
    }
    // Every cell is done, so any lease still active is empty: its
    // holder abandoned it after a Stale verdict, or its final Complete
    // has not arrived yet. Retire them so post-completion status never
    // shows ghost leases (the late Complete is answered Stale, which
    // the worker treats as routine).
    for info in state.ledger.lease_infos() {
        if state.ledger.complete_lease(info.lease) {
            wal_append(shared, state, &WalEvent::LeaseDone { lease: info.lease });
        }
    }
    if let Some(master) = state.master.take() {
        if let Err(e) = master.finish() {
            state
                .failure
                .get_or_insert(format!("master journal failed: {e}"));
        }
    }
    // The WAL's job ends with the sweep; close it so the file is whole
    // for the CI artifact upload.
    state.wal = None;
    // Compact: the master plus every surviving lease journal. Lease
    // journals hold identical duplicates of master records (and that
    // is asserted — a conflicting duplicate fails the merge).
    let mut paths = vec![shared.master_path.clone()];
    for path in &state.journals {
        if path.exists() && !paths.contains(path) {
            paths.push(path.clone());
        }
    }
    let counters = state.ledger.counters;
    let reconciled = counters.reconciled(state.ledger.total() as u64);
    let result = match (&state.failure, merge_journals(&shared.plan, &paths)) {
        (Some(failure), _) => Err(failure.clone()),
        (None, Err(e)) => Err(format!("final compaction failed: {e}")),
        (None, Ok(table)) => Ok(FleetReport {
            csv: table.to_csv(),
            rendered: table.to_string(),
            counters,
            reconciled,
            cells: state.ledger.total(),
            wall_s: shared.epoch.elapsed().as_secs_f64(),
            lease_sizes: state.sizer.trajectory(),
        }),
    };
    shared.log(&format!(
        "sweep complete: {} cells | leases granted {} completed {} expired {} | cells granted {} \
         completed {} stolen {} harvested {} stale-rejected {} | sessions resumed {} leases \
         re-adopted {} | wal replayed {} cells recovered {} | lease sizes {:?} | compacted {} \
         journals | leases_reconciled: {reconciled}",
        state.ledger.total(),
        counters.leases_granted,
        counters.leases_completed,
        counters.leases_expired,
        counters.cells_granted,
        counters.cells_completed,
        counters.cells_stolen,
        counters.cells_harvested,
        counters.stale_reports,
        counters.sessions_resumed,
        counters.leases_readopted,
        counters.wal_events_replayed,
        counters.cells_recovered,
        state.sizer.trajectory(),
        paths.len(),
    ));
    if let Err(e) = &result {
        shared.log(&format!("sweep FAILED: {e}"));
    }
    state.report = Some(result);
    shared.done.notify_all();
}

/// Where a connection stands in the v2 handshake.
enum ConnAuth {
    /// Nothing received yet (or the handshake was restarted).
    Fresh,
    /// `Hello` accepted; waiting for the `Auth` answer to this nonce.
    Challenged { worker: String, nonce: u64 },
    /// Authenticated under this session; mutating requests allowed.
    Ready { session: u64 },
}

/// One connection: requests in, replies out, until EOF or shutdown.
///
/// A malformed frame (bad JSON, torn line, non-UTF-8) is answered with
/// a typed refusal when the socket still works, logged, and the
/// connection dropped — never a panic; the fuzz test in `fleet_e2e`
/// feeds this path random bytes.
fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = MessageReader::new(read_half);
    let mut writer = stream;
    let mut auth = ConnAuth::Fresh;
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let request = match reader.recv::<Request>() {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                shared.log(&format!("malformed frame dropped: {e}"));
                let _ = protocol::send(
                    &mut writer,
                    &Reply::Refused {
                        error: ProtocolError::Malformed {
                            detail: e.to_string(),
                        },
                    },
                );
                return;
            }
            Err(e) => {
                shared.log(&format!("connection dropped: {e}"));
                return;
            }
        };
        let reply = handle(shared, request, &mut auth);
        if protocol::send(&mut writer, &reply).is_err() {
            return;
        }
    }
}

/// Refusal for a mutating request on a connection that never finished
/// the handshake.
fn unauthenticated(what: &str) -> Reply {
    Reply::Refused {
        error: ProtocolError::AuthFailure {
            detail: format!("{what} requires an authenticated session (Hello then Auth first)"),
        },
    }
}

/// The request dispatcher.
fn handle(shared: &Shared, request: Request, auth: &mut ConnAuth) -> Reply {
    let now = shared.now_ms();
    match request {
        Request::Hello { worker, proto } => {
            if proto != PROTOCOL_VERSION {
                shared.log(&format!(
                    "refused {worker}: protocol v{proto} vs our v{PROTOCOL_VERSION}"
                ));
                return Reply::Refused {
                    error: ProtocolError::VersionSkew {
                        coordinator: PROTOCOL_VERSION,
                        client: proto,
                    },
                };
            }
            let nonce = fresh_nonce();
            *auth = ConnAuth::Challenged { worker, nonce };
            Reply::Challenge { nonce }
        }
        Request::Auth {
            worker,
            mac,
            session,
        } => {
            let ConnAuth::Challenged {
                worker: hello_worker,
                nonce,
            } = &*auth
            else {
                return Reply::Refused {
                    error: ProtocolError::UnknownRequest {
                        detail: "Auth without a pending challenge".to_string(),
                    },
                };
            };
            if *hello_worker != worker {
                return Reply::Refused {
                    error: ProtocolError::AuthFailure {
                        detail: format!("Auth names {worker:?} but Hello named {hello_worker:?}"),
                    },
                };
            }
            if mac != mac64(&shared.config.token, *nonce) {
                shared.log(&format!("refused {worker}: bad challenge response"));
                *auth = ConnAuth::Fresh;
                return Reply::Refused {
                    error: ProtocolError::AuthFailure {
                        detail: "challenge response does not verify (wrong fleet token?)"
                            .to_string(),
                    },
                };
            }
            let mut state = shared.state.lock().expect("state lock poisoned");
            let state = &mut *state;
            let sid = match session {
                // A reconnect presenting a session we know for this
                // worker: re-adopt its live leases instead of letting
                // them expire.
                Some(prev)
                    if state
                        .sessions
                        .get(&prev)
                        .is_some_and(|s| s.worker == worker) =>
                {
                    let leases = state.sessions[&prev].leases.clone();
                    let mut readopted = 0u64;
                    for lease in leases {
                        if state.ledger.heartbeat(lease, now) {
                            readopted += 1;
                        }
                    }
                    state.ledger.counters.sessions_resumed += 1;
                    state.ledger.counters.leases_readopted += readopted;
                    shared.log(&format!(
                        "worker {worker} resumed session {prev}: {readopted} live leases \
                         re-adopted"
                    ));
                    prev
                }
                _ => {
                    let sid = state.next_session;
                    state.next_session += 1;
                    state.sessions.insert(
                        sid,
                        Session {
                            worker: worker.clone(),
                            leases: Vec::new(),
                        },
                    );
                    shared.log(&format!("worker {worker} authenticated: session {sid}"));
                    sid
                }
            };
            *auth = ConnAuth::Ready { session: sid };
            Reply::Welcome {
                proto: PROTOCOL_VERSION,
                scale: shared.config.scale_name.clone(),
                identity: shared.identity.clone(),
                session: sid,
            }
        }
        Request::Lease { worker } => {
            let ConnAuth::Ready { session } = *auth else {
                return unauthenticated("Lease");
            };
            let mut state = shared.state.lock().expect("state lock poisoned");
            let state = &mut *state;
            let size = state.sizer.size(state.ledger.pending());
            match state.ledger.grant(&worker, now, size) {
                GrantOutcome::Granted {
                    lease,
                    cells,
                    stolen,
                } => {
                    let journal =
                        format!("{}.lease{lease}.{worker}.jsonl", shared.config.experiment);
                    let path = shared.config.dir.join(&journal);
                    state.lease_journals.insert(lease, path.clone());
                    state.journals.push(path);
                    if let Some(s) = state.sessions.get_mut(&session) {
                        s.leases.push(lease);
                    }
                    // Durable before the reply: no lease may exist on
                    // the wire that the WAL does not know.
                    wal_append(
                        shared,
                        state,
                        &WalEvent::Granted {
                            lease,
                            worker: worker.clone(),
                            cells: cells.iter().map(|id| id.to_hex()).collect(),
                            journal: journal.clone(),
                        },
                    );
                    shared.log(&format!(
                        "lease {lease} -> {worker} (session {session}): {} cells{} -> {journal}",
                        cells.len(),
                        if stolen {
                            " (stolen from a straggler)"
                        } else {
                            ""
                        },
                    ));
                    Reply::Grant {
                        lease,
                        cells: cells.iter().map(|id| id.to_hex()).collect(),
                        journal,
                    }
                }
                GrantOutcome::Wait => Reply::Wait { poll_ms: 300 },
                GrantOutcome::Finished => Reply::Shutdown,
            }
        }
        Request::Heartbeat { lease, .. } => {
            if !matches!(*auth, ConnAuth::Ready { .. }) {
                return unauthenticated("Heartbeat");
            }
            let mut state = shared.state.lock().expect("state lock poisoned");
            if state.ledger.heartbeat(lease, now) {
                Reply::Ack
            } else {
                Reply::Stale { lease }
            }
        }
        Request::CellDone {
            worker,
            lease,
            cell,
            index,
            output,
        } => {
            if !matches!(*auth, ConnAuth::Ready { .. }) {
                return unauthenticated("CellDone");
            }
            let Some(id) = CellId::from_hex(&cell) else {
                return Reply::Refused {
                    error: ProtocolError::Malformed {
                        detail: format!("malformed cell id {cell:?}"),
                    },
                };
            };
            if shared.ids.get(index) != Some(&id) {
                return Reply::Refused {
                    error: ProtocolError::Malformed {
                        detail: format!("cell {id} is not at plan index {index}"),
                    },
                };
            }
            let mut state = shared.state.lock().expect("state lock poisoned");
            // Per-cell wall clock for the adaptive sizer: measured from
            // the lease's last accepted progress, wire reports only
            // (harvest bursts arrive all at once and would poison the
            // EWMA).
            let progress_base = state.ledger.lease(lease).map(|l| l.last_progress);
            let verdict = accept_cell(shared, &mut state, lease, &worker, id, index, *output, now);
            if verdict == CellReport::Accepted {
                if let Some(base) = progress_base {
                    state.sizer.observe(now.saturating_sub(base));
                }
            }
            maybe_finish(shared, &mut state);
            match verdict {
                CellReport::Accepted | CellReport::Duplicate => Reply::Ack,
                CellReport::Stale => {
                    shared.log(&format!(
                        "stale report from {worker}: cell {id} no longer held by lease {lease}"
                    ));
                    Reply::Stale { lease }
                }
            }
        }
        Request::Complete { worker, lease } => {
            if !matches!(*auth, ConnAuth::Ready { .. }) {
                return unauthenticated("Complete");
            }
            let mut state = shared.state.lock().expect("state lock poisoned");
            let state_ref = &mut *state;
            if state_ref.ledger.complete_lease(lease) {
                wal_append(shared, state_ref, &WalEvent::LeaseDone { lease });
                shared.log(&format!("lease {lease} ({worker}) complete"));
                maybe_finish(shared, state_ref);
                Reply::Ack
            } else {
                Reply::Stale { lease }
            }
        }
        Request::Status => {
            let state = shared.state.lock().expect("state lock poisoned");
            Reply::Status(StatusReport {
                experiment: shared.config.experiment.clone(),
                total_cells: state.ledger.total(),
                completed_cells: state.ledger.completed(),
                complete: state.report.is_some(),
                counters: state.ledger.counters,
                leases: state.ledger.lease_infos(),
            })
        }
        Request::Results { start, limit } => {
            let state = shared.state.lock().expect("state lock poisoned");
            let total = state.ledger.total();
            let end = start.saturating_add(limit.min(1_000)).min(total);
            let mut cells = Vec::new();
            for index in start.min(total)..end {
                let (id, name, holder) = state.ledger.cell_view(index).expect("index in range");
                let worker = match name {
                    "done" => state.worker_of_cell[index].clone(),
                    "leased" => holder
                        .and_then(|lease| state.ledger.lease(lease))
                        .map(|l| l.worker.clone()),
                    _ => None,
                };
                cells.push(CellProgress {
                    index,
                    cell: id.to_hex(),
                    state: name.to_string(),
                    worker,
                });
            }
            Reply::Results(ResultsPage {
                total,
                completed: state.ledger.completed(),
                start: start.min(total),
                cells,
            })
        }
    }
}
