//! `repro` — regenerate the paper's tables and figures.
//!
//! ```bash
//! repro <experiment> [--scale quick|standard|paper] [--out DIR] [--threads N]
//!                    [--shard i/N | --cells HEX,HEX,...] [--checkpoint FILE] [--resume]
//! repro merge <experiment> [--scale ...] [--out DIR] JOURNAL...
//! repro plan <experiment> [--scale ...]
//! repro fleet <experiment> [--scale ...] [--workers N] [--kill-one]
//!                          [--dir DIR] [--lease-cells N] [--lease-timeout-ms MS] [--port P]
//!                          [--token T] [--chaos SEED] [--crash-after N] [--recover]
//! repro worker --connect HOST:PORT [--name W] [--dir DIR] [--threads N] [--token T]
//! repro fleet-status --connect HOST:PORT [--start I] [--limit N]
//! repro fleet-bench [--scale ...] [--out DIR]
//!
//! experiments: table2 fig2 fig3 fig4 fig5 fig6a fig6b fig6c fig7 fig8
//!              ablations extensions scaling claims bandwidth degraded
//!              verify sweep-bench hotpath-bench all
//! ```
//!
//! Each experiment prints an aligned text table and writes a CSV with
//! the same rows under the output directory (created if absent). All
//! experiments run on one [`SweepRunner`], so `repro all` generates
//! each workload trace once and shares it across every table and
//! figure.
//!
//! Long or multi-machine runs use the session flags: `--shard i/N`
//! executes only the cells assigned to shard `i` of `N` and journals
//! them (default `<out>/<experiment>.shard<i>of<N>.jsonl`, override
//! with `--checkpoint`); `--checkpoint FILE` alone journals a full run;
//! `--resume` re-runs only the cells missing from an existing journal;
//! and `repro merge <experiment> J1 J2 ...` folds shard journals into
//! the table, byte-identical to an unsharded run.
//!
//! `sweep-bench` times the sweep engine serial vs parallel vs 2-process
//! sharded and writes `BENCH_sweep.json` to the output directory;
//! `hotpath-bench` times the per-miss hot paths (end-to-end timing
//! simulation first, then lazy-vs-eager predictor training at
//! 16/64/256 nodes, tracker, crossbar, event queue, and predictor
//! table) and writes `BENCH_hotpath.json` alongside it.
//!
//! `degraded` is the fault-injection sweep: predictor policies ×
//! toxic severity on the paper's 16-node crossbar and a 64-node 2D
//! mesh. Besides the usual table/CSV it re-runs the whole plan on a
//! fresh runner and requires byte-identical output (the
//! `toxic_deterministic` marker), blasts a harsh chain through a mesh
//! [`dsp_sim::Topology`] to exercise the per-link conservation ledger
//! (the `link_reconciled` marker), and writes `BENCH_degraded.json`.
//!
//! The fleet commands wrap [`dsp_fleet`]: `repro fleet` runs a
//! coordinator plus N local single-threaded workers over one
//! experiment and requires the merged table to be byte-identical to a
//! serial run (the `fleet_identical` marker) with a reconciled lease
//! ledger (`leases_reconciled`), even when `--kill-one` murders a
//! worker mid-lease; `repro worker` joins any coordinator by address;
//! `repro plan` prints the `CellId` manifest leases are accounted
//! against; `repro fleet-status` polls a running coordinator; and
//! `repro fleet-bench` times 1/2/4-worker fleets (plus a 3-worker
//! fleet under the chaos proxy) against a serial run, writing
//! `BENCH_fleet.json`.
//!
//! The hardened control plane rides the same command: `--token T`
//! closes the fleet to clients that cannot answer the shared-token
//! challenge; `--chaos SEED` routes every worker through a seeded
//! flaky-TCP proxy (delays, stalls, mid-message disconnects) and still
//! demands `fleet_identical`; `--crash-after N` stops the coordinator
//! cold once N cells are complete, leaving the write-ahead log and
//! journals on disk; a second invocation with `--recover` (same
//! experiment, scale, and `--dir`) rebuilds the ledger from the WAL,
//! prints `recovered_from_wal: true`, and finishes the sweep —
//! byte-identical to the serial reference.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use dsp_analysis::TextTable;
use dsp_bench::engine::{
    manifest_digest, merge_journals, CellId, ProgressSink, ShardSpec, SweepRunner,
};
use dsp_bench::{experiments, Scale};
use dsp_fleet::{
    query_results, query_status, run_worker, ChaosProxy, ChaosSpec, Coordinator, FleetConfig,
    WorkerConfig,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <experiment> [--scale quick|standard|paper] [--out DIR] [--threads N]\n\
         \x20      [--shard i/N | --cells HEX,HEX,...] [--checkpoint FILE] [--resume]\n\
         \x20      repro merge <experiment> [--scale ...] [--out DIR] JOURNAL...\n\
         \x20      repro plan <experiment> [--scale ...]\n\
         \x20      repro fleet <experiment> [--scale ...] [--workers N] [--kill-one]\n\
         \x20                  [--dir DIR] [--lease-cells N] [--lease-timeout-ms MS] [--port P]\n\
         \x20                  [--token T] [--chaos SEED] [--crash-after N] [--recover]\n\
         \x20      repro worker --connect HOST:PORT [--name W] [--dir DIR] [--threads N] \
         [--token T]\n\
         \x20      repro fleet-status --connect HOST:PORT [--start I] [--limit N]\n\
         \x20      repro fleet-bench [--scale ...] [--out DIR]\n\
         experiments: {} sweep-bench hotpath-bench all",
        experiments::ALL_EXPERIMENTS.join(" ")
    );
    ExitCode::FAILURE
}

fn save(out_dir: &Path, name: &str, contents: &str) -> bool {
    let path = out_dir.join(name);
    if let Err(e) = std::fs::write(&path, contents) {
        eprintln!("error: cannot write {}: {e}", path.display());
        false
    } else {
        println!("[saved {}]", path.display());
        true
    }
}

fn save_csv(out_dir: &Path, name: &str, table: &TextTable) -> bool {
    save(out_dir, &format!("{name}.csv"), &table.to_csv())
}

/// Times the `fig5` plan split across two single-threaded `repro`
/// child processes (shard 1/2 + shard 2/2, each journaling to a temp
/// file) against one single-threaded in-process run, merges the
/// journals, and verifies the merged table is byte-identical. This is
/// the multi-machine trajectory row: on a 1-CPU container the two
/// processes time-slice, so the interesting numbers are the
/// journal/merge overhead and, on real multi-core runners, the
/// process-level speedup.
fn sharded_sweep_bench(scale: &Scale, scale_name: &str) -> Result<(usize, f64, f64, bool), String> {
    use std::process::{Command, Stdio};

    let exe = std::env::current_exe().map_err(|e| format!("cannot locate repro binary: {e}"))?;
    let dir = std::env::temp_dir().join(format!("dsp-sharded-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let journals: Vec<PathBuf> = (1..=2)
        .map(|i| dir.join(format!("shard{i}.jsonl")))
        .collect();

    // Single-process reference (one thread, like each shard process).
    let plan = experiments::fig5_plan(scale);
    let started = Instant::now();
    let reference = SweepRunner::serial().run(&plan);
    let single_s = started.elapsed().as_secs_f64();

    // Two concurrent shard processes.
    let started = Instant::now();
    let mut children = Vec::new();
    for (i, journal) in journals.iter().enumerate() {
        let child = Command::new(&exe)
            .args([
                "fig5",
                "--scale",
                scale_name,
                "--shard",
                &format!("{}/2", i + 1),
                "--checkpoint",
            ])
            .arg(journal)
            .args(["--threads", "1", "--out"])
            .arg(&dir)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("cannot spawn shard process: {e}"))?;
        children.push(child);
    }
    for mut child in children {
        let status = child
            .wait()
            .map_err(|e| format!("shard process failed: {e}"))?;
        if !status.success() {
            return Err(format!("shard process exited with {status}"));
        }
    }
    let two_process_s = started.elapsed().as_secs_f64();

    let merged = merge_journals(&plan, &journals).map_err(|e| format!("merge failed: {e}"))?;
    let byte_identical = merged.to_csv() == reference.to_csv();
    let _ = std::fs::remove_dir_all(&dir);
    Ok((plan.len(), single_s, two_process_s, byte_identical))
}

/// Times `table2 + fig5` (the Table 2 / Figure 5 reproduction path)
/// three ways — seed-style (one thread, traces shared within a driver
/// but regenerated across drivers, as the pre-engine code behaved),
/// the engine single-threaded, and the engine parallel — plus the
/// 2-process sharded run, and returns the `BENCH_sweep.json` payload.
fn sweep_bench(scale: &Scale, scale_name: &str, threads: Option<usize>) -> Result<String, String> {
    let plans = || {
        vec![
            experiments::table2_plan(scale),
            experiments::fig5_plan(scale),
        ]
    };
    let cells: usize = plans().iter().map(|p| p.len()).sum();
    let time_with = |runner: &SweepRunner| {
        let started = Instant::now();
        let tables: Vec<TextTable> = plans().iter().map(|p| runner.run(p)).collect();
        (started.elapsed().as_secs_f64(), tables)
    };

    // Seed-style: each driver generated every workload's trace afresh
    // (one generation per workload per driver) — a fresh runner per
    // plan reproduces exactly that cost.
    let (seed_s, seed_tables) = {
        let started = Instant::now();
        let tables: Vec<TextTable> = plans()
            .iter()
            .map(|p| SweepRunner::serial().run(p))
            .collect();
        (started.elapsed().as_secs_f64(), tables)
    };
    let (serial_s, serial_tables) = time_with(&SweepRunner::serial());
    let parallel_runner = match threads {
        Some(n) => SweepRunner::with_threads(n),
        None => SweepRunner::new(),
    };
    let (parallel_s, parallel_tables) = time_with(&parallel_runner);

    for (s, p) in seed_tables
        .iter()
        .zip(&parallel_tables)
        .chain(serial_tables.iter().zip(&parallel_tables))
    {
        assert_eq!(
            s.to_csv(),
            p.to_csv(),
            "parallel output must be byte-identical to serial"
        );
    }

    let threads = parallel_runner.threads();
    let speedup = seed_s / parallel_s.max(1e-9);
    println!(
        "sweep-bench: {cells} cells | seed-style serial {seed_s:.2}s ({:.1} cells/s) | \
         shared-trace serial {serial_s:.2}s | parallel[{threads}] {parallel_s:.2}s \
         ({:.1} cells/s) | speedup {speedup:.2}x",
        cells as f64 / seed_s.max(1e-9),
        cells as f64 / parallel_s.max(1e-9),
    );

    let (shard_cells, single_s, two_process_s, merge_identical) =
        sharded_sweep_bench(scale, scale_name)?;
    println!(
        "sharded-sweep: fig5 ({shard_cells} cells) | single-process {single_s:.2}s | \
         2-process {two_process_s:.2}s | merge byte-identical: {merge_identical}",
    );
    if !merge_identical {
        return Err("sharded merge diverged from the single-process table".to_string());
    }

    Ok(format!(
        "{{\n  \"benchmark\": \"sweep\",\n  \"plans\": [\"table2\", \"fig5\"],\n  \
         \"cells\": {cells},\n  \"threads\": {threads},\n  \
         \"seed_style_serial_wall_s\": {seed_s:.4},\n  \
         \"shared_trace_serial_wall_s\": {serial_s:.4},\n  \
         \"parallel_wall_s\": {parallel_s:.4},\n  \
         \"seed_style_cells_per_s\": {:.3},\n  \"parallel_cells_per_s\": {:.3},\n  \
         \"speedup\": {speedup:.3},\n  \"byte_identical\": true,\n  \
         \"sharded-sweep\": {{\n    \"plan\": \"fig5\",\n    \"cells\": {shard_cells},\n    \
         \"shards\": 2,\n    \"single_process_wall_s\": {single_s:.4},\n    \
         \"two_process_wall_s\": {two_process_s:.4},\n    \
         \"process_speedup\": {:.3},\n    \"merge_byte_identical\": {merge_identical}\n  }}\n}}\n",
        cells as f64 / seed_s.max(1e-9),
        cells as f64 / parallel_s.max(1e-9),
        single_s / two_process_s.max(1e-9),
    ))
}

/// Runs `routine` repeatedly until `budget_s` seconds elapse (at least
/// once), returning the best per-run wall time and the last result.
fn best_time<T>(budget_s: f64, mut routine: impl FnMut() -> T) -> (f64, T) {
    let started = Instant::now();
    let mut best = f64::INFINITY;
    let mut out;
    loop {
        let t0 = Instant::now();
        out = routine();
        best = best.min(t0.elapsed().as_secs_f64());
        if started.elapsed().as_secs_f64() > budget_s {
            return (best, out);
        }
    }
}

/// Times the per-miss hot paths — the coherence tracker, the crossbar
/// send path, the event queue, the predictor table, and the
/// fig7/fig8-style timing simulation end to end — and returns the
/// `BENCH_hotpath.json` payload.
///
/// The tracker microloop runs the same OLTP access sequence through the
/// open-addressing [`dsp_coherence::CoherenceTracker`] and through
/// [`dsp_coherence::ReferenceTracker`] (the seed `HashMap`
/// implementation), asserting identical statistics — so the recorded
/// speedup is over a semantically-verified baseline from the same run.
/// The crossbar microloop compares the allocation-free `send_into`
/// against [`dsp_interconnect::ReferenceCrossbar`], the in-tree copy of
/// the seed implementation (per-send float `ceil`, heap-allocated
/// arrival `Vec` per delivery), cross-checked for identical timings in
/// the same run. The queue microloop replays a steady-state hold-N
/// schedule (trace-derived deltas, far-future tail) through
/// [`dsp_sim::WheelQueue`] and the seed [`dsp_sim::ReferenceQueue`]
/// heap, pinning identical pop order in-run; the predictor-table
/// microloop replays the policy layer's lookup/train mix through
/// [`dsp_core::PredictorTable`] (flat set arrays + open addressing) and
/// the seed [`dsp_core::ReferencePredictorTable`] (`Vec<Vec>` +
/// `HashMap`), asserting identical [`dsp_core::TableStats`].
fn hotpath_bench(scale: &Scale) -> String {
    use dsp_coherence::{CoherenceTracker, ReferenceTracker};
    use dsp_core::{Capacity, Indexing, PredictorConfig, PredictorTable, ReferencePredictorTable};
    use dsp_interconnect::{Crossbar, InterconnectConfig, Message, ReferenceCrossbar};
    use dsp_sim::{
        simulate_with_partition, simulate_with_queue_stats, DispatchMode, Event, ProtocolKind,
        QueueCounters, ReferenceQueue, SimConfig, System, TargetSystem, TracePartition,
        TrainingMode, WheelQueue,
    };
    use dsp_trace::{TraceRecord, Workload, WorkloadSpec};
    use dsp_types::{DestSet, MessageClass, SystemConfig};

    let sys = SystemConfig::isca03();
    let spec = WorkloadSpec::preset(Workload::Oltp, &sys).scaled(scale.footprint);
    let n_accesses = scale.trace_warmup + scale.trace_measured;
    let budget = 0.5;

    // --- End-to-end fig7/fig8-style timing simulation ----------------
    // Measured *before* the microloops below, on the fresh-process
    // heap a production sweep process sees. The microloops free
    // multi-hundred-kilobyte scratch buffers, which lifts glibc's
    // dynamic mmap threshold and shifts every later short-run `System`
    // construction from fresh zero pages to dirty recycled chunks —
    // an allocator-regime artifact worth ~20 % on this row that no
    // sweep process pays (measured while landing the lazy-training
    // change; see EXPERIMENTS.md "Profiling & hot-path methodology").
    let protocols = [
        ("snooping", ProtocolKind::Snooping),
        (
            "multicast-owner-group",
            ProtocolKind::Multicast(
                PredictorConfig::owner_group().indexing(Indexing::Macroblock { bytes: 1024 }),
            ),
        ),
    ];
    // The per-run trace partition is hoisted out of the timed loop:
    // it depends only on (spec, seed, nodes, quota), so the sweep
    // engine builds it once per workload and every repeated cell
    // shares it — the benchmark measures what production runs pay.
    let sim_partition = TracePartition::build(
        &spec,
        experiments::SEED,
        sys.num_nodes(),
        scale.sim_warmup + scale.sim_measured,
    );
    let mut sim_misses = 0u64;
    let mut sim_wall = 0f64;
    // Queue occupancy over one run of each protocol (deterministic, so
    // the last timed repetition is representative): the queue-pressure
    // trend line — lazy training shrank pushes from O(misses × dests)
    // to O(misses).
    let mut sim_queue = QueueCounters::default();
    for (_, protocol) in &protocols {
        // The end-to-end number is the PR-over-PR trend line, so it
        // gets a larger best-of budget than the microloops to damp
        // noisy-neighbor variance on shared CI machines.
        let (wall, (misses, counters)) = best_time(budget * 2.0, || {
            let sim = SimConfig::new(*protocol)
                .misses(scale.sim_warmup, scale.sim_measured)
                .seed(experiments::SEED);
            let (report, counters) = simulate_with_queue_stats(
                &sys,
                TargetSystem::isca03_default(),
                &spec,
                sim,
                sim_partition.clone(),
            );
            counters.assert_reconciled();
            (report.measured_misses, counters)
        });
        sim_misses += misses;
        sim_wall += wall;
        sim_queue.merge(&counters);
    }
    let sim_mps = sim_misses as f64 / sim_wall.max(1e-9);

    // --- Event dispatch: batched slot drains vs the per-event loop ---
    // One multicast run under both dispatch modes on the shared
    // partition. Equivalence is asserted in-run at the strongest
    // observable granularity — the full (time, seq, kind) dispatch
    // order plus the reports — then both loops are timed and reported
    // as dispatched events per second.
    let dispatch_sim = |mode: DispatchMode| {
        SimConfig::new(protocols[1].1)
            .misses(scale.sim_warmup, scale.sim_measured)
            .seed(experiments::SEED)
            .dispatch(mode)
    };
    let dispatch_run = |mode: DispatchMode| {
        System::<1>::with_partition(
            &sys,
            TargetSystem::isca03_default(),
            &spec,
            dispatch_sim(mode),
            sim_partition.clone(),
        )
    };
    let (batched_report, batched_log) = dispatch_run(DispatchMode::Batched).run_with_dispatch_log();
    let (per_event_report, per_event_log) =
        dispatch_run(DispatchMode::PerEvent).run_with_dispatch_log();
    assert_eq!(
        batched_log, per_event_log,
        "batched dispatch reordered the (time, seq) event stream"
    );
    assert_eq!(
        batched_report, per_event_report,
        "batched dispatch changed the simulation report"
    );
    let dispatch_events = batched_log.len() as u64;
    let (batched_s, _) = best_time(budget, || {
        dispatch_run(DispatchMode::Batched).run().measured_misses
    });
    let (per_event_s, _) = best_time(budget, || {
        dispatch_run(DispatchMode::PerEvent).run().measured_misses
    });
    let batched_eps = dispatch_events as f64 / batched_s.max(1e-9);
    let per_event_eps = dispatch_events as f64 / per_event_s.max(1e-9);
    let dispatch_speedup = batched_eps / per_event_eps.max(1e-9);

    // --- Training delivery: lazy inboxes vs the eager reference ------
    // One multicast run per node count under both training modes, on
    // one shared partition: reports are cross-checked for equality
    // in-run (the lazy path must be observationally invisible), then
    // both modes are timed. The eager path queues one wheel event per
    // request destination, so its cost grows with the fan-out — the
    // relative win widens with the node count. The policy is the
    // paper's latency-conscious Broadcast-if-Shared (Table 3): shared
    // data multicasts near-broadcast sets, which is exactly the
    // fan-out regime the lazy inboxes remove from the wheel.
    let train_protocol = ProtocolKind::Multicast(
        PredictorConfig::broadcast_if_shared().indexing(Indexing::Macroblock { bytes: 1024 }),
    );
    let (train_warmup, train_measured) = (50usize, 200usize);
    let mut train_rows = Vec::new();
    for nodes in [16usize, 64, 256] {
        let config = SystemConfig::builder()
            .num_nodes(nodes)
            .build()
            .expect("valid node count");
        let train_spec = WorkloadSpec::preset(Workload::Oltp, &config).scaled(scale.footprint);
        let partition = TracePartition::build(
            &train_spec,
            experiments::SEED,
            nodes,
            train_warmup + train_measured,
        );
        let run = |mode: TrainingMode| {
            let sim = SimConfig::new(train_protocol)
                .misses(train_warmup, train_measured)
                .seed(experiments::SEED)
                .training(mode);
            simulate_with_partition(
                &config,
                TargetSystem::isca03_default(),
                &train_spec,
                sim,
                partition.clone(),
            )
        };
        let eager_report = run(TrainingMode::Eager);
        let lazy_report = run(TrainingMode::Lazy);
        assert_eq!(
            eager_report, lazy_report,
            "lazy training diverged from the eager reference at {nodes} nodes"
        );
        let misses = (eager_report.measured_misses + lazy_report.measured_misses) / 2;
        let (eager_s, _) = best_time(budget, || run(TrainingMode::Eager).measured_misses);
        let (lazy_s, _) = best_time(budget, || run(TrainingMode::Lazy).measured_misses);
        let eager_mps = misses as f64 / eager_s.max(1e-9);
        let lazy_mps = misses as f64 / lazy_s.max(1e-9);
        train_rows.push((nodes, eager_mps, lazy_mps, lazy_mps / eager_mps.max(1e-9)));
    }

    let accesses: Vec<TraceRecord> = spec.generator(experiments::SEED).take(n_accesses).collect();

    // --- Tracker microloop: fast table vs the seed HashMap tracker ---
    // Equivalence first: one pass over the trace on fresh trackers,
    // asserting identical MissInfo, stats, and block counts, so the
    // speedup below is over a semantically-verified baseline.
    // Single-word width: the monomorphization every <=64-node run now
    // dispatches to, with the multi-word fast path compiled out.
    let mut fast: CoherenceTracker<1> = CoherenceTracker::new(&sys);
    let mut hash: ReferenceTracker<1> = ReferenceTracker::new(&sys);
    for rec in &accesses {
        let a = fast.access(rec.requester, rec.request(), rec.block());
        let b = hash.access(rec.requester, rec.request(), rec.block());
        assert_eq!(a, b, "fast tracker diverged from the HashMap reference");
    }
    assert_eq!(fast.stats(), hash.stats());
    assert_eq!(fast.tracked_blocks(), hash.tracked_blocks());
    // Throughput on the warmed trackers (the steady state that
    // dominates long runs: warmup + measured passes, as every
    // experiment driver runs them).
    let (fast_s, _) = best_time(budget, || {
        let mut acc = 0u64;
        for rec in &accesses {
            let info = fast.access(rec.requester, rec.request(), rec.block());
            acc = acc
                .wrapping_add(info.home.index() as u64)
                .wrapping_add(info.sharers_before.bits())
                .wrapping_add(info.was_upgrade as u64);
        }
        acc
    });
    let (hash_s, _) = best_time(budget, || {
        let mut acc = 0u64;
        for rec in &accesses {
            let info = hash.access(rec.requester, rec.request(), rec.block());
            acc = acc
                .wrapping_add(info.home.index() as u64)
                .wrapping_add(info.sharers_before.bits())
                .wrapping_add(info.was_upgrade as u64);
        }
        acc
    });
    let fast_mps = accesses.len() as f64 / fast_s.max(1e-9);
    let hash_mps = accesses.len() as f64 / hash_s.max(1e-9);
    let tracker_speedup = fast_mps / hash_mps.max(1e-9);

    // --- Crossbar microloop: inline arrivals vs alloc-per-send -------
    let n = sys.num_nodes();
    let msgs: Vec<(u64, Message<1>)> = accesses
        .iter()
        .enumerate()
        .map(|(i, rec)| {
            let src = rec.requester;
            // Unicast / small multicast / broadcast mix, request and
            // data classes included, all derived from the trace.
            let dests = match i % 3 {
                0 => DestSet::single(rec.block().home(n)),
                1 => DestSet::from_bits(0b1111 << (i % 13)),
                _ => sys.broadcast_set_w::<1>().without(src),
            };
            let class = MessageClass::ALL[i % MessageClass::COUNT];
            (3 * i as u64, Message { src, dests, class })
        })
        .collect();
    let (inline_s, inline_sum) = best_time(budget, || {
        let mut x = Crossbar::new(InterconnectConfig::isca03(), n);
        let mut arrivals = dsp_interconnect::Arrivals::new();
        let mut acc = 0u64;
        for (now, msg) in &msgs {
            let order_time = x.send_into(*now, msg, &mut arrivals);
            acc = acc.wrapping_add(order_time);
            for (_, t) in &arrivals {
                acc = acc.wrapping_add(*t);
            }
        }
        acc
    });
    let (seed_s, seed_sum) = best_time(budget, || {
        let mut x = ReferenceCrossbar::new(InterconnectConfig::isca03(), n);
        let mut acc = 0u64;
        for (now, msg) in &msgs {
            let (order_time, arrivals) = x.send(*now, msg);
            acc = acc.wrapping_add(order_time);
            for (_, t) in &arrivals {
                acc = acc.wrapping_add(*t);
            }
        }
        acc
    });
    assert_eq!(
        inline_sum, seed_sum,
        "crossbar deliveries diverged from the seed model"
    );
    let inline_msgs = msgs.len() as f64 / inline_s.max(1e-9);
    let alloc_msgs = msgs.len() as f64 / seed_s.max(1e-9);

    // --- Event-queue microloop: timing wheel vs the seed heap --------
    // A steady-state hold-N schedule, the shape the simulator's event
    // loop produces: the queue holds ~depth events (128+-node runs keep
    // hundreds in flight), each pop schedules a successor at a
    // trace-derived delta, and every 16th delta jumps past the wheel
    // horizon like the exponential tail of CPU computation gaps.
    const QUEUE_DEPTH: usize = 1024;
    let deltas: Vec<u64> = accesses
        .iter()
        .enumerate()
        .map(|(i, rec)| {
            let near = 1 + rec.block().number() % 431;
            if i % 16 == 0 {
                near + 6000
            } else {
                near
            }
        })
        .collect();
    // Equivalence first: identical pop order on the same schedule.
    {
        let mut wheel = WheelQueue::new();
        let mut heap = ReferenceQueue::new();
        for (i, &d) in deltas.iter().take(QUEUE_DEPTH).enumerate() {
            wheel.push(d, Event::Complete { req: i });
            heap.push(d, Event::Complete { req: i });
        }
        for &d in &deltas {
            let a = wheel.pop();
            let b = heap.pop();
            assert_eq!(a, b, "wheel queue diverged from the seed heap");
            let (now, _) = a.expect("queue primed");
            wheel.push(now + d, Event::Complete { req: 0 });
            heap.push(now + d, Event::Complete { req: 0 });
        }
        while let Some(a) = wheel.pop() {
            assert_eq!(Some(a), heap.pop(), "drain diverged");
        }
        assert!(heap.is_empty());
    }
    let queue_events = (deltas.len() + QUEUE_DEPTH) as f64;
    let (wheel_s, wheel_sum) = best_time(budget, || {
        let mut q = WheelQueue::new();
        let mut acc = 0u64;
        for (i, &d) in deltas.iter().take(QUEUE_DEPTH).enumerate() {
            q.push(d, Event::Complete { req: i });
        }
        for &d in &deltas {
            let (now, _) = q.pop().expect("primed");
            acc = acc.wrapping_add(now);
            q.push(now + d, Event::Complete { req: 0 });
        }
        while let Some((t, _)) = q.pop() {
            acc = acc.wrapping_add(t);
        }
        acc
    });
    let (heap_s, heap_sum) = best_time(budget, || {
        let mut q = ReferenceQueue::new();
        let mut acc = 0u64;
        for (i, &d) in deltas.iter().take(QUEUE_DEPTH).enumerate() {
            q.push(d, Event::Complete { req: i });
        }
        for &d in &deltas {
            let (now, _) = q.pop().expect("primed");
            acc = acc.wrapping_add(now);
            q.push(now + d, Event::Complete { req: 0 });
        }
        while let Some((t, _)) = q.pop() {
            acc = acc.wrapping_add(t);
        }
        acc
    });
    assert_eq!(wheel_sum, heap_sum, "queue pop-time checksums diverged");
    let wheel_eps = queue_events / wheel_s.max(1e-9);
    let heap_eps = queue_events / heap_s.max(1e-9);
    let queue_speedup = wheel_eps / heap_eps.max(1e-9);

    // --- Predictor-table microloop: flat arrays vs Vec<Vec> + HashMap
    // The lookup/train mix the policy layer issues, over
    // macroblock-indexed keys from the same trace, against both the
    // paper's finite configuration and the unbounded idealization.
    let mb_keys: Vec<u64> = accesses
        .iter()
        .map(|rec| rec.block().number() >> 4)
        .collect();
    let run_fast = |mb_keys: &[u64]| {
        let mut finite: PredictorTable<u64> = PredictorTable::new(Capacity::ISCA03);
        let mut unbounded: PredictorTable<u64> = PredictorTable::new(Capacity::Unbounded);
        let mut acc = 0u64;
        for (i, &key) in mb_keys.iter().enumerate() {
            acc = acc.wrapping_add(finite.lookup(key).copied().unwrap_or(0));
            acc = acc.wrapping_add(unbounded.lookup(key).copied().unwrap_or(0));
            if i % 2 == 0 {
                finite.train(key, i % 6 == 0, |e| *e = e.wrapping_add(1));
                unbounded.train(key, i % 6 == 0, |e| *e = e.wrapping_add(1));
            }
        }
        (acc, finite.stats(), unbounded.stats())
    };
    let run_seed = |mb_keys: &[u64]| {
        let mut finite: ReferencePredictorTable<u64> =
            ReferencePredictorTable::new(Capacity::ISCA03);
        let mut unbounded: ReferencePredictorTable<u64> =
            ReferencePredictorTable::new(Capacity::Unbounded);
        let mut acc = 0u64;
        for (i, &key) in mb_keys.iter().enumerate() {
            acc = acc.wrapping_add(finite.lookup(key).copied().unwrap_or(0));
            acc = acc.wrapping_add(unbounded.lookup(key).copied().unwrap_or(0));
            if i % 2 == 0 {
                finite.train(key, i % 6 == 0, |e| *e = e.wrapping_add(1));
                unbounded.train(key, i % 6 == 0, |e| *e = e.wrapping_add(1));
            }
        }
        (acc, finite.stats(), unbounded.stats())
    };
    // Equivalence first: identical hit sums and stats on both storages.
    {
        let (fast_acc, fast_fin, fast_unb) = run_fast(&mb_keys);
        let (seed_acc, seed_fin, seed_unb) = run_seed(&mb_keys);
        assert_eq!(fast_acc, seed_acc, "table lookup results diverged");
        assert_eq!(fast_fin, seed_fin, "finite-table stats diverged");
        assert_eq!(fast_unb, seed_unb, "unbounded-table stats diverged");
    }
    // 2 lookups per record + 2 trains every other record.
    let table_op_count = (mb_keys.len() * 2 + mb_keys.len().div_ceil(2) * 2) as f64;
    let (flat_s, flat_out) = best_time(budget, || run_fast(&mb_keys).0);
    let (seedtab_s, seedtab_out) = best_time(budget, || run_seed(&mb_keys).0);
    assert_eq!(flat_out, seedtab_out, "timed table runs diverged");
    let flat_ops = table_op_count / flat_s.max(1e-9);
    let seedtab_ops = table_op_count / seedtab_s.max(1e-9);
    let table_speedup = flat_ops / seedtab_ops.max(1e-9);

    let train_summary: Vec<String> = train_rows
        .iter()
        .map(|(nodes, _, _, speedup)| format!("{nodes}n {speedup:.2}x"))
        .collect();
    println!(
        "hotpath-bench: tracker {:.2}M acc/s vs hashmap {:.2}M acc/s ({tracker_speedup:.2}x) | \
         crossbar {:.2}M msg/s (seed {:.2}M) | queue {:.2}M ev/s vs heap {:.2}M \
         ({queue_speedup:.2}x) | table {:.2}M op/s vs seed {:.2}M ({table_speedup:.2}x) | \
         sim {:.0} misses/s ({} wheel events) | dispatch batched {:.2}M ev/s vs per-event \
         {:.2}M ({dispatch_speedup:.2}x) | train lazy-vs-eager {}",
        fast_mps / 1e6,
        hash_mps / 1e6,
        inline_msgs / 1e6,
        alloc_msgs / 1e6,
        wheel_eps / 1e6,
        heap_eps / 1e6,
        flat_ops / 1e6,
        seedtab_ops / 1e6,
        sim_mps,
        sim_queue.pushed,
        batched_eps / 1e6,
        per_event_eps / 1e6,
        train_summary.join(" "),
    );
    let train_json: Vec<String> = train_rows
        .iter()
        .map(|(nodes, eager_mps, lazy_mps, speedup)| {
            format!(
                "      {{\n        \"nodes\": {nodes},\n        \
                 \"eager_misses_per_s\": {eager_mps:.0},\n        \
                 \"lazy_misses_per_s\": {lazy_mps:.0},\n        \
                 \"speedup\": {speedup:.3}\n      }}"
            )
        })
        .collect();
    format!(
        "{{\n  \"benchmark\": \"hotpath\",\n  \"tracker\": {{\n    \
         \"accesses_per_rep\": {},\n    \"fast_accesses_per_s\": {fast_mps:.0},\n    \
         \"hashmap_accesses_per_s\": {hash_mps:.0},\n    \
         \"speedup\": {tracker_speedup:.3},\n    \"stats_equivalent\": true\n  }},\n  \
         \"crossbar\": {{\n    \"sends_per_rep\": {},\n    \
         \"inline_msgs_per_s\": {inline_msgs:.0},\n    \
         \"seed_msgs_per_s\": {alloc_msgs:.0},\n    \
         \"speedup\": {:.3}\n  }},\n  \
         \"queue\": {{\n    \"events_per_rep\": {},\n    \
         \"wheel_events_per_s\": {wheel_eps:.0},\n    \
         \"heap_events_per_s\": {heap_eps:.0},\n    \
         \"speedup\": {queue_speedup:.3},\n    \"pop_order_equivalent\": true\n  }},\n  \
         \"predictor-table\": {{\n    \"ops_per_rep\": {},\n    \
         \"flat_ops_per_s\": {flat_ops:.0},\n    \
         \"seed_ops_per_s\": {seedtab_ops:.0},\n    \
         \"speedup\": {table_speedup:.3},\n    \"stats_equivalent\": true\n  }},\n  \
         \"sim\": {{\n    \"workload\": \"OLTP\",\n    \
         \"protocols\": [\"snooping\", \"multicast-owner-group\"],\n    \
         \"measured_misses\": {sim_misses},\n    \
         \"misses_per_s\": {sim_mps:.0},\n    \
         \"queue_pushed\": {},\n    \"queue_popped\": {},\n    \
         \"queue_remaining\": {},\n    \"queue_promoted\": {},\n    \
         \"queue_reconciled\": true,\n    \"link_reconciled\": true\n  }},\n  \
         \"dispatch\": {{\n    \"workload\": \"OLTP\",\n    \
         \"protocol\": \"multicast-owner-group\",\n    \
         \"events_per_rep\": {dispatch_events},\n    \
         \"batched_events_per_s\": {batched_eps:.0},\n    \
         \"per_event_events_per_s\": {per_event_eps:.0},\n    \
         \"speedup\": {dispatch_speedup:.3},\n    \
         \"order_equivalent\": true\n  }},\n  \
         \"train\": {{\n    \"workload\": \"OLTP\",\n    \
         \"protocol\": \"multicast-broadcast-if-shared\",\n    \
         \"misses_per_node\": {},\n    \"reports_equal\": true,\n    \
         \"rows\": [\n{}\n    ]\n  }}\n}}\n",
        accesses.len(),
        msgs.len(),
        inline_msgs / alloc_msgs.max(1e-9),
        queue_events as u64,
        table_op_count as u64,
        sim_queue.pushed,
        sim_queue.popped,
        sim_queue.remaining,
        sim_queue.promoted,
        train_warmup + train_measured,
        train_json.join(",\n"),
    )
}

/// Runs the `degraded` fault-injection sweep and machine-checks its two
/// robustness invariants before reporting anything.
///
/// Determinism: the plan is executed twice — once on the shared runner
/// and once on a fresh serial runner with its own trace cache and toxic
/// RNG streams — and the rendered tables must be byte-identical
/// (`toxic_deterministic`). Conservation: every timing run already
/// asserts its per-link ledger at end of run, and a direct harsh-chain
/// blast through a 64-node mesh [`Topology`] re-checks the ledger here
/// on the exact severity the sweep's worst row uses
/// (`link_reconciled`). Returns the rendered table and the
/// `BENCH_degraded.json` payload.
fn degraded_bench(scale: &Scale, runner: &SweepRunner) -> Result<(TextTable, String), String> {
    use dsp_interconnect::{Arrivals, InterconnectConfig, Message, Topology};
    use dsp_types::{DestSet, MessageClass, NodeId, SystemConfig};

    let plan = experiments::degraded_plan(scale);
    let outputs = runner.run_cells(&plan);
    let table = plan.render_outputs(&outputs);
    let rerun = SweepRunner::serial().run(&plan);
    let toxic_deterministic = table.to_csv() == rerun.to_csv();
    if !toxic_deterministic {
        return Err(
            "repeated seeded toxic runs diverged — fault injection is not \
                    deterministic under seed"
                .to_string(),
        );
    }

    // Conservation blast: the sweep's harshest case (severe chain on
    // the 64-node mesh), driven directly so the ledger is visibly the
    // thing under test rather than a side effect of a timing run.
    let cases = experiments::degraded_cases();
    let harsh = cases
        .iter()
        .rev()
        .find(|c| c.severity == "severe")
        .expect("degraded grid has a severe case");
    let nodes = harsh.nodes;
    let sys = SystemConfig::builder()
        .num_nodes(nodes)
        .build()
        .map_err(|e| format!("invalid smoke config: {e}"))?;
    let mut topo = Topology::new(
        InterconnectConfig::isca03(),
        nodes,
        &harsh.topology,
        &harsh.toxics,
        experiments::SEED,
    );
    let mut arrivals = Arrivals::new();
    let mut injected = 0u64;
    let mut delivered = 0u64;
    for i in 0..20_000usize {
        let src = NodeId::new(i % nodes);
        let dests = match i % 3 {
            0 => DestSet::single(NodeId::new((i / 3) % nodes)),
            1 => DestSet::from_bits(0b1_0110_1011 << (i % 40)),
            _ => sys.broadcast_set_w::<1>().without(src),
        };
        let class = MessageClass::ALL[i % MessageClass::COUNT];
        topo.send_into(7 * i as u64, &Message { src, dests, class }, &mut arrivals);
        injected += dests.len() as u64;
        delivered += arrivals.len() as u64;
    }
    topo.assert_conserved();
    let ledger = topo.link_stats();
    let link_reconciled =
        ledger.is_reconciled() && ledger.injected == injected && ledger.delivered == delivered;
    if !link_reconciled {
        return Err(format!(
            "link ledger out of balance: {injected} injected, {delivered} delivered, \
             ledger {}i/{}d",
            ledger.injected, ledger.delivered
        ));
    }
    println!(
        "degraded: toxic_deterministic: true | link_reconciled: true \
         ({injected} msgs conserved through the severe {} chain)",
        harsh.network(),
    );

    // JSON rows mirror the table but keep raw runtimes alongside the
    // group-normalized percentage, so successive PRs can diff both.
    let mut rows = Vec::new();
    let mut baseline = 1u64;
    for (case, output) in cases.iter().zip(&outputs) {
        if case.severity == "none" {
            baseline = output.runtime()[1].report.runtime_ns.max(1);
        }
        for point in output.runtime() {
            let misses = point.report.measured_misses.max(1) as f64;
            rows.push(format!(
                "    {{\n      \"severity\": \"{}\",\n      \"network\": \"{}\",\n      \
                 \"nodes\": {},\n      \"protocol\": \"{}\",\n      \
                 \"runtime_ns\": {},\n      \"runtime_vs_clean_directory\": {:.1},\n      \
                 \"avg_miss_latency_ns\": {:.0},\n      \"bytes_per_miss\": {:.0},\n      \
                 \"retries_per_miss\": {:.3}\n    }}",
                case.severity,
                case.network(),
                case.nodes,
                point.label,
                point.report.runtime_ns,
                100.0 * point.report.runtime_ns as f64 / baseline as f64,
                point.report.avg_miss_latency_ns(),
                point.report.bytes_per_miss(),
                point.report.retries as f64 / misses,
            ));
        }
    }
    let json = format!(
        "{{\n  \"benchmark\": \"degraded\",\n  \"cells\": {},\n  \
         \"toxic_deterministic\": {toxic_deterministic},\n  \
         \"link_reconciled\": {link_reconciled},\n  \
         \"conservation_smoke\": {{\n    \"network\": \"{}\",\n    \"severity\": \"severe\",\n    \
         \"messages\": 20000,\n    \"injected\": {injected},\n    \"delivered\": {delivered}\n  \
         }},\n  \"rows\": [\n{}\n  ]\n}}\n",
        plan.len(),
        harsh.network(),
        rows.join(",\n"),
    );
    Ok((table, json))
}

/// Parsed command line.
struct Args {
    /// First positional: experiment name or a subcommand (`merge`,
    /// `plan`, `fleet`, `worker`, `fleet-status`, `fleet-bench`).
    experiment: String,
    /// For `merge`/`plan`/`fleet`: the experiment name (second
    /// positional).
    merge_target: Option<String>,
    /// For `merge`: journal paths (remaining positionals).
    journals: Vec<PathBuf>,
    scale: Scale,
    scale_name: String,
    out_dir: PathBuf,
    threads: Option<usize>,
    shard: Option<ShardSpec>,
    checkpoint: Option<PathBuf>,
    resume: bool,
    /// For `worker`/`fleet-status`: coordinator address.
    connect: Option<String>,
    /// For `worker`: worker name.
    worker_name: Option<String>,
    /// For `worker`/`fleet`: the fleet directory (journals + log).
    fleet_dir: Option<PathBuf>,
    /// For `fleet`: local worker count.
    workers: usize,
    /// For `fleet`: kill one worker mid-lease to exercise
    /// expiry/harvest/re-lease.
    kill_one: bool,
    /// For `fleet`: cells per lease (default scales with the plan).
    lease_cells: Option<usize>,
    /// For `fleet`: lease liveness timeout.
    lease_timeout_ms: Option<u64>,
    /// For `fleet`: coordinator port (0 = ephemeral).
    port: u16,
    /// For `fleet`/`worker`: shared fleet token (empty = open fleet).
    token: String,
    /// For `fleet`: route workers through a seeded flaky-TCP proxy.
    chaos: Option<u64>,
    /// For `fleet`: simulate a coordinator crash after N completed
    /// cells, leaving the WAL and journals for `--recover`.
    crash_after: Option<usize>,
    /// For `fleet`: rebuild the ledger from the WAL + journals in the
    /// fleet directory and finish the sweep.
    recover: bool,
    /// For `fleet-status`: results page start.
    start: usize,
    /// For `fleet-status`: results page size.
    limit: usize,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        experiment: String::new(),
        merge_target: None,
        journals: Vec::new(),
        scale: Scale::standard(),
        scale_name: "standard".to_string(),
        out_dir: PathBuf::from("results"),
        threads: None,
        shard: None,
        checkpoint: None,
        resume: false,
        connect: None,
        worker_name: None,
        fleet_dir: None,
        workers: 3,
        kill_one: false,
        lease_cells: None,
        lease_timeout_ms: None,
        port: 0,
        token: String::new(),
        chaos: None,
        crash_after: None,
        recover: false,
        start: 0,
        limit: 32,
    };
    let mut positionals: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let name = args.get(i).ok_or("--scale needs a value")?;
                parsed.scale = Scale::parse(name).ok_or(format!("unknown scale '{name}'"))?;
                parsed.scale_name = name.clone();
            }
            "--out" => {
                i += 1;
                let dir = args.get(i).ok_or("--out needs a directory")?;
                parsed.out_dir = PathBuf::from(dir);
            }
            "--threads" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|n| n.parse().ok())
                    .filter(|n| *n > 0)
                    .ok_or("--threads needs a positive integer")?;
                parsed.threads = Some(n);
            }
            "--shard" => {
                i += 1;
                let spec = args.get(i).ok_or("--shard needs i/N (e.g. 1/2)")?;
                parsed.shard =
                    Some(ShardSpec::parse(spec).ok_or(format!("bad shard spec '{spec}'"))?);
            }
            "--cells" => {
                i += 1;
                let list = args
                    .get(i)
                    .ok_or("--cells needs a comma-separated hex id list (see `repro plan`)")?;
                parsed.shard =
                    Some(ShardSpec::parse_cells(list).ok_or(format!("bad cell list '{list}'"))?);
            }
            "--checkpoint" => {
                i += 1;
                let path = args.get(i).ok_or("--checkpoint needs a file path")?;
                parsed.checkpoint = Some(PathBuf::from(path));
            }
            "--resume" => parsed.resume = true,
            "--connect" => {
                i += 1;
                let addr = args.get(i).ok_or("--connect needs host:port")?;
                parsed.connect = Some(addr.clone());
            }
            "--name" => {
                i += 1;
                let name = args.get(i).ok_or("--name needs a worker name")?;
                parsed.worker_name = Some(name.clone());
            }
            "--dir" | "--fleet-dir" => {
                i += 1;
                let dir = args.get(i).ok_or("--dir needs a directory")?;
                parsed.fleet_dir = Some(PathBuf::from(dir));
            }
            "--workers" => {
                i += 1;
                // 0 is allowed: coordinator-only mode, serving workers
                // started elsewhere with `repro worker --connect`.
                parsed.workers = args
                    .get(i)
                    .and_then(|n| n.parse().ok())
                    .ok_or("--workers needs a non-negative integer")?;
            }
            "--kill-one" => parsed.kill_one = true,
            "--lease-cells" => {
                i += 1;
                parsed.lease_cells = Some(
                    args.get(i)
                        .and_then(|n| n.parse().ok())
                        .filter(|n| *n > 0)
                        .ok_or("--lease-cells needs a positive integer")?,
                );
            }
            "--lease-timeout-ms" => {
                i += 1;
                parsed.lease_timeout_ms = Some(
                    args.get(i)
                        .and_then(|n| n.parse().ok())
                        .filter(|n| *n > 0)
                        .ok_or("--lease-timeout-ms needs a positive integer")?,
                );
            }
            "--port" => {
                i += 1;
                parsed.port = args
                    .get(i)
                    .and_then(|n| n.parse().ok())
                    .ok_or("--port needs a port number")?;
            }
            "--token" => {
                i += 1;
                let token = args.get(i).ok_or("--token needs a value")?;
                parsed.token = token.clone();
            }
            "--chaos" => {
                i += 1;
                parsed.chaos = Some(
                    args.get(i)
                        .and_then(|n| n.parse().ok())
                        .ok_or("--chaos needs a u64 seed")?,
                );
            }
            "--crash-after" => {
                i += 1;
                parsed.crash_after = Some(
                    args.get(i)
                        .and_then(|n| n.parse().ok())
                        .ok_or("--crash-after needs a cell count")?,
                );
            }
            "--recover" => parsed.recover = true,
            "--start" => {
                i += 1;
                parsed.start = args
                    .get(i)
                    .and_then(|n| n.parse().ok())
                    .ok_or("--start needs an index")?;
            }
            "--limit" => {
                i += 1;
                parsed.limit = args
                    .get(i)
                    .and_then(|n| n.parse().ok())
                    .filter(|n| *n > 0)
                    .ok_or("--limit needs a positive integer")?;
            }
            other if other.starts_with("--") => return Err(format!("unknown flag '{other}'")),
            positional => positionals.push(positional.to_string()),
        }
        i += 1;
    }
    let mut positionals = positionals.into_iter();
    parsed.experiment = positionals.next().ok_or("missing experiment name")?;
    match parsed.experiment.as_str() {
        "merge" => {
            parsed.merge_target = Some(positionals.next().ok_or("merge needs an experiment name")?);
            parsed.journals = positionals.map(PathBuf::from).collect();
            if parsed.journals.is_empty() {
                return Err("merge needs at least one journal file".to_string());
            }
        }
        "plan" | "fleet" => {
            let what = parsed.experiment.clone();
            parsed.merge_target = Some(
                positionals
                    .next()
                    .ok_or(format!("{what} needs an experiment name"))?,
            );
            if let Some(extra) = positionals.next() {
                return Err(format!("unexpected argument '{extra}'"));
            }
        }
        _ => {
            if let Some(extra) = positionals.next() {
                return Err(format!("unexpected argument '{extra}'"));
            }
        }
    }
    Ok(parsed)
}

/// Runs `repro merge <experiment> J1 J2 ...`.
fn run_merge(args: &Args) -> ExitCode {
    let name = args.merge_target.as_deref().expect("merge target parsed");
    let Some(plan) = experiments::plan_for(name, &args.scale) else {
        eprintln!("unknown experiment '{name}'");
        return usage();
    };
    let table = match merge_journals(&plan, &args.journals) {
        Ok(table) => table,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{table}");
    println!(
        "[merged {} journal(s) into {} rows]\n",
        args.journals.len(),
        table.len()
    );
    if !save_csv(&args.out_dir, name, &table) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Runs one experiment through a checkpointed/sharded session. Renders
/// the table only when the session covers the whole plan; a partial
/// shard prints progress and the journal path instead.
fn run_session(name: &str, args: &Args, runner: &SweepRunner) -> Result<(), String> {
    let plan =
        experiments::plan_for(name, &args.scale).ok_or(format!("unknown experiment '{name}'"))?;
    let shard = args.shard.clone().unwrap_or_else(ShardSpec::full);
    let journal = args.checkpoint.clone().unwrap_or_else(|| {
        args.out_dir
            .join(format!("{name}.{}.jsonl", shard.file_stem()))
    });
    let session = runner
        .session(&plan)
        .shard(shard.clone())
        .checkpoint(&journal)
        .resume(args.resume);
    let started = Instant::now();
    let mut progress = ProgressSink::new(session.owned_indices().len());
    let report = session
        .run(&mut [&mut progress])
        .map_err(|e| e.to_string())?;
    println!(
        "[{name} shard {shard}: {} of {} cells owned, replayed {}, executed {} in {:.1}s -> {}]",
        report.owned,
        report.cells,
        report.replayed,
        report.executed,
        started.elapsed().as_secs_f64(),
        journal.display(),
    );
    if shard.is_full() {
        let table = merge_journals(&plan, &[journal]).map_err(|e| e.to_string())?;
        println!("{table}");
        if !save_csv(&args.out_dir, name, &table) {
            return Err("cannot save CSV".to_string());
        }
    } else {
        println!("[partial shard: merge every shard's journal with `repro merge {name} ...`]\n");
    }
    Ok(())
}

/// Runs `repro plan <experiment>`: the `CellId` manifest, one line per
/// cell in plan order — the single source of truth fleet leases are
/// accounted against, and the ids `--cells` accepts.
fn run_plan(args: &Args) -> Result<(), String> {
    let name = args.merge_target.as_deref().expect("plan target parsed");
    let plan =
        experiments::plan_for(name, &args.scale).ok_or(format!("unknown experiment '{name}'"))?;
    let ids = CellId::assign(&plan.cells);
    println!("# {} — {}", name, plan.title);
    println!("# index  cell-id           summary");
    for (index, (id, cell)) in ids.iter().zip(&plan.cells).enumerate() {
        println!("{index:7}  {}  {}", id.to_hex(), cell.summary());
    }
    println!("cells: {}", ids.len());
    println!("seed: {}", plan.seed);
    println!("scale: {}", plan.scale.identity());
    println!("manifest: {:016x}", manifest_digest(&ids));
    Ok(())
}

/// Runs `repro worker --connect HOST:PORT`: joins a coordinator's
/// fleet and works until told to shut down.
fn run_worker_cmd(args: &Args) -> Result<(), String> {
    let connect = args
        .connect
        .as_deref()
        .ok_or("worker needs --connect HOST:PORT")?;
    let name = args
        .worker_name
        .clone()
        .unwrap_or_else(|| format!("w{}", std::process::id()));
    let mut config = WorkerConfig::new(
        &name,
        connect,
        args.fleet_dir
            .clone()
            .unwrap_or_else(|| args.out_dir.clone()),
    );
    config.threads = args.threads.unwrap_or(1);
    config.token = args.token.clone();
    let report = run_worker(&config)?;
    println!(
        "[worker {name}: {} leases completed, {} cells accepted, {} leases went stale, \
         {} reconnects, {} connect attempts]",
        report.leases,
        report.cells,
        report.stale_leases,
        report.reconnects,
        report.connect_attempts
    );
    Ok(())
}

/// Runs `repro fleet-status --connect HOST:PORT`: one status snapshot
/// plus a page of per-cell states from a running coordinator.
fn run_fleet_status(args: &Args) -> Result<(), String> {
    let connect = args
        .connect
        .as_deref()
        .ok_or("fleet-status needs --connect HOST:PORT")?;
    let status = query_status(connect)?;
    println!(
        "{}: {}/{} cells complete{}",
        status.experiment,
        status.completed_cells,
        status.total_cells,
        if status.complete { " (finished)" } else { "" },
    );
    let c = &status.counters;
    println!(
        "leases: {} granted, {} completed, {} expired | cells: {} granted, {} completed, \
         {} stolen, {} harvested, {} stale reports",
        c.leases_granted,
        c.leases_completed,
        c.leases_expired,
        c.cells_granted,
        c.cells_completed,
        c.cells_stolen,
        c.cells_harvested,
        c.stale_reports,
    );
    for lease in &status.leases {
        println!(
            "  lease {} -> {}: {} outstanding, {} done",
            lease.lease, lease.worker, lease.outstanding, lease.done
        );
    }
    let page = query_results(connect, args.start, args.limit)?;
    println!(
        "cells {}..{} of {}:",
        page.start,
        page.start + page.cells.len(),
        page.total
    );
    for cell in &page.cells {
        match &cell.worker {
            Some(worker) => println!(
                "  {:5}  {}  {:8} {}",
                cell.index, cell.cell, cell.state, worker
            ),
            None => println!("  {:5}  {}  {}", cell.index, cell.cell, cell.state),
        }
    }
    Ok(())
}

/// Spawns one local `repro worker` child against `addr`.
fn spawn_worker_child(
    exe: &Path,
    addr: &str,
    name: &str,
    dir: &Path,
    token: &str,
) -> Result<std::process::Child, String> {
    use std::process::{Command, Stdio};
    let mut command = Command::new(exe);
    command
        .args([
            "worker",
            "--connect",
            addr,
            "--name",
            name,
            "--threads",
            "1",
            "--dir",
        ])
        .arg(dir);
    if !token.is_empty() {
        command.args(["--token", token]);
    }
    command
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("cannot spawn worker {name}: {e}"))
}

/// What one local fleet run produced.
struct FleetOutcome {
    /// The final report — `None` when the run ended in a simulated
    /// coordinator crash (`--crash-after`).
    report: Option<dsp_fleet::FleetReport>,
    /// Whether the merged table matched the serial reference.
    identical: bool,
    /// Which worker (if any) was killed mid-lease.
    killed: Option<String>,
    /// Chaos proxy totals `(connections, disconnects, delays)` when
    /// the run went through one.
    chaos: Option<(u64, u64, u64)>,
}

/// One complete local fleet run: coordinator in-process (fresh or
/// `--recover`ed), `workers` single-threaded `repro worker` children —
/// optionally routed through a seeded chaos proxy — plus optional
/// mid-lease worker kill or simulated coordinator crash.
fn run_fleet_once(
    name: &str,
    args: &Args,
    dir: &Path,
    workers: usize,
    kill_one: bool,
    chaos_seed: Option<u64>,
    reference_csv: &str,
) -> Result<FleetOutcome, String> {
    let plan =
        experiments::plan_for(name, &args.scale).ok_or(format!("unknown experiment '{name}'"))?;
    let cells = plan.len();
    if !args.recover {
        let _ = std::fs::remove_dir_all(dir);
    }
    let mut config = FleetConfig::new(name, &args.scale_name, dir);
    config.lease_cells = args
        .lease_cells
        .unwrap_or_else(|| (cells / (workers.max(1) * 2)).clamp(2, 16));
    config.timeout_ms = args.lease_timeout_ms.unwrap_or(5_000);
    config.port = args.port;
    config.token = args.token.clone();
    let coordinator = if args.recover {
        Coordinator::recover(plan, config)
            .map_err(|e| format!("cannot recover coordinator from WAL: {e}"))?
    } else {
        Coordinator::start(plan, config).map_err(|e| format!("cannot start coordinator: {e}"))?
    };
    let addr = coordinator.addr();
    let mut proxy = match chaos_seed {
        Some(seed) => Some(
            ChaosProxy::start(addr, ChaosSpec::from_seed(seed))
                .map_err(|e| format!("cannot start chaos proxy: {e}"))?,
        ),
        None => None,
    };
    // Workers dial the proxy when chaos is on; status polls below go
    // straight to the coordinator — the fault injection is for the
    // fleet under test, not the test harness.
    let worker_addr = proxy
        .as_ref()
        .map_or_else(|| addr.to_string(), |p| p.addr().to_string());
    println!(
        "[fleet: coordinator on {addr}{}{}, {workers} workers, {cells} cells]",
        if args.recover {
            " (recovered from WAL)"
        } else {
            ""
        },
        match chaos_seed {
            Some(seed) => format!(", chaos proxy on {worker_addr} (seed {seed})"),
            None => String::new(),
        },
    );

    let exe = std::env::current_exe().map_err(|e| format!("cannot locate repro binary: {e}"))?;
    let mut children = Vec::new();
    for i in 1..=workers {
        children.push(spawn_worker_child(
            &exe,
            &worker_addr,
            &format!("w{i}"),
            dir,
            &args.token,
        )?);
    }
    let addr = addr.to_string();

    // Kill a worker the moment it is mid-lease: at least one cell
    // journaled (so harvest has something to recover) and at least one
    // outstanding (so expiry has something to re-lease).
    let mut killed = None;
    if kill_one {
        let deadline = Instant::now() + Duration::from_secs(300);
        'hunt: while Instant::now() < deadline {
            if let Ok(status) = query_status(&addr) {
                if status.complete {
                    println!("[fleet: sweep finished before a mid-lease kill window opened]");
                    break;
                }
                for lease in &status.leases {
                    let index: Option<usize> = lease
                        .worker
                        .strip_prefix('w')
                        .and_then(|n| n.parse::<usize>().ok())
                        .filter(|n| (1..=workers).contains(n));
                    if lease.done >= 1 && lease.outstanding >= 1 {
                        if let Some(index) = index {
                            let _ = children[index - 1].kill();
                            killed = Some(lease.worker.clone());
                            println!(
                                "[fleet: killed {} mid-lease ({} done, {} outstanding on \
                                 lease {})]",
                                lease.worker, lease.done, lease.outstanding, lease.lease
                            );
                            break 'hunt;
                        }
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    // Simulated coordinator crash: stop serving mid-sweep, leaving the
    // WAL and every journal exactly as a real crash would. The
    // directory is then ready for `repro fleet ... --recover`.
    if let Some(limit) = args.crash_after {
        let deadline = Instant::now() + Duration::from_secs(300);
        loop {
            if Instant::now() >= deadline {
                return Err(format!(
                    "--crash-after {limit}: the fleet never reached {limit} completed cells"
                ));
            }
            match query_status(&addr) {
                Ok(status) if status.complete => {
                    println!("[fleet: sweep finished before the crash point; crashing anyway]");
                    break;
                }
                Ok(status) if status.completed_cells >= limit => break,
                _ => std::thread::sleep(Duration::from_millis(25)),
            }
        }
        coordinator.shutdown();
        for mut child in children {
            let _ = child.kill();
            let _ = child.wait();
        }
        if let Some(proxy) = proxy.as_mut() {
            proxy.shutdown();
        }
        println!(
            "[fleet: coordinator crashed after >= {limit} cells; WAL and journals left in {}]",
            dir.display()
        );
        return Ok(FleetOutcome {
            report: None,
            identical: false,
            killed,
            chaos: None,
        });
    }

    let report = coordinator.wait(Duration::from_secs(600))?;
    for (i, mut child) in children.into_iter().enumerate() {
        let worker = format!("w{}", i + 1);
        let status = child
            .wait()
            .map_err(|e| format!("worker {worker} failed: {e}"))?;
        if !status.success() && killed.as_deref() != Some(worker.as_str()) {
            return Err(format!("worker {worker} exited with {status}"));
        }
    }
    coordinator.shutdown();
    let chaos = proxy
        .as_mut()
        .map(|p| (p.connections(), p.disconnects(), p.delays()));
    let identical = report.csv == reference_csv;
    Ok(FleetOutcome {
        report: Some(report),
        identical,
        killed,
        chaos,
    })
}

/// Runs `repro fleet <experiment>`: serial reference first, then the
/// fleet, then the byte-identity and ledger-reconciliation verdicts.
fn run_fleet(args: &Args) -> Result<(), String> {
    let name = args.merge_target.as_deref().expect("fleet target parsed");
    let plan =
        experiments::plan_for(name, &args.scale).ok_or(format!("unknown experiment '{name}'"))?;
    let reference = SweepRunner::serial().run(&plan);
    let dir = args
        .fleet_dir
        .clone()
        .unwrap_or_else(|| args.out_dir.join(format!("fleet-{name}")));
    let outcome = run_fleet_once(
        name,
        args,
        &dir,
        args.workers,
        args.kill_one,
        args.chaos,
        &reference.to_csv(),
    )?;
    let Some(report) = outcome.report else {
        // Simulated crash: the WAL and journals are the deliverable.
        println!(
            "[fleet: resume with `repro fleet {name} --scale {} --dir {} --recover`]",
            args.scale_name,
            dir.display()
        );
        println!("fleet_crashed: true");
        return Ok(());
    };
    let (identical, killed) = (outcome.identical, outcome.killed);

    println!("{}", report.rendered);
    let c = &report.counters;
    println!(
        "[fleet: {} cells in {:.1}s | leases: {} granted, {} completed, {} expired | \
         cells: {} granted, {} completed, {} stolen, {} harvested, {} stale reports{}]",
        report.cells,
        report.wall_s,
        c.leases_granted,
        c.leases_completed,
        c.leases_expired,
        c.cells_granted,
        c.cells_completed,
        c.cells_stolen,
        c.cells_harvested,
        c.stale_reports,
        match &killed {
            Some(worker) => format!(" | killed {worker} mid-lease"),
            None => String::new(),
        },
    );
    println!(
        "[fleet: {} sessions resumed, {} leases re-adopted, {} WAL events replayed, \
         {} cells recovered | lease size min {} max {} final {}]",
        c.sessions_resumed,
        c.leases_readopted,
        c.wal_events_replayed,
        c.cells_recovered,
        report.lease_sizes.0,
        report.lease_sizes.1,
        report.lease_sizes.2,
    );
    if let Some((connections, disconnects, delays)) = outcome.chaos {
        println!(
            "[chaos: seed {}, {connections} connections, {disconnects} forced disconnects, \
             {delays} injected delays]",
            args.chaos.unwrap_or(0),
        );
    }
    if args.recover {
        println!("recovered_from_wal: true");
    }
    println!("leases_reconciled: {}", report.reconciled);
    println!("fleet_identical: {identical}");
    if !save(&args.out_dir, &format!("{name}.csv"), &report.csv) {
        return Err("cannot save CSV".to_string());
    }
    if !report.reconciled {
        return Err("lease ledger did not reconcile".to_string());
    }
    if !identical {
        return Err("fleet output diverged from the serial reference".to_string());
    }
    Ok(())
}

/// Runs `repro fleet-bench`: fig5 serial vs 1/2/4-worker local fleets,
/// all required byte-identical, written as `BENCH_fleet.json`.
fn fleet_bench(args: &Args) -> Result<String, String> {
    let name = "fig5";
    let plan = experiments::fig5_plan(&args.scale);
    let cells = plan.len();
    let started = Instant::now();
    let reference = SweepRunner::serial().run(&plan);
    let serial_s = started.elapsed().as_secs_f64();
    let reference_csv = reference.to_csv();

    let base = std::env::temp_dir().join(format!("dsp-fleet-bench-{}", std::process::id()));
    let mut rows = Vec::new();
    // 1/2/4 clean fleets for the scaling story, then a 3-worker fleet
    // through the chaos proxy to price the hardening machinery.
    let configs: [(usize, Option<u64>, &str); 4] = [
        (1, None, "1w"),
        (2, None, "2w"),
        (4, None, "4w"),
        (3, Some(7), "chaos"),
    ];
    for (workers, chaos_seed, subdir) in configs {
        let dir = base.join(subdir);
        let outcome = run_fleet_once(name, args, &dir, workers, false, chaos_seed, &reference_csv)?;
        let report = outcome
            .report
            .ok_or_else(|| format!("{workers}-worker bench fleet did not finish"))?;
        let label = match chaos_seed {
            Some(seed) => format!("{workers} worker(s) under chaos seed {seed}"),
            None => format!("{workers} worker(s)"),
        };
        if !outcome.identical {
            return Err(format!("{label}: fleet diverged from the serial table"));
        }
        if !report.reconciled {
            return Err(format!("{label}: fleet ledger did not reconcile"));
        }
        let c = &report.counters;
        println!(
            "fleet-bench: {label} | {cells} cells in {:.2}s (serial {serial_s:.2}s, \
             speedup {:.2}x) | {} leases, {} cells stolen, {} sessions resumed | identical: {}",
            report.wall_s,
            serial_s / report.wall_s.max(1e-9),
            c.leases_granted,
            c.cells_stolen,
            c.sessions_resumed,
            outcome.identical,
        );
        rows.push(format!(
            "    {{\n      \"workers\": {workers},\n      \"chaos_seed\": {},\n      \
             \"wall_s\": {:.4},\n      \"speedup\": {:.3},\n      \"leases_granted\": {},\n      \
             \"leases_completed\": {},\n      \"leases_expired\": {},\n      \
             \"cells_granted\": {},\n      \"cells_completed\": {},\n      \
             \"cells_stolen\": {},\n      \"cells_harvested\": {},\n      \
             \"sessions_resumed\": {},\n      \"leases_readopted\": {},\n      \
             \"wal_events_replayed\": {},\n      \"proxy_disconnects\": {},\n      \
             \"lease_size\": {{\"min\": {}, \"max\": {}, \"final\": {}}},\n      \
             \"byte_identical\": true,\n      \"leases_reconciled\": true\n    }}",
            chaos_seed.map_or("null".to_string(), |s| s.to_string()),
            report.wall_s,
            serial_s / report.wall_s.max(1e-9),
            c.leases_granted,
            c.leases_completed,
            c.leases_expired,
            c.cells_granted,
            c.cells_completed,
            c.cells_stolen,
            c.cells_harvested,
            c.sessions_resumed,
            c.leases_readopted,
            c.wal_events_replayed,
            outcome.chaos.map_or(0, |(_, d, _)| d),
            report.lease_sizes.0,
            report.lease_sizes.1,
            report.lease_sizes.2,
        ));
    }
    let _ = std::fs::remove_dir_all(&base);
    Ok(format!(
        "{{\n  \"benchmark\": \"fleet\",\n  \"plan\": \"{name}\",\n  \"cells\": {cells},\n  \
         \"serial_wall_s\": {serial_s:.4},\n  \"fleets\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    ))
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
        eprintln!(
            "error: cannot create output directory {}: {e}",
            args.out_dir.display()
        );
        return ExitCode::FAILURE;
    }
    if args.experiment == "merge" {
        return run_merge(&args);
    }
    match args.experiment.as_str() {
        "plan" => {
            return match run_plan(&args) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        "worker" => {
            return match run_worker_cmd(&args) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        "fleet" => {
            return match run_fleet(&args) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        "fleet-status" => {
            return match run_fleet_status(&args) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        "fleet-bench" => {
            return match fleet_bench(&args) {
                Ok(json) => {
                    if save(Path::new("."), "BENCH_fleet.json", &json)
                        && save(&args.out_dir, "BENCH_fleet.json", &json)
                    {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("error: fleet-bench failed: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        _ => {}
    }
    let names: Vec<&str> = if args.experiment == "all" {
        experiments::ALL_EXPERIMENTS.to_vec()
    } else if args.experiment == "sweep-bench"
        || args.experiment == "hotpath-bench"
        || experiments::ALL_EXPERIMENTS.contains(&args.experiment.as_str())
    {
        vec![args.experiment.as_str()]
    } else {
        eprintln!("unknown experiment '{}'", args.experiment);
        return usage();
    };
    if args.experiment == "all" && args.checkpoint.is_some() {
        // One shared journal would be truncated (or, with --resume,
        // rejected as a plan mismatch) by every experiment after the
        // first; `all` always journals per experiment under --out.
        eprintln!(
            "error: --checkpoint cannot be combined with 'all'; each experiment journals \
             to <out>/<name>.shard<i>of<N>.jsonl"
        );
        return ExitCode::FAILURE;
    }
    let runner = match args.threads {
        Some(n) => SweepRunner::with_threads(n),
        None => SweepRunner::new(),
    };
    let session_mode = args.shard.is_some() || args.checkpoint.is_some() || args.resume;
    for name in names {
        let started = Instant::now();
        if name == "sweep-bench" {
            let json = match sweep_bench(&args.scale, &args.scale_name, args.threads) {
                Ok(json) => json,
                Err(e) => {
                    eprintln!("error: sweep-bench failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // The perf-trajectory artifact lives at the repo root so
            // successive PRs can diff it; a copy lands in --out too.
            if !save(Path::new("."), "BENCH_sweep.json", &json)
                || !save(&args.out_dir, "BENCH_sweep.json", &json)
            {
                return ExitCode::FAILURE;
            }
            continue;
        }
        if name == "hotpath-bench" {
            let json = hotpath_bench(&args.scale);
            if !save(Path::new("."), "BENCH_hotpath.json", &json)
                || !save(&args.out_dir, "BENCH_hotpath.json", &json)
            {
                return ExitCode::FAILURE;
            }
            continue;
        }
        if session_mode {
            if let Err(e) = run_session(name, &args, &runner) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
            continue;
        }
        if name == "degraded" {
            let (table, json) = match degraded_bench(&args.scale, &runner) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("error: degraded failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("{table}");
            println!(
                "[degraded finished in {:.1}s on {} threads]\n",
                started.elapsed().as_secs_f64(),
                runner.threads(),
            );
            if !save(Path::new("."), "BENCH_degraded.json", &json)
                || !save(&args.out_dir, "BENCH_degraded.json", &json)
                || !save_csv(&args.out_dir, "degraded", &table)
            {
                return ExitCode::FAILURE;
            }
            continue;
        }
        let Some(table) = experiments::run_with(name, &args.scale, &runner) else {
            return usage();
        };
        println!("{table}");
        println!(
            "[{} finished in {:.1}s on {} threads, {} traces cached]\n",
            name,
            started.elapsed().as_secs_f64(),
            runner.threads(),
            runner.cached_traces(),
        );
        if !save_csv(&args.out_dir, name, &table) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
