//! End-to-end fleet tests over a tiny in-process plan: a coordinator
//! plus in-process workers must produce a table byte-identical to a
//! serial run — including when a worker dies mid-lease and its journal
//! is harvested — with a lease ledger that reconciles exactly.

use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use dsp_bench::engine::{
    harvest_journal, Cell, CellId, CellOutput, ExperimentPlan, ShardSpec, SweepRunner, SweepSession,
};
use dsp_bench::Scale;
use dsp_core::PredictorConfig;
use dsp_fleet::protocol::send;
use dsp_fleet::{
    query_results, query_status, run_worker_with, Coordinator, FleetConfig, MessageReader, Reply,
    Request, WorkerConfig, PROTOCOL_VERSION,
};
use dsp_trace::Workload;
use dsp_types::SystemConfig;

fn tiny_scale() -> Scale {
    Scale {
        footprint: 1.0 / 256.0,
        trace_warmup: 200,
        trace_measured: 1_000,
        sim_warmup: 20,
        sim_measured: 100,
        sim_runs: 1,
    }
}

/// A 6-cell plan small enough to fleet in-process: two workloads ×
/// (baselines + two predictor points), rendered as one row per point.
fn tiny_plan() -> ExperimentPlan {
    let config = SystemConfig::isca03();
    let mut plan = ExperimentPlan::new("e2e", &["workload", "label", "msgs"], &tiny_scale());
    for workload in [Workload::Oltp, Workload::Apache] {
        plan.push(Cell::Baselines { config, workload });
        for predictor in [PredictorConfig::group(), PredictorConfig::owner()] {
            plan.push(Cell::Tradeoff {
                config,
                workload,
                predictor,
            });
        }
    }
    plan.render(|cells, outputs, table| {
        for (cell, output) in cells.iter().zip(outputs) {
            let workload = cell.workload().expect("trace cell").name().to_string();
            match output {
                CellOutput::Baselines {
                    snooping,
                    directory,
                } => {
                    for point in [snooping, directory] {
                        table.row([
                            workload.clone(),
                            point.label.clone(),
                            point.request_messages.to_string(),
                        ]);
                    }
                }
                CellOutput::Tradeoff(point) => table.row([
                    workload,
                    point.label.clone(),
                    point.request_messages.to_string(),
                ]),
                other => panic!("unexpected output {other:?}"),
            }
        }
    })
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsp-fleet-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns one in-process worker thread serving the tiny plan.
fn spawn_worker(
    name: &str,
    addr: &str,
    dir: &std::path::Path,
) -> std::thread::JoinHandle<Result<dsp_fleet::worker::WorkerReport, String>> {
    let config = WorkerConfig::new(name, addr, dir);
    std::thread::spawn(move || {
        run_worker_with(&config, |experiment, _| {
            (experiment == "e2e").then(tiny_plan)
        })
    })
}

/// Blocks for one reply, riding out read timeouts.
fn recv_reply(reader: &mut MessageReader<TcpStream>) -> Reply {
    loop {
        match reader.recv::<Reply>() {
            Ok(Some(reply)) => return reply,
            Ok(None) => panic!("coordinator hung up"),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => panic!("recv failed: {e}"),
        }
    }
}

/// Happy path: two workers, byte-identical table, reconciled ledger,
/// no expiries — and the coordinator keeps answering status/results
/// queries after the sweep finishes.
#[test]
fn fleet_matches_serial_and_serves_results() {
    let dir = fresh_dir("happy");
    let serial = SweepRunner::serial().run(&tiny_plan()).to_csv();

    let mut config = FleetConfig::new("e2e", "tiny", &dir);
    config.lease_cells = 2;
    config.poll_ms = 20;
    config.timeout_ms = 60_000;
    let coordinator = Coordinator::start(tiny_plan(), config).expect("coordinator starts");
    let addr = coordinator.addr().to_string();

    let workers: Vec<_> = (1..=2)
        .map(|i| spawn_worker(&format!("w{i}"), &addr, &dir))
        .collect();
    let report = coordinator
        .wait(Duration::from_secs(120))
        .expect("fleet completes");

    assert_eq!(report.csv, serial, "fleet table must be byte-identical");
    assert!(
        report.reconciled,
        "ledger must reconcile: {:?}",
        report.counters
    );
    assert_eq!(report.cells, 6);
    assert_eq!(report.counters.leases_expired, 0);
    assert_eq!(report.counters.cells_completed, 6);

    // The service still answers observers after completion.
    let status = query_status(&addr).expect("status");
    assert!(status.complete);
    assert_eq!(status.completed_cells, 6);
    assert!(status.leases.is_empty(), "no lease survives completion");
    let page = query_results(&addr, 0, 4).expect("first page");
    assert_eq!(page.cells.len(), 4);
    assert!(page
        .cells
        .iter()
        .all(|c| c.state == "done" && c.worker.is_some()));
    let tail = query_results(&addr, 4, 100).expect("tail page");
    assert_eq!(tail.cells.len(), 2);
    assert_eq!(tail.start, 4);

    let mut worker_cells = 0;
    for worker in workers {
        worker_cells += worker.join().expect("join").expect("worker ok").cells;
    }
    // Work stealing may let two workers race the same cell (the loser's
    // report folds away as a duplicate), so the tally is a floor.
    assert!(worker_cells >= 6, "every cell was streamed by some worker");
    coordinator.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Failure injection: a rogue client takes a lease, journals two cells,
/// reports only one, and silently dies. The fleet must still finish —
/// the journaled-but-unreported cell is harvested (not re-run under a
/// new name), the rest are re-leased — and the merged table is still
/// byte-identical to serial.
#[test]
fn killed_worker_is_harvested_and_reassigned() {
    let dir = fresh_dir("kill");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let plan = tiny_plan();
    let serial = SweepRunner::serial().run(&plan).to_csv();
    let manifest = CellId::assign(&plan.cells);

    let mut config = FleetConfig::new("e2e", "tiny", &dir);
    config.lease_cells = 3;
    config.poll_ms = 50;
    config.timeout_ms = 1_500;
    let coordinator = Coordinator::start(tiny_plan(), config).expect("coordinator starts");
    let addr = coordinator.addr().to_string();

    // The rogue: speak the protocol by hand so the death is surgical.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut reader = MessageReader::new(stream.try_clone().expect("clone"));
    send(
        &mut stream,
        &Request::Hello {
            worker: "rogue".into(),
            proto: PROTOCOL_VERSION,
        },
    )
    .expect("hello");
    let Reply::Welcome { identity, .. } = recv_reply(&mut reader) else {
        panic!("expected Welcome");
    };
    assert_eq!(identity.cells, 6);
    send(
        &mut stream,
        &Request::Lease {
            worker: "rogue".into(),
        },
    )
    .expect("lease request");
    let Reply::Grant {
        lease,
        cells,
        journal,
    } = recv_reply(&mut reader)
    else {
        panic!("expected Grant");
    };
    assert_eq!(cells.len(), 3);
    let granted: Vec<CellId> = cells
        .iter()
        .map(|text| CellId::from_hex(text).expect("granted id"))
        .collect();

    // Journal the first two cells exactly as a real worker would...
    let journal_path = dir.join(&journal);
    SweepSession::new(&plan)
        .shard(ShardSpec::cells(granted[..2].to_vec()))
        .checkpoint(&journal_path)
        .run(&mut [])
        .expect("rogue session");
    let records = harvest_journal(&plan, &journal_path).expect("read own journal");
    assert_eq!(records.len(), 2);

    // ...report only the first, then die without a word.
    let (id, index, output) = records
        .iter()
        .find(|(id, _, _)| *id == granted[0])
        .cloned()
        .expect("first granted cell journaled");
    assert_eq!(manifest[index], id);
    send(
        &mut stream,
        &Request::CellDone {
            worker: "rogue".into(),
            lease,
            cell: id.to_hex(),
            index,
            output: Box::new(output),
        },
    )
    .expect("report");
    assert!(matches!(recv_reply(&mut reader), Reply::Ack));
    drop(reader);
    drop(stream);

    // Two honest workers finish the sweep around the corpse.
    let workers: Vec<_> = (1..=2)
        .map(|i| spawn_worker(&format!("w{i}"), &addr, &dir))
        .collect();
    let report = coordinator
        .wait(Duration::from_secs(120))
        .expect("fleet completes despite the dead lease");

    assert_eq!(report.csv, serial, "fleet table must be byte-identical");
    assert!(
        report.reconciled,
        "ledger must reconcile: {:?}",
        report.counters
    );
    assert!(
        report.counters.leases_expired >= 1,
        "the rogue's lease must expire: {:?}",
        report.counters
    );
    assert!(
        report.counters.cells_harvested >= 1,
        "the journaled-but-unreported cell must be harvested: {:?}",
        report.counters
    );
    for worker in workers {
        worker.join().expect("join").expect("worker ok");
    }
    coordinator.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A worker whose local plan disagrees with the coordinator's (here: a
/// different seed, which cell ids alone cannot detect) must refuse to
/// lease instead of corrupting the sweep.
#[test]
fn mismatched_plan_identity_is_refused() {
    let dir = fresh_dir("mismatch");
    let mut config = FleetConfig::new("e2e", "tiny", &dir);
    config.poll_ms = 20;
    let coordinator = Coordinator::start(tiny_plan(), config).expect("coordinator starts");
    let addr = coordinator.addr().to_string();

    let worker_config = WorkerConfig::new("skewed", &addr, &dir);
    let err = run_worker_with(&worker_config, |_, _| {
        let mut plan = tiny_plan();
        plan.seed ^= 0xdead;
        Some(plan)
    })
    .expect_err("a skewed plan must be refused");
    assert!(
        err.contains("identity mismatch"),
        "error must name the mismatch: {err}"
    );
    coordinator.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
