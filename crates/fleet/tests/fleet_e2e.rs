//! End-to-end fleet tests over a tiny in-process plan: a coordinator
//! plus in-process workers must produce a table byte-identical to a
//! serial run — including when a worker dies mid-lease and its journal
//! is harvested, when every connection runs through a flaky chaos
//! proxy, and when the coordinator itself crashes and is recovered
//! from its write-ahead log — with a lease ledger that reconciles
//! exactly and a control plane that refuses hostile clients.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use dsp_bench::engine::{
    harvest_journal, Cell, CellId, CellOutput, ExperimentPlan, ShardSpec, SweepRunner, SweepSession,
};
use dsp_bench::Scale;
use dsp_core::PredictorConfig;
use dsp_fleet::auth::mac64;
use dsp_fleet::protocol::{send, PlanIdentity};
use dsp_fleet::{
    query_results, query_status, run_worker_with, ChaosProxy, ChaosSpec, Coordinator, FleetConfig,
    MessageReader, ProtocolError, Reply, Request, WorkerConfig, PROTOCOL_VERSION,
};
use dsp_trace::Workload;
use dsp_types::hash::mix64;
use dsp_types::SystemConfig;

fn tiny_scale() -> Scale {
    Scale {
        footprint: 1.0 / 256.0,
        trace_warmup: 200,
        trace_measured: 1_000,
        sim_warmup: 20,
        sim_measured: 100,
        sim_runs: 1,
    }
}

/// A 6-cell plan small enough to fleet in-process: two workloads ×
/// (baselines + two predictor points), rendered as one row per point.
fn tiny_plan() -> ExperimentPlan {
    let config = SystemConfig::isca03();
    let mut plan = ExperimentPlan::new("e2e", &["workload", "label", "msgs"], &tiny_scale());
    for workload in [Workload::Oltp, Workload::Apache] {
        plan.push(Cell::Baselines { config, workload });
        for predictor in [PredictorConfig::group(), PredictorConfig::owner()] {
            plan.push(Cell::Tradeoff {
                config,
                workload,
                predictor,
            });
        }
    }
    plan.render(|cells, outputs, table| {
        for (cell, output) in cells.iter().zip(outputs) {
            let workload = cell.workload().expect("trace cell").name().to_string();
            match output {
                CellOutput::Baselines {
                    snooping,
                    directory,
                } => {
                    for point in [snooping, directory] {
                        table.row([
                            workload.clone(),
                            point.label.clone(),
                            point.request_messages.to_string(),
                        ]);
                    }
                }
                CellOutput::Tradeoff(point) => table.row([
                    workload,
                    point.label.clone(),
                    point.request_messages.to_string(),
                ]),
                other => panic!("unexpected output {other:?}"),
            }
        }
    })
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsp-fleet-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns one in-process worker thread serving the tiny plan.
fn spawn_worker(
    name: &str,
    addr: &str,
    dir: &std::path::Path,
) -> std::thread::JoinHandle<Result<dsp_fleet::worker::WorkerReport, String>> {
    spawn_worker_cfg(WorkerConfig::new(name, addr, dir))
}

/// [`spawn_worker`] with a caller-tuned config (token, reconnect
/// budget).
fn spawn_worker_cfg(
    config: WorkerConfig,
) -> std::thread::JoinHandle<Result<dsp_fleet::worker::WorkerReport, String>> {
    std::thread::spawn(move || {
        run_worker_with(&config, |experiment, _| {
            (experiment == "e2e").then(tiny_plan)
        })
    })
}

/// Blocks for one reply, riding out read timeouts.
fn recv_reply(reader: &mut MessageReader<TcpStream>) -> Reply {
    loop {
        match reader.recv::<Reply>() {
            Ok(Some(reply)) => return reply,
            Ok(None) => panic!("coordinator hung up"),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => panic!("recv failed: {e}"),
        }
    }
}

/// The v2 handshake for hand-rolled test clients: Hello → Challenge →
/// Auth → Welcome. Returns the issued session id and the plan identity.
fn client_handshake(
    stream: &mut TcpStream,
    reader: &mut MessageReader<TcpStream>,
    name: &str,
    token: &str,
    resume: Option<u64>,
) -> (u64, PlanIdentity) {
    send(
        stream,
        &Request::Hello {
            worker: name.into(),
            proto: PROTOCOL_VERSION,
        },
    )
    .expect("hello");
    let Reply::Challenge { nonce } = recv_reply(reader) else {
        panic!("expected Challenge");
    };
    send(
        stream,
        &Request::Auth {
            worker: name.into(),
            mac: mac64(token, nonce),
            session: resume,
        },
    )
    .expect("auth");
    match recv_reply(reader) {
        Reply::Welcome {
            session, identity, ..
        } => (session, identity),
        other => panic!("expected Welcome, got {other:?}"),
    }
}

/// Happy path: two workers, byte-identical table, reconciled ledger,
/// no expiries — and the coordinator keeps answering status/results
/// queries after the sweep finishes.
#[test]
fn fleet_matches_serial_and_serves_results() {
    let dir = fresh_dir("happy");
    let serial = SweepRunner::serial().run(&tiny_plan()).to_csv();

    let mut config = FleetConfig::new("e2e", "tiny", &dir);
    config.lease_cells = 2;
    config.poll_ms = 20;
    config.timeout_ms = 60_000;
    let coordinator = Coordinator::start(tiny_plan(), config).expect("coordinator starts");
    let addr = coordinator.addr().to_string();

    let workers: Vec<_> = (1..=2)
        .map(|i| spawn_worker(&format!("w{i}"), &addr, &dir))
        .collect();
    let report = coordinator
        .wait(Duration::from_secs(120))
        .expect("fleet completes");

    assert_eq!(report.csv, serial, "fleet table must be byte-identical");
    assert!(
        report.reconciled,
        "ledger must reconcile: {:?}",
        report.counters
    );
    assert_eq!(report.cells, 6);
    assert_eq!(report.counters.leases_expired, 0);
    assert_eq!(report.counters.cells_completed, 6);

    // The service still answers observers after completion.
    let status = query_status(&addr).expect("status");
    assert!(status.complete);
    assert_eq!(status.completed_cells, 6);
    assert!(status.leases.is_empty(), "no lease survives completion");
    let page = query_results(&addr, 0, 4).expect("first page");
    assert_eq!(page.cells.len(), 4);
    assert!(page
        .cells
        .iter()
        .all(|c| c.state == "done" && c.worker.is_some()));
    let tail = query_results(&addr, 4, 100).expect("tail page");
    assert_eq!(tail.cells.len(), 2);
    assert_eq!(tail.start, 4);

    let mut worker_cells = 0;
    for worker in workers {
        worker_cells += worker.join().expect("join").expect("worker ok").cells;
    }
    // Work stealing may let two workers race the same cell (the loser's
    // report folds away as a duplicate), so the tally is a floor.
    assert!(worker_cells >= 6, "every cell was streamed by some worker");
    coordinator.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Failure injection: a rogue client takes a lease, journals two cells,
/// reports only one, and silently dies. The fleet must still finish —
/// the journaled-but-unreported cell is harvested (not re-run under a
/// new name), the rest are re-leased — and the merged table is still
/// byte-identical to serial.
#[test]
fn killed_worker_is_harvested_and_reassigned() {
    let dir = fresh_dir("kill");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let plan = tiny_plan();
    let serial = SweepRunner::serial().run(&plan).to_csv();
    let manifest = CellId::assign(&plan.cells);

    let mut config = FleetConfig::new("e2e", "tiny", &dir);
    config.lease_cells = 3;
    config.poll_ms = 50;
    config.timeout_ms = 1_500;
    let coordinator = Coordinator::start(tiny_plan(), config).expect("coordinator starts");
    let addr = coordinator.addr().to_string();

    // The rogue: speak the protocol by hand so the death is surgical.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut reader = MessageReader::new(stream.try_clone().expect("clone"));
    let (_, identity) = client_handshake(&mut stream, &mut reader, "rogue", "", None);
    assert_eq!(identity.cells, 6);
    send(
        &mut stream,
        &Request::Lease {
            worker: "rogue".into(),
        },
    )
    .expect("lease request");
    let Reply::Grant {
        lease,
        cells,
        journal,
    } = recv_reply(&mut reader)
    else {
        panic!("expected Grant");
    };
    assert_eq!(cells.len(), 3);
    let granted: Vec<CellId> = cells
        .iter()
        .map(|text| CellId::from_hex(text).expect("granted id"))
        .collect();

    // Journal the first two cells exactly as a real worker would...
    let journal_path = dir.join(&journal);
    SweepSession::new(&plan)
        .shard(ShardSpec::cells(granted[..2].to_vec()))
        .checkpoint(&journal_path)
        .run(&mut [])
        .expect("rogue session");
    let records = harvest_journal(&plan, &journal_path).expect("read own journal");
    assert_eq!(records.len(), 2);

    // ...report only the first, then die without a word.
    let (id, index, output) = records
        .iter()
        .find(|(id, _, _)| *id == granted[0])
        .cloned()
        .expect("first granted cell journaled");
    assert_eq!(manifest[index], id);
    send(
        &mut stream,
        &Request::CellDone {
            worker: "rogue".into(),
            lease,
            cell: id.to_hex(),
            index,
            output: Box::new(output),
        },
    )
    .expect("report");
    assert!(matches!(recv_reply(&mut reader), Reply::Ack));
    drop(reader);
    drop(stream);

    // Two honest workers finish the sweep around the corpse.
    let workers: Vec<_> = (1..=2)
        .map(|i| spawn_worker(&format!("w{i}"), &addr, &dir))
        .collect();
    let report = coordinator
        .wait(Duration::from_secs(120))
        .expect("fleet completes despite the dead lease");

    assert_eq!(report.csv, serial, "fleet table must be byte-identical");
    assert!(
        report.reconciled,
        "ledger must reconcile: {:?}",
        report.counters
    );
    assert!(
        report.counters.leases_expired >= 1,
        "the rogue's lease must expire: {:?}",
        report.counters
    );
    assert!(
        report.counters.cells_harvested >= 1,
        "the journaled-but-unreported cell must be harvested: {:?}",
        report.counters
    );
    for worker in workers {
        worker.join().expect("join").expect("worker ok");
    }
    coordinator.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reconnect-and-resume: a client that loses TCP mid-lease but kept
/// its journal re-authenticates with the same `SessionId`, keeps the
/// lease (no expiry, no harvest), resumes from its journal without
/// re-running the journaled cell, and completes normally.
#[test]
fn reconnect_resumes_session_and_keeps_the_lease() {
    let dir = fresh_dir("resume");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let plan = tiny_plan();
    let serial = SweepRunner::serial().run(&plan).to_csv();

    let mut config = FleetConfig::new("e2e", "tiny", &dir);
    config.lease_cells = 3;
    config.poll_ms = 20;
    // Expiry must not be what saves this test: the lease has to
    // survive because the session was re-adopted, not because it timed
    // out and was harvested.
    config.timeout_ms = 60_000;
    config.token = "sesame".into();
    let coordinator = Coordinator::start(tiny_plan(), config).expect("coordinator starts");
    let addr = coordinator.addr().to_string();

    // First connection: authenticate, lease three cells, journal and
    // report one.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut reader = MessageReader::new(stream.try_clone().expect("clone"));
    let (session, _) = client_handshake(&mut stream, &mut reader, "lazarus", "sesame", None);
    send(
        &mut stream,
        &Request::Lease {
            worker: "lazarus".into(),
        },
    )
    .expect("lease request");
    let Reply::Grant {
        lease,
        cells,
        journal,
    } = recv_reply(&mut reader)
    else {
        panic!("expected Grant");
    };
    assert_eq!(cells.len(), 3);
    let granted: Vec<CellId> = cells
        .iter()
        .map(|text| CellId::from_hex(text).expect("granted id"))
        .collect();
    // Journal the whole lease (as a real worker session would), but
    // only the first cell's report makes it out before the network
    // dies.
    let journal_path = dir.join(&journal);
    SweepSession::new(&plan)
        .shard(ShardSpec::cells(granted.clone()))
        .checkpoint(&journal_path)
        .run(&mut [])
        .expect("lease session");
    let records = harvest_journal(&plan, &journal_path).expect("journal");
    assert_eq!(records.len(), 3);
    let (id, index, output) = records
        .iter()
        .find(|(id, _, _)| *id == granted[0])
        .cloned()
        .expect("first granted cell journaled");
    send(
        &mut stream,
        &Request::CellDone {
            worker: "lazarus".into(),
            lease,
            cell: id.to_hex(),
            index,
            output: Box::new(output),
        },
    )
    .expect("report");
    assert!(matches!(recv_reply(&mut reader), Reply::Ack));

    // The network dies.
    drop(reader);
    drop(stream);

    // Second connection, same session: the lease must still be ours.
    let mut stream = TcpStream::connect(&addr).expect("reconnect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut reader = MessageReader::new(stream.try_clone().expect("clone"));
    let (resumed, _) =
        client_handshake(&mut stream, &mut reader, "lazarus", "sesame", Some(session));
    assert_eq!(resumed, session, "the session id must survive reconnect");
    send(
        &mut stream,
        &Request::Heartbeat {
            worker: "lazarus".into(),
            lease,
        },
    )
    .expect("heartbeat");
    assert!(
        matches!(recv_reply(&mut reader), Reply::Ack),
        "a re-adopted lease must heartbeat as live, not Stale"
    );

    // Resume the sweep from the journal: every journaled cell replays,
    // nothing re-runs.
    let session_report = SweepSession::new(&plan)
        .shard(ShardSpec::cells(granted.clone()))
        .checkpoint(&journal_path)
        .resume(true)
        .run(&mut [])
        .expect("resumed session");
    assert_eq!(
        session_report.replayed, 3,
        "journaled cells must not re-run"
    );
    assert_eq!(session_report.executed, 0);
    let records = harvest_journal(&plan, &journal_path).expect("journal");
    assert_eq!(records.len(), 3);
    for (id, index, output) in records {
        if id == granted[0] {
            continue; // already reported on the first connection
        }
        send(
            &mut stream,
            &Request::CellDone {
                worker: "lazarus".into(),
                lease,
                cell: id.to_hex(),
                index,
                output: Box::new(output),
            },
        )
        .expect("report");
        assert!(matches!(recv_reply(&mut reader), Reply::Ack));
    }
    send(
        &mut stream,
        &Request::Complete {
            worker: "lazarus".into(),
            lease,
        },
    )
    .expect("complete");
    assert!(matches!(recv_reply(&mut reader), Reply::Ack));
    drop(reader);
    drop(stream);

    // Honest workers mop up the other half of the plan.
    let mut worker_config = WorkerConfig::new("w1", &addr, &dir);
    worker_config.token = "sesame".into();
    let worker = spawn_worker_cfg(worker_config);
    let report = coordinator
        .wait(Duration::from_secs(120))
        .expect("fleet completes");

    assert_eq!(report.csv, serial, "fleet table must be byte-identical");
    assert!(report.reconciled, "ledger: {:?}", report.counters);
    assert_eq!(
        report.counters.leases_expired, 0,
        "re-adoption, not expiry, must carry the lease: {:?}",
        report.counters
    );
    assert_eq!(report.counters.sessions_resumed, 1);
    assert_eq!(report.counters.leases_readopted, 1);
    worker.join().expect("join").expect("worker ok");
    coordinator.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Chaos: every worker connection runs through a seeded flaky proxy
/// that injects delays, stalls, and mid-message disconnects — the
/// fleet must still finish byte-identical with a reconciled ledger,
/// riding reconnect-and-resume.
#[test]
fn chaos_proxied_fleet_still_matches_serial() {
    let dir = fresh_dir("chaos");
    let serial = SweepRunner::serial().run(&tiny_plan()).to_csv();

    let mut config = FleetConfig::new("e2e", "tiny", &dir);
    config.lease_cells = 2;
    config.poll_ms = 20;
    config.timeout_ms = 4_000;
    let coordinator = Coordinator::start(tiny_plan(), config).expect("coordinator starts");
    let spec = ChaosSpec {
        seed: 0xc4a05,
        delay_every: 5,
        delay_max_ms: 8,
        stall_every: 37,
        stall_ms: 60,
        disconnect_every: 7,
        max_disconnects: 8,
    };
    let proxy = ChaosProxy::start(coordinator.addr(), spec).expect("proxy starts");
    let proxy_addr = proxy.addr().to_string();

    let workers: Vec<_> = (1..=3)
        .map(|i| spawn_worker(&format!("w{i}"), &proxy_addr, &dir))
        .collect();
    let report = coordinator
        .wait(Duration::from_secs(180))
        .expect("fleet completes under chaos");

    assert_eq!(report.csv, serial, "fleet table must be byte-identical");
    assert!(report.reconciled, "ledger: {:?}", report.counters);
    assert_eq!(report.cells, 6);
    assert!(
        proxy.disconnects() >= 1,
        "the chaos spec should have torn at least one connection \
         ({} connections, {} disconnects)",
        proxy.connections(),
        proxy.disconnects()
    );
    let mut reconnects = 0;
    for worker in workers {
        reconnects += worker.join().expect("join").expect("worker ok").reconnects;
    }
    assert!(
        reconnects >= 1,
        "some worker must have resumed its session: {:?}",
        report.counters
    );
    coordinator.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Coordinator crash recovery: kill the coordinator mid-sweep, then
/// `recover` from the WAL + journals in the same directory. The
/// recovered fleet finishes the plan byte-identical to serial without
/// re-running already-journaled cells, and the ledger still reconciles.
#[test]
fn crashed_coordinator_recovers_from_wal() {
    let dir = fresh_dir("recover");
    let plan = tiny_plan();
    let serial = SweepRunner::serial().run(&plan).to_csv();

    let mut config = FleetConfig::new("e2e", "tiny", &dir);
    config.lease_cells = 2;
    config.poll_ms = 20;
    config.timeout_ms = 60_000;
    let coordinator = Coordinator::start(tiny_plan(), config).expect("coordinator starts");
    let addr = coordinator.addr().to_string();

    // Workers with a short reconnect budget, so they give up quickly
    // once the coordinator is gone.
    let workers: Vec<_> = (1..=2)
        .map(|i| {
            let mut config = WorkerConfig::new(&format!("w{i}"), &addr, &dir);
            config.connect_timeout_ms = 800;
            spawn_worker_cfg(config)
        })
        .collect();

    // Crash once the sweep is demonstrably mid-flight.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        assert!(Instant::now() < deadline, "no progress before crash point");
        if let Ok(status) = query_status(&addr) {
            if status.completed_cells >= 1 {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    coordinator.shutdown();
    for worker in workers {
        worker
            .join()
            .expect("join")
            .expect("survivors exit cleanly");
    }

    // Recover from the WAL in the same directory and finish the sweep.
    let mut config = FleetConfig::new("e2e", "tiny", &dir);
    config.lease_cells = 2;
    config.poll_ms = 20;
    config.timeout_ms = 60_000;
    let recovered = Coordinator::recover(tiny_plan(), config).expect("recovery from WAL");
    let addr = recovered.addr().to_string();
    let workers: Vec<_> = (1..=2)
        .map(|i| spawn_worker(&format!("w{i}"), &addr, &dir))
        .collect();
    let report = recovered
        .wait(Duration::from_secs(120))
        .expect("recovered fleet completes");

    assert_eq!(report.csv, serial, "fleet table must be byte-identical");
    assert!(report.reconciled, "ledger: {:?}", report.counters);
    assert_eq!(report.cells, 6);
    assert!(
        report.counters.wal_events_replayed >= 1,
        "recovery must have replayed the WAL: {:?}",
        report.counters
    );
    for worker in workers {
        worker.join().expect("join").expect("worker ok");
    }
    recovered.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Hostile clients: random bytes, truncated JSON, well-formed nonsense,
/// unauthenticated requests, version skew, and a wrong token all get a
/// typed refusal (or a dropped connection) — and an honest fleet on the
/// same coordinator still finishes byte-identical afterwards.
#[test]
fn hostile_clients_are_refused_and_the_fleet_survives() {
    let dir = fresh_dir("fuzz");
    let serial = SweepRunner::serial().run(&tiny_plan()).to_csv();

    let mut config = FleetConfig::new("e2e", "tiny", &dir);
    config.lease_cells = 2;
    config.poll_ms = 20;
    config.timeout_ms = 60_000;
    config.token = "sesame".into();
    let coordinator = Coordinator::start(tiny_plan(), config).expect("coordinator starts");
    let addr = coordinator.addr().to_string();

    // Seeded garbage: raw bytes, some with newlines, then hang up.
    let mut x = 0x5eed_f00du64;
    for conn in 0..4u64 {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        let mut bytes = Vec::new();
        for _ in 0..64 {
            x = mix64(x ^ conn);
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        bytes.push(b'\n');
        let _ = stream.write_all(&bytes);
    }
    // Truncated JSON, then EOF mid-line.
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        let _ = stream.write_all(b"{\"type\":\"Hello\",\"worker\":\"trunc");
    }
    // Well-formed JSON that is not a Request: a typed Malformed refusal
    // comes back before the coordinator hangs up.
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut reader = MessageReader::new(stream.try_clone().expect("clone"));
        stream.write_all(b"{\"bogus\": 1}\n").expect("write");
        assert!(matches!(
            recv_reply(&mut reader),
            Reply::Refused {
                error: ProtocolError::Malformed { .. }
            }
        ));
    }
    // Unauthenticated Lease: refused, not granted.
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut reader = MessageReader::new(stream.try_clone().expect("clone"));
        send(
            &mut stream,
            &Request::Lease {
                worker: "sneak".into(),
            },
        )
        .expect("lease");
        assert!(matches!(
            recv_reply(&mut reader),
            Reply::Refused {
                error: ProtocolError::AuthFailure { .. }
            }
        ));
    }
    // Version skew: refused with both versions named.
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut reader = MessageReader::new(stream.try_clone().expect("clone"));
        send(
            &mut stream,
            &Request::Hello {
                worker: "relic".into(),
                proto: PROTOCOL_VERSION + 1,
            },
        )
        .expect("hello");
        match recv_reply(&mut reader) {
            Reply::Refused {
                error:
                    ProtocolError::VersionSkew {
                        coordinator,
                        client,
                    },
            } => {
                assert_eq!(coordinator, PROTOCOL_VERSION);
                assert_eq!(client, PROTOCOL_VERSION + 1);
            }
            other => panic!("expected VersionSkew, got {other:?}"),
        }
    }
    // Wrong token: the challenge response does not verify.
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut reader = MessageReader::new(stream.try_clone().expect("clone"));
        send(
            &mut stream,
            &Request::Hello {
                worker: "imposter".into(),
                proto: PROTOCOL_VERSION,
            },
        )
        .expect("hello");
        let Reply::Challenge { nonce } = recv_reply(&mut reader) else {
            panic!("expected Challenge");
        };
        send(
            &mut stream,
            &Request::Auth {
                worker: "imposter".into(),
                mac: mac64("wrong-token", nonce),
                session: None,
            },
        )
        .expect("auth");
        assert!(matches!(
            recv_reply(&mut reader),
            Reply::Refused {
                error: ProtocolError::AuthFailure { .. }
            }
        ));
    }

    // After all that abuse, an honest fleet still works.
    let workers: Vec<_> = (1..=2)
        .map(|i| {
            let mut config = WorkerConfig::new(&format!("w{i}"), &addr, &dir);
            config.token = "sesame".into();
            spawn_worker_cfg(config)
        })
        .collect();
    let report = coordinator
        .wait(Duration::from_secs(120))
        .expect("fleet completes");
    assert_eq!(report.csv, serial, "fleet table must be byte-identical");
    assert!(report.reconciled, "ledger: {:?}", report.counters);
    for worker in workers {
        worker.join().expect("join").expect("worker ok");
    }
    coordinator.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A worker whose local plan disagrees with the coordinator's (here: a
/// different seed, which cell ids alone cannot detect) must refuse to
/// lease instead of corrupting the sweep.
#[test]
fn mismatched_plan_identity_is_refused() {
    let dir = fresh_dir("mismatch");
    let mut config = FleetConfig::new("e2e", "tiny", &dir);
    config.poll_ms = 20;
    let coordinator = Coordinator::start(tiny_plan(), config).expect("coordinator starts");
    let addr = coordinator.addr().to_string();

    let worker_config = WorkerConfig::new("skewed", &addr, &dir);
    let err = run_worker_with(&worker_config, |_, _| {
        let mut plan = tiny_plan();
        plan.seed ^= 0xdead;
        Some(plan)
    })
    .expect_err("a skewed plan must be refused");
    assert!(
        err.contains("identity mismatch"),
        "error must name the mismatch: {err}"
    );
    coordinator.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
