//! Property tests for the lease state machine: under arbitrary
//! interleavings of grants, completions, stale reports, heartbeats,
//! and expiries, the ledger never double-completes a cell, never loses
//! one, and always terminates with every cell completed exactly once
//! and the churn counters reconciled — including when the ledger is
//! rebuilt by replaying a WAL-shaped transition stream cut at an
//! arbitrary crash point, with reconnecting workers re-adopting their
//! replayed leases.

use std::collections::HashSet;

use dsp_bench::engine::CellId;
use dsp_fleet::{CellReport, GrantOutcome, LeaseLedger};
use proptest::prelude::*;

/// The ledger transitions the coordinator write-ahead-logs, in the
/// shape recovery replays them.
#[derive(Clone, Debug)]
enum Ev {
    Granted {
        lease: u64,
        worker: String,
        cells: Vec<CellId>,
    },
    CellDone {
        lease: u64,
        cell: CellId,
    },
    LeaseDone(u64),
    Expired(u64),
}

fn ids(n: usize) -> Vec<CellId> {
    (0..n)
        .map(|i| CellId::from_hex(&format!("{:016x}", 0xbeef_0000 + i as u64)).expect("hex"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The core fleet safety and liveness argument, as a property: a
    /// random adversarial schedule followed by a deterministic drain
    /// always ends with `is_complete`, every cell accepted exactly
    /// once, and `cells_granted == cells_completed + cells_stolen`.
    #[test]
    fn random_interleavings_reconcile(
        total in 1usize..24,
        ops in proptest::collection::vec((0usize..6, 0usize..8, 1usize..5), 0usize..120),
    ) {
        let cells = ids(total);
        let mut ledger = LeaseLedger::new(cells.clone());
        // The model: the set of cells whose completion was Accepted.
        // A second Accepted for any member is the double-complete bug
        // this test exists to rule out.
        let mut accepted: HashSet<CellId> = HashSet::new();
        let mut now: u64 = 0;
        for (op, pick, size) in ops {
            now += 7;
            match op {
                // A worker asks for work.
                0 => {
                    let _ = ledger.grant(&format!("w{pick}"), now, size);
                }
                // An active lease's holder reports its next cell (or,
                // with nothing outstanding, retires the lease).
                1 => {
                    let leases = ledger.lease_infos();
                    if !leases.is_empty() {
                        let lease = leases[pick % leases.len()].lease;
                        let next = ledger.lease(lease).and_then(|l| l.cells.first().copied());
                        match next {
                            Some(cell) => {
                                let verdict = ledger.complete_cell(lease, cell, now);
                                prop_assert_eq!(verdict, CellReport::Accepted);
                                prop_assert!(accepted.insert(cell), "cell accepted twice");
                            }
                            None => {
                                let _ = ledger.complete_lease(lease);
                            }
                        }
                    }
                }
                // A report from a lease that was never granted must
                // never be accepted.
                2 => {
                    let bogus = pick as u64 + 1_000;
                    let verdict = ledger.complete_cell(bogus, cells[pick % total], now);
                    prop_assert_ne!(verdict, CellReport::Accepted);
                }
                // Heartbeats for arbitrary (possibly dead) leases.
                3 => {
                    let _ = ledger.heartbeat(pick as u64, now);
                }
                // A lease dies; its outstanding cells requeue.
                4 => {
                    let leases = ledger.lease_infos();
                    if !leases.is_empty() {
                        ledger.expire(leases[pick % leases.len()].lease);
                    }
                }
                // A repeat report for an already-done cell is a
                // Duplicate no matter which lease claims it.
                _ => {
                    if let Some(&cell) = accepted.iter().next() {
                        let verdict = ledger.complete_cell(pick as u64, cell, now);
                        prop_assert_eq!(verdict, CellReport::Duplicate);
                    }
                }
            }
            // No cell is ever lost or duplicated across the three
            // states, and the ledger's completion count tracks the
            // model exactly.
            prop_assert_eq!(
                ledger.pending() + ledger.outstanding() + ledger.completed(),
                total
            );
            prop_assert_eq!(ledger.completed(), accepted.len());
            prop_assert_eq!(ledger.counters.cells_completed as usize, accepted.len());
        }

        // Deterministic drain: grant, complete, retire; expire anything
        // wedged. This must terminate with the plan fully complete.
        let mut guard = 0;
        loop {
            guard += 1;
            prop_assert!(guard < 10_000, "drain did not terminate");
            now += 11;
            match ledger.grant("drain", now, 3) {
                GrantOutcome::Finished => break,
                GrantOutcome::Wait => {
                    // Nothing pending and nothing stealable: only
                    // wedged leases remain. Expiry recovers them.
                    let leases = ledger.lease_infos();
                    prop_assert!(!leases.is_empty(), "Wait with no active leases");
                    ledger.expire(leases[0].lease);
                }
                GrantOutcome::Granted {
                    lease,
                    cells: granted,
                    ..
                } => {
                    for cell in granted {
                        let verdict = ledger.complete_cell(lease, cell, now);
                        prop_assert_eq!(verdict, CellReport::Accepted);
                        prop_assert!(accepted.insert(cell), "cell accepted twice");
                    }
                    prop_assert!(ledger.complete_lease(lease));
                }
            }
        }
        prop_assert!(ledger.is_complete());
        prop_assert_eq!(accepted.len(), total);
        prop_assert!(
            ledger.counters.reconciled(total as u64),
            "unreconciled counters: {:?}",
            ledger.counters
        );
    }

    /// Coordinator crash recovery, as a property: a random schedule
    /// runs against a live ledger while every transition is recorded
    /// as a WAL event; the "coordinator" then crashes at an arbitrary
    /// prefix of that stream, and a fresh ledger is rebuilt by
    /// replaying the prefix (exactly as `Coordinator::recover` does).
    /// Reconnecting workers re-adopt a random subset of the replayed
    /// leases and finish them; the rest are drained through
    /// steal/expiry. The replayed ledger must accept every replayed
    /// transition, never double-accept a cell, and always end complete
    /// and reconciled.
    #[test]
    fn wal_replay_at_any_crash_point_reconciles(
        total in 1usize..20,
        ops in proptest::collection::vec((0usize..5, 0usize..8, 1usize..5), 0usize..90),
        cut in 0.0f64..1.0,
        resume_leases in proptest::collection::vec(any::<bool>(), 8),
    ) {
        let cells = ids(total);
        let mut ledger = LeaseLedger::new(cells.clone());
        let mut events: Vec<Ev> = Vec::new();
        let mut now: u64 = 0;
        for (op, pick, size) in ops {
            now += 7;
            match op {
                0 => {
                    if let GrantOutcome::Granted { lease, cells, .. } =
                        ledger.grant(&format!("w{pick}"), now, size)
                    {
                        events.push(Ev::Granted {
                            lease,
                            worker: format!("w{pick}"),
                            cells,
                        });
                    }
                }
                1 => {
                    let leases = ledger.lease_infos();
                    if !leases.is_empty() {
                        let lease = leases[pick % leases.len()].lease;
                        let next = ledger.lease(lease).and_then(|l| l.cells.first().copied());
                        match next {
                            Some(cell) => {
                                let verdict = ledger.complete_cell(lease, cell, now);
                                prop_assert_eq!(verdict, CellReport::Accepted);
                                events.push(Ev::CellDone { lease, cell });
                            }
                            None => {
                                if ledger.complete_lease(lease) {
                                    events.push(Ev::LeaseDone(lease));
                                }
                            }
                        }
                    }
                }
                2 => {
                    let _ = ledger.heartbeat(pick as u64, now);
                }
                3 => {
                    let leases = ledger.lease_infos();
                    if !leases.is_empty() {
                        let lease = leases[pick % leases.len()].lease;
                        ledger.expire(lease);
                        events.push(Ev::Expired(lease));
                    }
                }
                _ => {
                    // A stray duplicate report; not a ledger transition,
                    // so nothing is logged.
                    if let Some(&cell) = cells.first() {
                        let _ = ledger.complete_cell(pick as u64 + 1_000, cell, now);
                    }
                }
            }
        }

        // Crash: only a prefix of the WAL survives. (The real WAL is
        // flushed per event, so any cut point is a torn-tail cut.)
        let keep = ((events.len() as f64) * cut) as usize;
        let prefix = &events[..keep.min(events.len())];

        // Recovery: replay the prefix into a fresh ledger.
        let mut replayed = LeaseLedger::new(cells.clone());
        let mut accepted: HashSet<CellId> = HashSet::new();
        let mut now: u64 = 0;
        for event in prefix {
            now += 3;
            match event {
                Ev::Granted { lease, worker, cells } => {
                    prop_assert!(
                        replayed.replay_granted(*lease, worker, cells, now).is_ok(),
                        "replaying a logged grant must succeed"
                    );
                }
                Ev::CellDone { lease, cell } => {
                    let verdict = replayed.complete_cell(*lease, *cell, now);
                    prop_assert_eq!(verdict, CellReport::Accepted);
                    prop_assert!(accepted.insert(*cell), "cell accepted twice in replay");
                }
                Ev::LeaseDone(lease) => {
                    prop_assert!(replayed.complete_lease(*lease));
                }
                Ev::Expired(lease) => {
                    replayed.expire(*lease);
                }
            }
            prop_assert_eq!(
                replayed.pending() + replayed.outstanding() + replayed.completed(),
                total
            );
            prop_assert_eq!(replayed.completed(), accepted.len());
        }

        // Reconnecting workers re-adopt a random subset of the replayed
        // leases and finish them exactly as a resumed session would.
        for (i, info) in replayed.lease_infos().into_iter().enumerate() {
            if !resume_leases[i % resume_leases.len()] {
                continue;
            }
            now += 5;
            prop_assert!(replayed.heartbeat(info.lease, now), "re-adopted lease is live");
            let outstanding = replayed
                .lease(info.lease)
                .map(|l| l.cells.clone())
                .unwrap_or_default();
            for cell in outstanding {
                let verdict = replayed.complete_cell(info.lease, cell, now);
                prop_assert_eq!(verdict, CellReport::Accepted);
                prop_assert!(accepted.insert(cell), "cell accepted twice after re-adopt");
            }
            prop_assert!(replayed.complete_lease(info.lease));
        }

        // Drain the rest: fresh grants, with expiry recovering any
        // lease whose worker never came back.
        let mut guard = 0;
        loop {
            guard += 1;
            prop_assert!(guard < 10_000, "recovery drain did not terminate");
            now += 11;
            match replayed.grant("drain", now, 3) {
                GrantOutcome::Finished => break,
                GrantOutcome::Wait => {
                    let leases = replayed.lease_infos();
                    prop_assert!(!leases.is_empty(), "Wait with no active leases");
                    replayed.expire(leases[0].lease);
                }
                GrantOutcome::Granted { lease, cells: granted, .. } => {
                    for cell in granted {
                        let verdict = replayed.complete_cell(lease, cell, now);
                        prop_assert_eq!(verdict, CellReport::Accepted);
                        prop_assert!(accepted.insert(cell), "cell accepted twice in drain");
                    }
                    prop_assert!(replayed.complete_lease(lease));
                }
            }
        }
        prop_assert!(replayed.is_complete());
        prop_assert_eq!(accepted.len(), total);
        prop_assert!(
            replayed.counters.reconciled(total as u64),
            "unreconciled counters after replay: {:?}",
            replayed.counters
        );
    }
}
