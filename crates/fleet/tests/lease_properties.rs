//! Property tests for the lease state machine: under arbitrary
//! interleavings of grants, completions, stale reports, heartbeats,
//! and expiries, the ledger never double-completes a cell, never loses
//! one, and always terminates with every cell completed exactly once
//! and the churn counters reconciled.

use std::collections::HashSet;

use dsp_bench::engine::CellId;
use dsp_fleet::{CellReport, GrantOutcome, LeaseLedger};
use proptest::prelude::*;

fn ids(n: usize) -> Vec<CellId> {
    (0..n)
        .map(|i| CellId::from_hex(&format!("{:016x}", 0xbeef_0000 + i as u64)).expect("hex"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The core fleet safety and liveness argument, as a property: a
    /// random adversarial schedule followed by a deterministic drain
    /// always ends with `is_complete`, every cell accepted exactly
    /// once, and `cells_granted == cells_completed + cells_stolen`.
    #[test]
    fn random_interleavings_reconcile(
        total in 1usize..24,
        ops in proptest::collection::vec((0usize..6, 0usize..8, 1usize..5), 0usize..120),
    ) {
        let cells = ids(total);
        let mut ledger = LeaseLedger::new(cells.clone());
        // The model: the set of cells whose completion was Accepted.
        // A second Accepted for any member is the double-complete bug
        // this test exists to rule out.
        let mut accepted: HashSet<CellId> = HashSet::new();
        let mut now: u64 = 0;
        for (op, pick, size) in ops {
            now += 7;
            match op {
                // A worker asks for work.
                0 => {
                    let _ = ledger.grant(&format!("w{pick}"), now, size);
                }
                // An active lease's holder reports its next cell (or,
                // with nothing outstanding, retires the lease).
                1 => {
                    let leases = ledger.lease_infos();
                    if !leases.is_empty() {
                        let lease = leases[pick % leases.len()].lease;
                        let next = ledger.lease(lease).and_then(|l| l.cells.first().copied());
                        match next {
                            Some(cell) => {
                                let verdict = ledger.complete_cell(lease, cell, now);
                                prop_assert_eq!(verdict, CellReport::Accepted);
                                prop_assert!(accepted.insert(cell), "cell accepted twice");
                            }
                            None => {
                                let _ = ledger.complete_lease(lease);
                            }
                        }
                    }
                }
                // A report from a lease that was never granted must
                // never be accepted.
                2 => {
                    let bogus = pick as u64 + 1_000;
                    let verdict = ledger.complete_cell(bogus, cells[pick % total], now);
                    prop_assert_ne!(verdict, CellReport::Accepted);
                }
                // Heartbeats for arbitrary (possibly dead) leases.
                3 => {
                    let _ = ledger.heartbeat(pick as u64, now);
                }
                // A lease dies; its outstanding cells requeue.
                4 => {
                    let leases = ledger.lease_infos();
                    if !leases.is_empty() {
                        ledger.expire(leases[pick % leases.len()].lease);
                    }
                }
                // A repeat report for an already-done cell is a
                // Duplicate no matter which lease claims it.
                _ => {
                    if let Some(&cell) = accepted.iter().next() {
                        let verdict = ledger.complete_cell(pick as u64, cell, now);
                        prop_assert_eq!(verdict, CellReport::Duplicate);
                    }
                }
            }
            // No cell is ever lost or duplicated across the three
            // states, and the ledger's completion count tracks the
            // model exactly.
            prop_assert_eq!(
                ledger.pending() + ledger.outstanding() + ledger.completed(),
                total
            );
            prop_assert_eq!(ledger.completed(), accepted.len());
            prop_assert_eq!(ledger.counters.cells_completed as usize, accepted.len());
        }

        // Deterministic drain: grant, complete, retire; expire anything
        // wedged. This must terminate with the plan fully complete.
        let mut guard = 0;
        loop {
            guard += 1;
            prop_assert!(guard < 10_000, "drain did not terminate");
            now += 11;
            match ledger.grant("drain", now, 3) {
                GrantOutcome::Finished => break,
                GrantOutcome::Wait => {
                    // Nothing pending and nothing stealable: only
                    // wedged leases remain. Expiry recovers them.
                    let leases = ledger.lease_infos();
                    prop_assert!(!leases.is_empty(), "Wait with no active leases");
                    ledger.expire(leases[0].lease);
                }
                GrantOutcome::Granted {
                    lease,
                    cells: granted,
                    ..
                } => {
                    for cell in granted {
                        let verdict = ledger.complete_cell(lease, cell, now);
                        prop_assert_eq!(verdict, CellReport::Accepted);
                        prop_assert!(accepted.insert(cell), "cell accepted twice");
                    }
                    prop_assert!(ledger.complete_lease(lease));
                }
            }
        }
        prop_assert!(ledger.is_complete());
        prop_assert_eq!(accepted.len(), total);
        prop_assert!(
            ledger.counters.reconciled(total as u64),
            "unreconciled counters: {:?}",
            ledger.counters
        );
    }
}
