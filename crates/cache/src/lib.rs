//! Set-associative cache models with per-line MOSI state.
//!
//! The timing simulator keeps a real (finite, set-associative, LRU)
//! model of each node's L2 cache so that capacity-induced evictions and
//! their writebacks happen where they would on hardware. The paper's
//! target system (Table 4) uses 4 MB 4-way L2 caches with 64-byte
//! blocks and 128 kB 4-way L1s; [`CacheConfig`] carries those presets.
//!
//! # Example
//!
//! ```
//! use dsp_cache::{CacheConfig, SetAssocCache};
//! use dsp_types::{BlockAddr, LineState};
//!
//! let mut l2 = SetAssocCache::new(CacheConfig::isca03_l2());
//! assert!(l2.fill(BlockAddr::new(7), LineState::Shared).is_none());
//! assert_eq!(l2.probe(BlockAddr::new(7)), Some(LineState::Shared));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod set_assoc;

pub use config::CacheConfig;
pub use set_assoc::{CacheStats, EvictedLine, SetAssocCache};
