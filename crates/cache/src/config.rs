//! Cache geometry configuration.

use serde::{Deserialize, Serialize};

use dsp_types::BLOCK_BYTES;

/// Geometry of one cache: capacity, associativity, block size.
///
/// # Example
///
/// ```
/// use dsp_cache::CacheConfig;
///
/// let l2 = CacheConfig::isca03_l2();
/// assert_eq!(l2.capacity_bytes(), 4 << 20);
/// assert_eq!(l2.ways(), 4);
/// assert_eq!(l2.num_sets(), 16384);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    capacity_bytes: u64,
    ways: usize,
    block_bytes: u64,
}

impl CacheConfig {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics unless capacity and block size are powers of two, the
    /// associativity is nonzero, and the capacity holds at least one
    /// full set.
    pub fn new(capacity_bytes: u64, ways: usize, block_bytes: u64) -> Self {
        assert!(
            capacity_bytes.is_power_of_two(),
            "capacity must be a power of two"
        );
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(ways > 0, "associativity must be nonzero");
        assert!(
            capacity_bytes >= block_bytes * ways as u64,
            "capacity smaller than one set"
        );
        CacheConfig {
            capacity_bytes,
            ways,
            block_bytes,
        }
    }

    /// Paper Table 4 L2: 4 MB, 4-way, 64 B blocks.
    pub fn isca03_l2() -> Self {
        CacheConfig::new(4 << 20, 4, BLOCK_BYTES)
    }

    /// Paper Table 4 L1 (instruction or data): 128 kB, 4-way, 64 B.
    pub fn isca03_l1() -> Self {
        CacheConfig::new(128 << 10, 4, BLOCK_BYTES)
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_bytes / self.block_bytes
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.capacity_blocks() / self.ways as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isca03_presets_match_table4() {
        let l2 = CacheConfig::isca03_l2();
        assert_eq!(l2.capacity_bytes(), 4 * 1024 * 1024);
        assert_eq!(l2.ways(), 4);
        assert_eq!(l2.block_bytes(), 64);
        assert_eq!(l2.capacity_blocks(), 65536);
        let l1 = CacheConfig::isca03_l1();
        assert_eq!(l1.capacity_bytes(), 128 * 1024);
        assert_eq!(l1.ways(), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_capacity() {
        let _ = CacheConfig::new(3000, 4, 64);
    }

    #[test]
    #[should_panic(expected = "smaller than one set")]
    fn rejects_capacity_below_one_set() {
        let _ = CacheConfig::new(128, 4, 64);
    }
}
