//! The set-associative cache structure.

use serde::{Deserialize, Serialize};

use dsp_types::{BlockAddr, LineState};

use crate::config::CacheConfig;

/// A line pushed out by a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictedLine {
    /// The evicted block.
    pub block: BlockAddr,
    /// Its state at eviction (dirty states imply a writeback).
    pub state: LineState,
}

/// Hit/miss/eviction counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// `touch` calls that hit.
    pub hits: u64,
    /// `touch` calls that missed.
    pub misses: u64,
    /// Lines evicted by fills.
    pub evictions: u64,
    /// Evictions of dirty (M/O) lines — writebacks.
    pub writebacks: u64,
}

/// A set-associative, LRU, write-back cache indexed by block address,
/// tracking a MOSI [`LineState`] per line.
///
/// This structure does not move data; it tracks presence and coherence
/// permission, which is what the timing simulator and the coherence
/// substrate need.
///
/// # Storage
///
/// Way slots are materialized *lazily, per set, from one growable
/// arena*. The only full-size structure is `set_base` — one `u32` per
/// set, allocator-zeroed (0 = "set never filled") — and a set's block
/// of `ways` contiguous slots (parallel `tags`/`last_use`/`states`
/// arena entries, `tags` holding `tag + 1` with 0 marking an empty
/// slot) is appended to the arena on the set's first fill.
///
/// The timing simulator builds one cache per node per run; at the
/// paper's 4 MB / 4-way geometry, both the seed per-set `Vec<Line>`
/// layout (16 384 inner `Vec`s to build, fill, and free) and a flat
/// slots array (~1 MB to zero per node) made construction and teardown
/// a measurable slice of short runs. With the arena, construction is
/// one 64 KB zeroed allocation, cost scales with the sets a run
/// actually touches, probing an untouched set is a single load, and a
/// set probe scans ≤ `ways` adjacent tags.
///
/// Behavior is identical to the per-set layout: tags are unique within
/// a set and LRU stamps are unique within the cache (the tick advances
/// on every `touch`/`fill`), so hit lookup and victim selection do not
/// depend on slot order — pinned by the model-equivalence property
/// test in `tests/properties.rs`.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    ways: usize,
    /// `num_sets() - 1` when the set count is a power of two (the
    /// common geometry — capacity and block size are always powers of
    /// two, so only a non-power-of-two associativity breaks it), else
    /// 0. Lets `locate` use mask/shift instead of 64-bit division.
    set_mask: u64,
    /// `log2(num_sets())` when `set_mask` is active.
    set_shift: u32,
    /// Per set: 1 + the base slot of its arena block, 0 = not yet
    /// materialized.
    set_base: Vec<u32>,
    /// `tag + 1` per materialized way slot, 0 = empty.
    tags: Vec<u64>,
    /// LRU stamp per materialized way slot (meaningful only where
    /// `tags` is non-zero).
    last_use: Vec<u64>,
    /// Line state per materialized way slot (same validity).
    states: Vec<LineState>,
    /// Valid lines currently held.
    live: usize,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            (config.num_sets() * config.ways() as u64) < u32::MAX as u64,
            "cache geometry exceeds the arena index range"
        );
        let sets = config.num_sets();
        let (set_mask, set_shift) = if sets.is_power_of_two() {
            (sets - 1, sets.trailing_zeros())
        } else {
            (0, 0)
        };
        SetAssocCache {
            config,
            ways: config.ways(),
            set_mask,
            set_shift,
            set_base: vec![0; config.num_sets() as usize],
            tags: Vec::new(),
            last_use: Vec::new(),
            states: Vec::new(),
            live: 0,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The arena block of `set`, materializing it on demand.
    #[inline]
    fn materialize(&mut self, set: usize) -> usize {
        match self.set_base[set] {
            0 => {
                let base = self.tags.len();
                self.tags.resize(base + self.ways, 0);
                self.last_use.resize(base + self.ways, 0);
                self.states.resize(base + self.ways, LineState::Invalid);
                self.set_base[set] = (base + 1) as u32;
                base
            }
            b => b as usize - 1,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Number of valid lines currently held.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no valid lines are held.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    #[inline]
    fn locate(&self, block: BlockAddr) -> (usize, u64) {
        let n = block.number();
        if self.set_mask != 0 {
            ((n & self.set_mask) as usize, n >> self.set_shift)
        } else {
            let sets = self.config.num_sets();
            ((n % sets) as usize, n / sets)
        }
    }

    /// The way slot of `tag` in `set`, if present (`None` without a
    /// scan when the set was never filled).
    #[inline]
    fn find(&self, set: usize, tag: u64) -> Option<usize> {
        let base = match self.set_base[set] {
            0 => return None,
            b => b as usize - 1,
        };
        self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == tag + 1)
            .map(|way| base + way)
    }

    /// Non-updating presence check.
    pub fn probe(&self, block: BlockAddr) -> Option<LineState> {
        let (set, tag) = self.locate(block);
        self.find(set, tag).map(|slot| self.states[slot])
    }

    /// LRU-updating lookup, counting a hit or miss.
    pub fn touch(&mut self, block: BlockAddr) -> Option<LineState> {
        let (set, tag) = self.locate(block);
        self.tick += 1;
        match self.find(set, tag) {
            Some(slot) => {
                self.last_use[slot] = self.tick;
                self.stats.hits += 1;
                Some(self.states[slot])
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or updates) `block` with `state`, returning the LRU
    /// victim if the set was full.
    ///
    /// # Panics
    ///
    /// Panics if `state` is `Invalid` — fill lines with a real state,
    /// use [`SetAssocCache::invalidate`] to remove them.
    pub fn fill(&mut self, block: BlockAddr, state: LineState) -> Option<EvictedLine> {
        assert!(state != LineState::Invalid, "cannot fill an Invalid line");
        let (set, tag) = self.locate(block);
        self.tick += 1;
        let tick = self.tick;
        if let Some(slot) = self.find(set, tag) {
            self.states[slot] = state;
            self.last_use[slot] = tick;
            return None;
        }
        let base = self.materialize(set);
        let set_tags = &self.tags[base..base + self.ways];
        let (slot, victim) = match set_tags.iter().position(|&t| t == 0) {
            Some(way) => {
                self.live += 1;
                (base + way, None)
            }
            None => {
                // Full set: evict the (unique) least-recently-used way.
                let way = self.last_use[base..base + self.ways]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &stamp)| stamp)
                    .map(|(way, _)| way)
                    .expect("ways > 0");
                let slot = base + way;
                let old_state = self.states[slot];
                self.stats.evictions += 1;
                if old_state.is_owner() {
                    self.stats.writebacks += 1;
                }
                let victim = EvictedLine {
                    block: BlockAddr::new(
                        (self.tags[slot] - 1) * self.config.num_sets() + set as u64,
                    ),
                    state: old_state,
                };
                (slot, Some(victim))
            }
        };
        self.tags[slot] = tag + 1;
        self.states[slot] = state;
        self.last_use[slot] = tick;
        victim
    }

    /// Changes the state of a present line (e.g. M→O on an external
    /// read, S→M on an upgrade). Returns `false` if the block is absent.
    ///
    /// # Panics
    ///
    /// Panics if `state` is `Invalid` — use
    /// [`SetAssocCache::invalidate`].
    pub fn set_state(&mut self, block: BlockAddr, state: LineState) -> bool {
        assert!(
            state != LineState::Invalid,
            "use invalidate() to drop lines"
        );
        let (set, tag) = self.locate(block);
        match self.find(set, tag) {
            Some(slot) => {
                self.states[slot] = state;
                true
            }
            None => false,
        }
    }

    /// Drops `block` (external invalidation), returning its old state.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<LineState> {
        let (set, tag) = self.locate(block);
        let slot = self.find(set, tag)?;
        self.tags[slot] = 0;
        self.live -= 1;
        Some(self.states[slot])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 8 blocks, 2-way, 64B: 4 sets.
        SetAssocCache::new(CacheConfig::new(512, 2, 64))
    }

    fn b(i: u64) -> BlockAddr {
        BlockAddr::new(i)
    }

    #[test]
    fn fill_then_probe() {
        let mut c = small();
        assert!(c.fill(b(1), LineState::Shared).is_none());
        assert_eq!(c.probe(b(1)), Some(LineState::Shared));
        assert_eq!(c.probe(b(2)), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn touch_counts_hits_and_misses() {
        let mut c = small();
        c.fill(b(1), LineState::Modified);
        assert_eq!(c.touch(b(1)), Some(LineState::Modified));
        assert_eq!(c.touch(b(2)), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Blocks 0, 4, 8 all map to set 0 (4 sets).
        c.fill(b(0), LineState::Shared);
        c.fill(b(4), LineState::Shared);
        c.touch(b(0)); // make 4 the LRU
        let victim = c.fill(b(8), LineState::Shared).expect("set overflow");
        assert_eq!(victim.block, b(4));
        assert_eq!(c.probe(b(0)), Some(LineState::Shared));
        assert_eq!(c.probe(b(4)), None);
    }

    #[test]
    fn eviction_of_dirty_line_counts_writeback() {
        let mut c = small();
        c.fill(b(0), LineState::Modified);
        c.fill(b(4), LineState::Shared);
        c.touch(b(4));
        let victim = c.fill(b(8), LineState::Shared).expect("evicts block 0");
        assert_eq!(victim.state, LineState::Modified);
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn refill_updates_state_without_eviction() {
        let mut c = small();
        c.fill(b(1), LineState::Shared);
        assert!(c.fill(b(1), LineState::Modified).is_none());
        assert_eq!(c.probe(b(1)), Some(LineState::Modified));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn set_state_and_invalidate() {
        let mut c = small();
        c.fill(b(1), LineState::Modified);
        assert!(c.set_state(b(1), LineState::Owned));
        assert_eq!(c.probe(b(1)), Some(LineState::Owned));
        assert_eq!(c.invalidate(b(1)), Some(LineState::Owned));
        assert_eq!(c.probe(b(1)), None);
        assert!(!c.set_state(b(1), LineState::Shared));
        assert_eq!(c.invalidate(b(1)), None);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut c = small();
        for i in 0..100 {
            c.fill(b(i), LineState::Shared);
        }
        assert!(c.len() <= 8);
    }

    #[test]
    fn victim_block_address_reconstruction() {
        let mut c = small();
        // Set index = block % 4; tag = block / 4. Check a high block.
        c.fill(b(1003), LineState::Shared);
        c.fill(b(1007), LineState::Shared);
        c.fill(b(1011), LineState::Shared);
        // 1003 % 4 == 3, 1007 % 4 == 3, 1011 % 4 == 3: same set, 2 ways.
        let evicted: Vec<_> = c.stats().evictions.to_string().chars().collect();
        assert!(!evicted.is_empty());
        assert_eq!(c.probe(b(1003)), None, "LRU of the set is gone");
        assert_eq!(c.probe(b(1007)), Some(LineState::Shared));
    }

    #[test]
    #[should_panic(expected = "Invalid")]
    fn fill_rejects_invalid() {
        let mut c = small();
        c.fill(b(0), LineState::Invalid);
    }
}
