//! The set-associative cache structure.

use serde::{Deserialize, Serialize};

use dsp_types::{BlockAddr, LineState};

use crate::config::CacheConfig;

/// A line pushed out by a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictedLine {
    /// The evicted block.
    pub block: BlockAddr,
    /// Its state at eviction (dirty states imply a writeback).
    pub state: LineState,
}

/// Hit/miss/eviction counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// `touch` calls that hit.
    pub hits: u64,
    /// `touch` calls that missed.
    pub misses: u64,
    /// Lines evicted by fills.
    pub evictions: u64,
    /// Evictions of dirty (M/O) lines — writebacks.
    pub writebacks: u64,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    state: LineState,
    last_use: u64,
}

/// A set-associative, LRU, write-back cache indexed by block address,
/// tracking a MOSI [`LineState`] per line.
///
/// This structure does not move data; it tracks presence and coherence
/// permission, which is what the timing simulator and the coherence
/// substrate need.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        SetAssocCache {
            config,
            sets: vec![Vec::new(); config.num_sets() as usize],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Number of valid lines currently held.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether no valid lines are held.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn locate(&self, block: BlockAddr) -> (usize, u64) {
        let sets = self.config.num_sets();
        ((block.number() % sets) as usize, block.number() / sets)
    }

    /// Non-updating presence check.
    pub fn probe(&self, block: BlockAddr) -> Option<LineState> {
        let (set, tag) = self.locate(block);
        self.sets[set]
            .iter()
            .find(|l| l.tag == tag)
            .map(|l| l.state)
    }

    /// LRU-updating lookup, counting a hit or miss.
    pub fn touch(&mut self, block: BlockAddr) -> Option<LineState> {
        let (set, tag) = self.locate(block);
        self.tick += 1;
        let tick = self.tick;
        match self.sets[set].iter_mut().find(|l| l.tag == tag) {
            Some(line) => {
                line.last_use = tick;
                self.stats.hits += 1;
                Some(line.state)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or updates) `block` with `state`, returning the LRU
    /// victim if the set was full.
    ///
    /// # Panics
    ///
    /// Panics if `state` is `Invalid` — fill lines with a real state,
    /// use [`SetAssocCache::invalidate`] to remove them.
    pub fn fill(&mut self, block: BlockAddr, state: LineState) -> Option<EvictedLine> {
        assert!(state != LineState::Invalid, "cannot fill an Invalid line");
        let (set_idx, tag) = self.locate(block);
        self.tick += 1;
        let tick = self.tick;
        let ways = self.config.ways();
        let sets = self.config.num_sets();
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.state = state;
            line.last_use = tick;
            return None;
        }
        let victim = if set.len() >= ways {
            let idx = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("full set is non-empty");
            let line = set.swap_remove(idx);
            self.stats.evictions += 1;
            if line.state.is_owner() {
                self.stats.writebacks += 1;
            }
            Some(EvictedLine {
                block: BlockAddr::new(line.tag * sets + set_idx as u64),
                state: line.state,
            })
        } else {
            None
        };
        set.push(Line {
            tag,
            state,
            last_use: tick,
        });
        victim
    }

    /// Changes the state of a present line (e.g. M→O on an external
    /// read, S→M on an upgrade). Returns `false` if the block is absent.
    ///
    /// # Panics
    ///
    /// Panics if `state` is `Invalid` — use
    /// [`SetAssocCache::invalidate`].
    pub fn set_state(&mut self, block: BlockAddr, state: LineState) -> bool {
        assert!(
            state != LineState::Invalid,
            "use invalidate() to drop lines"
        );
        let (set, tag) = self.locate(block);
        match self.sets[set].iter_mut().find(|l| l.tag == tag) {
            Some(line) => {
                line.state = state;
                true
            }
            None => false,
        }
    }

    /// Drops `block` (external invalidation), returning its old state.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<LineState> {
        let (set, tag) = self.locate(block);
        let set = &mut self.sets[set];
        let idx = set.iter().position(|l| l.tag == tag)?;
        Some(set.swap_remove(idx).state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 8 blocks, 2-way, 64B: 4 sets.
        SetAssocCache::new(CacheConfig::new(512, 2, 64))
    }

    fn b(i: u64) -> BlockAddr {
        BlockAddr::new(i)
    }

    #[test]
    fn fill_then_probe() {
        let mut c = small();
        assert!(c.fill(b(1), LineState::Shared).is_none());
        assert_eq!(c.probe(b(1)), Some(LineState::Shared));
        assert_eq!(c.probe(b(2)), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn touch_counts_hits_and_misses() {
        let mut c = small();
        c.fill(b(1), LineState::Modified);
        assert_eq!(c.touch(b(1)), Some(LineState::Modified));
        assert_eq!(c.touch(b(2)), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Blocks 0, 4, 8 all map to set 0 (4 sets).
        c.fill(b(0), LineState::Shared);
        c.fill(b(4), LineState::Shared);
        c.touch(b(0)); // make 4 the LRU
        let victim = c.fill(b(8), LineState::Shared).expect("set overflow");
        assert_eq!(victim.block, b(4));
        assert_eq!(c.probe(b(0)), Some(LineState::Shared));
        assert_eq!(c.probe(b(4)), None);
    }

    #[test]
    fn eviction_of_dirty_line_counts_writeback() {
        let mut c = small();
        c.fill(b(0), LineState::Modified);
        c.fill(b(4), LineState::Shared);
        c.touch(b(4));
        let victim = c.fill(b(8), LineState::Shared).expect("evicts block 0");
        assert_eq!(victim.state, LineState::Modified);
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn refill_updates_state_without_eviction() {
        let mut c = small();
        c.fill(b(1), LineState::Shared);
        assert!(c.fill(b(1), LineState::Modified).is_none());
        assert_eq!(c.probe(b(1)), Some(LineState::Modified));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn set_state_and_invalidate() {
        let mut c = small();
        c.fill(b(1), LineState::Modified);
        assert!(c.set_state(b(1), LineState::Owned));
        assert_eq!(c.probe(b(1)), Some(LineState::Owned));
        assert_eq!(c.invalidate(b(1)), Some(LineState::Owned));
        assert_eq!(c.probe(b(1)), None);
        assert!(!c.set_state(b(1), LineState::Shared));
        assert_eq!(c.invalidate(b(1)), None);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut c = small();
        for i in 0..100 {
            c.fill(b(i), LineState::Shared);
        }
        assert!(c.len() <= 8);
    }

    #[test]
    fn victim_block_address_reconstruction() {
        let mut c = small();
        // Set index = block % 4; tag = block / 4. Check a high block.
        c.fill(b(1003), LineState::Shared);
        c.fill(b(1007), LineState::Shared);
        c.fill(b(1011), LineState::Shared);
        // 1003 % 4 == 3, 1007 % 4 == 3, 1011 % 4 == 3: same set, 2 ways.
        let evicted: Vec<_> = c.stats().evictions.to_string().chars().collect();
        assert!(!evicted.is_empty());
        assert_eq!(c.probe(b(1003)), None, "LRU of the set is gone");
        assert_eq!(c.probe(b(1007)), Some(LineState::Shared));
    }

    #[test]
    #[should_panic(expected = "Invalid")]
    fn fill_rejects_invalid() {
        let mut c = small();
        c.fill(b(0), LineState::Invalid);
    }
}
