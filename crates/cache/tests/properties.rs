//! Property-based tests of the set-associative cache against a naive
//! reference model.

use std::collections::HashMap;

use proptest::prelude::*;

use dsp_cache::{CacheConfig, SetAssocCache};
use dsp_types::{BlockAddr, LineState};

/// A deliberately naive reference: a map plus explicit per-set LRU
/// lists, sharing no code with the real implementation.
struct ReferenceCache {
    ways: usize,
    sets: u64,
    lines: HashMap<u64, LineState>,
    lru: HashMap<u64, Vec<u64>>, // set -> blocks, most recent last
}

impl ReferenceCache {
    fn new(config: CacheConfig) -> Self {
        ReferenceCache {
            ways: config.ways(),
            sets: config.num_sets(),
            lines: HashMap::new(),
            lru: HashMap::new(),
        }
    }

    fn set_of(&self, block: u64) -> u64 {
        block % self.sets
    }

    fn touch(&mut self, block: u64) -> Option<LineState> {
        let state = self.lines.get(&block).copied();
        if state.is_some() {
            let list = self.lru.entry(self.set_of(block)).or_default();
            list.retain(|b| *b != block);
            list.push(block);
        }
        state
    }

    fn fill(&mut self, block: u64, state: LineState) -> Option<u64> {
        let set = self.set_of(block);
        #[allow(clippy::map_entry)] // the naive reference is deliberately naive
        if self.lines.contains_key(&block) {
            self.lines.insert(block, state);
            let list = self.lru.entry(set).or_default();
            list.retain(|b| *b != block);
            list.push(block);
            return None;
        }
        let list = self.lru.entry(set).or_default();
        let victim = if list.len() >= self.ways {
            let victim = list.remove(0);
            self.lines.remove(&victim);
            Some(victim)
        } else {
            None
        };
        self.lines.insert(block, state);
        list.push(block);
        victim
    }

    fn invalidate(&mut self, block: u64) -> Option<LineState> {
        let state = self.lines.remove(&block);
        if state.is_some() {
            self.lru
                .entry(self.set_of(block))
                .or_default()
                .retain(|b| *b != block);
        }
        state
    }
}

#[derive(Clone, Debug)]
enum Op {
    Touch(u64),
    Fill(u64, bool), // dirty?
    Invalidate(u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..64).prop_map(Op::Touch),
            (0u64..64, any::<bool>()).prop_map(|(b, d)| Op::Fill(b, d)),
            (0u64..64).prop_map(Op::Invalidate),
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The real cache behaves exactly like the reference model: same
    /// hits, same victims, same states.
    #[test]
    fn matches_reference_model(ops in ops()) {
        // 16 blocks, 2-way, 64B: small enough to stress replacement.
        let config = CacheConfig::new(1024, 2, 64);
        let mut real = SetAssocCache::new(config);
        let mut reference = ReferenceCache::new(config);
        for op in ops {
            match op {
                Op::Touch(b) => {
                    prop_assert_eq!(real.touch(BlockAddr::new(b)), reference.touch(b));
                }
                Op::Fill(b, dirty) => {
                    let state = if dirty { LineState::Modified } else { LineState::Shared };
                    let real_victim = real.fill(BlockAddr::new(b), state).map(|v| v.block.number());
                    let ref_victim = reference.fill(b, state);
                    prop_assert_eq!(real_victim, ref_victim);
                }
                Op::Invalidate(b) => {
                    prop_assert_eq!(real.invalidate(BlockAddr::new(b)), reference.invalidate(b));
                }
            }
            prop_assert_eq!(real.len(), reference.lines.len());
        }
    }

    /// The cache never exceeds its capacity and never holds duplicates.
    #[test]
    fn capacity_invariant(ops in ops()) {
        let config = CacheConfig::new(512, 4, 64); // 8 blocks
        let mut cache = SetAssocCache::new(config);
        for op in ops {
            match op {
                Op::Touch(b) => {
                    let _ = cache.touch(BlockAddr::new(b));
                }
                Op::Fill(b, dirty) => {
                    let state = if dirty { LineState::Owned } else { LineState::Shared };
                    let _ = cache.fill(BlockAddr::new(b), state);
                }
                Op::Invalidate(b) => {
                    let _ = cache.invalidate(BlockAddr::new(b));
                }
            }
            prop_assert!(cache.len() as u64 <= config.capacity_blocks());
        }
    }

    /// Writeback accounting: every evicted dirty line increments the
    /// writeback counter; clean evictions never do.
    #[test]
    fn writeback_accounting(fills in proptest::collection::vec((0u64..32, any::<bool>()), 1..200)) {
        let config = CacheConfig::new(512, 2, 64);
        let mut cache = SetAssocCache::new(config);
        let mut expected_wb = 0u64;
        for (b, dirty) in fills {
            let state = if dirty { LineState::Modified } else { LineState::Shared };
            if let Some(victim) = cache.fill(BlockAddr::new(b), state) {
                if victim.state.is_owner() {
                    expected_wb += 1;
                }
            }
        }
        prop_assert_eq!(cache.stats().writebacks, expected_wb);
    }
}
