//! The global MOSI coherence state tracker.

use serde::{Deserialize, Serialize};

use dsp_types::{BlockAddr, DestSet, NodeId, Owner, ReqType, SystemConfig};

use crate::miss::MissInfo;
use crate::table::BlockStateTable;

/// Directory-style state of one block: the owner and the sharer set.
///
/// `owner == Memory` with sharers = blocks in S only; `owner == Node(p)`
/// with empty sharers = M at `p`; with sharers = O at `p`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockState<const W: usize = 4> {
    /// Current owner (data supplier).
    pub owner: Owner,
    /// Nodes holding Shared copies (never includes the owner).
    pub sharers: DestSet<W>,
}

impl<const W: usize> BlockState<W> {
    /// All nodes holding any copy.
    pub fn holders(&self) -> DestSet<W> {
        match self.owner {
            Owner::Memory => self.sharers,
            Owner::Node(n) => self.sharers.with(n),
        }
    }
}

/// Kind of copy an eviction removed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Eviction {
    /// The evicted copy was dirty (M/O): a writeback to home occurred.
    Writeback,
    /// The evicted copy was clean (S): silently dropped.
    SilentDrop,
    /// The node held no copy; nothing happened.
    None,
}

/// Aggregate statistics maintained by the tracker.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackerStats {
    /// Total misses processed.
    pub misses: u64,
    /// Misses requiring at least one other cache to observe them.
    pub directory_indirections: u64,
    /// Misses whose data came from another cache.
    pub cache_to_cache: u64,
    /// Store misses where the requester still held a Shared copy.
    pub upgrades: u64,
    /// Implicit writebacks (a dirty block's owner missed on it again,
    /// implying its copy was evicted and written back).
    pub implicit_writebacks: u64,
}

/// Global MOSI coherence state over all blocks, evaluated at the
/// interconnect ordering point.
///
/// This is the protocol-independent substrate: the same transitions
/// underlie broadcast snooping, the directory protocol, and multicast
/// snooping (they differ in *who is told*, not in what the state
/// becomes). Blocks never touched are memory-owned with no sharers.
///
/// A processor that misses on a block it still "holds" according to the
/// tracker must have evicted its copy (the trace contains only misses),
/// so [`CoherenceTracker::access`] first reconciles the requester's
/// stale copy: a dirty copy is counted as an implicit writeback, a
/// shared copy as a silent drop — except that a store miss by a node
/// still recorded as a *sharer* is an **upgrade** (GETX from S), which
/// real protocols issue without data transfer.
#[derive(Clone, Debug)]
pub struct CoherenceTracker<const W: usize = 4> {
    num_nodes: usize,
    blocks: BlockStateTable<W>,
    stats: TrackerStats,
}

impl<const W: usize> CoherenceTracker<W> {
    /// Creates a tracker for systems described by `config`.
    pub fn new(config: &SystemConfig) -> Self {
        CoherenceTracker {
            num_nodes: config.num_nodes(),
            blocks: BlockStateTable::new(),
            stats: TrackerStats::default(),
        }
    }

    /// Creates a tracker presized for roughly `expected_blocks` distinct
    /// blocks.
    ///
    /// Identical behavior to [`CoherenceTracker::new`]; the block-state
    /// table just skips its growth rehashes while the estimate holds.
    /// The timing simulator passes its total miss count (an upper bound
    /// on distinct blocks), which removes every in-run rehash from the
    /// per-miss path.
    pub fn with_block_capacity(config: &SystemConfig, expected_blocks: usize) -> Self {
        CoherenceTracker {
            num_nodes: config.num_nodes(),
            blocks: BlockStateTable::with_capacity(expected_blocks),
            stats: TrackerStats::default(),
        }
    }

    /// Number of nodes in the system.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Current state of `block`.
    #[inline]
    pub fn state(&self, block: BlockAddr) -> BlockState<W> {
        self.blocks.get(block.number()).unwrap_or_default()
    }

    /// Number of blocks with recorded state.
    pub fn tracked_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> TrackerStats {
        self.stats
    }

    /// Classifies the miss without mutating state.
    ///
    /// The returned [`MissInfo`] reflects the post-reconciliation
    /// pre-state (see type docs): the requester's stale copy has been
    /// notionally evicted, except for the upgrade case.
    pub fn classify(&self, requester: NodeId, req: ReqType, block: BlockAddr) -> MissInfo<W> {
        let reconciled = reconcile(self.state(block), requester, req);
        self.info_for(reconciled, requester, req, block)
    }

    /// Builds the [`MissInfo`] for an already-reconciled pre-state.
    fn info_for(
        &self,
        (owner_before, sharers_before, was_upgrade): (Owner, DestSet<W>, bool),
        requester: NodeId,
        req: ReqType,
        block: BlockAddr,
    ) -> MissInfo<W> {
        MissInfo {
            block,
            requester,
            req,
            home: block.home(self.num_nodes),
            owner_before,
            sharers_before,
            was_upgrade,
        }
    }

    /// Classifies the miss and applies the MOSI transition.
    ///
    /// Runs one combined table lookup: the pre-state read and the
    /// post-transition write share a single probe of the block-state
    /// table.
    #[inline]
    pub fn access(&mut self, requester: NodeId, req: ReqType, block: BlockAddr) -> MissInfo<W> {
        let entry = self.blocks.get_or_insert_default(block.number());
        let stale = *entry;
        let reconciled = reconcile(stale, requester, req);
        let (owner_before, sharers_before, was_upgrade) = reconciled;
        match req {
            ReqType::GetShared => {
                // Owner keeps the block (M demotes to O); requester joins
                // the sharers. An owner identical to the requester was
                // reconciled to memory.
                let mut sharers = sharers_before.with(requester);
                if let Owner::Node(o) = owner_before {
                    sharers.remove(o);
                }
                entry.owner = owner_before;
                entry.sharers = sharers;
            }
            ReqType::GetExclusive => {
                entry.owner = Owner::Node(requester);
                entry.sharers = DestSet::empty();
            }
        }
        let info = self.info_for(reconciled, requester, req, block);
        // Stats for the reconciliation.
        if stale.owner == Owner::Node(requester) && !was_upgrade {
            self.stats.implicit_writebacks += 1;
        }
        self.stats.misses += 1;
        if info.is_directory_indirection() {
            self.stats.directory_indirections += 1;
        }
        if info.is_cache_to_cache() {
            self.stats.cache_to_cache += 1;
        }
        if info.was_upgrade {
            self.stats.upgrades += 1;
        }
        info
    }

    /// Explicitly evicts `node`'s copy of `block` (used by the timing
    /// simulator's finite caches).
    pub fn evict(&mut self, node: NodeId, block: BlockAddr) -> Eviction {
        match self.blocks.get_mut(block.number()) {
            None => Eviction::None,
            Some(entry) => {
                if entry.owner == Owner::Node(node) {
                    entry.owner = Owner::Memory;
                    Eviction::Writeback
                } else if entry.sharers.remove(node) {
                    Eviction::SilentDrop
                } else {
                    Eviction::None
                }
            }
        }
    }
}

/// Reconciles the requester's stale copy out of the pre-state.
///
/// Returns `(owner_before, sharers_before, was_upgrade)` where the
/// requester appears in neither owner nor sharers — except that a store
/// by a current sharer is flagged as an upgrade (its S copy is
/// invalidated by its own GETX, not evicted beforehand).
///
/// Shared with [`crate::ReferenceTracker`] so the fast tracker and the
/// reference model can only diverge in their state storage, never in
/// protocol semantics.
pub(crate) fn reconcile<const W: usize>(
    state: BlockState<W>,
    requester: NodeId,
    req: ReqType,
) -> (Owner, DestSet<W>, bool) {
    let mut owner = state.owner;
    let mut sharers = state.sharers;
    let mut was_upgrade = false;
    if owner == Owner::Node(requester) {
        // The requester's dirty copy must have been evicted + written back.
        owner = Owner::Memory;
    }
    if sharers.contains(requester) {
        if req.is_exclusive() {
            was_upgrade = true;
        }
        sharers.remove(requester);
    }
    (owner, sharers, was_upgrade)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_types::AccessKind;

    fn tracker() -> CoherenceTracker {
        CoherenceTracker::new(&SystemConfig::isca03())
    }
    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }
    fn b(i: u64) -> BlockAddr {
        BlockAddr::new(i)
    }

    #[test]
    fn cold_read_is_memory_sourced() {
        let mut t = tracker();
        let info = t.access(n(1), ReqType::GetShared, b(0));
        assert_eq!(info.owner_before, Owner::Memory);
        assert!(!info.is_directory_indirection());
        assert_eq!(t.state(b(0)).sharers, DestSet::single(n(1)));
    }

    #[test]
    fn write_then_read_demotes_to_owned() {
        let mut t = tracker();
        t.access(n(1), ReqType::GetExclusive, b(0));
        assert_eq!(t.state(b(0)).owner, Owner::Node(n(1)));
        let info = t.access(n(2), ReqType::GetShared, b(0));
        assert!(info.is_cache_to_cache());
        let s = t.state(b(0));
        assert_eq!(
            s.owner,
            Owner::Node(n(1)),
            "MOSI: owner keeps supplying data"
        );
        assert_eq!(s.sharers, DestSet::single(n(2)));
    }

    #[test]
    fn write_invalidates_everyone() {
        let mut t = tracker();
        t.access(n(1), ReqType::GetExclusive, b(0));
        t.access(n(2), ReqType::GetShared, b(0));
        t.access(n(3), ReqType::GetShared, b(0));
        let info = t.access(n(4), ReqType::GetExclusive, b(0));
        assert_eq!(
            info.required_observers(),
            DestSet::from_iter([n(1), n(2), n(3)])
        );
        let s = t.state(b(0));
        assert_eq!(s.owner, Owner::Node(n(4)));
        assert!(s.sharers.is_empty());
    }

    #[test]
    fn upgrade_detected_for_sharer_store() {
        let mut t = tracker();
        t.access(n(1), ReqType::GetShared, b(0));
        t.access(n(2), ReqType::GetShared, b(0));
        let info = t.access(n(1), ReqType::GetExclusive, b(0));
        assert!(info.was_upgrade);
        // The other sharer must be invalidated; memory owns, so this is
        // an invalidation-only indirection, not a cache-to-cache miss.
        assert_eq!(info.required_observers(), DestSet::single(n(2)));
        assert!(!info.is_cache_to_cache());
        assert_eq!(t.stats().upgrades, 1);
    }

    #[test]
    fn owner_re_miss_counts_implicit_writeback() {
        let mut t = tracker();
        t.access(n(1), ReqType::GetExclusive, b(0));
        let info = t.access(n(1), ReqType::GetShared, b(0));
        assert_eq!(
            info.owner_before,
            Owner::Memory,
            "owner's copy was written back"
        );
        assert!(!info.is_cache_to_cache());
        assert_eq!(t.stats().implicit_writebacks, 1);
    }

    #[test]
    fn classify_does_not_mutate() {
        let mut t = tracker();
        t.access(n(1), ReqType::GetExclusive, b(0));
        let before = t.state(b(0));
        let _ = t.classify(n(2), ReqType::GetExclusive, b(0));
        assert_eq!(t.state(b(0)), before);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn explicit_evictions() {
        let mut t = tracker();
        t.access(n(1), ReqType::GetExclusive, b(0));
        t.access(n(2), ReqType::GetShared, b(0));
        assert_eq!(t.evict(n(2), b(0)), Eviction::SilentDrop);
        assert_eq!(t.evict(n(1), b(0)), Eviction::Writeback);
        assert_eq!(t.evict(n(1), b(0)), Eviction::None);
        let s = t.state(b(0));
        assert_eq!(s.owner, Owner::Memory);
        assert!(s.sharers.is_empty());
    }

    #[test]
    fn invariant_owner_not_in_sharers() {
        // Exercise a random-ish access mix and check the invariant.
        let mut t = tracker();
        let kinds = [AccessKind::Load, AccessKind::Store];
        for i in 0..1000u64 {
            let node = n((i % 7) as usize);
            let kind = kinds[(i % 3 == 0) as usize];
            let block = b(i % 13);
            t.access(node, kind.request(), block);
            let s = t.state(block);
            if let Owner::Node(o) = s.owner {
                assert!(
                    !s.sharers.contains(o),
                    "owner {o} also in sharers {}",
                    s.sharers
                );
            }
        }
        assert_eq!(t.stats().misses, 1000);
        assert_eq!(t.tracked_blocks(), 13);
    }

    #[test]
    fn stats_count_indirections() {
        let mut t = tracker();
        t.access(n(1), ReqType::GetExclusive, b(0)); // cold: no indirection
        t.access(n(2), ReqType::GetShared, b(0)); // c2c
        t.access(n(3), ReqType::GetShared, b(0)); // c2c
        let s = t.stats();
        assert_eq!(s.misses, 3);
        assert_eq!(s.directory_indirections, 2);
        assert_eq!(s.cache_to_cache, 2);
    }

    #[test]
    fn holders_view() {
        let mut t = tracker();
        t.access(n(1), ReqType::GetExclusive, b(0));
        t.access(n(2), ReqType::GetShared, b(0));
        assert_eq!(t.state(b(0)).holders(), DestSet::from_iter([n(1), n(2)]));
    }
}
