//! Global MOSI coherence tracking and multicast-snooping semantics.
//!
//! All three protocols the paper evaluates — broadcast snooping, a
//! GS320-style directory, and multicast snooping — are MOSI
//! write-invalidate protocols over a *totally ordered* request network.
//! On such networks the outcome of a coherence request is a pure function
//! of the global owner/sharers state at the instant the interconnect
//! orders the request. This crate implements exactly that function:
//!
//! * [`CoherenceTracker`] maintains per-block owner + sharers state and
//!   classifies every miss ([`MissInfo`]): who must observe it, whether a
//!   directory protocol would indirect, whether it is a cache-to-cache
//!   transfer.
//! * [`multicast`] implements the multicast snooping sufficiency rule
//!   ("a destination set is sufficient if it includes the requester, the
//!   home node, the owner of the block, and, if the request is for write
//!   permission, all processors sharing the block") together with the
//!   reissue mechanism of Sorin et al. and per-protocol message
//!   accounting.
//!
//! # Example
//!
//! ```
//! use dsp_coherence::{CoherenceTracker, multicast};
//! use dsp_types::{BlockAddr, DestSet, NodeId, ReqType, SystemConfig};
//!
//! let config = SystemConfig::isca03();
//! let mut tracker: CoherenceTracker = CoherenceTracker::new(&config);
//! let block = BlockAddr::new(42);
//!
//! // P1 writes, then P2 reads: a cache-to-cache transfer.
//! tracker.access(NodeId::new(1), ReqType::GetExclusive, block);
//! let info = tracker.access(NodeId::new(2), ReqType::GetShared, block);
//! assert!(info.is_cache_to_cache());
//! assert!(info.is_directory_indirection());
//!
//! // A multicast that includes the owner succeeds without reissue.
//! let predicted = info.minimal_set().with(NodeId::new(1));
//! let outcome = multicast::evaluate(&info, predicted);
//! assert!(outcome.sufficient_first);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod miss;
pub mod multicast;
mod reference;
mod table;
mod tracker;

pub use miss::{MissClass, MissInfo};
pub use multicast::{LatencyClass, MulticastOutcome};
pub use reference::ReferenceTracker;
pub use table::BlockStateTable;
pub use tracker::{BlockState, CoherenceTracker, Eviction, TrackerStats};
