//! Multicast snooping semantics and per-protocol message accounting.
//!
//! Multicast snooping (Bilir et al.) sends each coherence request to a
//! *predicted* destination set over a totally ordered interconnect. The
//! home node's directory checks sufficiency; an insufficient request is
//! reissued by the directory with a corrected destination set (the
//! optimization of Sorin et al.), which in a race-free (trace-driven)
//! setting always succeeds on the second attempt.
//!
//! ## Message counting conventions
//!
//! Every endpoint delivery of a request-class message counts as one
//! message, matching the paper's "request messages per miss" axis
//! (requests, forwards, and retries):
//!
//! * **Broadcast snooping**: the request reaches all `n - 1` other nodes.
//! * **Directory**: one message to the home node, plus one forward /
//!   invalidation per required observer.
//! * **Multicast snooping**: the initial multicast reaches every node of
//!   the (requester+home augmented) predicted set except the requester
//!   itself; a reissue reaches the corrected set (owner, sharers, and the
//!   requester, which must see its own retried request).
//!
//! With these conventions a *perfect* predictor uses exactly the
//! directory protocol's message count — which is why the paper draws the
//! directory bandwidth as the vertical dashed asymptote in Figures 5/6 —
//! and an *always-broadcast* predictor uses exactly snooping's.

use serde::{Deserialize, Serialize};

use dsp_types::DestSet;

use crate::miss::MissInfo;

/// Coarse latency class of a serviced miss, mapped to concrete
/// nanosecond paths by the timing simulator (paper Table 4 derivations:
/// 180 ns memory, 112 ns direct cache-to-cache, 242 ns indirected).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LatencyClass {
    /// Data from memory without indirection (~180 ns).
    Memory,
    /// Data from another cache, reached directly (~112 ns).
    CacheDirect,
    /// Data from another cache after a directory indirection or a
    /// multicast reissue (~242 ns).
    CacheIndirect,
    /// Data from memory, but completion was delayed by a reissue (~242
    /// ns class).
    MemoryIndirect,
}

impl LatencyClass {
    /// Whether this class suffered an indirection.
    pub fn is_indirect(self) -> bool {
        matches!(
            self,
            LatencyClass::CacheIndirect | LatencyClass::MemoryIndirect
        )
    }
}

/// Outcome of servicing one miss under some protocol: message cost and
/// latency class. Produced by [`evaluate`], [`directory`], and
/// [`snooping`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MulticastOutcome {
    /// Whether the first destination set was sufficient (always true for
    /// snooping; conventionally true for the directory protocol, whose
    /// "prediction" is resolved by forwarding, not retrying).
    pub sufficient_first: bool,
    /// Number of request transmissions (1 = no reissue, 2 = one reissue).
    pub attempts: u32,
    /// Endpoint deliveries of request-class messages (request + forward
    /// + retry), the unit of Figures 5 and 6.
    pub request_messages: u64,
    /// Latency class for the timing model.
    pub latency: LatencyClass,
    /// Whether this miss counts as an *indirection* in the figure-5
    /// sense: a 3-hop (cache-sourced, forwarded) request under the
    /// directory protocol, or a directory-retried request under
    /// multicast snooping.
    pub indirection: bool,
}

impl MulticastOutcome {
    /// Request-class traffic in bytes (8 B per request-class message).
    pub fn request_bytes(&self) -> u64 {
        self.request_messages * 8
    }
}

/// Evaluates multicast snooping for one miss, given the predictor's
/// destination set (the requester and home are implicitly added, as the
/// protocol requires).
///
/// # Example
///
/// ```
/// use dsp_coherence::{multicast, CoherenceTracker};
/// use dsp_types::{BlockAddr, DestSet, NodeId, ReqType, SystemConfig};
///
/// let mut t: CoherenceTracker = CoherenceTracker::new(&SystemConfig::isca03());
/// t.access(NodeId::new(1), ReqType::GetExclusive, BlockAddr::new(5));
/// let info = t.classify(NodeId::new(2), ReqType::GetShared, BlockAddr::new(5));
///
/// // Minimal set misses the owner: reissue needed.
/// let bad = multicast::evaluate(&info, info.minimal_set());
/// assert!(!bad.sufficient_first);
/// assert_eq!(bad.attempts, 2);
/// assert!(bad.indirection);
/// ```
pub fn evaluate<const W: usize>(info: &MissInfo<W>, predicted: DestSet<W>) -> MulticastOutcome {
    let initial = predicted | info.minimal_set();
    let sufficient_first = info.is_sufficient(initial);
    // Deliveries of the initial multicast: everyone but the requester.
    let mut request_messages = (initial.len() - 1) as u64;
    let (attempts, latency) = if sufficient_first {
        let latency = if info.is_cache_to_cache() {
            LatencyClass::CacheDirect
        } else {
            LatencyClass::Memory
        };
        (1, latency)
    } else {
        // The home directory reissues with the corrected set: owner,
        // sharers (for writes), and the requester. The home originates
        // the reissue, so it is not an endpoint of it.
        let reissue_set = info.sufficient_set().without(info.home);
        request_messages += reissue_set.len() as u64;
        let latency = if info.is_cache_to_cache() {
            LatencyClass::CacheIndirect
        } else {
            LatencyClass::MemoryIndirect
        };
        (2, latency)
    };
    MulticastOutcome {
        sufficient_first,
        attempts,
        request_messages,
        latency,
        indirection: !sufficient_first,
    }
}

/// Evaluates the GS320-style directory protocol for one miss: one
/// request to home plus one forward/invalidation per required observer;
/// cache-sourced misses indirect (3 hops).
pub fn directory<const W: usize>(info: &MissInfo<W>) -> MulticastOutcome {
    let required = info.required_observers();
    let latency = if info.is_cache_to_cache() {
        LatencyClass::CacheIndirect
    } else {
        LatencyClass::Memory
    };
    MulticastOutcome {
        sufficient_first: true,
        attempts: 1,
        request_messages: 1 + required.len() as u64,
        latency,
        indirection: info.is_directory_indirection(),
    }
}

/// Evaluates a *predictive directory* protocol (in the style of Acacio
/// et al., the hybrid the paper's introduction cites): the request goes
/// to the home **and** to a predicted set; if the current owner was in
/// the predicted set it replies directly, converting the 3-hop
/// indirection into a 2-hop transfer. Invalidation fan-out is unchanged
/// (the home still forwards invalidations to sharers on writes).
///
/// Message accounting: the initial request reaches home plus the extra
/// predicted nodes; the home's forwards cover whichever required
/// observers the prediction missed.
pub fn directory_predicted<const W: usize>(
    info: &MissInfo<W>,
    predicted: DestSet<W>,
) -> MulticastOutcome {
    // Deliveries: the request to home (counted unconditionally, as in
    // [`directory`]), the extra predicted nodes, and home's forwards to
    // whichever required observers the prediction missed. Observers the
    // prediction reached directly need no forward, so a prediction that
    // lands inside the required set matches the plain directory's
    // message count exactly — never beats it.
    let extra = predicted.without(info.requester).without(info.home);
    let required = info.required_observers();
    let request_messages = 1 + extra.len() as u64 + (required - extra).len() as u64;
    let owner_hit = match info.owner_before {
        dsp_types::Owner::Node(owner) => owner == info.home || extra.contains(owner),
        dsp_types::Owner::Memory => true,
    };
    let latency = if info.is_cache_to_cache() {
        if owner_hit {
            LatencyClass::CacheDirect
        } else {
            LatencyClass::CacheIndirect
        }
    } else {
        LatencyClass::Memory
    };
    MulticastOutcome {
        sufficient_first: owner_hit,
        attempts: 1,
        request_messages,
        latency,
        indirection: info.is_cache_to_cache() && !owner_hit,
    }
}

/// Evaluates broadcast snooping for one miss on an `n`-node system:
/// every request reaches all other nodes and never indirects.
pub fn snooping<const W: usize>(info: &MissInfo<W>, num_nodes: usize) -> MulticastOutcome {
    let latency = if info.is_cache_to_cache() {
        LatencyClass::CacheDirect
    } else {
        LatencyClass::Memory
    };
    MulticastOutcome {
        sufficient_first: true,
        attempts: 1,
        request_messages: (num_nodes - 1) as u64,
        latency,
        indirection: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_types::{BlockAddr, NodeId, Owner, ReqType};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn info(req: ReqType, owner: Owner, sharers: DestSet) -> MissInfo {
        MissInfo {
            block: BlockAddr::new(160), // home = P10 on 16 nodes
            requester: n(0),
            req,
            home: BlockAddr::new(160).home(16),
            owner_before: owner,
            sharers_before: sharers,
            was_upgrade: false,
        }
    }

    #[test]
    fn sufficient_multicast_counts_initial_only() {
        let i = info(ReqType::GetShared, Owner::Node(n(5)), DestSet::empty());
        let predicted = i.minimal_set().with(n(5));
        let out = evaluate(&i, predicted);
        assert!(out.sufficient_first);
        assert_eq!(out.attempts, 1);
        // Deliveries: home + P5 (requester excluded).
        assert_eq!(out.request_messages, 2);
        assert_eq!(out.latency, LatencyClass::CacheDirect);
        assert!(!out.indirection);
        assert_eq!(out.request_bytes(), 16);
    }

    #[test]
    fn insufficient_multicast_pays_reissue() {
        let i = info(ReqType::GetShared, Owner::Node(n(5)), DestSet::empty());
        let out = evaluate(&i, DestSet::empty()); // minimal set is implicit
        assert!(!out.sufficient_first);
        assert_eq!(out.attempts, 2);
        // Initial: home (1). Reissue: owner P5 + requester P0 (2).
        assert_eq!(out.request_messages, 3);
        assert_eq!(out.latency, LatencyClass::CacheIndirect);
        assert!(out.indirection);
    }

    #[test]
    fn memory_sourced_minimal_is_always_sufficient() {
        let i = info(ReqType::GetShared, Owner::Memory, DestSet::empty());
        let out = evaluate(&i, DestSet::empty());
        assert!(out.sufficient_first);
        assert_eq!(out.request_messages, 1); // just the home
        assert_eq!(out.latency, LatencyClass::Memory);
    }

    #[test]
    fn write_needs_all_sharers() {
        let sharers = DestSet::from_iter([n(2), n(3)]);
        let i = info(ReqType::GetExclusive, Owner::Memory, sharers);
        // Predicting only one sharer is insufficient.
        let partial = i.minimal_set().with(n(2));
        let out = evaluate(&i, partial);
        assert!(!out.sufficient_first);
        assert_eq!(out.latency, LatencyClass::MemoryIndirect);
        // Predicting both is sufficient.
        let full = partial.with(n(3));
        let out = evaluate(&i, full);
        assert!(out.sufficient_first);
        assert_eq!(out.attempts, 1);
    }

    #[test]
    fn broadcast_prediction_never_retries() {
        let sharers = DestSet::from_iter([n(2), n(3), n(9)]);
        let i = info(ReqType::GetExclusive, Owner::Node(n(7)), sharers);
        let out = evaluate(&i, DestSet::broadcast(16));
        assert!(out.sufficient_first);
        assert_eq!(out.request_messages, 15);
    }

    #[test]
    fn directory_message_count_is_one_plus_observers() {
        let sharers = DestSet::from_iter([n(2), n(3)]);
        let i = info(ReqType::GetExclusive, Owner::Node(n(7)), sharers);
        let out = directory(&i);
        assert_eq!(out.request_messages, 4); // home + owner + 2 sharers
        assert_eq!(out.latency, LatencyClass::CacheIndirect);
        assert!(out.indirection);
    }

    #[test]
    fn directory_memory_sourced_is_two_hop() {
        let i = info(ReqType::GetShared, Owner::Memory, DestSet::empty());
        let out = directory(&i);
        assert_eq!(out.request_messages, 1);
        assert_eq!(out.latency, LatencyClass::Memory);
        assert!(!out.indirection);
    }

    #[test]
    fn snooping_always_broadcasts_never_indirects() {
        let i = info(ReqType::GetShared, Owner::Node(n(5)), DestSet::empty());
        let out = snooping(&i, 16);
        assert_eq!(out.request_messages, 15);
        assert_eq!(out.latency, LatencyClass::CacheDirect);
        assert!(!out.indirection);
    }

    #[test]
    fn perfect_prediction_matches_directory_bandwidth() {
        // The property behind the dashed line in Figure 5.
        let sharers = DestSet::from_iter([n(2), n(3)]);
        for (req, owner) in [
            (ReqType::GetShared, Owner::Node(n(7))),
            (ReqType::GetExclusive, Owner::Node(n(7))),
            (ReqType::GetShared, Owner::Memory),
            (ReqType::GetExclusive, Owner::Memory),
        ] {
            let i = info(req, owner, sharers);
            let perfect = evaluate(&i, i.sufficient_set());
            let dir = directory(&i);
            assert_eq!(
                perfect.request_messages, dir.request_messages,
                "{req} {owner:?}"
            );
            assert!(perfect.sufficient_first);
        }
    }

    #[test]
    fn predictive_directory_converts_3hop_to_2hop() {
        let i = info(ReqType::GetShared, Owner::Node(n(5)), DestSet::empty());
        // Prediction covers the owner: direct transfer, no indirection.
        let hit = directory_predicted(&i, DestSet::single(n(5)));
        assert_eq!(hit.latency, LatencyClass::CacheDirect);
        assert!(!hit.indirection);
        // Prediction misses: home forwards, classic 3-hop.
        let miss = directory_predicted(&i, DestSet::single(n(9)));
        assert_eq!(miss.latency, LatencyClass::CacheIndirect);
        assert!(miss.indirection);
        // The miss pays both the wasted prediction and the forward.
        assert!(miss.request_messages > hit.request_messages - 1);
    }

    #[test]
    fn predictive_directory_memory_sourced_is_never_indirect() {
        let i = info(
            ReqType::GetExclusive,
            Owner::Memory,
            DestSet::from_iter([n(2), n(3)]),
        );
        let out = directory_predicted(&i, DestSet::empty());
        assert!(!out.indirection);
        assert_eq!(out.latency, LatencyClass::Memory);
        // home + the two missed invalidations.
        assert_eq!(out.request_messages, 3);
    }

    #[test]
    fn latency_class_indirect_flags() {
        assert!(LatencyClass::CacheIndirect.is_indirect());
        assert!(LatencyClass::MemoryIndirect.is_indirect());
        assert!(!LatencyClass::Memory.is_indirect());
        assert!(!LatencyClass::CacheDirect.is_indirect());
    }
}
