//! An open-addressing block-number → [`BlockState`] table.
//!
//! [`CoherenceTracker`](crate::CoherenceTracker) performs exactly one
//! state lookup per simulated miss, so the table behind it *is* the
//! simulator's hot path. `std::collections::HashMap` pays for SipHash's
//! DoS resistance on every probe; block numbers are not
//! attacker-controlled, so this table swaps it for a two-instruction
//! multiply-xor mixer over a power-of-two slot array with linear
//! probing. Entries are never removed (evictions only rewrite a block's
//! state), which keeps probe chains tombstone-free.

use crate::tracker::BlockState;

/// Multiplicative mixer constant (2^64 / φ, the same odd constant
/// FxHash-style hashers use). Block numbers are sequential-ish, so the
/// high-bit avalanche of one multiply plus a fold of the high half into
/// the low half spreads them across the table.
const MIX: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix(key: u64) -> u64 {
    let h = key.wrapping_mul(MIX);
    h ^ (h >> 32)
}

/// One slot: the key, its state, and whether the slot is occupied.
///
/// An explicit flag (rather than a reserved sentinel key) keeps every
/// `u64` usable as a block number.
#[derive(Clone, Copy, Debug)]
struct Slot {
    key: u64,
    used: bool,
    state: BlockState,
}

const EMPTY_SLOT: Slot = Slot {
    key: 0,
    used: false,
    state: BlockState {
        owner: dsp_types::Owner::Memory,
        sharers: dsp_types::DestSet::empty(),
    },
};

/// Open-addressing hash table mapping block numbers to [`BlockState`].
///
/// Power-of-two capacity, linear probing, grows at ¾ load. Absent keys
/// read as the default state (memory-owned, no sharers), matching the
/// tracker's "blocks never touched are memory-owned" semantics.
///
/// # Example
///
/// ```
/// use dsp_coherence::{BlockState, BlockStateTable};
///
/// let mut table = BlockStateTable::new();
/// assert_eq!(table.get(42), None);
/// *table.get_or_insert_default(42) = BlockState::default();
/// assert_eq!(table.get(42), Some(BlockState::default()));
/// assert_eq!(table.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct BlockStateTable {
    slots: Vec<Slot>,
    len: usize,
}

impl BlockStateTable {
    /// Creates an empty table (no slots are allocated until the first
    /// insertion).
    pub fn new() -> Self {
        BlockStateTable {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Number of blocks with recorded state.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no block has recorded state.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Index of `key`'s slot: either the slot holding it or the first
    /// empty slot of its probe chain. Requires a non-empty slot array
    /// with at least one free slot (guaranteed by the ¾ load cap).
    #[inline]
    fn probe(&self, key: u64) -> usize {
        let mask = self.slots.len() - 1;
        let mut idx = mix(key) as usize & mask;
        loop {
            let slot = &self.slots[idx];
            if !slot.used || slot.key == key {
                return idx;
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Current state of `key`, if it was ever inserted.
    #[inline]
    pub fn get(&self, key: u64) -> Option<BlockState> {
        if self.slots.is_empty() {
            return None;
        }
        let slot = &self.slots[self.probe(key)];
        slot.used.then_some(slot.state)
    }

    /// Mutable state of `key`, if it was ever inserted.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut BlockState> {
        if self.slots.is_empty() {
            return None;
        }
        let idx = self.probe(key);
        let slot = &mut self.slots[idx];
        slot.used.then_some(&mut slot.state)
    }

    /// The combined lookup: returns `key`'s state, inserting the default
    /// (memory-owned, no sharers) first if absent. One hash, one probe
    /// chain — this is the only table operation on the per-miss path.
    #[inline]
    pub fn get_or_insert_default(&mut self, key: u64) -> &mut BlockState {
        // Grow at ¾ load, *before* probing, so the probe index stays
        // valid and a free slot always terminates the chain.
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let idx = self.probe(key);
        let slot = &mut self.slots[idx];
        if !slot.used {
            slot.key = key;
            slot.used = true;
            slot.state = BlockState::default();
            self.len += 1;
        }
        &mut slot.state
    }

    /// Iterates over `(key, state)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, BlockState)> + '_ {
        self.slots
            .iter()
            .filter(|s| s.used)
            .map(|s| (s.key, s.state))
    }

    /// Doubles the slot array (from a 1024-slot floor, so building a
    /// typical multi-thousand-block working set pays only a handful of
    /// rehashes) and reinserts every occupied slot.
    #[cold]
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(1024);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; new_cap]);
        let mask = new_cap - 1;
        for slot in old.into_iter().filter(|s| s.used) {
            let mut idx = mix(slot.key) as usize & mask;
            while self.slots[idx].used {
                idx = (idx + 1) & mask;
            }
            self.slots[idx] = slot;
        }
    }
}

impl Default for BlockStateTable {
    fn default() -> Self {
        BlockStateTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_types::{DestSet, NodeId, Owner};

    fn state(owner: usize, sharer_bits: u64) -> BlockState {
        BlockState {
            owner: Owner::Node(NodeId::new(owner)),
            sharers: DestSet::from_bits(sharer_bits),
        }
    }

    #[test]
    fn empty_table_reads_none() {
        let t = BlockStateTable::new();
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(u64::MAX), None);
        assert!(t.is_empty());
    }

    #[test]
    fn get_mut_on_empty_is_none() {
        let mut t = BlockStateTable::new();
        assert_eq!(t.get_mut(9), None);
    }

    #[test]
    fn insert_then_read_back() {
        let mut t = BlockStateTable::new();
        *t.get_or_insert_default(7) = state(3, 0b1010);
        assert_eq!(t.get(7), Some(state(3, 0b1010)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn insert_is_idempotent_and_preserves_state() {
        let mut t = BlockStateTable::new();
        *t.get_or_insert_default(7) = state(3, 0b1010);
        // A second combined lookup must not reset the state.
        assert_eq!(*t.get_or_insert_default(7), state(3, 0b1010));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn extreme_keys_are_usable() {
        let mut t = BlockStateTable::new();
        for key in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63] {
            *t.get_or_insert_default(key) = state((key % 16) as usize, key & 0xff);
        }
        for key in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63] {
            assert_eq!(t.get(key), Some(state((key % 16) as usize, key & 0xff)));
        }
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn growth_preserves_all_entries() {
        let mut t = BlockStateTable::new();
        // Sequential and stride-poisoned keys, well past several grows.
        for i in 0..10_000u64 {
            *t.get_or_insert_default(i << 6) = state((i % 16) as usize, i);
        }
        assert_eq!(t.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(t.get(i << 6), Some(state((i % 16) as usize, i)));
        }
        assert_eq!(t.get(10_000 << 6), None);
    }

    #[test]
    fn iter_visits_every_entry_once() {
        let mut t = BlockStateTable::new();
        for i in 0..100u64 {
            *t.get_or_insert_default(i) = state((i % 16) as usize, 0);
        }
        let mut keys: Vec<u64> = t.iter().map(|(k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn matches_std_hashmap_on_mixed_operations() {
        use std::collections::HashMap;
        let mut table = BlockStateTable::new();
        let mut reference: HashMap<u64, BlockState> = HashMap::new();
        // Deterministic pseudo-random walk over a colliding key space.
        let mut x = 0x1234_5678_9abc_def0u64;
        for step in 0..5_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (x >> 33) % 512; // force reuse and collisions
            match step % 3 {
                0 => {
                    let s = state((step % 16) as usize, x & 0xffff);
                    *table.get_or_insert_default(key) = s;
                    *reference.entry(key).or_default() = s;
                }
                1 => {
                    assert_eq!(table.get(key), reference.get(&key).copied());
                }
                _ => {
                    let ours = table.get_mut(key).map(|s| {
                        s.sharers.insert(NodeId::new((step % 16) as usize));
                        *s
                    });
                    let theirs = reference.get_mut(&key).map(|s| {
                        s.sharers.insert(NodeId::new((step % 16) as usize));
                        *s
                    });
                    assert_eq!(ours, theirs);
                }
            }
            assert_eq!(table.len(), reference.len());
        }
    }
}
