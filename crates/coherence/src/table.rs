//! The block-number → [`BlockState`] table.
//!
//! [`CoherenceTracker`](crate::CoherenceTracker) performs exactly one
//! state lookup per simulated miss, so the table behind it *is* the
//! simulator's hot path. `std::collections::HashMap` pays for SipHash's
//! DoS resistance on every probe; block numbers are not
//! attacker-controlled, so this table is a thin domain wrapper over
//! [`dsp_types::OpenTable`] — the workspace's shared open-addressing
//! core (FxHash-style mixer from [`dsp_types::hash`], power-of-two
//! linear probing, growth at ¾ load). Entries are never removed
//! (evictions only rewrite a block's state), which keeps probe chains
//! tombstone-free.

use dsp_types::OpenTable;

use crate::tracker::BlockState;

/// Open-addressing hash table mapping block numbers to [`BlockState`].
///
/// Absent keys read as the default state (memory-owned, no sharers),
/// matching the tracker's "blocks never touched are memory-owned"
/// semantics.
///
/// # Example
///
/// ```
/// use dsp_coherence::{BlockState, BlockStateTable};
///
/// let mut table: BlockStateTable = BlockStateTable::new();
/// assert_eq!(table.get(42), None);
/// *table.get_or_insert_default(42) = BlockState::default();
/// assert_eq!(table.get(42), Some(BlockState::default()));
/// assert_eq!(table.len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BlockStateTable<const W: usize = 4> {
    table: OpenTable<BlockState<W>>,
}

impl<const W: usize> BlockStateTable<W> {
    /// Creates an empty table (no slots are allocated until the first
    /// insertion).
    pub fn new() -> Self {
        BlockStateTable {
            table: OpenTable::new(),
        }
    }

    /// Creates an empty table presized for `expected` distinct blocks
    /// (see [`OpenTable::with_capacity`]): a run that stays within the
    /// estimate never rehashes.
    pub fn with_capacity(expected: usize) -> Self {
        BlockStateTable {
            table: OpenTable::with_capacity(expected),
        }
    }

    /// Number of blocks with recorded state.
    #[inline]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether no block has recorded state.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Current state of `key`, if it was ever inserted.
    #[inline]
    pub fn get(&self, key: u64) -> Option<BlockState<W>> {
        self.table.get(key).copied()
    }

    /// Mutable state of `key`, if it was ever inserted.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut BlockState<W>> {
        self.table.get_mut(key)
    }

    /// The combined lookup: returns `key`'s state, inserting the default
    /// (memory-owned, no sharers) first if absent. One hash, one probe
    /// chain — this is the only table operation on the per-miss path.
    #[inline]
    pub fn get_or_insert_default(&mut self, key: u64) -> &mut BlockState<W> {
        self.table.get_or_insert_default(key).0
    }

    /// Iterates over `(key, state)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, BlockState<W>)> + '_ {
        self.table.iter().map(|(k, s)| (k, *s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_types::{DestSet, NodeId, Owner};

    fn state(owner: usize, sharer_bits: u64) -> BlockState {
        BlockState {
            owner: Owner::Node(NodeId::new(owner)),
            sharers: DestSet::from_bits(sharer_bits),
        }
    }

    #[test]
    fn empty_table_reads_none() {
        let t: BlockStateTable = BlockStateTable::new();
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(u64::MAX), None);
        assert!(t.is_empty());
    }

    #[test]
    fn get_mut_on_empty_is_none() {
        let mut t: BlockStateTable = BlockStateTable::new();
        assert_eq!(t.get_mut(9), None);
    }

    #[test]
    fn insert_then_read_back() {
        let mut t: BlockStateTable = BlockStateTable::new();
        *t.get_or_insert_default(7) = state(3, 0b1010);
        assert_eq!(t.get(7), Some(state(3, 0b1010)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn insert_is_idempotent_and_preserves_state() {
        let mut t: BlockStateTable = BlockStateTable::new();
        *t.get_or_insert_default(7) = state(3, 0b1010);
        // A second combined lookup must not reset the state.
        assert_eq!(*t.get_or_insert_default(7), state(3, 0b1010));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn extreme_keys_are_usable() {
        let mut t: BlockStateTable = BlockStateTable::new();
        for key in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63] {
            *t.get_or_insert_default(key) = state((key % 16) as usize, key & 0xff);
        }
        for key in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63] {
            assert_eq!(t.get(key), Some(state((key % 16) as usize, key & 0xff)));
        }
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn growth_preserves_all_entries() {
        let mut t: BlockStateTable = BlockStateTable::new();
        // Sequential and stride-poisoned keys, well past several grows.
        for i in 0..10_000u64 {
            *t.get_or_insert_default(i << 6) = state((i % 16) as usize, i);
        }
        assert_eq!(t.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(t.get(i << 6), Some(state((i % 16) as usize, i)));
        }
        assert_eq!(t.get(10_000 << 6), None);
    }

    #[test]
    fn iter_visits_every_entry_once() {
        let mut t: BlockStateTable = BlockStateTable::new();
        for i in 0..100u64 {
            *t.get_or_insert_default(i) = state((i % 16) as usize, 0);
        }
        let mut keys: Vec<u64> = t.iter().map(|(k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn matches_std_hashmap_on_mixed_operations() {
        use std::collections::HashMap;
        let mut table: BlockStateTable = BlockStateTable::new();
        let mut reference: HashMap<u64, BlockState> = HashMap::new();
        // Deterministic pseudo-random walk over a colliding key space.
        let mut x = 0x1234_5678_9abc_def0u64;
        for step in 0..5_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (x >> 33) % 512; // force reuse and collisions
            match step % 3 {
                0 => {
                    let s = state((step % 16) as usize, x & 0xffff);
                    *table.get_or_insert_default(key) = s;
                    *reference.entry(key).or_default() = s;
                }
                1 => {
                    assert_eq!(table.get(key), reference.get(&key).copied());
                }
                _ => {
                    let ours = table.get_mut(key).map(|s| {
                        s.sharers.insert(NodeId::new((step % 16) as usize));
                        *s
                    });
                    let theirs = reference.get_mut(&key).map(|s| {
                        s.sharers.insert(NodeId::new((step % 16) as usize));
                        *s
                    });
                    assert_eq!(ours, theirs);
                }
            }
            assert_eq!(table.len(), reference.len());
        }
    }
}
