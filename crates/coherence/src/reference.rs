//! The seed `HashMap`-backed tracker, kept as the semantic reference.
//!
//! [`ReferenceTracker`] preserves the original implementation of
//! [`CoherenceTracker`](crate::CoherenceTracker) byte for byte in
//! behavior: block state in a `std::collections::HashMap` (SipHash) and
//! the original classify → state → entry probe sequence in `access`.
//! It exists for two consumers:
//!
//! * the property tests, which assert the fast open-addressing tracker
//!   is observationally equivalent to this model across arbitrary
//!   access/evict sequences, and
//! * the `repro hotpath-bench` driver and the Criterion benches, which
//!   record the fast tracker's speedup over this baseline in
//!   `BENCH_hotpath.json`.
//!
//! Protocol semantics (the `reconcile` function) are shared with the
//! fast tracker, so the two can only diverge in state storage — which
//! is exactly the part the equivalence tests pin down.

use std::collections::HashMap;

use dsp_types::{BlockAddr, DestSet, NodeId, Owner, ReqType, SystemConfig};

use crate::miss::MissInfo;
use crate::tracker::{reconcile, BlockState, Eviction, TrackerStats};

/// `HashMap`-backed MOSI tracker with the seed lookup sequence.
///
/// See [`CoherenceTracker`](crate::CoherenceTracker) for the semantics;
/// this type mirrors its API.
#[derive(Clone, Debug)]
pub struct ReferenceTracker<const W: usize = 4> {
    num_nodes: usize,
    blocks: HashMap<u64, BlockState<W>>,
    stats: TrackerStats,
}

impl<const W: usize> ReferenceTracker<W> {
    /// Creates a tracker for systems described by `config`.
    pub fn new(config: &SystemConfig) -> Self {
        ReferenceTracker {
            num_nodes: config.num_nodes(),
            blocks: HashMap::new(),
            stats: TrackerStats::default(),
        }
    }

    /// Number of nodes in the system.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Current state of `block`.
    pub fn state(&self, block: BlockAddr) -> BlockState<W> {
        self.blocks
            .get(&block.number())
            .copied()
            .unwrap_or_default()
    }

    /// Number of blocks with recorded state.
    pub fn tracked_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> TrackerStats {
        self.stats
    }

    /// Classifies the miss without mutating state.
    pub fn classify(&self, requester: NodeId, req: ReqType, block: BlockAddr) -> MissInfo<W> {
        let state = self.state(block);
        let (owner_before, sharers_before, was_upgrade) = reconcile(state, requester, req);
        MissInfo {
            block,
            requester,
            req,
            home: block.home(self.num_nodes),
            owner_before,
            sharers_before,
            was_upgrade,
        }
    }

    /// Classifies the miss and applies the MOSI transition, probing the
    /// map three times (classify → state → entry) exactly as the seed
    /// implementation did.
    pub fn access(&mut self, requester: NodeId, req: ReqType, block: BlockAddr) -> MissInfo<W> {
        let info = self.classify(requester, req, block);
        let stale = self.state(block);
        if stale.owner == Owner::Node(requester) && !info.was_upgrade {
            self.stats.implicit_writebacks += 1;
        }
        let entry = self.blocks.entry(block.number()).or_default();
        match req {
            ReqType::GetShared => {
                entry.owner = info.owner_before;
                entry.sharers = info.sharers_before.with(requester);
                if let Owner::Node(o) = entry.owner {
                    entry.sharers.remove(o);
                }
            }
            ReqType::GetExclusive => {
                entry.owner = Owner::Node(requester);
                entry.sharers = DestSet::empty();
            }
        }
        self.stats.misses += 1;
        if info.is_directory_indirection() {
            self.stats.directory_indirections += 1;
        }
        if info.is_cache_to_cache() {
            self.stats.cache_to_cache += 1;
        }
        if info.was_upgrade {
            self.stats.upgrades += 1;
        }
        info
    }

    /// Explicitly evicts `node`'s copy of `block`.
    pub fn evict(&mut self, node: NodeId, block: BlockAddr) -> Eviction {
        match self.blocks.get_mut(&block.number()) {
            None => Eviction::None,
            Some(entry) => {
                if entry.owner == Owner::Node(node) {
                    entry.owner = Owner::Memory;
                    Eviction::Writeback
                } else if entry.sharers.remove(node) {
                    Eviction::SilentDrop
                } else {
                    Eviction::None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_documented_semantics() {
        let mut t: ReferenceTracker = ReferenceTracker::new(&SystemConfig::isca03());
        let b = BlockAddr::new(0);
        t.access(NodeId::new(1), ReqType::GetExclusive, b);
        let info = t.access(NodeId::new(2), ReqType::GetShared, b);
        assert!(info.is_cache_to_cache());
        assert_eq!(t.state(b).owner, Owner::Node(NodeId::new(1)));
        assert_eq!(t.state(b).sharers, DestSet::single(NodeId::new(2)));
        assert_eq!(t.stats().misses, 2);
        assert_eq!(t.tracked_blocks(), 1);
        assert_eq!(t.num_nodes(), 16);
    }
}
