//! Miss classification.

use std::fmt;

use serde::{Deserialize, Serialize};

use dsp_types::{BlockAddr, DestSet, NodeId, Owner, ReqType};

/// Everything known about one L2 miss at the instant the interconnect
/// orders it: the pre-transition coherence state plus the request.
///
/// Produced by [`crate::CoherenceTracker::access`]; consumed by the
/// predictor evaluation (sufficiency checking, Figure 5/6), the sharing
/// characterization (Figure 2), and the timing simulator (latency
/// classes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissInfo<const W: usize = 4> {
    /// The missing block.
    pub block: BlockAddr,
    /// The node that missed.
    pub requester: NodeId,
    /// Shared (load) or Exclusive (store) request.
    pub req: ReqType,
    /// Home node of the block (its memory/directory slice).
    pub home: NodeId,
    /// Owner at ordering time (after the requester's own stale copy, if
    /// any, has been reconciled away — a miss implies the requester no
    /// longer holds usable permission).
    pub owner_before: Owner,
    /// Sharers at ordering time, excluding the requester.
    pub sharers_before: DestSet<W>,
    /// Whether the requester still held a Shared copy (a store upgrade).
    pub was_upgrade: bool,
}

impl<const W: usize> MissInfo<W> {
    /// The *other* processors whose caches must observe this request:
    /// the cache owner (if any), plus — for exclusive requests — every
    /// sharer.
    ///
    /// The size of this set is the quantity histogrammed in the paper's
    /// Figure 2; it is empty exactly when memory alone can satisfy the
    /// miss.
    pub fn required_observers(&self) -> DestSet<W> {
        let mut set = DestSet::empty();
        if let Owner::Node(owner) = self.owner_before {
            if owner != self.requester {
                set.insert(owner);
            }
        }
        if self.req.is_exclusive() {
            set |= self.sharers_before;
        }
        set.without(self.requester)
    }

    /// Whether a directory protocol must forward this request to at
    /// least one other processor (a "directory indirection", Table 2
    /// rightmost column).
    ///
    /// Equivalent to `!self.required_observers().is_empty()` but
    /// decided without materializing the set — this runs once per miss
    /// in the tracker's statistics path.
    pub fn is_directory_indirection(&self) -> bool {
        if self.is_cache_to_cache() {
            return true;
        }
        self.req.is_exclusive() && !self.sharers_before.without(self.requester).is_empty()
    }

    /// Whether the data response comes from another cache rather than
    /// memory (a cache-to-cache / dirty / 3-hop miss).
    pub fn is_cache_to_cache(&self) -> bool {
        matches!(self.owner_before, Owner::Node(n) if n != self.requester)
    }

    /// The minimal destination set: requester plus home node. This is
    /// what multicast snooping always includes, and what a predictor
    /// falls back to on a miss in its table.
    pub fn minimal_set(&self) -> DestSet<W> {
        DestSet::single(self.requester).with(self.home)
    }

    /// The smallest *sufficient* destination set: minimal set plus all
    /// required observers.
    pub fn sufficient_set(&self) -> DestSet<W> {
        self.minimal_set() | self.required_observers()
    }

    /// Multicast snooping's sufficiency rule: `predicted` (already
    /// including the implicit requester + home) succeeds iff it covers
    /// owner and, for writes, all sharers.
    pub fn is_sufficient(&self, predicted: DestSet<W>) -> bool {
        predicted.is_superset(self.sufficient_set())
    }

    /// Coarse classification of this miss.
    pub fn class(&self) -> MissClass {
        if self.is_cache_to_cache() {
            MissClass::CacheToCache
        } else if self.is_directory_indirection() {
            MissClass::InvalidationOnly
        } else {
            MissClass::MemorySourced
        }
    }
}

impl<const W: usize> fmt::Display for MissInfo<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} owner={} sharers={} required={}",
            self.requester,
            self.req,
            self.block,
            self.owner_before,
            self.sharers_before,
            self.required_observers()
        )
    }
}

/// Coarse miss classes, for characterization reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MissClass {
    /// Memory alone satisfies the miss; no other cache involved.
    MemorySourced,
    /// Memory supplies data but sharers must be invalidated (exclusive
    /// request on a memory-owned block with sharers).
    InvalidationOnly,
    /// Another cache owns the block and supplies the data.
    CacheToCache,
}

impl fmt::Display for MissClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MissClass::MemorySourced => "memory",
            MissClass::InvalidationOnly => "invalidation-only",
            MissClass::CacheToCache => "cache-to-cache",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn info(req: ReqType, owner: Owner, sharers: DestSet) -> MissInfo {
        // Default width in tests.
        MissInfo {
            block: BlockAddr::new(7),
            requester: n(0),
            req,
            home: n(3),
            owner_before: owner,
            sharers_before: sharers,
            was_upgrade: false,
        }
    }

    #[test]
    fn memory_sourced_read_requires_no_observers() {
        let i = info(ReqType::GetShared, Owner::Memory, DestSet::empty());
        assert!(i.required_observers().is_empty());
        assert!(!i.is_directory_indirection());
        assert!(!i.is_cache_to_cache());
        assert_eq!(i.class(), MissClass::MemorySourced);
    }

    #[test]
    fn read_from_cache_owner_requires_owner() {
        let i = info(ReqType::GetShared, Owner::Node(n(5)), DestSet::single(n(6)));
        // Sharers do not need to observe a read; the owner does.
        assert_eq!(i.required_observers(), DestSet::single(n(5)));
        assert!(i.is_cache_to_cache());
        assert_eq!(i.class(), MissClass::CacheToCache);
    }

    #[test]
    fn write_requires_owner_and_sharers() {
        let sharers = DestSet::from_iter([n(6), n(7)]);
        let i = info(ReqType::GetExclusive, Owner::Node(n(5)), sharers);
        assert_eq!(i.required_observers(), sharers.with(n(5)));
        assert!(i.is_directory_indirection());
    }

    #[test]
    fn upgrade_with_sharers_is_invalidation_only() {
        let i = info(
            ReqType::GetExclusive,
            Owner::Memory,
            DestSet::from_iter([n(2), n(9)]),
        );
        assert_eq!(i.class(), MissClass::InvalidationOnly);
        assert_eq!(i.required_observers().len(), 2);
        assert!(!i.is_cache_to_cache());
        assert!(i.is_directory_indirection());
    }

    #[test]
    fn requester_never_counts_as_observer() {
        let i = info(
            ReqType::GetExclusive,
            Owner::Node(n(0)),
            DestSet::single(n(0)),
        );
        assert!(i.required_observers().is_empty());
    }

    #[test]
    fn minimal_and_sufficient_sets() {
        let i = info(ReqType::GetShared, Owner::Node(n(5)), DestSet::empty());
        assert_eq!(i.minimal_set(), DestSet::from_iter([n(0), n(3)]));
        assert_eq!(i.sufficient_set(), DestSet::from_iter([n(0), n(3), n(5)]));
        assert!(!i.is_sufficient(i.minimal_set()));
        assert!(i.is_sufficient(i.sufficient_set()));
        assert!(i.is_sufficient(DestSet::broadcast(16)));
    }

    #[test]
    fn display_mentions_required() {
        let i = info(ReqType::GetShared, Owner::Node(n(5)), DestSet::empty());
        assert!(i.to_string().contains("required={P5}"));
        assert_eq!(MissClass::CacheToCache.to_string(), "cache-to-cache");
    }
}
