//! Property-based tests of the MOSI tracker and the multicast
//! sufficiency rules.

use proptest::prelude::*;

use dsp_coherence::{multicast, BlockStateTable, CoherenceTracker, ReferenceTracker};
use dsp_types::{BlockAddr, DestSet, NodeId, Owner, ReqType, SystemConfig};

const NODES: usize = 16;

#[derive(Clone, Debug)]
struct Access {
    node: usize,
    block: u64,
    exclusive: bool,
}

fn accesses() -> impl Strategy<Value = Vec<Access>> {
    proptest::collection::vec(
        (0usize..NODES, 0u64..32, any::<bool>()).prop_map(|(node, block, exclusive)| Access {
            node,
            block,
            exclusive,
        }),
        1..300,
    )
}

fn req(exclusive: bool) -> ReqType {
    if exclusive {
        ReqType::GetExclusive
    } else {
        ReqType::GetShared
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The tracker never produces a state in which the owner is also a
    /// sharer, nor a Modified owner coexisting with sharers after an
    /// exclusive request.
    #[test]
    fn owner_never_in_sharers(ops in accesses()) {
        let mut t: CoherenceTracker = CoherenceTracker::new(&SystemConfig::isca03());
        for op in &ops {
            t.access(NodeId::new(op.node), req(op.exclusive), BlockAddr::new(op.block));
            let s = t.state(BlockAddr::new(op.block));
            if let Owner::Node(o) = s.owner {
                prop_assert!(!s.sharers.contains(o), "owner {o} in sharers {}", s.sharers);
            }
            prop_assert!(s.sharers.is_subset(DestSet::broadcast(NODES)));
        }
    }

    /// After an exclusive access, the requester is the sole holder.
    #[test]
    fn exclusive_access_leaves_sole_owner(ops in accesses(), node in 0usize..NODES, block in 0u64..32) {
        let mut t: CoherenceTracker = CoherenceTracker::new(&SystemConfig::isca03());
        for op in &ops {
            t.access(NodeId::new(op.node), req(op.exclusive), BlockAddr::new(op.block));
        }
        t.access(NodeId::new(node), ReqType::GetExclusive, BlockAddr::new(block));
        let s = t.state(BlockAddr::new(block));
        prop_assert_eq!(s.owner, Owner::Node(NodeId::new(node)));
        prop_assert!(s.sharers.is_empty());
    }

    /// After a shared access, the requester can read the block.
    #[test]
    fn shared_access_grants_readability(ops in accesses(), node in 0usize..NODES, block in 0u64..32) {
        let mut t: CoherenceTracker = CoherenceTracker::new(&SystemConfig::isca03());
        for op in &ops {
            t.access(NodeId::new(op.node), req(op.exclusive), BlockAddr::new(op.block));
        }
        t.access(NodeId::new(node), ReqType::GetShared, BlockAddr::new(block));
        let s = t.state(BlockAddr::new(block));
        prop_assert!(s.holders().contains(NodeId::new(node)));
    }

    /// Sufficiency agrees with a brute-force oracle: a set is
    /// sufficient iff it contains requester, home, owner (if cached),
    /// and (for writes) every sharer.
    #[test]
    fn sufficiency_matches_oracle(ops in accesses(), mask in any::<u16>(), node in 0usize..NODES, block in 0u64..32, exclusive in any::<bool>()) {
        let mut t: CoherenceTracker = CoherenceTracker::new(&SystemConfig::isca03());
        for op in &ops {
            t.access(NodeId::new(op.node), req(op.exclusive), BlockAddr::new(op.block));
        }
        let info = t.classify(NodeId::new(node), req(exclusive), BlockAddr::new(block));
        let candidate = DestSet::from_bits(mask as u64);
        // Oracle.
        let mut needed = DestSet::single(info.requester).with(info.home);
        if let Owner::Node(o) = info.owner_before {
            if o != info.requester {
                needed.insert(o);
            }
        }
        if exclusive {
            needed |= info.sharers_before.without(info.requester);
        }
        prop_assert_eq!(info.is_sufficient(candidate), candidate.is_superset(needed));
    }

    /// Multicast accounting invariants: broadcast predictions never
    /// retry; any sufficient prediction costs at least the directory's
    /// message count; insufficiency always costs strictly more.
    #[test]
    fn multicast_accounting_invariants(ops in accesses(), mask in any::<u16>(), node in 0usize..NODES, block in 0u64..32, exclusive in any::<bool>()) {
        let mut t: CoherenceTracker = CoherenceTracker::new(&SystemConfig::isca03());
        for op in &ops {
            t.access(NodeId::new(op.node), req(op.exclusive), BlockAddr::new(op.block));
        }
        let info = t.classify(NodeId::new(node), req(exclusive), BlockAddr::new(block));
        let dir = multicast::directory(&info);
        let snoop = multicast::snooping(&info, NODES);
        prop_assert!(!snoop.indirection);
        prop_assert_eq!(snoop.request_messages, (NODES - 1) as u64);

        let predicted = DestSet::from_bits(mask as u64) & DestSet::broadcast(NODES);
        let out = multicast::evaluate(&info, predicted);
        if out.sufficient_first {
            prop_assert!(out.request_messages >= dir.request_messages);
            prop_assert_eq!(out.attempts, 1);
        } else {
            prop_assert_eq!(out.attempts, 2);
            prop_assert!(out.indirection);
            // The reissue reaches at least the requester.
            prop_assert!(out.request_messages >= 2);
        }
        // The broadcast prediction is always sufficient.
        let full = multicast::evaluate(&info, DestSet::broadcast(NODES));
        prop_assert!(full.sufficient_first);
    }

    /// The predictive-directory hybrid never beats the plain directory
    /// on messages while always matching or beating it on indirections.
    #[test]
    fn predictive_directory_invariants(ops in accesses(), mask in any::<u16>(), node in 0usize..NODES, block in 0u64..32, exclusive in any::<bool>()) {
        let mut t: CoherenceTracker = CoherenceTracker::new(&SystemConfig::isca03());
        for op in &ops {
            t.access(NodeId::new(op.node), req(op.exclusive), BlockAddr::new(op.block));
        }
        let info = t.classify(NodeId::new(node), req(exclusive), BlockAddr::new(block));
        let dir = multicast::directory(&info);
        let predicted = DestSet::from_bits(mask as u64) & DestSet::broadcast(NODES);
        let hybrid = multicast::directory_predicted(&info, predicted);
        prop_assert!(hybrid.request_messages >= dir.request_messages);
        prop_assert!(u64::from(hybrid.indirection) <= u64::from(dir.latency == multicast::LatencyClass::CacheIndirect));
        prop_assert_eq!(hybrid.attempts, 1);
    }

    /// The open-addressing tracker is observationally equivalent to the
    /// seed HashMap-backed reference across arbitrary interleaved
    /// access/evict sequences: identical `MissInfo` per access,
    /// identical eviction outcomes, identical per-block state,
    /// statistics, and tracked-block counts throughout.
    #[test]
    fn fast_tracker_matches_hashmap_reference(
        ops in proptest::collection::vec(
            (0usize..NODES, 0u64..48, any::<bool>(), any::<bool>()),
            1..400,
        ),
    ) {
        let config = SystemConfig::isca03();
        let mut fast: CoherenceTracker = CoherenceTracker::new(&config);
        let mut reference = ReferenceTracker::new(&config);
        for &(node, block, exclusive, evict) in &ops {
            let (node, block) = (NodeId::new(node), BlockAddr::new(block));
            if evict {
                prop_assert_eq!(fast.evict(node, block), reference.evict(node, block));
            } else {
                let a = fast.access(node, req(exclusive), block);
                let b = reference.access(node, req(exclusive), block);
                prop_assert_eq!(a, b);
                prop_assert_eq!(
                    fast.classify(node, req(exclusive), block),
                    reference.classify(node, req(exclusive), block)
                );
            }
            prop_assert_eq!(fast.state(block), reference.state(block));
            prop_assert_eq!(fast.stats(), reference.stats());
            prop_assert_eq!(fast.tracked_blocks(), reference.tracked_blocks());
        }
    }

    /// The raw block-state table agrees with `std::collections::HashMap`
    /// under adversarial keys (0, `u64::MAX`, stride patterns that
    /// collide after masking) across mixed reads, combined
    /// lookup-inserts, and in-place mutation.
    #[test]
    fn block_state_table_matches_hashmap(
        keys in proptest::collection::vec(
            prop_oneof![
                Just(0u64),
                Just(u64::MAX),
                any::<u64>(),
                (0u64..64).prop_map(|k| k << 32),
                (0u64..64).prop_map(|k| k.wrapping_mul(1024)),
            ],
            1..300,
        ),
    ) {
        let mut table = BlockStateTable::new();
        let mut reference = std::collections::HashMap::new();
        for (i, &key) in keys.iter().enumerate() {
            match i % 3 {
                0 => {
                    let node = NodeId::new(i % NODES);
                    table.get_or_insert_default(key).sharers.insert(node);
                    reference
                        .entry(key)
                        .or_insert_with(dsp_coherence::BlockState::default)
                        .sharers
                        .insert(node);
                }
                1 => {
                    prop_assert_eq!(table.get(key), reference.get(&key).copied());
                }
                _ => {
                    let node = NodeId::new(i % NODES);
                    let a = table.get_mut(key).map(|s| { s.owner = Owner::Node(node); *s });
                    let b = reference.get_mut(&key).map(|s| { s.owner = Owner::Node(node); *s });
                    prop_assert_eq!(a, b);
                }
            }
            prop_assert_eq!(table.len(), reference.len());
        }
        for (&key, &state) in &reference {
            prop_assert_eq!(table.get(key), Some(state));
        }
        let mut ours: Vec<(u64, dsp_coherence::BlockState)> = table.iter().collect();
        let mut theirs: Vec<(u64, dsp_coherence::BlockState)> =
            reference.iter().map(|(&k, &s)| (k, s)).collect();
        ours.sort_by_key(|(k, _)| *k);
        theirs.sort_by_key(|(k, _)| *k);
        prop_assert_eq!(ours, theirs);
    }

    /// Eviction is idempotent and leaves the node without a copy.
    #[test]
    fn eviction_removes_holder(ops in accesses(), node in 0usize..NODES, block in 0u64..32) {
        let mut t: CoherenceTracker = CoherenceTracker::new(&SystemConfig::isca03());
        for op in &ops {
            t.access(NodeId::new(op.node), req(op.exclusive), BlockAddr::new(op.block));
        }
        t.evict(NodeId::new(node), BlockAddr::new(block));
        let s = t.state(BlockAddr::new(block));
        prop_assert!(!s.holders().contains(NodeId::new(node)));
        prop_assert_eq!(t.evict(NodeId::new(node), BlockAddr::new(block)), dsp_coherence::Eviction::None);
    }
}
