//! Property tests pinning `DestSet<1>` to `DestSet<4>`: any set whose
//! members fit in 64 nodes must behave identically at either width.
//!
//! The narrow width is a pure performance representation — one word
//! instead of four — so every observable operation (membership, set
//! algebra, iteration order, formatting, serde) must agree with the
//! wide default once the widths are reconciled via [`DestSet::resize`].
//! Raw serialized forms intentionally differ (a one-word vs four-word
//! array), so serde agreement is asserted through resize round-trips.

use proptest::prelude::*;

use dsp_types::{DestSet, NodeId};
use serde::{Deserialize, Serialize};

/// Builds the same set at both widths from one member list.
fn both(members: &[usize]) -> (DestSet<1>, DestSet<4>) {
    let mut narrow = DestSet::<1>::empty();
    let mut wide = DestSet::<4>::empty();
    for &m in members {
        narrow.insert(NodeId::new(m));
        wide.insert(NodeId::new(m));
    }
    (narrow, wide)
}

fn members() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..64, 0..48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Cardinality, emptiness, membership, and the first element agree.
    #[test]
    fn observers_agree(ms in members()) {
        let (narrow, wide) = both(&ms);
        prop_assert_eq!(narrow.len(), wide.len());
        prop_assert_eq!(narrow.is_empty(), wide.is_empty());
        prop_assert_eq!(narrow.first(), wide.first());
        for node in 0..64 {
            prop_assert_eq!(
                narrow.contains(NodeId::new(node)),
                wide.contains(NodeId::new(node)),
                "membership of node {} diverged", node
            );
        }
    }

    /// Iteration yields the same nodes in the same order.
    #[test]
    fn iteration_agrees(ms in members()) {
        let (narrow, wide) = both(&ms);
        let a: Vec<NodeId> = narrow.iter().collect();
        let b: Vec<NodeId> = wide.iter().collect();
        prop_assert_eq!(a, b);
    }

    /// Set algebra commutes with widening: op at width 1, then resize,
    /// equals resize, then op at width 4. Covers union, intersection,
    /// difference, complement, and the superset predicate.
    #[test]
    fn algebra_commutes_with_resize(xs in members(), ys in members()) {
        let (nx, wx) = both(&xs);
        let (ny, wy) = both(&ys);
        prop_assert_eq!((nx | ny).resize::<4>(), wx | wy);
        prop_assert_eq!(nx.intersection(ny).resize::<4>(), wx.intersection(wy));
        prop_assert_eq!((nx - ny).resize::<4>(), wx - wy);
        prop_assert_eq!(nx.complement(64).resize::<4>(), wx.complement(64));
        prop_assert_eq!(nx.is_superset(ny), wx.is_superset(wy));
        prop_assert_eq!(nx.is_subset(ny), wx.is_subset(wy));
    }

    /// Widening then narrowing is the identity for 64-node sets, and
    /// both directions preserve the low word exactly.
    #[test]
    fn resize_round_trips(ms in members()) {
        let (narrow, wide) = both(&ms);
        prop_assert_eq!(narrow.resize::<4>(), wide);
        prop_assert_eq!(wide.resize::<1>(), narrow);
        prop_assert_eq!(narrow.resize::<4>().resize::<1>(), narrow);
        prop_assert_eq!(narrow.bits(), wide.bits());
    }

    /// Display and Debug render identically: formatting is
    /// member-driven, so width never leaks into text output.
    #[test]
    fn formatting_agrees(ms in members()) {
        let (narrow, wide) = both(&ms);
        prop_assert_eq!(narrow.to_string(), wide.to_string());
        prop_assert_eq!(format!("{narrow:?}"), format!("{wide:?}"));
    }

    /// Serde round-trips at each width, and the serialized forms agree
    /// once widths are reconciled via resize (the raw forms differ by
    /// construction: a one-word vs a four-word array).
    #[test]
    fn serde_agrees_via_resize(ms in members()) {
        let (narrow, wide) = both(&ms);
        prop_assert_eq!(
            DestSet::<1>::from_value(&narrow.to_value()).unwrap(),
            narrow
        );
        prop_assert_eq!(
            DestSet::<4>::from_value(&wide.to_value()).unwrap(),
            wide
        );
        prop_assert_eq!(narrow.resize::<4>().to_value(), wide.to_value());
        prop_assert_eq!(wide.resize::<1>().to_value(), narrow.to_value());
    }
}
