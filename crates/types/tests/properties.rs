//! Property-based tests of the DestSet bit-set algebra.

use proptest::prelude::*;

use dsp_types::{DestSet, NodeId, MAX_NODES};

fn set() -> impl Strategy<Value = DestSet> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())
        .prop_map(|(a, b, c, d)| DestSet::from_words([a, b, c, d]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn union_is_commutative_and_associative(a in set(), b in set(), c in set()) {
        prop_assert_eq!(a | b, b | a);
        prop_assert_eq!((a | b) | c, a | (b | c));
    }

    #[test]
    fn intersection_distributes_over_union(a in set(), b in set(), c in set()) {
        prop_assert_eq!(a & (b | c), (a & b) | (a & c));
    }

    #[test]
    fn difference_laws(a in set(), b in set()) {
        prop_assert_eq!(a - b, a & b.complement(MAX_NODES));
        prop_assert!(((a - b) & b).is_empty());
        prop_assert_eq!((a - b) | (a & b), a);
    }

    #[test]
    fn subset_superset_duality(a in set(), b in set()) {
        prop_assert_eq!(a.is_subset(b), b.is_superset(a));
        prop_assert!(a.is_subset(a | b));
        prop_assert!((a & b).is_subset(a));
        if a.is_subset(b) && b.is_subset(a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn len_is_cardinality(a in set(), b in set()) {
        prop_assert_eq!(a.len() + b.len(), (a | b).len() + (a & b).len());
    }

    #[test]
    fn insert_remove_inverse(a in set(), node in 0usize..MAX_NODES) {
        let node = NodeId::new(node);
        let mut s = a;
        let had = s.contains(node);
        s.insert(node);
        prop_assert!(s.contains(node));
        s.remove(node);
        prop_assert!(!s.contains(node));
        if !had {
            prop_assert_eq!(s, a);
        }
    }

    #[test]
    fn iteration_reconstructs_the_set(a in set()) {
        let rebuilt: DestSet = a.iter().collect();
        prop_assert_eq!(rebuilt, a);
        prop_assert_eq!(a.iter().count(), a.len());
        // Iteration is strictly ascending.
        let ids: Vec<usize> = a.iter().map(NodeId::index).collect();
        for pair in ids.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn first_is_minimum(a in set()) {
        match a.first() {
            None => prop_assert!(a.is_empty()),
            Some(min) => {
                prop_assert!(a.contains(min));
                for node in a {
                    prop_assert!(min.index() <= node.index());
                }
            }
        }
    }

    #[test]
    fn broadcast_is_universe(n in 1usize..=MAX_NODES, a in set()) {
        let all = DestSet::broadcast(n);
        let clipped = a & all;
        prop_assert!(clipped.is_subset(all));
        prop_assert_eq!(clipped | all, all);
        prop_assert_eq!(all.len(), n);
    }
}
