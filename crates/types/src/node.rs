//! Processor/node identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Maximum number of nodes a [`crate::DestSet`] can represent.
///
/// Destination sets are stored as a fixed four-word (`4 × u64`)
/// bitmask, so the stack supports systems of up to 256 processor/memory
/// nodes — enough headroom for the 128- and 256-node scaling studies.
/// The paper evaluates 16-node systems.
pub const MAX_NODES: usize = 256;

/// Identifier of a processor/memory node.
///
/// In the target systems each node contains a processor core, its cache
/// hierarchy, a cache controller, and a memory controller for a slice of
/// the globally shared memory; a single id names all of them.
///
/// # Example
///
/// ```
/// use dsp_types::NodeId;
///
/// let n = NodeId::new(5);
/// assert_eq!(n.index(), 5);
/// assert_eq!(n.to_string(), "P5");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(u8);

impl NodeId {
    /// Creates a node id from a zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAX_NODES`.
    #[inline]
    pub fn new(index: usize) -> Self {
        assert!(
            index < MAX_NODES,
            "node index {index} out of range (max {MAX_NODES})"
        );
        NodeId(index as u8)
    }

    /// Creates a node id without the range check.
    ///
    /// Every `u8` is a valid index now that [`MAX_NODES`] is 256; the
    /// "unchecked" name survives from the 64-node era and marks the
    /// hot-path constructors that skip the `usize` range assert.
    #[inline]
    pub const fn new_unchecked(index: u8) -> Self {
        NodeId(index)
    }

    /// Zero-based index of this node.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterator over all node ids of an `n`-node system: `P0, P1, ..`.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_NODES`.
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> + Clone {
        assert!(
            n <= MAX_NODES,
            "system size {n} out of range (max {MAX_NODES})"
        );
        (0..n).map(|i| NodeId(i as u8))
    }
}

impl Default for NodeId {
    /// Node `P0`, so plain-data aggregates containing a `NodeId` (such
    /// as inline arrival buffers) can be eagerly initialized.
    fn default() -> Self {
        NodeId(0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        for i in 0..MAX_NODES {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = NodeId::new(MAX_NODES);
    }

    #[test]
    fn all_yields_n_distinct_ids() {
        let ids: Vec<_> = NodeId::all(16).collect();
        assert_eq!(ids.len(), 16);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    fn display_is_p_prefixed() {
        assert_eq!(NodeId::new(0).to_string(), "P0");
        assert_eq!(NodeId::new(15).to_string(), "P15");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(2) < NodeId::new(10));
    }
}
