//! MOSI coherence line states and block ownership.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::NodeId;

/// Per-cache-line MOSI coherence state.
///
/// All three protocols evaluated by the paper (broadcast snooping,
/// GS320-style directory, multicast snooping) are MOSI write-invalidate
/// protocols:
///
/// * `Modified` — this cache owns the only, dirty copy.
/// * `Owned` — this cache owns a dirty copy but other caches may hold
///   `Shared` copies; the owner (not memory) supplies data.
/// * `Shared` — read-only copy; some other cache or memory owns the block.
/// * `Invalid` — no copy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum LineState {
    /// Modified: sole, dirty, writable copy.
    Modified,
    /// Owned: dirty copy, responsible for supplying data; sharers exist.
    Owned,
    /// Shared: clean read-only copy.
    Shared,
    /// Invalid: no copy.
    #[default]
    Invalid,
}

impl LineState {
    /// Whether a processor can read the block in this state without a
    /// coherence request.
    #[inline]
    pub const fn can_read(self) -> bool {
        !matches!(self, LineState::Invalid)
    }

    /// Whether a processor can write the block in this state without a
    /// coherence request.
    #[inline]
    pub const fn can_write(self) -> bool {
        matches!(self, LineState::Modified)
    }

    /// Whether this cache is the protocol owner of the block (must
    /// respond with data and write back on eviction).
    #[inline]
    pub const fn is_owner(self) -> bool {
        matches!(self, LineState::Modified | LineState::Owned)
    }
}

impl fmt::Display for LineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LineState::Modified => "M",
            LineState::Owned => "O",
            LineState::Shared => "S",
            LineState::Invalid => "I",
        };
        f.write_str(s)
    }
}

/// Who currently owns a block: a processor's cache or memory.
///
/// The owner is the agent responsible for supplying data in response to a
/// coherence request. A request whose destination set includes the owner
/// (and, for writes, all sharers) is *sufficient* in multicast snooping.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum Owner {
    /// Memory (at the block's home node) owns the block.
    #[default]
    Memory,
    /// The cache at this node owns the block (M or O state).
    Node(NodeId),
}

impl Owner {
    /// The owning node, if a cache owns the block.
    #[inline]
    pub const fn node(self) -> Option<NodeId> {
        match self {
            Owner::Memory => None,
            Owner::Node(n) => Some(n),
        }
    }

    /// Whether memory owns the block.
    #[inline]
    pub const fn is_memory(self) -> bool {
        matches!(self, Owner::Memory)
    }
}

impl fmt::Display for Owner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Owner::Memory => write!(f, "memory"),
            Owner::Node(n) => write!(f, "{n}"),
        }
    }
}

impl From<NodeId> for Owner {
    fn from(n: NodeId) -> Self {
        Owner::Node(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_permissions() {
        assert!(LineState::Modified.can_read() && LineState::Modified.can_write());
        assert!(LineState::Owned.can_read() && !LineState::Owned.can_write());
        assert!(LineState::Shared.can_read() && !LineState::Shared.can_write());
        assert!(!LineState::Invalid.can_read() && !LineState::Invalid.can_write());
    }

    #[test]
    fn ownership_states() {
        assert!(LineState::Modified.is_owner());
        assert!(LineState::Owned.is_owner());
        assert!(!LineState::Shared.is_owner());
        assert!(!LineState::Invalid.is_owner());
    }

    #[test]
    fn default_is_invalid() {
        assert_eq!(LineState::default(), LineState::Invalid);
        assert_eq!(Owner::default(), Owner::Memory);
    }

    #[test]
    fn owner_accessors() {
        let n = NodeId::new(4);
        assert_eq!(Owner::Node(n).node(), Some(n));
        assert_eq!(Owner::Memory.node(), None);
        assert!(Owner::Memory.is_memory());
        assert!(!Owner::from(n).is_memory());
    }

    #[test]
    fn display_strings() {
        assert_eq!(LineState::Modified.to_string(), "M");
        assert_eq!(LineState::Owned.to_string(), "O");
        assert_eq!(LineState::Shared.to_string(), "S");
        assert_eq!(LineState::Invalid.to_string(), "I");
        assert_eq!(Owner::Memory.to_string(), "memory");
        assert_eq!(Owner::Node(NodeId::new(2)).to_string(), "P2");
    }
}
