//! Physical addresses and their block / macroblock views.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Cache block (line) size in bytes used throughout the paper: 64 B.
pub const BLOCK_BYTES: u64 = 64;

/// `log2(BLOCK_BYTES)`.
pub const BLOCK_SHIFT: u32 = 6;

/// A byte-granularity physical address.
///
/// # Example
///
/// ```
/// use dsp_types::Address;
///
/// let a = Address::new(0x1234);
/// assert_eq!(a.block().base().raw(), 0x1200);
/// assert_eq!(a.macroblock(1024).base_address().raw(), 0x1000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw byte address.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// The raw byte address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The 64-byte cache block containing this address.
    #[inline]
    pub const fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> BLOCK_SHIFT)
    }

    /// The macroblock of `macroblock_bytes` containing this address.
    ///
    /// # Panics
    ///
    /// Panics if `macroblock_bytes` is not a power of two or is smaller
    /// than the cache block size.
    #[inline]
    pub fn macroblock(self, macroblock_bytes: u64) -> MacroblockAddr {
        self.block().macroblock(macroblock_bytes)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

/// A 64-byte-aligned cache block address (i.e. a block *number*).
///
/// Stored as the byte address shifted right by [`BLOCK_SHIFT`]; coherence
/// state and predictor indexing operate at this granularity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a block *number* (byte address >> 6).
    #[inline]
    pub const fn new(block_number: u64) -> Self {
        BlockAddr(block_number)
    }

    /// The block number.
    #[inline]
    pub const fn number(self) -> u64 {
        self.0
    }

    /// The byte address of the first byte of the block.
    #[inline]
    pub const fn base(self) -> Address {
        Address(self.0 << BLOCK_SHIFT)
    }

    /// The macroblock of `macroblock_bytes` containing this block.
    ///
    /// # Panics
    ///
    /// Panics if `macroblock_bytes` is not a power of two or is smaller
    /// than [`BLOCK_BYTES`].
    #[inline]
    pub fn macroblock(self, macroblock_bytes: u64) -> MacroblockAddr {
        assert!(
            macroblock_bytes.is_power_of_two() && macroblock_bytes >= BLOCK_BYTES,
            "macroblock size {macroblock_bytes} must be a power of two >= {BLOCK_BYTES}"
        );
        let shift = macroblock_bytes.trailing_zeros() - BLOCK_SHIFT;
        MacroblockAddr {
            number: self.0 >> shift,
            bytes: macroblock_bytes,
        }
    }

    /// The home node of this block in an `n`-node system.
    ///
    /// Memory is interleaved across nodes at macroblock (1 KiB)
    /// granularity, matching the per-node memory-controller organization
    /// of the target system.
    ///
    /// This runs once per simulated miss; all practical system sizes
    /// are powers of two, where the modulo reduces to a mask instead of
    /// a hardware divide.
    #[inline]
    pub fn home(self, num_nodes: usize) -> crate::NodeId {
        let n = num_nodes as u64;
        let macroblock = self.0 >> 4;
        if n.is_power_of_two() && num_nodes <= crate::MAX_NODES {
            crate::NodeId::new_unchecked((macroblock & (n - 1)) as u8)
        } else {
            crate::NodeId::new((macroblock % n) as usize)
        }
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B0x{:x}", self.0)
    }
}

/// A macroblock address: an aligned power-of-two region of cache blocks.
///
/// The paper aggregates predictor state at 256 B and 1024 B macroblock
/// granularity to exploit spatial locality in the cache-to-cache miss
/// stream.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct MacroblockAddr {
    number: u64,
    bytes: u64,
}

impl MacroblockAddr {
    /// The macroblock number.
    #[inline]
    pub const fn number(self) -> u64 {
        self.number
    }

    /// The macroblock size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        self.bytes
    }

    /// The byte address of the first byte of the macroblock.
    #[inline]
    pub const fn base_address(self) -> Address {
        Address(self.number * self.bytes)
    }
}

impl fmt::Display for MacroblockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}B0x{:x}", self.bytes, self.number)
    }
}

/// The program counter of the load/store instruction that missed.
///
/// Used by the optional PC-indexed predictors (paper §3.4): the processor
/// exports the PC of the missing instruction to the cache controller.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Pc(u64);

impl Pc {
    /// Creates a PC from a raw instruction address.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Pc(raw)
    }

    /// The raw instruction address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc:0x{:x}", self.0)
    }
}

impl From<u64> for Pc {
    fn from(raw: u64) -> Self {
        Pc(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_of_address_drops_offset_bits() {
        assert_eq!(Address::new(0).block(), BlockAddr::new(0));
        assert_eq!(Address::new(63).block(), BlockAddr::new(0));
        assert_eq!(Address::new(64).block(), BlockAddr::new(1));
        assert_eq!(Address::new(0x1234).block().base().raw(), 0x1200);
    }

    #[test]
    fn macroblock_of_block() {
        // 1024-byte macroblocks = 16 blocks each.
        let mb = BlockAddr::new(17).macroblock(1024);
        assert_eq!(mb.number(), 1);
        assert_eq!(mb.bytes(), 1024);
        assert_eq!(mb.base_address().raw(), 1024);
    }

    #[test]
    fn macroblock_same_as_block_when_64b() {
        let mb = BlockAddr::new(42).macroblock(64);
        assert_eq!(mb.number(), 42);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn macroblock_rejects_non_power_of_two() {
        let _ = BlockAddr::new(0).macroblock(768);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn macroblock_rejects_sub_block_size() {
        let _ = BlockAddr::new(0).macroblock(32);
    }

    #[test]
    fn home_is_stable_and_in_range() {
        for b in 0..1000u64 {
            let h = BlockAddr::new(b).home(16);
            assert!(h.index() < 16);
            assert_eq!(h, BlockAddr::new(b).home(16));
        }
    }

    #[test]
    fn home_interleaves_at_macroblock_granularity() {
        // Blocks within the same 1 KiB macroblock share a home.
        let h0 = BlockAddr::new(0).home(16);
        for b in 0..16u64 {
            assert_eq!(BlockAddr::new(b).home(16), h0);
        }
        assert_ne!(BlockAddr::new(16).home(16), h0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Address::new(0xff).to_string(), "0xff");
        assert_eq!(BlockAddr::new(0x10).to_string(), "B0x10");
        assert_eq!(Pc::new(0x400).to_string(), "pc:0x400");
    }

    #[test]
    fn conversions_from_u64() {
        assert_eq!(Address::from(7u64).raw(), 7);
        assert_eq!(Pc::from(9u64).raw(), 9);
    }
}
