//! System-wide configuration.

use serde::{Deserialize, Serialize};

use crate::error::ConfigError;
use crate::node::MAX_NODES;
use crate::BLOCK_BYTES;

/// Global configuration of the simulated multiprocessor.
///
/// Use [`SystemConfig::isca03`] for the paper's 16-processor target
/// system, or [`SystemConfig::builder`] to customize.
///
/// # Example
///
/// ```
/// use dsp_types::SystemConfig;
///
/// let cfg = SystemConfig::builder()
///     .num_nodes(8)
///     .macroblock_bytes(256)
///     .build()?;
/// assert_eq!(cfg.num_nodes(), 8);
/// assert_eq!(cfg.blocks_per_macroblock(), 4);
/// # Ok::<(), dsp_types::ConfigError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SystemConfig {
    num_nodes: usize,
    block_bytes: u64,
    macroblock_bytes: u64,
}

impl SystemConfig {
    /// The paper's target system: 16 nodes, 64 B blocks, 1024 B
    /// macroblocks.
    pub fn isca03() -> Self {
        SystemConfig {
            num_nodes: 16,
            block_bytes: BLOCK_BYTES,
            macroblock_bytes: 1024,
        }
    }

    /// Starts building a custom configuration.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder::default()
    }

    /// Number of processor/memory nodes.
    #[inline]
    pub const fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Cache block size in bytes (64 in the paper).
    #[inline]
    pub const fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Macroblock size in bytes used for macroblock indexing.
    #[inline]
    pub const fn macroblock_bytes(&self) -> u64 {
        self.macroblock_bytes
    }

    /// Number of cache blocks per macroblock.
    #[inline]
    pub const fn blocks_per_macroblock(&self) -> u64 {
        self.macroblock_bytes / self.block_bytes
    }

    /// The maximal destination set for this system, at the default
    /// (four-word) width.
    #[inline]
    pub fn broadcast_set(&self) -> crate::DestSet {
        crate::DestSet::broadcast(self.num_nodes)
    }

    /// The maximal destination set for this system at an explicit word
    /// width `W` — the width-generic form of
    /// [`SystemConfig::broadcast_set`].
    ///
    /// # Panics
    ///
    /// Panics if the system does not fit in `W * 64` nodes.
    #[inline]
    pub fn broadcast_set_w<const W: usize>(&self) -> crate::DestSet<W> {
        crate::DestSet::broadcast(self.num_nodes)
    }
}

impl Default for SystemConfig {
    /// Defaults to the paper's target system ([`SystemConfig::isca03`]).
    fn default() -> Self {
        SystemConfig::isca03()
    }
}

/// Builder for [`SystemConfig`].
#[derive(Clone, Debug)]
pub struct SystemConfigBuilder {
    num_nodes: usize,
    block_bytes: u64,
    macroblock_bytes: u64,
}

impl Default for SystemConfigBuilder {
    fn default() -> Self {
        let base = SystemConfig::isca03();
        SystemConfigBuilder {
            num_nodes: base.num_nodes,
            block_bytes: base.block_bytes,
            macroblock_bytes: base.macroblock_bytes,
        }
    }
}

impl SystemConfigBuilder {
    /// Sets the number of nodes (1..=[`MAX_NODES`]).
    pub fn num_nodes(&mut self, n: usize) -> &mut Self {
        self.num_nodes = n;
        self
    }

    /// Sets the cache block size in bytes (power of two).
    pub fn block_bytes(&mut self, bytes: u64) -> &mut Self {
        self.block_bytes = bytes;
        self
    }

    /// Sets the macroblock size in bytes (power of two, >= block size).
    pub fn macroblock_bytes(&mut self, bytes: u64) -> &mut Self {
        self.macroblock_bytes = bytes;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the node count is out of range, a
    /// size is not a power of two, or the macroblock is smaller than a
    /// block.
    pub fn build(&self) -> Result<SystemConfig, ConfigError> {
        if self.num_nodes == 0 || self.num_nodes > MAX_NODES {
            return Err(ConfigError::InvalidNodeCount(self.num_nodes));
        }
        if !self.block_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "block size",
                value: self.block_bytes,
            });
        }
        if !self.macroblock_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "macroblock size",
                value: self.macroblock_bytes,
            });
        }
        if self.macroblock_bytes < self.block_bytes {
            return Err(ConfigError::MacroblockTooSmall {
                macroblock_bytes: self.macroblock_bytes,
                block_bytes: self.block_bytes,
            });
        }
        Ok(SystemConfig {
            num_nodes: self.num_nodes,
            block_bytes: self.block_bytes,
            macroblock_bytes: self.macroblock_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isca03_matches_paper() {
        let cfg = SystemConfig::isca03();
        assert_eq!(cfg.num_nodes(), 16);
        assert_eq!(cfg.block_bytes(), 64);
        assert_eq!(cfg.macroblock_bytes(), 1024);
        assert_eq!(cfg.blocks_per_macroblock(), 16);
        assert_eq!(cfg.broadcast_set().len(), 16);
    }

    #[test]
    fn default_is_isca03() {
        assert_eq!(SystemConfig::default(), SystemConfig::isca03());
    }

    #[test]
    fn builder_customizes() {
        let cfg = SystemConfig::builder()
            .num_nodes(4)
            .macroblock_bytes(256)
            .build()
            .expect("valid");
        assert_eq!(cfg.num_nodes(), 4);
        assert_eq!(cfg.blocks_per_macroblock(), 4);
    }

    #[test]
    fn builder_rejects_zero_nodes() {
        let err = SystemConfig::builder().num_nodes(0).build().unwrap_err();
        assert_eq!(err, ConfigError::InvalidNodeCount(0));
    }

    #[test]
    fn builder_rejects_too_many_nodes() {
        let err = SystemConfig::builder()
            .num_nodes(MAX_NODES + 1)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::InvalidNodeCount(MAX_NODES + 1));
    }

    #[test]
    fn builder_rejects_non_power_of_two_macroblock() {
        let err = SystemConfig::builder()
            .macroblock_bytes(700)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::NotPowerOfTwo { .. }));
    }

    #[test]
    fn builder_rejects_macroblock_smaller_than_block() {
        let err = SystemConfig::builder()
            .macroblock_bytes(32)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::MacroblockTooSmall { .. }));
    }
}
