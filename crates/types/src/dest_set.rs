//! Destination sets: the central abstraction of the paper.

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::node::NodeId;
#[cfg(test)]
use crate::node::MAX_NODES;

/// Number of `u64` words backing the default-width [`DestSet`]
/// (`MAX_NODES / 64`).
#[cfg(test)]
pub(crate) const WORDS: usize = MAX_NODES / 64;

/// A set of nodes that should receive a coherence request.
///
/// The *destination set* is the collection of processors (or nodes) that
/// receive a particular coherence request. Snooping protocols use the
/// maximal destination set (all nodes); directory protocols use the
/// minimal one; destination-set predictors pick something in between.
///
/// Implemented as a fixed `[u64; W]` bitmask (bit *i* of word *i / 64*
/// = node *i*), so all operations are O(1) word-parallel. The word
/// count is a compile-time parameter: `W = 4` (the default, alias
/// [`DestSet256`]) covers the 128- and 256-node scaling studies, while
/// `W = 1` ([`DestSet64`]) monomorphizes paper-scale (≤ 64-node) runs
/// down to single-word operations with no widening tax. Code that never
/// exceeds 64 nodes on its hot path should be generic over `W` so the
/// simulator can instantiate it at either width.
///
/// # Example
///
/// ```
/// use dsp_types::{DestSet, NodeId};
///
/// let minimal: DestSet = DestSet::from_iter([NodeId::new(0), NodeId::new(4)]);
/// let predicted = minimal | DestSet::single(NodeId::new(9));
/// assert!(predicted.is_superset(minimal));
/// assert_eq!(predicted.len(), 3);
/// assert_eq!(predicted.to_string(), "{P0, P4, P9}");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct DestSet<const W: usize = 4>([u64; W]);

// Serde impls are written by hand (the derive macro cannot restate a
// const-generic default in its impl header); both forward transparently
// to the backing word array, exactly as `#[serde(transparent)]` did
// when the width was fixed.
impl<const W: usize> Serialize for DestSet<W> {
    fn to_value(&self) -> serde::Value {
        self.0.to_value()
    }
}

impl<const W: usize> Deserialize for DestSet<W> {
    fn from_value(v: &serde::Value) -> Result<Self, serde::de::Error> {
        <[u64; W]>::from_value(v).map(DestSet)
    }
}

/// A destination set over nodes `0..64`: one word, the natural width
/// for paper-scale (16-node) and medium (≤ 64-node) systems.
pub type DestSet64 = DestSet<1>;

/// A destination set over nodes `0..256` ([`MAX_NODES`]): four words,
/// the width required by the 128- and 256-node scaling studies and the
/// default for width-agnostic code.
pub type DestSet256 = DestSet<4>;

impl<const W: usize> DestSet<W> {
    /// Highest node index this width can represent, plus one.
    pub const CAPACITY: usize = W * 64;

    /// The empty destination set.
    #[inline]
    pub const fn empty() -> Self {
        DestSet([0; W])
    }

    /// The set containing exactly one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is beyond this width's [`Self::CAPACITY`].
    #[inline]
    pub fn single(node: NodeId) -> Self {
        let mut words = [0; W];
        words[node.index() >> 6] = 1u64 << (node.index() & 63);
        DestSet(words)
    }

    /// The maximal destination set of an `n`-node system (what broadcast
    /// snooping uses for every request).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds this width's [`Self::CAPACITY`].
    #[inline]
    pub fn broadcast(n: usize) -> Self {
        assert!(
            n <= Self::CAPACITY,
            "system size {n} out of range (max {} at width {W})",
            Self::CAPACITY
        );
        let mut words = [0; W];
        let full = n / 64;
        words[..full].fill(u64::MAX);
        if !n.is_multiple_of(64) {
            words[full] = (1u64 << (n % 64)) - 1;
        }
        DestSet(words)
    }

    /// Builds a set of the first 64 nodes from a raw bitmask (bit *i* =
    /// node *i*); the convenient constructor for tests and synthetic
    /// workloads on paper-sized systems. Use [`DestSet::from_words`]
    /// when nodes 64+ are in play.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        let mut words = [0; W];
        words[0] = bits;
        DestSet(words)
    }

    /// The raw bitmask of the first 64 nodes (bit *i* = node *i*); the
    /// low word of [`DestSet::words`]. Lossless for systems of up to 64
    /// nodes.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0[0]
    }

    /// Builds a set from its full word representation (bit *i* of word
    /// *i / 64* = node *i*).
    #[inline]
    pub const fn from_words(words: [u64; W]) -> Self {
        DestSet(words)
    }

    /// The full word representation (bit *i* of word *i / 64* = node
    /// *i*).
    #[inline]
    pub const fn words(self) -> [u64; W] {
        self.0
    }

    /// Re-expresses the set at word width `W2`.
    ///
    /// Widening is always lossless. Narrowing asserts that no member
    /// lies beyond the new width — callers select widths from the
    /// system size, so a lossy narrow is a logic error, not data.
    #[inline]
    #[must_use]
    pub fn resize<const W2: usize>(self) -> DestSet<W2> {
        let mut words = [0u64; W2];
        let mut i = 0;
        while i < W {
            if i < W2 {
                words[i] = self.0[i];
            } else {
                assert!(
                    self.0[i] == 0,
                    "resize to width {W2} would drop nodes {}..",
                    W2 * 64
                );
            }
            i += 1;
        }
        DestSet(words)
    }

    /// OR of every word above word 0 — zero exactly when the set is
    /// confined to nodes 0..64.
    ///
    /// Every paper-scale system (16 nodes) lives entirely in word 0, so
    /// the *wide* word loops below test this first and take a
    /// single-word path. At `W = 1` the check is gone entirely: the
    /// single-word case *is* the only case, so the monomorphized code
    /// has no residual branch (the PR 6 follow-up to the ROADMAP's
    /// "upper-words-zero fast path" item).
    #[inline]
    const fn upper_or(self) -> u64 {
        let mut acc = 0;
        let mut i = 1;
        while i < W {
            acc |= self.0[i];
            i += 1;
        }
        acc
    }

    /// Whether the set contains no nodes.
    #[inline]
    pub const fn is_empty(self) -> bool {
        if W == 1 {
            return self.0[0] == 0;
        }
        self.0[0] | self.upper_or() == 0
    }

    /// Number of nodes in the set.
    #[inline]
    pub const fn len(self) -> usize {
        if W == 1 || self.upper_or() == 0 {
            return self.0[0].count_ones() as usize;
        }
        let mut total = 0;
        let mut i = 0;
        while i < W {
            total += self.0[i].count_ones() as usize;
            i += 1;
        }
        total
    }

    /// Whether `node` is in the set.
    ///
    /// # Panics
    ///
    /// Panics if `node` is beyond this width's [`Self::CAPACITY`].
    #[inline]
    pub fn contains(self, node: NodeId) -> bool {
        self.0[node.index() >> 6] & (1u64 << (node.index() & 63)) != 0
    }

    /// Adds `node` to the set. Returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, node: NodeId) -> bool {
        let word = &mut self.0[node.index() >> 6];
        let bit = 1u64 << (node.index() & 63);
        let newly = *word & bit == 0;
        *word |= bit;
        newly
    }

    /// Removes `node` from the set. Returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, node: NodeId) -> bool {
        let word = &mut self.0[node.index() >> 6];
        let bit = 1u64 << (node.index() & 63);
        let present = *word & bit != 0;
        *word &= !bit;
        present
    }

    /// Returns `self` with `node` added (consuming builder style).
    #[inline]
    #[must_use]
    pub fn with(mut self, node: NodeId) -> Self {
        self.insert(node);
        self
    }

    /// Returns `self` with `node` removed.
    #[inline]
    #[must_use]
    pub fn without(mut self, node: NodeId) -> Self {
        self.remove(node);
        self
    }

    /// Whether every node of `other` is in `self`.
    #[inline]
    pub const fn is_superset(self, other: Self) -> bool {
        if W == 1 || self.upper_or() | other.upper_or() == 0 {
            return self.0[0] & other.0[0] == other.0[0];
        }
        let mut i = 0;
        while i < W {
            if self.0[i] & other.0[i] != other.0[i] {
                return false;
            }
            i += 1;
        }
        true
    }

    /// Whether every node of `self` is in `other`.
    #[inline]
    pub const fn is_subset(self, other: Self) -> bool {
        other.is_superset(self)
    }

    /// Set union.
    #[inline]
    #[must_use]
    pub const fn union(self, other: Self) -> Self {
        let mut words = self.0;
        let mut i = 0;
        while i < W {
            words[i] |= other.0[i];
            i += 1;
        }
        DestSet(words)
    }

    /// Set intersection.
    #[inline]
    #[must_use]
    pub const fn intersection(self, other: Self) -> Self {
        let mut words = self.0;
        let mut i = 0;
        while i < W {
            words[i] &= other.0[i];
            i += 1;
        }
        DestSet(words)
    }

    /// Set difference (`self` minus `other`).
    #[inline]
    #[must_use]
    pub const fn difference(self, other: Self) -> Self {
        let mut words = self.0;
        let mut i = 0;
        while i < W {
            words[i] &= !other.0[i];
            i += 1;
        }
        DestSet(words)
    }

    /// The complement within an `n`-node system: every node of the
    /// system not in `self`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds this width's [`Self::CAPACITY`].
    #[inline]
    #[must_use]
    pub fn complement(self, n: usize) -> Self {
        Self::broadcast(n).difference(self)
    }

    /// Iterates over the members in increasing node-index order.
    ///
    /// The iterator carries the index just past the highest populated
    /// word, so wide sets confined to word 0 never scan the empty upper
    /// words — neither per step nor when the iteration drains. At
    /// `W = 1` the limit computation disappears entirely.
    #[inline]
    pub fn iter(self) -> DestSetIter<W> {
        let limit = if W == 1 || self.upper_or() == 0 {
            usize::from(self.0[0] != 0)
        } else {
            let mut l = W;
            while self.0[l - 1] == 0 {
                l -= 1;
            }
            l
        };
        DestSetIter {
            words: self.0,
            word: 0,
            limit,
        }
    }

    /// The lowest-indexed node in the set, if any.
    #[inline]
    pub fn first(self) -> Option<NodeId> {
        if self.0[0] != 0 {
            return Some(NodeId::new_unchecked(self.0[0].trailing_zeros() as u8));
        }
        let mut i = 1;
        while i < W {
            if self.0[i] != 0 {
                let idx = i * 64 + self.0[i].trailing_zeros() as usize;
                return Some(NodeId::new_unchecked(idx as u8));
            }
            i += 1;
        }
        None
    }
}

impl<const W: usize> Default for DestSet<W> {
    fn default() -> Self {
        DestSet::empty()
    }
}

impl<const W: usize> FromIterator<NodeId> for DestSet<W> {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut set = DestSet::empty();
        for node in iter {
            set.insert(node);
        }
        set
    }
}

impl<const W: usize> Extend<NodeId> for DestSet<W> {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for node in iter {
            self.insert(node);
        }
    }
}

impl<const W: usize> IntoIterator for DestSet<W> {
    type Item = NodeId;
    type IntoIter = DestSetIter<W>;

    fn into_iter(self) -> DestSetIter<W> {
        self.iter()
    }
}

impl<const W: usize> BitOr for DestSet<W> {
    type Output = Self;
    fn bitor(self, rhs: Self) -> Self {
        self.union(rhs)
    }
}

impl<const W: usize> BitOrAssign for DestSet<W> {
    fn bitor_assign(&mut self, rhs: Self) {
        *self = self.union(rhs);
    }
}

impl<const W: usize> BitAnd for DestSet<W> {
    type Output = Self;
    fn bitand(self, rhs: Self) -> Self {
        self.intersection(rhs)
    }
}

impl<const W: usize> BitAndAssign for DestSet<W> {
    fn bitand_assign(&mut self, rhs: Self) {
        *self = self.intersection(rhs);
    }
}

impl<const W: usize> Sub for DestSet<W> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        self.difference(rhs)
    }
}

impl<const W: usize> SubAssign for DestSet<W> {
    fn sub_assign(&mut self, rhs: Self) {
        *self = self.difference(rhs);
    }
}

impl<const W: usize> fmt::Display for DestSet<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, node) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{node}")?;
        }
        write!(f, "}}")
    }
}

impl<const W: usize> fmt::Debug for DestSet<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DestSet{self}")
    }
}

/// The `digit`-th group of `width` bits of the `W * 64`-bit value, LSB
/// first; groups may straddle word boundaries (octal's 3-bit groups
/// do). Bits beyond the top word read as zero.
#[inline]
fn radix_digit<const W: usize>(words: &[u64; W], digit: usize, width: usize) -> u64 {
    let lo = digit * width;
    let word = lo / 64;
    if word >= W {
        return 0;
    }
    let off = lo % 64;
    let mut v = words[word] >> off;
    if off + width > 64 && word + 1 < W {
        v |= words[word + 1] << (64 - off);
    }
    v & ((1u64 << width) - 1)
}

/// Formats the set's `W * 64`-bit mask in a power-of-two radix (`width`
/// bits per digit), skipping leading zeros — identical to `u64`
/// formatting whenever only the low word is populated. Routed through
/// [`fmt::Formatter::pad_integral`] so alternate (`#`), width, and
/// zero-padding flags behave like the primitive integer impls.
fn fmt_radix<const W: usize>(
    words: &[u64; W],
    f: &mut fmt::Formatter<'_>,
    width: usize,
    prefix: &str,
    digits: &[u8],
) -> fmt::Result {
    let positions = (W * 64).div_ceil(width);
    let mut out = String::with_capacity(positions);
    for digit in (0..positions).rev() {
        let v = radix_digit(words, digit, width) as usize;
        if v != 0 || !out.is_empty() || digit == 0 {
            out.push(digits[v] as char);
        }
    }
    f.pad_integral(true, prefix, &out)
}

impl<const W: usize> fmt::Binary for DestSet<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_radix(&self.0, f, 1, "0b", b"01")
    }
}

impl<const W: usize> fmt::LowerHex for DestSet<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_radix(&self.0, f, 4, "0x", b"0123456789abcdef")
    }
}

impl<const W: usize> fmt::UpperHex for DestSet<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_radix(&self.0, f, 4, "0x", b"0123456789ABCDEF")
    }
}

impl<const W: usize> fmt::Octal for DestSet<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_radix(&self.0, f, 3, "0o", b"01234567")
    }
}

/// Iterator over the members of a [`DestSet`], in node-index order.
#[derive(Clone, Debug)]
pub struct DestSetIter<const W: usize = 4> {
    words: [u64; W],
    word: usize,
    /// One past the highest populated word at construction; words at
    /// and beyond it are zero and are never scanned.
    limit: usize,
}

impl<const W: usize> Iterator for DestSetIter<W> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        while self.word < self.limit {
            let w = self.words[self.word];
            if w != 0 {
                let idx = self.word * 64 + w.trailing_zeros() as usize;
                self.words[self.word] = w & (w - 1);
                return Some(NodeId::new_unchecked(idx as u8));
            }
            self.word += 1;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n: usize = self.words[self.word..self.limit]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        (n, Some(n))
    }
}

impl<const W: usize> ExactSizeIterator for DestSetIter<W> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn empty_set_has_no_members() {
        let s: DestSet = DestSet::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.first(), None);
    }

    #[test]
    fn broadcast_contains_all_nodes() {
        let s: DestSet = DestSet::broadcast(16);
        assert_eq!(s.len(), 16);
        for i in 0..16 {
            assert!(s.contains(n(i)));
        }
        assert!(!s.contains(n(16)));
    }

    #[test]
    fn broadcast_max_nodes_is_full_mask() {
        assert_eq!(DestSet::broadcast(MAX_NODES).words(), [u64::MAX; WORDS]);
        assert_eq!(DestSet::<WORDS>::broadcast(64).bits(), u64::MAX);
        assert_eq!(DestSet::<WORDS>::broadcast(64).words()[1..], [0; WORDS - 1]);
    }

    #[test]
    fn broadcast_straddles_word_boundaries() {
        for nodes in [63, 64, 65, 127, 128, 129, 255, 256] {
            let s: DestSet = DestSet::broadcast(nodes);
            assert_eq!(s.len(), nodes, "broadcast({nodes})");
            assert!(s.contains(n(nodes - 1)));
            if nodes < MAX_NODES {
                assert!(!s.contains(n(nodes)));
            }
        }
    }

    #[test]
    fn narrow_width_rejects_oversized_broadcast() {
        assert_eq!(DestSet64::broadcast(64).bits(), u64::MAX);
        let result = std::panic::catch_unwind(|| DestSet64::broadcast(65));
        assert!(result.is_err(), "width 1 cannot hold 65 nodes");
    }

    #[test]
    fn insert_remove_round_trip() {
        let mut s: DestSet = DestSet::empty();
        assert!(s.insert(n(5)));
        assert!(!s.insert(n(5)));
        assert!(s.contains(n(5)));
        assert!(s.remove(n(5)));
        assert!(!s.remove(n(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn high_nodes_round_trip() {
        let mut s: DestSet = DestSet::empty();
        for i in [0usize, 63, 64, 127, 128, 191, 192, 255] {
            assert!(s.insert(n(i)));
        }
        assert_eq!(s.len(), 8);
        for i in [0usize, 63, 64, 127, 128, 191, 192, 255] {
            assert!(s.contains(n(i)));
            assert!(s.remove(n(i)));
        }
        assert!(s.is_empty());
    }

    #[test]
    fn union_intersection_difference() {
        let a: DestSet = DestSet::from_iter([n(1), n(2), n(3), n(200)]);
        let b = DestSet::from_iter([n(3), n(4), n(200)]);
        assert_eq!(a | b, DestSet::from_iter([n(1), n(2), n(3), n(4), n(200)]));
        assert_eq!(a & b, DestSet::from_iter([n(3), n(200)]));
        assert_eq!(a - b, DestSet::from_iter([n(1), n(2)]));
    }

    #[test]
    fn complement_within_system() {
        let a: DestSet = DestSet::from_iter([n(1), n(100)]);
        let c = a.complement(128);
        assert_eq!(c.len(), 126);
        assert!(!c.contains(n(1)) && !c.contains(n(100)));
        assert!(c.contains(n(0)) && c.contains(n(127)));
    }

    #[test]
    fn subset_superset() {
        let a: DestSet = DestSet::from_iter([n(1), n(2)]);
        let b = DestSet::from_iter([n(1), n(2), n(9), n(70)]);
        assert!(a.is_subset(b));
        assert!(b.is_superset(a));
        assert!(!a.is_superset(b));
        assert!(a.is_subset(a));
    }

    #[test]
    fn iter_in_index_order() {
        let s: DestSet = DestSet::from_iter([n(9), n(0), n(33), n(130), n(64)]);
        let order: Vec<_> = s.iter().map(NodeId::index).collect();
        assert_eq!(order, vec![0, 9, 33, 64, 130]);
        assert_eq!(s.iter().len(), 5);
    }

    #[test]
    fn first_is_lowest_index() {
        let s: DestSet = DestSet::from_iter([n(7), n(3)]);
        assert_eq!(s.first(), Some(n(3)));
        let high: DestSet = DestSet::from_iter([n(200), n(90)]);
        assert_eq!(high.first(), Some(n(90)));
    }

    #[test]
    fn display_formats_members() {
        let s: DestSet = DestSet::from_iter([n(0), n(4), n(9)]);
        assert_eq!(s.to_string(), "{P0, P4, P9}");
        assert_eq!(DestSet::<4>::empty().to_string(), "{}");
    }

    #[test]
    fn debug_is_never_empty() {
        assert_eq!(format!("{:?}", DestSet::<4>::empty()), "DestSet{}");
    }

    #[test]
    fn with_without_builder_style() {
        let s: DestSet = DestSet::empty().with(n(2)).with(n(5)).without(n(2));
        assert_eq!(s, DestSet::single(n(5)));
    }

    #[test]
    fn assign_ops() {
        let mut s: DestSet = DestSet::from_iter([n(1), n(2)]);
        s |= DestSet::single(n(3));
        s &= DestSet::from_iter([n(2), n(3), n(4)]);
        s -= DestSet::single(n(3));
        assert_eq!(s, DestSet::single(n(2)));
    }

    #[test]
    fn extend_and_collect() {
        let mut s: DestSet = [n(1)].into_iter().collect();
        s.extend([n(2), n(3)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn numeric_formatting() {
        let s: DestSet = DestSet::from_iter([n(0), n(2)]);
        assert_eq!(format!("{s:b}"), "101");
        assert_eq!(format!("{s:x}"), "5");
        assert_eq!(format!("{s:o}"), "5");
    }

    #[test]
    fn numeric_formatting_matches_u64_for_low_words() {
        for bits in [0u64, 1, 5, 0xdead_beef, u64::MAX, 1 << 63] {
            let s: DestSet = DestSet::from_bits(bits);
            assert_eq!(format!("{s:b}"), format!("{bits:b}"));
            assert_eq!(format!("{s:x}"), format!("{bits:x}"));
            assert_eq!(format!("{s:X}"), format!("{bits:X}"));
            assert_eq!(format!("{s:o}"), format!("{bits:o}"));
            // Formatter flags route through pad_integral like u64's.
            assert_eq!(format!("{s:#x}"), format!("{bits:#x}"));
            assert_eq!(format!("{s:#b}"), format!("{bits:#b}"));
            assert_eq!(format!("{s:08x}"), format!("{bits:08x}"));
            assert_eq!(format!("{s:>12o}"), format!("{bits:>12o}"));
        }
    }

    #[test]
    fn numeric_formatting_above_64_nodes() {
        // Node 64 is bit 0 of word 1: 2^64 = 0x1_0000_0000_0000_0000.
        let s: DestSet = DestSet::single(n(64));
        assert_eq!(format!("{s:x}"), "10000000000000000");
        assert_eq!(format!("{s:X}"), "10000000000000000");
        // 2^64 in octal: bits 63..66 straddle the word boundary.
        assert_eq!(format!("{s:o}"), "2000000000000000000000");
        let top: DestSet = DestSet::single(n(255));
        assert_eq!(
            format!("{top:x}"),
            format!("8{}", "0".repeat(63)),
            "bit 255 is the top hex nibble"
        );
    }

    #[test]
    fn fast_path_agrees_with_wide_sets() {
        // The upper-words-zero fast paths must be observationally
        // invisible: low-word sets, straddling sets, and upper-only
        // sets answer identically through every word loop.
        let cases: [DestSet; 6] = [
            DestSet::empty(),
            DestSet::from_bits(0b1011),
            DestSet::from_bits(u64::MAX),
            DestSet::single(n(64)),
            DestSet::from_iter([n(3), n(64), n(200)]),
            DestSet::from_words([0, 0, 0, 1 << 63]),
        ];
        for s in cases {
            let members: Vec<NodeId> = s.iter().collect();
            assert_eq!(members.len(), s.len());
            assert_eq!(s.iter().len(), s.len(), "size_hint respects limit");
            assert_eq!(s.is_empty(), members.is_empty());
            assert_eq!(s.first(), members.first().copied());
            assert!(s.is_superset(s));
            for &m in &members {
                assert!(s.is_superset(DestSet::single(m)));
            }
            assert!(DestSet::broadcast(MAX_NODES).is_superset(s));
            if !s.is_empty() {
                assert!(!DestSet::empty().is_superset(s));
            }
        }
    }

    #[test]
    fn words_round_trip() {
        let words = [0x5u64, 0, 1 << 63, 0xffff];
        let s = DestSet::from_words(words);
        assert_eq!(s.words(), words);
        assert_eq!(s.bits(), 0x5);
        assert_eq!(
            s.len(),
            words.iter().map(|w| w.count_ones() as usize).sum::<usize>()
        );
    }

    #[test]
    fn resize_round_trips_and_narrows() {
        let narrow = DestSet64::from_bits(0b1010_0101);
        let wide: DestSet256 = narrow.resize();
        assert_eq!(wide.bits(), 0b1010_0101);
        assert_eq!(wide.words()[1..], [0; 3]);
        let back: DestSet64 = wide.resize();
        assert_eq!(back, narrow);
    }

    #[test]
    fn lossy_narrow_panics() {
        let wide = DestSet256::single(n(64));
        let result = std::panic::catch_unwind(|| wide.resize::<1>());
        assert!(result.is_err(), "narrowing away node 64 must panic");
    }
}
