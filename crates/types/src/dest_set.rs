//! Destination sets: the central abstraction of the paper.

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::node::{NodeId, MAX_NODES};

/// A set of nodes that should receive a coherence request.
///
/// The *destination set* is the collection of processors (or nodes) that
/// receive a particular coherence request. Snooping protocols use the
/// maximal destination set (all nodes); directory protocols use the
/// minimal one; destination-set predictors pick something in between.
///
/// Implemented as a `u64` bitmask, so all operations are O(1).
///
/// # Example
///
/// ```
/// use dsp_types::{DestSet, NodeId};
///
/// let minimal = DestSet::from_iter([NodeId::new(0), NodeId::new(4)]);
/// let predicted = minimal | DestSet::single(NodeId::new(9));
/// assert!(predicted.is_superset(minimal));
/// assert_eq!(predicted.len(), 3);
/// assert_eq!(predicted.to_string(), "{P0, P4, P9}");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DestSet(u64);

impl DestSet {
    /// The empty destination set.
    #[inline]
    pub const fn empty() -> Self {
        DestSet(0)
    }

    /// The set containing exactly one node.
    #[inline]
    pub fn single(node: NodeId) -> Self {
        DestSet(1u64 << node.index())
    }

    /// The maximal destination set of an `n`-node system (what broadcast
    /// snooping uses for every request).
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_NODES`.
    #[inline]
    pub fn broadcast(n: usize) -> Self {
        assert!(
            n <= MAX_NODES,
            "system size {n} out of range (max {MAX_NODES})"
        );
        if n == MAX_NODES {
            DestSet(u64::MAX)
        } else {
            DestSet((1u64 << n) - 1)
        }
    }

    /// Builds a set from a raw bitmask (bit *i* = node *i*).
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        DestSet(bits)
    }

    /// The raw bitmask (bit *i* = node *i*).
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Whether the set contains no nodes.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of nodes in the set.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether `node` is in the set.
    #[inline]
    pub fn contains(self, node: NodeId) -> bool {
        self.0 & (1u64 << node.index()) != 0
    }

    /// Adds `node` to the set. Returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, node: NodeId) -> bool {
        let bit = 1u64 << node.index();
        let newly = self.0 & bit == 0;
        self.0 |= bit;
        newly
    }

    /// Removes `node` from the set. Returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, node: NodeId) -> bool {
        let bit = 1u64 << node.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Returns `self` with `node` added (consuming builder style).
    #[inline]
    #[must_use]
    pub fn with(mut self, node: NodeId) -> Self {
        self.insert(node);
        self
    }

    /// Returns `self` with `node` removed.
    #[inline]
    #[must_use]
    pub fn without(mut self, node: NodeId) -> Self {
        self.remove(node);
        self
    }

    /// Whether every node of `other` is in `self`.
    #[inline]
    pub const fn is_superset(self, other: DestSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether every node of `self` is in `other`.
    #[inline]
    pub const fn is_subset(self, other: DestSet) -> bool {
        other.is_superset(self)
    }

    /// Set union.
    #[inline]
    #[must_use]
    pub const fn union(self, other: DestSet) -> Self {
        DestSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    #[must_use]
    pub const fn intersection(self, other: DestSet) -> Self {
        DestSet(self.0 & other.0)
    }

    /// Set difference (`self` minus `other`).
    #[inline]
    #[must_use]
    pub const fn difference(self, other: DestSet) -> Self {
        DestSet(self.0 & !other.0)
    }

    /// Iterates over the members in increasing node-index order.
    #[inline]
    pub fn iter(self) -> DestSetIter {
        DestSetIter(self.0)
    }

    /// The lowest-indexed node in the set, if any.
    #[inline]
    pub fn first(self) -> Option<NodeId> {
        if self.0 == 0 {
            None
        } else {
            Some(NodeId::new_unchecked(self.0.trailing_zeros() as u8))
        }
    }
}

impl FromIterator<NodeId> for DestSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut set = DestSet::empty();
        for node in iter {
            set.insert(node);
        }
        set
    }
}

impl Extend<NodeId> for DestSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for node in iter {
            self.insert(node);
        }
    }
}

impl IntoIterator for DestSet {
    type Item = NodeId;
    type IntoIter = DestSetIter;

    fn into_iter(self) -> DestSetIter {
        self.iter()
    }
}

impl BitOr for DestSet {
    type Output = DestSet;
    fn bitor(self, rhs: DestSet) -> DestSet {
        self.union(rhs)
    }
}

impl BitOrAssign for DestSet {
    fn bitor_assign(&mut self, rhs: DestSet) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for DestSet {
    type Output = DestSet;
    fn bitand(self, rhs: DestSet) -> DestSet {
        self.intersection(rhs)
    }
}

impl BitAndAssign for DestSet {
    fn bitand_assign(&mut self, rhs: DestSet) {
        self.0 &= rhs.0;
    }
}

impl Sub for DestSet {
    type Output = DestSet;
    fn sub(self, rhs: DestSet) -> DestSet {
        self.difference(rhs)
    }
}

impl SubAssign for DestSet {
    fn sub_assign(&mut self, rhs: DestSet) {
        self.0 &= !rhs.0;
    }
}

impl fmt::Display for DestSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, node) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{node}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for DestSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DestSet{self}")
    }
}

impl fmt::Binary for DestSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for DestSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for DestSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Octal for DestSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

/// Iterator over the members of a [`DestSet`], in node-index order.
#[derive(Clone, Debug)]
pub struct DestSetIter(u64);

impl Iterator for DestSetIter {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.0 == 0 {
            None
        } else {
            let idx = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(NodeId::new_unchecked(idx as u8))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for DestSetIter {}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn empty_set_has_no_members() {
        let s = DestSet::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.first(), None);
    }

    #[test]
    fn broadcast_contains_all_nodes() {
        let s = DestSet::broadcast(16);
        assert_eq!(s.len(), 16);
        for i in 0..16 {
            assert!(s.contains(n(i)));
        }
        assert!(!s.contains(n(16)));
    }

    #[test]
    fn broadcast_max_nodes_is_full_mask() {
        assert_eq!(DestSet::broadcast(MAX_NODES).bits(), u64::MAX);
    }

    #[test]
    fn insert_remove_round_trip() {
        let mut s = DestSet::empty();
        assert!(s.insert(n(5)));
        assert!(!s.insert(n(5)));
        assert!(s.contains(n(5)));
        assert!(s.remove(n(5)));
        assert!(!s.remove(n(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn union_intersection_difference() {
        let a = DestSet::from_iter([n(1), n(2), n(3)]);
        let b = DestSet::from_iter([n(3), n(4)]);
        assert_eq!(a | b, DestSet::from_iter([n(1), n(2), n(3), n(4)]));
        assert_eq!(a & b, DestSet::single(n(3)));
        assert_eq!(a - b, DestSet::from_iter([n(1), n(2)]));
    }

    #[test]
    fn subset_superset() {
        let a = DestSet::from_iter([n(1), n(2)]);
        let b = DestSet::from_iter([n(1), n(2), n(9)]);
        assert!(a.is_subset(b));
        assert!(b.is_superset(a));
        assert!(!a.is_superset(b));
        assert!(a.is_subset(a));
    }

    #[test]
    fn iter_in_index_order() {
        let s = DestSet::from_iter([n(9), n(0), n(33)]);
        let order: Vec<_> = s.iter().map(NodeId::index).collect();
        assert_eq!(order, vec![0, 9, 33]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn first_is_lowest_index() {
        let s = DestSet::from_iter([n(7), n(3)]);
        assert_eq!(s.first(), Some(n(3)));
    }

    #[test]
    fn display_formats_members() {
        let s = DestSet::from_iter([n(0), n(4), n(9)]);
        assert_eq!(s.to_string(), "{P0, P4, P9}");
        assert_eq!(DestSet::empty().to_string(), "{}");
    }

    #[test]
    fn debug_is_never_empty() {
        assert_eq!(format!("{:?}", DestSet::empty()), "DestSet{}");
    }

    #[test]
    fn with_without_builder_style() {
        let s = DestSet::empty().with(n(2)).with(n(5)).without(n(2));
        assert_eq!(s, DestSet::single(n(5)));
    }

    #[test]
    fn assign_ops() {
        let mut s = DestSet::from_iter([n(1), n(2)]);
        s |= DestSet::single(n(3));
        s &= DestSet::from_iter([n(2), n(3), n(4)]);
        s -= DestSet::single(n(3));
        assert_eq!(s, DestSet::single(n(2)));
    }

    #[test]
    fn extend_and_collect() {
        let mut s: DestSet = [n(1)].into_iter().collect();
        s.extend([n(2), n(3)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn numeric_formatting() {
        let s = DestSet::from_iter([n(0), n(2)]);
        assert_eq!(format!("{s:b}"), "101");
        assert_eq!(format!("{s:x}"), "5");
        assert_eq!(format!("{s:o}"), "5");
    }
}
