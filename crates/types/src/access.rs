//! Memory access and coherence request kinds.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The kind of processor memory access that missed in the cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load (read) access.
    Load,
    /// A store (write) access.
    Store,
}

impl AccessKind {
    /// The coherence request this access issues on an L2 miss under a
    /// MOSI write-invalidate protocol.
    #[inline]
    pub const fn request(self) -> ReqType {
        match self {
            AccessKind::Load => ReqType::GetShared,
            AccessKind::Store => ReqType::GetExclusive,
        }
    }

    /// Whether this is a store.
    #[inline]
    pub const fn is_store(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => write!(f, "load"),
            AccessKind::Store => write!(f, "store"),
        }
    }
}

/// Coherence request types of the MOSI write-invalidate protocols.
///
/// A request for shared (read) must find the current owner; a request for
/// exclusive (write) must find the owner and invalidate all sharers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ReqType {
    /// Request a read-only (Shared) copy — `GETS`.
    GetShared,
    /// Request a writable (Modified) copy — `GETX`. Covers both plain
    /// write misses and upgrades from Shared.
    GetExclusive,
}

impl ReqType {
    /// Whether this request needs exclusive (write) permission.
    #[inline]
    pub const fn is_exclusive(self) -> bool {
        matches!(self, ReqType::GetExclusive)
    }
}

impl fmt::Display for ReqType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReqType::GetShared => write!(f, "GETS"),
            ReqType::GetExclusive => write!(f, "GETX"),
        }
    }
}

/// Classes of interconnect messages, used for traffic accounting.
///
/// The paper's trace-driven metric counts *request* bandwidth (requests,
/// forwards, and retries); the runtime metric counts all bytes including
/// data responses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MessageClass {
    /// An initial coherence request (unicast, multicast, or broadcast).
    Request,
    /// A request forwarded by the directory to the owner and/or sharers.
    Forward,
    /// A multicast-snooping reissue after an insufficient destination set.
    Retry,
    /// A data response carrying the 64-byte block (72 bytes on the wire).
    DataResponse,
    /// A dataless control/acknowledgement message.
    Control,
    /// A writeback of a dirty block to memory.
    Writeback,
}

impl MessageClass {
    /// Number of distinct message classes.
    pub const COUNT: usize = 6;

    /// Every class, ordered by [`MessageClass::index`].
    pub const ALL: [MessageClass; MessageClass::COUNT] = [
        MessageClass::Request,
        MessageClass::Forward,
        MessageClass::Retry,
        MessageClass::DataResponse,
        MessageClass::Control,
        MessageClass::Writeback,
    ];

    /// Dense index of this class in `0..COUNT`, for per-class lookup
    /// tables on hot paths (traffic counters, precomputed serialization
    /// delays).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Size on the wire, in bytes: 8 B for control-like messages and
    /// 72 B (64 B data + 8 B header) for messages carrying a block.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            MessageClass::DataResponse | MessageClass::Writeback => 72,
            _ => 8,
        }
    }

    /// Whether this class counts toward the paper's *request bandwidth*
    /// metric (requests, forwards, and retries).
    #[inline]
    pub const fn is_request_class(self) -> bool {
        matches!(
            self,
            MessageClass::Request | MessageClass::Forward | MessageClass::Retry
        )
    }
}

impl fmt::Display for MessageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessageClass::Request => "request",
            MessageClass::Forward => "forward",
            MessageClass::Retry => "retry",
            MessageClass::DataResponse => "data",
            MessageClass::Control => "control",
            MessageClass::Writeback => "writeback",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_request_shared_stores_exclusive() {
        assert_eq!(AccessKind::Load.request(), ReqType::GetShared);
        assert_eq!(AccessKind::Store.request(), ReqType::GetExclusive);
        assert!(!AccessKind::Load.is_store());
        assert!(AccessKind::Store.is_store());
    }

    #[test]
    fn exclusive_flag() {
        assert!(ReqType::GetExclusive.is_exclusive());
        assert!(!ReqType::GetShared.is_exclusive());
    }

    #[test]
    fn message_sizes_match_paper() {
        // "All request, forwarded request, and retried request messages
        // are 8 bytes, and data responses are 72 bytes."
        assert_eq!(MessageClass::Request.bytes(), 8);
        assert_eq!(MessageClass::Forward.bytes(), 8);
        assert_eq!(MessageClass::Retry.bytes(), 8);
        assert_eq!(MessageClass::Control.bytes(), 8);
        assert_eq!(MessageClass::DataResponse.bytes(), 72);
        assert_eq!(MessageClass::Writeback.bytes(), 72);
    }

    #[test]
    fn class_indices_are_dense_and_match_all() {
        for (i, class) in MessageClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
        }
        assert_eq!(MessageClass::ALL.len(), MessageClass::COUNT);
    }

    #[test]
    fn request_class_membership() {
        assert!(MessageClass::Request.is_request_class());
        assert!(MessageClass::Forward.is_request_class());
        assert!(MessageClass::Retry.is_request_class());
        assert!(!MessageClass::DataResponse.is_request_class());
        assert!(!MessageClass::Control.is_request_class());
    }

    #[test]
    fn display_strings() {
        assert_eq!(ReqType::GetShared.to_string(), "GETS");
        assert_eq!(ReqType::GetExclusive.to_string(), "GETX");
        assert_eq!(AccessKind::Load.to_string(), "load");
        assert_eq!(MessageClass::Retry.to_string(), "retry");
    }
}
