//! Error types.

use std::error::Error;
use std::fmt;

/// Error returned when a [`crate::SystemConfig`] would be invalid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The node count is zero or exceeds [`crate::MAX_NODES`].
    InvalidNodeCount(usize),
    /// A size parameter must be a power of two but is not.
    NotPowerOfTwo {
        /// The parameter's name.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// The macroblock size is smaller than the block size.
    MacroblockTooSmall {
        /// The offending macroblock size in bytes.
        macroblock_bytes: u64,
        /// The block size in bytes.
        block_bytes: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidNodeCount(n) => {
                write!(
                    f,
                    "invalid node count {n} (must be 1..={})",
                    crate::MAX_NODES
                )
            }
            ConfigError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a power of two, got {value}")
            }
            ConfigError::MacroblockTooSmall {
                macroblock_bytes,
                block_bytes,
            } => write!(
                f,
                "macroblock size {macroblock_bytes} smaller than block size {block_bytes}"
            ),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ConfigError::InvalidNodeCount(0)
            .to_string()
            .contains("invalid node count 0"));
        let e = ConfigError::NotPowerOfTwo {
            what: "macroblock size",
            value: 3,
        };
        assert!(e.to_string().contains("power of two"));
        let e = ConfigError::MacroblockTooSmall {
            macroblock_bytes: 32,
            block_bytes: 64,
        };
        assert!(e.to_string().contains("smaller than block size"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ConfigError>();
    }
}
