//! A reusable open-addressing hash table for `u64`-keyed hot paths.
//!
//! Two per-miss hot paths in the stack need the same storage shape: the
//! coherence tracker's block-state table and the unbounded predictor
//! tables of `dsp-core`. Both map non-adversarial `u64` keys (block /
//! macroblock numbers, PCs) to small plain-data entries, never remove
//! keys, and are probed millions of times per run. [`OpenTable`] is that
//! shape, factored out once: FxHash-style mixing ([`crate::hash`]),
//! power-of-two capacity, linear probing, growth at ¾ load. Entries are
//! never removed, which keeps probe chains tombstone-free.

use crate::hash::mix64;

/// One slot: the key, its entry, and whether the slot is occupied.
///
/// An explicit flag (rather than a reserved sentinel key) keeps every
/// `u64` usable as a key.
#[derive(Clone, Debug)]
struct Slot<V> {
    key: u64,
    used: bool,
    value: V,
}

/// Open-addressing hash table mapping `u64` keys to `V` entries.
///
/// Power-of-two capacity, linear probing, grows at ¾ load, no removal.
/// `V: Clone + Default` because growth relocates slots and vacant slots
/// are eagerly default-initialized (plain-data entries make both free).
///
/// # Example
///
/// ```
/// use dsp_types::OpenTable;
///
/// let mut table: OpenTable<u32> = OpenTable::new();
/// assert_eq!(table.get(42), None);
/// let (entry, inserted) = table.get_or_insert_default(42);
/// assert!(inserted);
/// *entry = 7;
/// assert_eq!(table.get(42), Some(&7));
/// assert_eq!(table.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct OpenTable<V> {
    slots: Vec<Slot<V>>,
    len: usize,
}

impl<V: Clone + Default> OpenTable<V> {
    /// Creates an empty table (no slots are allocated until the first
    /// insertion).
    pub fn new() -> Self {
        OpenTable {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty table presized to hold `expected` keys without
    /// growing.
    ///
    /// Growth rehashes every live slot, and a table filled from the
    /// default 1024-slot floor pays that rehash at every doubling —
    /// measurable when a fresh table is built per short run, as the
    /// timing simulator's coherence tracker is. The slot array still
    /// respects the ¾ load cap, so `expected` keys fit without a single
    /// rehash; exceeding the estimate just resumes normal doubling.
    pub fn with_capacity(expected: usize) -> Self {
        if expected == 0 {
            return OpenTable::new();
        }
        let slots = (expected * 4 / 3 + 1).next_power_of_two().max(1024);
        OpenTable {
            slots: vec![
                Slot {
                    key: 0,
                    used: false,
                    value: V::default(),
                };
                slots
            ],
            len: 0,
        }
    }

    /// Number of live keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no keys.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Index of `key`'s slot: either the slot holding it or the first
    /// empty slot of its probe chain. Requires a non-empty slot array
    /// with at least one free slot (guaranteed by the ¾ load cap).
    #[inline]
    fn probe(&self, key: u64) -> usize {
        let mask = self.slots.len() - 1;
        let mut idx = mix64(key) as usize & mask;
        loop {
            let slot = &self.slots[idx];
            if !slot.used || slot.key == key {
                return idx;
            }
            idx = (idx + 1) & mask;
        }
    }

    /// The entry for `key`, if it was ever inserted.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        if self.slots.is_empty() {
            return None;
        }
        let slot = &self.slots[self.probe(key)];
        slot.used.then_some(&slot.value)
    }

    /// Mutable entry for `key`, if it was ever inserted.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        if self.slots.is_empty() {
            return None;
        }
        let idx = self.probe(key);
        let slot = &mut self.slots[idx];
        slot.used.then_some(&mut slot.value)
    }

    /// The combined lookup: returns `key`'s entry, inserting the default
    /// first if absent, plus whether the insertion happened. One hash,
    /// one probe chain — this is the only operation on the per-miss
    /// paths built over this table.
    #[inline]
    pub fn get_or_insert_default(&mut self, key: u64) -> (&mut V, bool) {
        // Grow at ¾ load, *before* probing, so the probe index stays
        // valid and a free slot always terminates the chain.
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let idx = self.probe(key);
        let slot = &mut self.slots[idx];
        let inserted = !slot.used;
        if inserted {
            slot.key = key;
            slot.used = true;
            slot.value = V::default();
            self.len += 1;
        }
        (&mut slot.value, inserted)
    }

    /// Like [`OpenTable::get_or_insert_default`], but a missing entry
    /// is initialized with `init` instead of `V::default()`.
    #[inline]
    pub fn get_or_insert_with(&mut self, key: u64, init: impl FnOnce() -> V) -> (&mut V, bool) {
        let (entry, inserted) = self.get_or_insert_default(key);
        if inserted {
            *entry = init();
        }
        (entry, inserted)
    }

    /// Iterates over `(key, &entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        self.slots
            .iter()
            .filter(|s| s.used)
            .map(|s| (s.key, &s.value))
    }

    /// Doubles the slot array (from a 1024-slot floor, so building a
    /// typical multi-thousand-key working set pays only a handful of
    /// rehashes) and reinserts every occupied slot.
    #[cold]
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(1024);
        let empty = Slot {
            key: 0,
            used: false,
            value: V::default(),
        };
        let old = std::mem::replace(&mut self.slots, vec![empty; new_cap]);
        let mask = new_cap - 1;
        for slot in old.into_iter().filter(|s| s.used) {
            let mut idx = mix64(slot.key) as usize & mask;
            while self.slots[idx].used {
                idx = (idx + 1) & mask;
            }
            self.slots[idx] = slot;
        }
    }
}

impl<V: Clone + Default> Default for OpenTable<V> {
    fn default() -> Self {
        OpenTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_reads_none() {
        let t: OpenTable<u32> = OpenTable::new();
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(u64::MAX), None);
        assert!(t.is_empty());
    }

    #[test]
    fn get_mut_on_empty_is_none() {
        let mut t: OpenTable<u32> = OpenTable::new();
        assert_eq!(t.get_mut(9), None);
    }

    #[test]
    fn insert_then_read_back() {
        let mut t: OpenTable<u32> = OpenTable::new();
        let (v, inserted) = t.get_or_insert_default(7);
        assert!(inserted);
        *v = 70;
        assert_eq!(t.get(7), Some(&70));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn insert_is_idempotent_and_preserves_entry() {
        let mut t: OpenTable<u32> = OpenTable::new();
        *t.get_or_insert_default(7).0 = 70;
        let (v, inserted) = t.get_or_insert_default(7);
        assert!(!inserted, "second combined lookup must not re-insert");
        assert_eq!(*v, 70);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn extreme_keys_are_usable() {
        let mut t: OpenTable<u64> = OpenTable::new();
        for key in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63] {
            *t.get_or_insert_default(key).0 = key ^ 0xff;
        }
        for key in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63] {
            assert_eq!(t.get(key), Some(&(key ^ 0xff)));
        }
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn presized_table_matches_grown_table() {
        let mut grown: OpenTable<u64> = OpenTable::new();
        let mut presized: OpenTable<u64> = OpenTable::with_capacity(5_000);
        let before = presized.slots.len();
        for i in 0..5_000u64 {
            *grown.get_or_insert_default(i * 17).0 = i;
            *presized.get_or_insert_default(i * 17).0 = i;
        }
        assert_eq!(presized.slots.len(), before, "no growth within capacity");
        assert_eq!(grown.len(), presized.len());
        for i in 0..5_000u64 {
            assert_eq!(grown.get(i * 17), presized.get(i * 17));
        }
        // Overflowing the estimate resumes normal doubling.
        for i in 5_000..20_000u64 {
            *presized.get_or_insert_default(i * 17).0 = i;
        }
        assert_eq!(presized.len(), 20_000);
        assert_eq!(presized.get(19_999 * 17), Some(&19_999));
        assert_eq!(OpenTable::<u64>::with_capacity(0).len(), 0);
    }

    #[test]
    fn growth_preserves_all_entries() {
        let mut t: OpenTable<u64> = OpenTable::new();
        // Sequential and stride-poisoned keys, well past several grows.
        for i in 0..10_000u64 {
            *t.get_or_insert_default(i << 6).0 = i;
        }
        assert_eq!(t.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(t.get(i << 6), Some(&i));
        }
        assert_eq!(t.get(10_000 << 6), None);
    }

    #[test]
    fn iter_visits_every_entry_once() {
        let mut t: OpenTable<u64> = OpenTable::new();
        for i in 0..100u64 {
            *t.get_or_insert_default(i).0 = i * 2;
        }
        let mut pairs: Vec<(u64, u64)> = t.iter().map(|(k, v)| (k, *v)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, (0..100).map(|i| (i, i * 2)).collect::<Vec<_>>());
    }

    #[test]
    fn matches_std_hashmap_on_mixed_operations() {
        use std::collections::HashMap;
        let mut table: OpenTable<u64> = OpenTable::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        // Deterministic pseudo-random walk over a colliding key space.
        let mut x = 0x1234_5678_9abc_def0u64;
        for step in 0..5_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (x >> 33) % 512; // force reuse and collisions
            match step % 3 {
                0 => {
                    *table.get_or_insert_default(key).0 = x;
                    *reference.entry(key).or_default() = x;
                }
                1 => {
                    assert_eq!(table.get(key), reference.get(&key));
                }
                _ => {
                    let ours = table.get_mut(key).map(|v| {
                        *v = v.wrapping_add(step);
                        *v
                    });
                    let theirs = reference.get_mut(&key).map(|v| {
                        *v = v.wrapping_add(step);
                        *v
                    });
                    assert_eq!(ours, theirs);
                }
            }
            assert_eq!(table.len(), reference.len());
        }
    }
}
