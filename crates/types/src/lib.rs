//! Common vocabulary types for the destination-set prediction stack.
//!
//! This crate defines the small, copy-friendly types shared by every other
//! crate in the workspace: processor/node identifiers ([`NodeId`]),
//! destination sets ([`DestSet`]), physical addresses and their block /
//! macroblock views ([`Address`], [`BlockAddr`], [`MacroblockAddr`]),
//! program counters ([`Pc`]), memory access kinds ([`AccessKind`]), the
//! MOSI line states used by all three coherence protocols
//! ([`LineState`]), and the system-wide configuration ([`SystemConfig`]).
//!
//! The paper this workspace reproduces — Martin et al., *Using
//! Destination-Set Prediction to Improve the Latency/Bandwidth Tradeoff in
//! Shared-Memory Multiprocessors*, ISCA 2003 — studies 16-processor
//! systems with 64-byte cache blocks and 1024-byte macroblocks; those are
//! the defaults here, but everything is parameterized.
//!
//! # Example
//!
//! ```
//! use dsp_types::{DestSet, NodeId, SystemConfig};
//!
//! let config = SystemConfig::isca03();
//! assert_eq!(config.num_nodes(), 16);
//!
//! let mut set: DestSet = DestSet::empty();
//! set.insert(NodeId::new(3));
//! set.insert(NodeId::new(7));
//! assert_eq!(set.len(), 2);
//! assert!(set.is_subset(DestSet::broadcast(config.num_nodes())));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod access;
mod addr;
mod config;
mod dest_set;
mod error;
pub mod hash;
mod inline_vec;
mod mosi;
mod node;
mod open_table;
mod ring;

pub use access::{AccessKind, MessageClass, ReqType};
pub use addr::{Address, BlockAddr, MacroblockAddr, Pc, BLOCK_BYTES, BLOCK_SHIFT};
pub use config::{SystemConfig, SystemConfigBuilder};
pub use dest_set::{DestSet, DestSet256, DestSet64, DestSetIter};
pub use error::ConfigError;
pub use inline_vec::{InlineVec, InlineVecIter};
pub use mosi::{LineState, Owner};
pub use node::{NodeId, MAX_NODES};
pub use open_table::OpenTable;
pub use ring::InlineRing;
