//! A fixed-capacity vector stored entirely inline (no heap allocation).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A vector with a compile-time capacity of `N`, stored inline.
///
/// The hot paths of the simulator produce small, bounded collections —
/// most prominently the per-destination arrival times of one crossbar
/// message, bounded by [`crate::MAX_NODES`] — millions of times per run.
/// `InlineVec` gives them `Vec`-like ergonomics (push, deref to slice,
/// iteration) without a heap allocation per message.
///
/// `T` must be `Copy + Default` so the backing array can be initialized
/// eagerly and elements moved out by value; that matches the plain-data
/// payloads this crate deals in.
///
/// # Example
///
/// ```
/// use dsp_types::InlineVec;
///
/// let mut v: InlineVec<u64, 8> = InlineVec::new();
/// v.push(3);
/// v.push(5);
/// assert_eq!(v.len(), 2);
/// assert_eq!(v[1], 5);
/// assert_eq!(v.iter().sum::<u64>(), 8);
/// ```
#[derive(Clone, Copy)]
pub struct InlineVec<T, const N: usize> {
    len: usize,
    items: [T; N],
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector.
    #[inline]
    pub fn new() -> Self {
        InlineVec {
            len: 0,
            items: [T::default(); N],
        }
    }

    /// The compile-time capacity `N`.
    #[inline]
    pub const fn capacity(&self) -> usize {
        N
    }

    /// Appends an element.
    ///
    /// # Panics
    ///
    /// Panics if the vector already holds `N` elements.
    #[inline]
    pub fn push(&mut self, item: T) {
        assert!(self.len < N, "InlineVec capacity {N} exceeded");
        self.items[self.len] = item;
        self.len += 1;
    }

    /// Removes all elements (O(1); elements are `Copy`, nothing drops).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The initialized elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.items[..self.len]
    }

    /// The initialized elements as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.items[..self.len]
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> DerefMut for InlineVec<T, N> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + Default + PartialEq, const N: usize, const M: usize> PartialEq<[T; M]>
    for InlineVec<T, N>
{
    fn eq(&self, other: &[T; M]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<&[T]> for InlineVec<T, N> {
    fn eq(&self, other: &&[T]) -> bool {
        self.as_slice() == *other
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<Vec<T>> for InlineVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = InlineVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = InlineVecIter<T, N>;

    fn into_iter(self) -> Self::IntoIter {
        InlineVecIter { vec: self, next: 0 }
    }
}

/// By-value iterator over an [`InlineVec`].
#[derive(Clone, Debug)]
pub struct InlineVecIter<T: Copy + Default, const N: usize> {
    vec: InlineVec<T, N>,
    next: usize,
}

impl<T: Copy + Default, const N: usize> Iterator for InlineVecIter<T, N> {
    type Item = T;

    #[inline]
    fn next(&mut self) -> Option<T> {
        if self.next < self.vec.len {
            let item = self.vec.items[self.next];
            self.next += 1;
            Some(item)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.vec.len - self.next;
        (n, Some(n))
    }
}

impl<T: Copy + Default, const N: usize> ExactSizeIterator for InlineVecIter<T, N> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.capacity(), 4);
        assert_eq!(v.iter().count(), 0);
    }

    #[test]
    fn push_and_index() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        v.push(10);
        v.push(20);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], 10);
        assert_eq!(v[1], 20);
        assert_eq!(v, [10, 20]);
    }

    #[test]
    #[should_panic(expected = "capacity 2 exceeded")]
    fn push_past_capacity_panics() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        v.push(1);
        v.push(2);
        v.push(3);
    }

    #[test]
    fn clear_resets_length() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        v.push(1);
        v.clear();
        assert!(v.is_empty());
        v.push(7);
        assert_eq!(v, [7]);
    }

    #[test]
    fn by_value_and_by_ref_iteration_agree() {
        let v: InlineVec<u64, 8> = [1u64, 2, 3].into_iter().collect();
        let by_ref: Vec<u64> = (&v).into_iter().copied().collect();
        let by_val: Vec<u64> = v.into_iter().collect();
        assert_eq!(by_ref, by_val);
        assert_eq!(by_val, vec![1, 2, 3]);
    }

    #[test]
    fn equality_against_vec_and_slice() {
        let v: InlineVec<u32, 4> = [1u32, 2].into_iter().collect();
        assert_eq!(v, vec![1, 2]);
        assert_eq!(v, [1, 2]);
        assert_eq!(v, [1u32, 2].as_slice());
        let w: InlineVec<u32, 4> = [1u32, 2].into_iter().collect();
        assert_eq!(v, w);
    }

    #[test]
    fn exact_size_iterator() {
        let v: InlineVec<u32, 4> = [1u32, 2, 3].into_iter().collect();
        let mut it = v.into_iter();
        assert_eq!(it.len(), 3);
        it.next();
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn mutable_slice_access() {
        let mut v: InlineVec<u32, 4> = [5u32, 6].into_iter().collect();
        v.as_mut_slice()[0] = 50;
        v[1] = 60;
        assert_eq!(v, [50, 60]);
    }

    #[test]
    fn debug_formats_as_list() {
        let v: InlineVec<u32, 4> = [1u32, 2].into_iter().collect();
        assert_eq!(format!("{v:?}"), "[1, 2]");
    }
}
