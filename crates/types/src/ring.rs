//! A FIFO ring with inline storage and amortized-allocation-free spill.

use std::fmt;

/// A first-in-first-out queue whose steady state lives entirely in a
/// fixed inline ring of `N` slots, spilling to a `Vec` only when a
/// burst overflows the ring.
///
/// The simulator's lazy training inboxes (one per node) motivate the
/// shape: each inbox absorbs a bounded burst of records between two
/// predictor observations, is drained from the front, and usually
/// returns to empty. `InlineRing` keeps that cycle allocation-free —
/// pushes land in the inline ring, pops consume from its head, and the
/// spill `Vec` (used only while a burst exceeds `N`) retains its
/// capacity across bursts, so even overflowing inboxes stop allocating
/// after warmup.
///
/// Ordering invariant: every element in the inline ring precedes every
/// element in the spill. A push goes to the ring only while the spill
/// is empty; once the queue fully drains, the spill resets and the ring
/// takes over again.
///
/// `T: Copy + Default` for the same reason as [`crate::InlineVec`]: the
/// backing array initializes eagerly and elements move out by value.
///
/// # Example
///
/// ```
/// use dsp_types::InlineRing;
///
/// let mut r: InlineRing<u64, 4> = InlineRing::new();
/// for v in 0..6 {
///     r.push_back(v); // 4 inline, 2 spilled
/// }
/// assert_eq!(r.len(), 6);
/// assert_eq!(r.front(), Some(&0));
/// let drained: Vec<u64> = std::iter::from_fn(|| r.pop_front()).collect();
/// assert_eq!(drained, vec![0, 1, 2, 3, 4, 5]);
/// assert!(r.is_empty());
/// ```
#[derive(Clone)]
pub struct InlineRing<T, const N: usize> {
    ring: [T; N],
    /// Index of the front element in `ring`.
    head: usize,
    /// Elements currently in the inline ring.
    ring_len: usize,
    /// Overflow storage; `spill[spill_head..]` are the live elements.
    spill: Vec<T>,
    /// Consumed prefix of `spill` (reset when the queue empties).
    spill_head: usize,
}

impl<T: Copy + Default, const N: usize> InlineRing<T, N> {
    /// Creates an empty ring.
    pub fn new() -> Self {
        InlineRing {
            ring: [T::default(); N],
            head: 0,
            ring_len: 0,
            spill: Vec::new(),
            spill_head: 0,
        }
    }

    /// The inline capacity `N` (the spill is unbounded).
    #[inline]
    pub const fn inline_capacity(&self) -> usize {
        N
    }

    /// Number of queued elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.ring_len + (self.spill.len() - self.spill_head)
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ring_len == 0 && self.spill.len() == self.spill_head
    }

    /// Number of elements currently held in the spill `Vec` (0 in the
    /// allocation-free steady state).
    #[inline]
    pub fn spilled(&self) -> usize {
        self.spill.len() - self.spill_head
    }

    /// Appends an element at the back.
    #[inline]
    pub fn push_back(&mut self, item: T) {
        // The ring may only grow while nothing is spilled, otherwise
        // FIFO order would interleave the two storages.
        if self.ring_len < N && self.spill.len() == self.spill_head {
            let idx = (self.head + self.ring_len) % N;
            self.ring[idx] = item;
            self.ring_len += 1;
        } else {
            self.spill.push(item);
        }
    }

    /// The front element, if any.
    #[inline]
    pub fn front(&self) -> Option<&T> {
        if self.ring_len > 0 {
            Some(&self.ring[self.head])
        } else {
            self.spill.get(self.spill_head)
        }
    }

    /// Removes and returns the front element.
    #[inline]
    pub fn pop_front(&mut self) -> Option<T> {
        if self.ring_len > 0 {
            let item = self.ring[self.head];
            self.head = (self.head + 1) % N;
            self.ring_len -= 1;
            if self.ring_len == 0 && self.spill.len() == self.spill_head {
                self.reset_storage();
            }
            return Some(item);
        }
        if self.spill_head < self.spill.len() {
            let item = self.spill[self.spill_head];
            self.spill_head += 1;
            if self.spill_head == self.spill.len() {
                self.reset_storage();
            } else if self.spill_head * 2 >= self.spill.len() {
                // Reclaim the consumed prefix once it reaches half the
                // buffer, so a queue that is continuously fed while
                // draining (and thus never empties) keeps its spill
                // proportional to the *live* backlog instead of
                // append-logging the whole stream. Each element moves
                // at most once per halving — amortized O(1).
                self.spill.drain(..self.spill_head);
                self.spill_head = 0;
            }
            return Some(item);
        }
        None
    }

    /// Removes all elements, keeping the spill capacity.
    pub fn clear(&mut self) {
        self.ring_len = 0;
        self.reset_storage();
    }

    /// Returns the storage to its allocation-free home position: the
    /// spill keeps its capacity but holds nothing, and the next pushes
    /// land in the inline ring.
    #[inline]
    fn reset_storage(&mut self) {
        self.head = 0;
        self.spill.clear();
        self.spill_head = 0;
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineRing<T, N> {
    fn default() -> Self {
        InlineRing::new()
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for InlineRing<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut list = f.debug_list();
        for i in 0..self.ring_len {
            list.entry(&self.ring[(self.head + i) % N]);
        }
        list.entries(&self.spill[self.spill_head..]);
        list.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let r: InlineRing<u32, 4> = InlineRing::new();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.front(), None);
        assert_eq!(r.inline_capacity(), 4);
    }

    #[test]
    fn fifo_within_ring() {
        let mut r: InlineRing<u32, 4> = InlineRing::new();
        r.push_back(1);
        r.push_back(2);
        assert_eq!(r.front(), Some(&1));
        assert_eq!(r.pop_front(), Some(1));
        assert_eq!(r.pop_front(), Some(2));
        assert_eq!(r.pop_front(), None);
    }

    #[test]
    fn overflow_spills_and_preserves_order() {
        let mut r: InlineRing<u32, 2> = InlineRing::new();
        for v in 0..7 {
            r.push_back(v);
        }
        assert_eq!(r.len(), 7);
        assert_eq!(r.spilled(), 5);
        let drained: Vec<u32> = std::iter::from_fn(|| r.pop_front()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4, 5, 6]);
        assert!(r.is_empty());
    }

    #[test]
    fn pushes_while_spilled_stay_in_order() {
        let mut r: InlineRing<u32, 2> = InlineRing::new();
        for v in 0..3 {
            r.push_back(v); // 0,1 inline; 2 spilled
        }
        assert_eq!(r.pop_front(), Some(0));
        // The ring has a free slot but the spill is non-empty: the new
        // element must queue behind the spilled one.
        r.push_back(3);
        let drained: Vec<u32> = std::iter::from_fn(|| r.pop_front()).collect();
        assert_eq!(drained, vec![1, 2, 3]);
    }

    #[test]
    fn drains_return_to_inline_storage() {
        let mut r: InlineRing<u32, 2> = InlineRing::new();
        for cycle in 0..5u32 {
            for v in 0..6 {
                r.push_back(cycle * 10 + v);
            }
            let drained: Vec<u32> = std::iter::from_fn(|| r.pop_front()).collect();
            assert_eq!(drained.len(), 6);
            assert!(r.is_empty());
            // After a full drain the next burst starts inline again.
            r.push_back(99);
            assert_eq!(r.spilled(), 0);
            assert_eq!(r.pop_front(), Some(99));
        }
    }

    #[test]
    fn wrap_around_reuses_slots() {
        let mut r: InlineRing<u32, 3> = InlineRing::new();
        for v in 0..100u32 {
            r.push_back(v);
            if v % 2 == 1 {
                // Pop one of the two queued: head circulates through
                // every slot many times.
                let front = *r.front().expect("non-empty");
                assert_eq!(r.pop_front(), Some(front));
            }
        }
        let mut rest: Vec<u32> = std::iter::from_fn(|| r.pop_front()).collect();
        let mut expect: Vec<u32> = (0..100).collect();
        expect.drain(..50);
        rest.sort_unstable();
        expect.sort_unstable();
        assert_eq!(rest, expect);
    }

    #[test]
    fn continuous_feed_keeps_spill_bounded() {
        // Push 2, pop 1 forever: the queue never empties, so without
        // prefix compaction the spill would grow with the whole stream.
        let mut r: InlineRing<u32, 4> = InlineRing::new();
        let mut next_push = 0u32;
        let mut next_pop = 0u32;
        for _ in 0..10_000 {
            r.push_back(next_push);
            r.push_back(next_push + 1);
            next_push += 2;
            assert_eq!(r.pop_front(), Some(next_pop));
            next_pop += 1;
        }
        assert_eq!(r.len(), 10_000);
        // Live backlog is 10k elements; the spill buffer must stay
        // proportional to it (≤ ~2× between compactions), not to the
        // 20k elements pushed overall.
        assert!(
            r.spill.len() <= 2 * r.len() + 4,
            "spill holds {} slots for {} live elements",
            r.spill.len(),
            r.len()
        );
        for _ in 0..10_000 {
            assert_eq!(r.pop_front(), Some(next_pop));
            next_pop += 1;
        }
        assert!(r.is_empty());
    }

    #[test]
    fn clear_keeps_working() {
        let mut r: InlineRing<u32, 2> = InlineRing::new();
        for v in 0..5 {
            r.push_back(v);
        }
        r.clear();
        assert!(r.is_empty());
        r.push_back(7);
        assert_eq!(r.spilled(), 0, "cleared ring starts inline again");
        assert_eq!(r.pop_front(), Some(7));
    }

    #[test]
    fn debug_lists_in_order() {
        let mut r: InlineRing<u32, 2> = InlineRing::new();
        for v in [4u32, 5, 6] {
            r.push_back(v);
        }
        assert_eq!(format!("{r:?}"), "[4, 5, 6]");
    }
}
