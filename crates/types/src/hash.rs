//! The workspace's one integer hash mixer.
//!
//! Every open-addressing table in the stack (block-state storage in
//! `dsp-coherence`, unbounded predictor storage in `dsp-core`) keys on
//! block or macroblock numbers — sequential-ish `u64`s that are not
//! attacker-controlled, so SipHash's DoS resistance is pure overhead.
//! They all hash through this module so the constant and the fold live
//! in exactly one place.

/// Multiplicative mixer constant (2^64 / φ, the same odd constant
/// FxHash-style hashers use).
pub const FX_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Mixes `key` into a table-index-ready hash: one multiply for high-bit
/// avalanche, then a fold of the high half into the low half so
/// power-of-two masking sees the mixed bits.
#[inline]
pub const fn mix64(key: u64) -> u64 {
    let h = key.wrapping_mul(FX_MIX);
    h ^ (h >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_sequential_keys_apart() {
        // Sequential block numbers must not land in sequential slots of
        // a power-of-two table (the whole point of the mixer).
        let mask = 1023u64;
        let mut same_delta = 0;
        for k in 0..1000u64 {
            let a = mix64(k) & mask;
            let b = mix64(k + 1) & mask;
            if b.wrapping_sub(a) == 1 {
                same_delta += 1;
            }
        }
        assert!(same_delta < 50, "mixer left {same_delta} sequential pairs");
    }

    #[test]
    fn deterministic_and_distinct() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(0), mix64(1));
        assert_eq!(mix64(0), 0, "zero maps to zero (harmless fixed point)");
    }
}
