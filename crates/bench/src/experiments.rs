//! One driver function per paper table/figure.
//!
//! Every driver is now a *plan declaration* — a grid of
//! [`engine::Cell`]s — plus a row-formatting closure; the
//! [`engine::SweepRunner`] executes the cells in parallel while sharing
//! one generated trace per (workload, config, footprint, seed, length)
//! and streaming it into each evaluator. Output is byte-identical to a
//! single-threaded run (see `engine`'s determinism notes). Each
//! function returns a [`TextTable`] whose rows are the series the paper
//! plots; the `repro` binary prints them and saves CSVs. Absolute
//! values depend on the synthetic substrate, but the *shapes* — who
//! wins, by what factor, where the crossovers are — reproduce the
//! paper (see EXPERIMENTS.md for the side-by-side).

use dsp_analysis::{fmt_f, TextTable, TradeoffPoint};
use dsp_core::{Capacity, Indexing, PredictorConfig};
use dsp_sim::{CpuModel, ProtocolKind, TargetSystem, TopologySpec, Toxic, ToxicSpec};
use dsp_trace::Workload;
use dsp_types::SystemConfig;

use crate::engine::{self, Cell, CellOutput, ExperimentPlan, SweepRunner};
use crate::scale::Scale;

/// The deterministic seed every experiment uses.
pub const SEED: u64 = 0x15CA_2003;

/// The paper's 1024-byte macroblock indexing.
const MB: Indexing = Indexing::Macroblock { bytes: 1024 };

/// The four standout predictor configurations of Figure 5: 8192
/// entries, 1024-byte macroblock indexing.
pub fn standout_predictors() -> Vec<PredictorConfig> {
    vec![
        PredictorConfig::owner()
            .indexing(MB)
            .entries(Capacity::ISCA03),
        PredictorConfig::broadcast_if_shared()
            .indexing(MB)
            .entries(Capacity::ISCA03),
        PredictorConfig::group()
            .indexing(MB)
            .entries(Capacity::ISCA03),
        PredictorConfig::owner_group()
            .indexing(MB)
            .entries(Capacity::ISCA03),
    ]
}

/// The four base policies swept by Figure 6.
fn base_policies() -> [PredictorConfig; 4] {
    [
        PredictorConfig::owner(),
        PredictorConfig::broadcast_if_shared(),
        PredictorConfig::group(),
        PredictorConfig::owner_group(),
    ]
}

/// Appends one `(workload, label, msgs/miss, indirections %)` row.
fn tradeoff_row(table: &mut TextTable, workload: &str, point: &TradeoffPoint) {
    table.row([
        workload.to_string(),
        point.label.clone(),
        fmt_f(point.request_messages_per_miss(), 2),
        fmt_f(point.indirection_pct(), 1),
    ]);
}

/// The shared renderer for Figure 5/6-style tables: baselines emit two
/// rows, every predictor cell one, all labeled by the cell's workload.
fn standard_tradeoff_render(cells: &[Cell], outputs: &[CellOutput], table: &mut TextTable) {
    for (cell, output) in cells.iter().zip(outputs) {
        let workload = cell.workload().expect("trace-driven cell").name();
        match output {
            CellOutput::Baselines {
                snooping,
                directory,
            } => {
                tradeoff_row(table, workload, snooping);
                tradeoff_row(table, workload, directory);
            }
            CellOutput::Tradeoff(point) => tradeoff_row(table, workload, point),
            other => panic!("unexpected output in tradeoff table: {other:?}"),
        }
    }
}

/// A plan holding one characterization cell per workload.
fn characterization_plan(title: &str, columns: &[&'static str], scale: &Scale) -> ExperimentPlan {
    let config = SystemConfig::isca03();
    let mut plan = ExperimentPlan::new(title, columns, scale);
    for workload in Workload::ALL {
        plan.push(Cell::Characterize { config, workload });
    }
    plan
}

/// A plan of `Baselines + predictors` cells for each listed workload.
fn tradeoff_plan(
    title: &str,
    scale: &Scale,
    workloads: &[Workload],
    predictors: &[PredictorConfig],
) -> ExperimentPlan {
    let config = SystemConfig::isca03();
    let columns = &["workload", "config", "request msgs/miss", "indirections %"];
    let mut plan = ExperimentPlan::new(title, columns, scale);
    for &workload in workloads {
        plan.push(Cell::Baselines { config, workload });
        for &predictor in predictors {
            plan.push(Cell::Tradeoff {
                config,
                workload,
                predictor,
            });
        }
    }
    plan.render(standard_tradeoff_render)
}

/// Table 2 as an [`ExperimentPlan`].
pub fn table2_plan(scale: &Scale) -> ExperimentPlan {
    characterization_plan(
        "Table 2: Workload Properties (synthetic substrate)",
        &[
            "workload",
            "mem 64B (MB)",
            "mem 1KB (MB)",
            "miss PCs",
            "misses",
            "misses/1k instr",
            "dir indirections %",
        ],
        scale,
    )
    .render(|_, outputs, table| {
        for output in outputs {
            let r = output.characterization();
            table.row([
                r.workload.clone(),
                fmt_f(r.blocks_touched as f64 * 64.0 / (1 << 20) as f64, 1),
                fmt_f(r.macroblocks_touched as f64 * 1024.0 / (1 << 20) as f64, 1),
                r.static_pcs.to_string(),
                r.misses.to_string(),
                fmt_f(r.misses_per_kilo_instr, 1),
                fmt_f(r.indirection_pct(), 1),
            ]);
        }
    })
}

/// Table 2: workload properties.
pub fn table2(scale: &Scale) -> TextTable {
    SweepRunner::new().run(&table2_plan(scale))
}

/// Figure 2 as an [`ExperimentPlan`].
pub fn fig2_plan(scale: &Scale) -> ExperimentPlan {
    characterization_plan(
        "Figure 2: Sharing Histogram (% of misses needing n other processors)",
        &["workload", "bin", "reads %", "writes %"],
        scale,
    )
    .render(|_, outputs, table| {
        for output in outputs {
            let r = output.characterization();
            for (bin, label) in [(0, "0"), (1, "1"), (2, "2"), (3, "3+")] {
                let (reads, writes) = r.sharing.percent(bin);
                table.row([
                    r.workload.clone(),
                    label.to_string(),
                    fmt_f(reads, 1),
                    fmt_f(writes, 1),
                ]);
            }
        }
    })
}

/// Figure 2: instantaneous sharing histogram (observers needed per
/// miss, split read/write).
pub fn fig2(scale: &Scale) -> TextTable {
    SweepRunner::new().run(&fig2_plan(scale))
}

/// Figure 3 as an [`ExperimentPlan`].
pub fn fig3_plan(scale: &Scale) -> ExperimentPlan {
    characterization_plan(
        "Figure 3: Degree of Sharing (percent of blocks / misses at degree n)",
        &["workload", "degree", "blocks %", "misses %"],
        scale,
    )
    .render(|_, outputs, table| {
        for output in outputs {
            let r = output.characterization();
            let total_blocks: u64 = r.degree_blocks.iter().sum();
            let total_misses: u64 = r.degree_misses.iter().sum();
            for d in 1..r.degree_blocks.len() {
                table.row([
                    r.workload.clone(),
                    d.to_string(),
                    fmt_f(
                        100.0 * r.degree_blocks[d] as f64 / total_blocks.max(1) as f64,
                        2,
                    ),
                    fmt_f(
                        100.0 * r.degree_misses[d] as f64 / total_misses.max(1) as f64,
                        2,
                    ),
                ]);
            }
        }
    })
}

/// Figure 3: blocks touched by n processors, unweighted (a) and
/// weighted by misses (b).
pub fn fig3(scale: &Scale) -> TextTable {
    SweepRunner::new().run(&fig3_plan(scale))
}

/// Figure 4 as an [`ExperimentPlan`].
pub fn fig4_plan(scale: &Scale) -> ExperimentPlan {
    characterization_plan(
        "Figure 4: Sharing Locality (cumulative % of c2c misses in hottest k entities)",
        &[
            "workload",
            "k",
            "64B blocks %",
            "1KB macroblocks %",
            "static PCs %",
        ],
        scale,
    )
    .render(|_, outputs, table| {
        for output in outputs {
            let r = output.characterization();
            for k in [100usize, 500, 1_000, 2_000, 5_000, 10_000] {
                table.row([
                    r.workload.clone(),
                    k.to_string(),
                    fmt_f(r.block_locality.percent_covered_by(k), 1),
                    fmt_f(r.macroblock_locality.percent_covered_by(k), 1),
                    fmt_f(r.pc_locality.percent_covered_by(k), 1),
                ]);
            }
        }
    })
}

/// Figure 4: cumulative distribution of cache-to-cache misses over the
/// hottest blocks / macroblocks / static instructions.
pub fn fig4(scale: &Scale) -> TextTable {
    SweepRunner::new().run(&fig4_plan(scale))
}

/// Figure 5 as an [`ExperimentPlan`].
pub fn fig5_plan(scale: &Scale) -> ExperimentPlan {
    tradeoff_plan(
        "Figure 5: Standout Predictor Results (8192 entries, 1024B macroblock)",
        scale,
        &Workload::ALL,
        &standout_predictors(),
    )
}

/// Figure 5: the four standout predictors against both baselines on
/// every workload (8192 entries, 1024 B macroblock indexing).
pub fn fig5(scale: &Scale) -> TextTable {
    SweepRunner::new().run(&fig5_plan(scale))
}

/// Figure 6(a) as an [`ExperimentPlan`].
pub fn fig6a_plan(scale: &Scale) -> ExperimentPlan {
    let mut predictors = Vec::new();
    for ix in [Indexing::DataBlock, Indexing::ProgramCounter] {
        for base in base_policies() {
            predictors.push(base.indexing(ix).entries(Capacity::Unbounded));
        }
    }
    tradeoff_plan(
        "Figure 6a: PC vs data-block indexing (OLTP, unbounded)",
        scale,
        &[Workload::Oltp],
        &predictors,
    )
}

/// Figure 6(a): program-counter vs data-block indexing (unbounded, OLTP).
pub fn fig6a(scale: &Scale) -> TextTable {
    SweepRunner::new().run(&fig6a_plan(scale))
}

/// Figure 6(b) as an [`ExperimentPlan`].
pub fn fig6b_plan(scale: &Scale) -> ExperimentPlan {
    let mut predictors = Vec::new();
    for bytes in [64u64, 256, 1024] {
        let ix = if bytes == 64 {
            Indexing::DataBlock
        } else {
            Indexing::Macroblock { bytes }
        };
        for base in base_policies() {
            predictors.push(base.indexing(ix).entries(Capacity::Unbounded));
        }
    }
    tradeoff_plan(
        "Figure 6b: Macroblock indexing (OLTP, unbounded)",
        scale,
        &[Workload::Oltp],
        &predictors,
    )
}

/// Figure 6(b): macroblock-size sensitivity (unbounded, OLTP).
pub fn fig6b(scale: &Scale) -> TextTable {
    SweepRunner::new().run(&fig6b_plan(scale))
}

/// Figure 6(c) as an [`ExperimentPlan`].
pub fn fig6c_plan(scale: &Scale) -> ExperimentPlan {
    let mut predictors = Vec::new();
    for capacity in [
        Capacity::Unbounded,
        Capacity::Finite {
            entries: 32_768,
            ways: 4,
        },
        Capacity::Finite {
            entries: 8_192,
            ways: 4,
        },
    ] {
        for base in base_policies() {
            predictors.push(base.indexing(MB).entries(capacity));
        }
    }
    for entries in [4_096usize, 8_192, 32_768] {
        predictors.push(
            PredictorConfig::sticky_spatial(1).entries(Capacity::Finite { entries, ways: 1 }),
        );
    }
    tradeoff_plan(
        "Figure 6c: Predictor size and Sticky-Spatial(1) (OLTP, 1024B macroblock)",
        scale,
        &[Workload::Oltp],
        &predictors,
    )
}

/// Figure 6(c): finite sizes (8192 / 32768 / unbounded) and the
/// Sticky-Spatial(1) prior-work baseline (OLTP, 1024 B macroblocks).
pub fn fig6c(scale: &Scale) -> TextTable {
    SweepRunner::new().run(&fig6c_plan(scale))
}

/// A runtime (Figure 7/8-style) plan: one timing-simulation cell per
/// workload, each running both baselines plus the standout predictors.
fn runtime_plan(
    title: &str,
    scale: &Scale,
    workloads: &[Workload],
    cpu: CpuModel,
) -> ExperimentPlan {
    let config = SystemConfig::isca03();
    let columns = &[
        "workload",
        "protocol",
        "norm runtime",
        "norm traffic/miss",
        "avg miss ns",
        "indirections %",
    ];
    let protocols: Vec<ProtocolKind> = standout_predictors()
        .into_iter()
        .map(ProtocolKind::Multicast)
        .collect();
    let mut plan = ExperimentPlan::new(title, columns, scale);
    for &workload in workloads {
        plan.push(Cell::Runtime {
            config,
            workload,
            cpu,
            target: None,
            toxics: None,
            topology: None,
            protocols: protocols.clone(),
        });
    }
    plan.render(runtime_render)
}

/// Renderer for runtime tables: every simulated protocol of every cell
/// becomes one row labeled with the cell's workload.
fn runtime_render(cells: &[Cell], outputs: &[CellOutput], table: &mut TextTable) {
    for (cell, output) in cells.iter().zip(outputs) {
        let workload = cell.workload().expect("runtime cell").name();
        for point in output.runtime() {
            table.row([
                workload.to_string(),
                point.label.clone(),
                fmt_f(point.normalized_runtime, 1),
                fmt_f(point.normalized_traffic, 1),
                fmt_f(point.report.avg_miss_latency_ns(), 0),
                fmt_f(point.report.indirection_pct(), 1),
            ]);
        }
    }
}

/// Figure 7 as an [`ExperimentPlan`].
pub fn fig7_plan(scale: &Scale) -> ExperimentPlan {
    runtime_plan(
        "Figure 7: Runtime vs traffic (simple processor model; directory runtime = 100, snooping traffic = 100)",
        scale,
        &Workload::ALL,
        CpuModel::Simple,
    )
}

/// Figure 7: normalized runtime vs normalized traffic, simple CPU
/// model, all six workloads.
pub fn fig7(scale: &Scale) -> TextTable {
    SweepRunner::new().run(&fig7_plan(scale))
}

/// Figure 8 as an [`ExperimentPlan`].
pub fn fig8_plan(scale: &Scale) -> ExperimentPlan {
    runtime_plan(
        "Figure 8: Runtime vs traffic (detailed processor model)",
        scale,
        &[Workload::Apache, Workload::Oltp, Workload::SpecJbb],
        CpuModel::Detailed { max_outstanding: 4 },
    )
}

/// Figure 8: same with the detailed (out-of-order) CPU model on the
/// three workloads the paper simulates.
pub fn fig8(scale: &Scale) -> TextTable {
    SweepRunner::new().run(&fig8_plan(scale))
}

/// Ablations as an [`ExperimentPlan`].
pub fn ablations_plan(scale: &Scale) -> ExperimentPlan {
    let config = SystemConfig::isca03();
    let mut predictors = Vec::new();
    // (a) Macroblock sweep beyond the paper's 1024 B.
    for bytes in [256u64, 1024, 2048, 4096] {
        predictors.push(
            PredictorConfig::group()
                .indexing(Indexing::Macroblock { bytes })
                .entries(Capacity::ISCA03),
        );
    }
    // (b) Sticky-Spatial spans 0 / 1 / 2.
    for span in [0usize, 1, 2] {
        predictors.push(PredictorConfig::sticky_spatial(span));
    }
    // (c) Associativity of the Group table at fixed capacity.
    for ways in [1usize, 2, 4, 8] {
        predictors.push(
            PredictorConfig::group()
                .indexing(MB)
                .entries(Capacity::Finite {
                    entries: 8192,
                    ways,
                }),
        );
    }
    let mut plan = ExperimentPlan::new(
        "Ablations (OLTP): macroblock size, sticky span, associativity",
        &["workload", "config", "request msgs/miss", "indirections %"],
        scale,
    );
    for &predictor in &predictors {
        plan.push(Cell::Tradeoff {
            config,
            workload: Workload::Oltp,
            predictor,
        });
    }
    plan.render(|cells, outputs, table| {
        for (cell, output) in cells.iter().zip(outputs) {
            let Cell::Tradeoff { predictor, .. } = cell else {
                panic!("ablation plans contain only tradeoff cells");
            };
            let point = output.tradeoff();
            let label = match predictor.capacity() {
                Capacity::Finite { entries, ways } => {
                    format!("{} [{}x{}]", point.label, entries / ways, ways)
                }
                Capacity::Unbounded => point.label.clone(),
            };
            table.row([
                "OLTP".to_string(),
                label,
                fmt_f(point.request_messages_per_miss(), 2),
                fmt_f(point.indirection_pct(), 1),
            ]);
        }
    })
}

/// Ablations of design choices DESIGN.md calls out: macroblock sizes
/// past 1024 B, Sticky-Spatial neighbor span, and table associativity.
pub fn ablations(scale: &Scale) -> TextTable {
    SweepRunner::new().run(&ablations_plan(scale))
}

/// The extension study as an [`ExperimentPlan`].
pub fn extensions_plan(scale: &Scale) -> ExperimentPlan {
    let config = SystemConfig::isca03();
    let owner_mb = PredictorConfig::owner().indexing(MB);
    let two_level = PredictorConfig::two_level_owner().indexing(MB);
    let protocols = vec![
        ProtocolKind::DirectoryPredicted(owner_mb),
        ProtocolKind::DirectoryPredicted(two_level),
        ProtocolKind::Multicast(owner_mb),
        ProtocolKind::Multicast(two_level),
    ];
    let mut plan = ExperimentPlan::new(
        "Extension: predictive directory (owner prediction) vs the paper's protocols",
        &[
            "workload",
            "protocol",
            "norm runtime",
            "norm traffic/miss",
            "avg miss ns",
            "indirections %",
        ],
        scale,
    );
    for workload in [Workload::Oltp, Workload::Apache] {
        plan.push(Cell::Runtime {
            config,
            workload,
            cpu: CpuModel::Simple,
            target: None,
            toxics: None,
            topology: None,
            protocols: protocols.clone(),
        });
    }
    plan.render(runtime_render)
}

/// Extension study: the Acacio-style predictive directory (cited in the
/// paper's introduction) against the paper's protocols, under the
/// timing model. Shows the 3-hop→2-hop conversion and where multicast
/// snooping still wins.
pub fn extensions(scale: &Scale) -> TextTable {
    SweepRunner::new().run(&extensions_plan(scale))
}

/// The scaling study as an [`ExperimentPlan`].
pub fn scaling_plan(scale: &Scale) -> ExperimentPlan {
    let mut plan = ExperimentPlan::new(
        "Scaling: request messages per miss vs system size (OLTP-like sharing)",
        &[
            "nodes",
            "config",
            "request msgs/miss",
            "indirections %",
            "vs broadcast",
        ],
        scale,
    );
    for nodes in [8usize, 16, 32, 64, 128, 256] {
        let config = SystemConfig::builder()
            .num_nodes(nodes)
            .build()
            .expect("valid");
        plan.push(Cell::Baselines {
            config,
            workload: Workload::Oltp,
        });
        for predictor in [
            PredictorConfig::owner().indexing(MB),
            PredictorConfig::group().indexing(MB),
            PredictorConfig::owner_group().indexing(MB),
        ] {
            plan.push(Cell::Tradeoff {
                config,
                workload: Workload::Oltp,
                predictor,
            });
        }
    }
    // Timing-sim (fig7-style) rows at the large node counts: the full
    // discrete-event simulator, not just the trace-driven evaluator.
    // Affordable since predictor training stopped queuing one wheel
    // event per request destination — event-loop traffic is O(misses)
    // instead of O(misses × destinations), which is what used to grow
    // quadratically with the broadcast fan-out at 256 nodes.
    for nodes in [64usize, 128, 256] {
        let config = SystemConfig::builder()
            .num_nodes(nodes)
            .build()
            .expect("valid");
        plan.push(Cell::Runtime {
            config,
            workload: Workload::Oltp,
            cpu: CpuModel::Simple,
            target: None,
            toxics: None,
            topology: None,
            protocols: vec![ProtocolKind::Multicast(
                PredictorConfig::owner_group().indexing(MB),
            )],
        });
    }
    plan.render(|cells, outputs, table| {
        let mut row = |nodes: usize, label: &str, msgs_per_miss: f64, indirection_pct: f64| {
            let broadcast_cost = (nodes - 1) as f64;
            table.row([
                nodes.to_string(),
                label.to_string(),
                fmt_f(msgs_per_miss, 2),
                fmt_f(indirection_pct, 1),
                fmt_f(msgs_per_miss / broadcast_cost, 3),
            ]);
        };
        for (cell, output) in cells.iter().zip(outputs) {
            let nodes = cell.config().expect("scaling cell").num_nodes();
            match output {
                CellOutput::Baselines {
                    snooping,
                    directory,
                } => {
                    for point in [snooping, directory] {
                        row(
                            nodes,
                            &point.label,
                            point.request_messages_per_miss(),
                            point.indirection_pct(),
                        );
                    }
                }
                CellOutput::Tradeoff(point) => row(
                    nodes,
                    &point.label,
                    point.request_messages_per_miss(),
                    point.indirection_pct(),
                ),
                CellOutput::Runtime(points) => {
                    for point in points {
                        row(
                            nodes,
                            &format!("{} (timing sim)", point.label),
                            point.report.request_messages_per_miss(),
                            point.report.indirection_pct(),
                        );
                    }
                }
                other => panic!("unexpected output in scaling table: {other:?}"),
            }
        }
    })
}

/// Scaling study: how the predictors behave as the machine grows from
/// 8 to 256 nodes (broadcast cost grows linearly; Group's advantage —
/// tracking sub-machine sharing groups — grows with it). The 128- and
/// 256-node rows exercise the multi-word `DestSet` representation and
/// the queue/table pressure the related work (criticality-aware
/// multiprocessors, cache-level prediction) motivates. The `(timing
/// sim)` rows at 64/128/256 nodes run the full discrete-event
/// simulator — the fig7-style path — at sizes that lazy predictor
/// training made affordable (wheel traffic no longer scales with the
/// request fan-out).
pub fn scaling(scale: &Scale) -> TextTable {
    SweepRunner::new().run(&scaling_plan(scale))
}

/// The bandwidth sweep as an [`ExperimentPlan`].
pub fn bandwidth_plan(scale: &Scale) -> ExperimentPlan {
    let config = SystemConfig::isca03();
    let mut plan = ExperimentPlan::new(
        "Bandwidth sweep (OLTP): runtime normalized to the 10 GB/s directory",
        &[
            "link GB/s",
            "protocol",
            "runtime",
            "avg miss ns",
            "traffic B/miss",
        ],
        scale,
    );
    // Cell 0 anchors the normalization: the directory at 10 GB/s.
    plan.push(Cell::Runtime {
        config,
        workload: Workload::Oltp,
        cpu: CpuModel::Simple,
        target: None,
        toxics: None,
        topology: None,
        protocols: Vec::new(),
    });
    for gbps in [1.0f64, 2.5, 5.0, 10.0] {
        let mut target = TargetSystem::isca03_default();
        target.interconnect.link_bytes_per_ns = gbps;
        plan.push(Cell::Runtime {
            config,
            workload: Workload::Oltp,
            cpu: CpuModel::Simple,
            target: Some(target),
            toxics: None,
            topology: None,
            protocols: vec![ProtocolKind::Multicast(
                PredictorConfig::owner_group().indexing(MB),
            )],
        });
    }
    plan.render(|cells, outputs, table| {
        let baseline = outputs[0].runtime()[1].report.runtime_ns.max(1);
        for (cell, output) in cells.iter().zip(outputs).skip(1) {
            let Cell::Runtime {
                target: Some(target),
                ..
            } = cell
            else {
                panic!("bandwidth sweep cells carry target overrides");
            };
            let gbps = target.interconnect.link_bytes_per_ns;
            for point in output.runtime() {
                table.row([
                    format!("{gbps}"),
                    point.label.clone(),
                    fmt_f(100.0 * point.report.runtime_ns as f64 / baseline as f64, 1),
                    fmt_f(point.report.avg_miss_latency_ns(), 0),
                    fmt_f(point.report.bytes_per_miss(), 0),
                ]);
            }
        }
    })
}

/// Bandwidth-sensitivity study (the design-point question the paper's
/// §5.3 sidesteps by assuming ample 10 GB/s links): sweep the link
/// bandwidth and watch snooping collapse under contention while the
/// bandwidth-efficient predictors hold their runtime advantage — the
/// motivation for the authors' earlier bandwidth-adaptive snooping.
pub fn bandwidth(scale: &Scale) -> TextTable {
    SweepRunner::new().run(&bandwidth_plan(scale))
}

/// A named toxic-severity preset for the `degraded` sweep.
///
/// Severities nest: each level keeps the previous level's fault models
/// and tightens them, so the sweep reads as one monotone stress axis —
/// `none` (the paper's ideal network), `mild` (jitter + 10% bandwidth
/// loss), `moderate` (+ periodic congestion bursts), `severe`
/// (+ transient link outages).
///
/// # Panics
///
/// Panics on an unknown severity name.
pub fn toxic_severity(name: &str) -> ToxicSpec {
    match name {
        "none" => ToxicSpec::none(),
        "mild" => ToxicSpec::none()
            .with(Toxic::LatencyJitter { max_ns: 10 })
            .with(Toxic::BandwidthDerate { percent: 90 }),
        "moderate" => ToxicSpec::none()
            .with(Toxic::LatencyJitter { max_ns: 25 })
            .with(Toxic::BandwidthDerate { percent: 70 })
            .with(Toxic::CongestionBurst {
                period_ns: 20_000,
                burst_ns: 2_000,
                slowdown: 4,
            }),
        "severe" => ToxicSpec::none()
            .with(Toxic::LatencyJitter { max_ns: 50 })
            .with(Toxic::BandwidthDerate { percent: 50 })
            .with(Toxic::CongestionBurst {
                period_ns: 10_000,
                burst_ns: 2_500,
                slowdown: 8,
            })
            .with(Toxic::Outage {
                period_ns: 50_000,
                down_ns: 5_000,
            }),
        other => panic!("unknown toxic severity {other:?}"),
    }
}

/// One (severity, network, node-count) case of the `degraded` sweep.
#[derive(Clone, Debug)]
pub struct DegradedCase {
    /// Severity preset name (see [`toxic_severity`]).
    pub severity: &'static str,
    /// The fault chain for this case.
    pub toxics: ToxicSpec,
    /// Network shape.
    pub topology: TopologySpec,
    /// Node count.
    pub nodes: usize,
}

impl DegradedCase {
    /// Row label for the network column (`crossbar/16`,
    /// `mesh8x8@5ns/64`).
    pub fn network(&self) -> String {
        format!("{}/{}", self.topology.label(self.nodes), self.nodes)
    }
}

/// The `degraded` sweep grid: the paper's 16-node crossbar under every
/// severity, plus a 64-node 8×8 mesh (15 ns injection channels, 5 ns
/// per hop) clean and severely degraded. Each group leads with its
/// `none` case, which anchors the group's runtime normalization.
pub fn degraded_cases() -> Vec<DegradedCase> {
    let mesh = TopologySpec::Mesh2d {
        cols: 8,
        link_ns: 15,
        hop_ns: 5,
    };
    let mut cases = Vec::new();
    for severity in ["none", "mild", "moderate", "severe"] {
        cases.push(DegradedCase {
            severity,
            toxics: toxic_severity(severity),
            topology: TopologySpec::Crossbar,
            nodes: 16,
        });
    }
    for severity in ["none", "severe"] {
        cases.push(DegradedCase {
            severity,
            toxics: toxic_severity(severity),
            topology: mesh,
            nodes: 64,
        });
    }
    cases
}

/// The degraded-interconnect sweep as an [`ExperimentPlan`]: predictor
/// policies × toxic severity, per-cell toxic/topology overrides on the
/// shared engine. Runtime is normalized to the same group's clean
/// (`none`) directory run, so each column shows how much of the
/// predictors' latency advantage survives network degradation.
pub fn degraded_plan(scale: &Scale) -> ExperimentPlan {
    let cases = degraded_cases();
    let mut plan = ExperimentPlan::new(
        "Degraded interconnect (OLTP): predictor policies × toxic severity",
        &[
            "severity",
            "network",
            "protocol",
            "runtime",
            "avg miss ns",
            "traffic B/miss",
            "retries/miss",
        ],
        scale,
    );
    for case in &cases {
        let config = SystemConfig::builder()
            .num_nodes(case.nodes)
            .build()
            .expect("valid node count");
        plan.push(Cell::Runtime {
            config,
            workload: Workload::Oltp,
            cpu: CpuModel::Simple,
            target: None,
            toxics: Some(case.toxics.clone()),
            topology: Some(case.topology),
            protocols: vec![
                ProtocolKind::Multicast(PredictorConfig::owner_group().indexing(MB)),
                ProtocolKind::Multicast(PredictorConfig::group().indexing(MB)),
            ],
        });
    }
    plan.render(move |_, outputs, table| {
        let mut baseline = 1u64;
        for (case, output) in degraded_cases().iter().zip(outputs) {
            if case.severity == "none" {
                // Each (network, nodes) group leads with its clean run;
                // its directory anchors the group's normalization.
                baseline = output.runtime()[1].report.runtime_ns.max(1);
            }
            for point in output.runtime() {
                let misses = point.report.measured_misses.max(1) as f64;
                table.row([
                    case.severity.to_string(),
                    case.network(),
                    point.label.clone(),
                    fmt_f(100.0 * point.report.runtime_ns as f64 / baseline as f64, 1),
                    fmt_f(point.report.avg_miss_latency_ns(), 0),
                    fmt_f(point.report.bytes_per_miss(), 0),
                    fmt_f(point.report.retries as f64 / misses, 2),
                ]);
            }
        }
    })
}

/// Destination-set prediction under a contended, faulty network — the
/// scenario the paper's ideal 50 ns crossbar cannot express. Every
/// toxic is deterministic under seed, so these rows are as reproducible
/// as the clean ones.
pub fn degraded(scale: &Scale) -> TextTable {
    SweepRunner::new().run(&degraded_plan(scale))
}

/// The model-checking sweep as an [`ExperimentPlan`].
pub fn verify_plan(scale: &Scale) -> ExperimentPlan {
    use dsp_verify::Bug;
    let mut plan = ExperimentPlan::new(
        "Protocol verification (exhaustive, all possible predictions)",
        &["model", "states", "transitions", "verdict"],
        scale,
    );
    for nodes in [2usize, 3] {
        plan.push(Cell::Verify { nodes, bug: None });
    }
    for bug in [
        Bug::SkipInvalidation,
        Bug::AcceptInsufficient,
        Bug::StaleDirectoryOwner,
    ] {
        plan.push(Cell::Verify {
            nodes: 3,
            bug: Some(bug),
        });
    }
    plan.render(|cells, outputs, table| {
        for (cell, output) in cells.iter().zip(outputs) {
            let Cell::Verify { nodes, bug } = cell else {
                panic!("verify plans contain only verify cells");
            };
            let report = output.verify();
            let (model, verdict) = match bug {
                None => (
                    format!("{nodes}-node multicast snooping"),
                    match &report.violation {
                        None => "all invariants hold".to_string(),
                        Some(v) => format!("VIOLATION: {}", v.invariant),
                    },
                ),
                Some(bug) => (
                    format!("{nodes}-node + {bug:?}"),
                    match &report.violation {
                        Some(v) => {
                            format!("caught: {} ({} -event trace)", v.invariant, v.trace.len())
                        }
                        None => "NOT caught (checker bug!)".to_string(),
                    },
                ),
            };
            table.row([
                model,
                report.states_explored.to_string(),
                report.transitions.to_string(),
                verdict,
            ]);
        }
    })
}

/// Runs the explicit-state model checker over the multicast protocol
/// (2- and 3-node models, all destination sets, all interleavings) and
/// over each injected bug, reporting state counts and verdicts.
pub fn verify(scale: &Scale) -> TextTable {
    SweepRunner::new().run(&verify_plan(scale))
}

/// The headline-claims audit as an [`ExperimentPlan`].
///
/// Cell layout: `0..6` baselines for every workload, `6` Owner on
/// Slashcode, `7..13` Broadcast-If-Shared everywhere, `13..19` Group
/// everywhere, `19` the OLTP timing run.
pub fn claims_plan(scale: &Scale) -> ExperimentPlan {
    let config = SystemConfig::isca03();
    let mut plan = ExperimentPlan::new(
        "Headline claims (paper wording -> measured)",
        &["claim", "measured", "verdict"],
        scale,
    );
    for workload in Workload::ALL {
        plan.push(Cell::Baselines { config, workload });
    }
    plan.push(Cell::Tradeoff {
        config,
        workload: Workload::Slashcode,
        predictor: PredictorConfig::owner().indexing(MB),
    });
    for workload in Workload::ALL {
        plan.push(Cell::Tradeoff {
            config,
            workload,
            predictor: PredictorConfig::broadcast_if_shared().indexing(MB),
        });
    }
    for workload in Workload::ALL {
        plan.push(Cell::Tradeoff {
            config,
            workload,
            predictor: PredictorConfig::group().indexing(MB),
        });
    }
    plan.push(Cell::Runtime {
        config,
        workload: Workload::Oltp,
        cpu: CpuModel::Simple,
        target: None,
        toxics: None,
        topology: None,
        protocols: vec![ProtocolKind::Multicast(
            PredictorConfig::broadcast_if_shared().indexing(MB),
        )],
    });
    plan.render(|_, outputs, table| {
        let n = Workload::ALL.len();
        let slash = Workload::ALL
            .iter()
            .position(|w| *w == Workload::Slashcode)
            .expect("slashcode is a workload");
        let baselines = &outputs[..n];
        let owner_slash = outputs[n].tradeoff();
        let bis = &outputs[n + 1..n + 1 + n];
        let group = &outputs[n + 1 + n..n + 1 + 2 * n];
        let runtime = outputs[n + 1 + 2 * n].runtime();
        let mut row = |claim: &str, measured: String, pass: bool| {
            table.row([
                claim.to_string(),
                measured,
                if pass { "PASS" } else { "CHECK" }.to_string(),
            ]);
        };

        // Claim 1: up to 90% fewer indirections at < 1/3 snooping
        // bandwidth (best of Group/Owner on Slashcode).
        {
            let (snoop, dir) = baselines[slash].baselines();
            let mut best = 0.0f64;
            for p in [group[slash].tradeoff(), owner_slash] {
                if p.request_messages_per_miss() < snoop.request_messages_per_miss() / 3.0 {
                    best = best.max(1.0 - p.indirections as f64 / dir.indirections.max(1) as f64);
                }
            }
            row(
                "reduce indirections up to ~90% using <1/3 snooping bandwidth",
                format!("{:.0}% reduction", 100.0 * best),
                best > 0.70,
            );
        }

        // Claim 2: Broadcast-If-Shared keeps indirections < ~6% everywhere.
        {
            let worst = bis
                .iter()
                .map(|o| o.tradeoff().indirection_pct())
                .fold(0.0f64, f64::max);
            row(
                "Broadcast-If-Shared indirections < ~6% on all workloads",
                format!("worst {worst:.1}%"),
                worst < 8.0,
            );
        }

        // Claim 3: Group <= half snooping traffic on all workloads.
        {
            let worst_ratio = baselines
                .iter()
                .zip(group)
                .map(|(b, g)| {
                    let (snoop, _) = b.baselines();
                    g.tradeoff().request_messages_per_miss() / snoop.request_messages_per_miss()
                })
                .fold(0.0f64, f64::max);
            row(
                "Group <= half of snooping's request traffic on all workloads",
                format!("worst ratio {worst_ratio:.2}"),
                worst_ratio <= 0.55,
            );
        }

        // Claim 4: ~90% of snooping performance at ~15% over directory
        // bandwidth (runtime model).
        {
            let perf = runtime[0].normalized_runtime / runtime[2].normalized_runtime;
            row(
                "predictors reach ~90% of snooping's performance",
                format!("{:.0}% of snooping", 100.0 * perf),
                perf > 0.85,
            );
        }

        // Claim 5: snooping ~2x directory traffic; directory slower by up
        // to ~2x on OLTP/Apache.
        {
            let traffic_ratio = 100.0 / runtime[1].normalized_traffic;
            let runtime_gain = 100.0 / runtime[0].normalized_runtime;
            row(
                "snooping ~2x directory traffic, up to ~2x faster (OLTP)",
                format!("traffic {traffic_ratio:.1}x, speedup {runtime_gain:.2}x"),
                traffic_ratio > 1.5 && runtime_gain > 1.2,
            );
        }
    })
}

/// Verifies the paper's headline quantitative claims and prints
/// PASS/FAIL rows with the measured values.
pub fn claims(scale: &Scale) -> TextTable {
    SweepRunner::new().run(&claims_plan(scale))
}

/// Every experiment name the harness knows, in `repro all` order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table2",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6a",
    "fig6b",
    "fig6c",
    "fig7",
    "fig8",
    "ablations",
    "extensions",
    "scaling",
    "claims",
    "bandwidth",
    "degraded",
    "verify",
];

/// Builds the plan for a named experiment, or `None` for an unknown
/// name.
pub fn plan_for(name: &str, scale: &Scale) -> Option<ExperimentPlan> {
    Some(match name {
        "table2" => table2_plan(scale),
        "fig2" => fig2_plan(scale),
        "fig3" => fig3_plan(scale),
        "fig4" => fig4_plan(scale),
        "fig5" => fig5_plan(scale),
        "fig6a" => fig6a_plan(scale),
        "fig6b" => fig6b_plan(scale),
        "fig6c" => fig6c_plan(scale),
        "fig7" => fig7_plan(scale),
        "fig8" => fig8_plan(scale),
        "ablations" => ablations_plan(scale),
        "extensions" => extensions_plan(scale),
        "scaling" => scaling_plan(scale),
        "claims" => claims_plan(scale),
        "bandwidth" => bandwidth_plan(scale),
        "degraded" => degraded_plan(scale),
        "verify" => verify_plan(scale),
        _ => return None,
    })
}

/// Runs a named experiment on `runner` (sharing its trace cache), or
/// `None` for an unknown name.
pub fn run_with(name: &str, scale: &Scale, runner: &engine::SweepRunner) -> Option<TextTable> {
    plan_for(name, scale).map(|plan| runner.run(&plan))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            footprint: 1.0 / 256.0,
            trace_warmup: 500,
            trace_measured: 2_000,
            sim_warmup: 20,
            sim_measured: 100,
            sim_runs: 1,
        }
    }

    #[test]
    fn table2_has_six_rows() {
        assert_eq!(table2(&tiny()).len(), 6);
    }

    #[test]
    fn fig2_has_four_bins_per_workload() {
        assert_eq!(fig2(&tiny()).len(), 24);
    }

    #[test]
    fn fig3_covers_all_degrees() {
        assert_eq!(fig3(&tiny()).len(), 6 * 16);
    }

    #[test]
    fn fig5_rows_per_workload() {
        // 2 baselines + 4 predictors per workload.
        assert_eq!(fig5(&tiny()).len(), 6 * 6);
    }

    #[test]
    fn fig6_tables_nonempty() {
        assert_eq!(fig6a(&tiny()).len(), 2 + 8);
        assert_eq!(fig6b(&tiny()).len(), 2 + 12);
        assert_eq!(fig6c(&tiny()).len(), 2 + 15);
    }

    #[test]
    fn fig7_rows() {
        // 6 workloads x (2 baselines + 4 predictors).
        assert_eq!(fig7(&tiny()).len(), 36);
    }

    #[test]
    fn ablation_rows() {
        assert_eq!(ablations(&tiny()).len(), 11);
    }

    #[test]
    fn extension_rows() {
        // 2 workloads x (2 baselines + 4 extras).
        assert_eq!(extensions(&tiny()).len(), 12);
    }

    #[test]
    fn scaling_rows() {
        // 6 sizes (8..=256 nodes) x (2 baselines + 3 predictors), plus
        // 3 timing-sim cells (64/128/256) x 3 protocols each.
        assert_eq!(scaling(&tiny()).len(), 39);
    }

    #[test]
    fn claims_all_present() {
        let t = claims(&tiny());
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn bandwidth_rows() {
        // 4 bandwidths x (2 baselines + 1 predictor).
        assert_eq!(bandwidth(&tiny()).len(), 12);
    }

    #[test]
    fn standout_set_is_the_paper_config() {
        let configs = standout_predictors();
        assert_eq!(configs.len(), 4);
        for c in configs {
            assert_eq!(c.indexing_scheme(), Indexing::Macroblock { bytes: 1024 });
            assert_eq!(c.capacity(), Capacity::ISCA03);
        }
    }

    #[test]
    fn every_named_experiment_has_a_plan() {
        let scale = tiny();
        for name in ALL_EXPERIMENTS {
            assert!(plan_for(name, &scale).is_some(), "{name}");
        }
        assert!(plan_for("bogus", &scale).is_none());
    }
}
