//! One driver function per paper table/figure.
//!
//! Every function returns a [`TextTable`] whose rows are the series the
//! paper plots; the `repro` binary prints them and saves CSVs under
//! `results/`. Absolute values depend on the synthetic substrate, but
//! the *shapes* — who wins, by what factor, where the crossovers are —
//! reproduce the paper (see EXPERIMENTS.md for the side-by-side).

use dsp_analysis::{characterize, fmt_f, RuntimeEvaluator, TextTable, TradeoffEvaluator};
use dsp_core::{Capacity, Indexing, PredictorConfig};
use dsp_sim::{CpuModel, ProtocolKind};
use dsp_trace::{TraceRecord, Workload, WorkloadSpec};
use dsp_types::SystemConfig;

use crate::scale::Scale;

/// The deterministic seed every experiment uses.
pub const SEED: u64 = 0x15CA_2003;

/// The four standout predictor configurations of Figure 5: 8192
/// entries, 1024-byte macroblock indexing.
pub fn standout_predictors() -> Vec<PredictorConfig> {
    let mb = Indexing::Macroblock { bytes: 1024 };
    vec![
        PredictorConfig::owner()
            .indexing(mb)
            .entries(Capacity::ISCA03),
        PredictorConfig::broadcast_if_shared()
            .indexing(mb)
            .entries(Capacity::ISCA03),
        PredictorConfig::group()
            .indexing(mb)
            .entries(Capacity::ISCA03),
        PredictorConfig::owner_group()
            .indexing(mb)
            .entries(Capacity::ISCA03),
    ]
}

fn spec_for(workload: Workload, config: &SystemConfig, scale: &Scale) -> WorkloadSpec {
    WorkloadSpec::preset(workload, config).scaled(scale.footprint)
}

fn trace_for(spec: &WorkloadSpec, scale: &Scale) -> Vec<TraceRecord> {
    spec.generator(SEED)
        .take(scale.trace_warmup + scale.trace_measured)
        .collect()
}

/// Table 2: workload properties.
pub fn table2(scale: &Scale) -> TextTable {
    let config = SystemConfig::isca03();
    let mut table = TextTable::new(
        "Table 2: Workload Properties (synthetic substrate)",
        [
            "workload",
            "mem 64B (MB)",
            "mem 1KB (MB)",
            "miss PCs",
            "misses",
            "misses/1k instr",
            "dir indirections %",
        ],
    );
    for w in Workload::ALL {
        let spec = spec_for(w, &config, scale);
        let r = characterize(
            &spec,
            &config,
            scale.trace_warmup,
            scale.trace_measured,
            SEED,
        );
        table.row([
            r.workload.clone(),
            fmt_f(r.blocks_touched as f64 * 64.0 / (1 << 20) as f64, 1),
            fmt_f(r.macroblocks_touched as f64 * 1024.0 / (1 << 20) as f64, 1),
            r.static_pcs.to_string(),
            r.misses.to_string(),
            fmt_f(r.misses_per_kilo_instr, 1),
            fmt_f(r.indirection_pct(), 1),
        ]);
    }
    table
}

/// Figure 2: instantaneous sharing histogram (observers needed per
/// miss, split read/write).
pub fn fig2(scale: &Scale) -> TextTable {
    let config = SystemConfig::isca03();
    let mut table = TextTable::new(
        "Figure 2: Sharing Histogram (% of misses needing n other processors)",
        ["workload", "bin", "reads %", "writes %"],
    );
    for w in Workload::ALL {
        let spec = spec_for(w, &config, scale);
        let r = characterize(
            &spec,
            &config,
            scale.trace_warmup,
            scale.trace_measured,
            SEED,
        );
        for (bin, label) in [(0, "0"), (1, "1"), (2, "2"), (3, "3+")] {
            let (reads, writes) = r.sharing.percent(bin);
            table.row([
                r.workload.clone(),
                label.to_string(),
                fmt_f(reads, 1),
                fmt_f(writes, 1),
            ]);
        }
    }
    table
}

/// Figure 3: blocks touched by n processors, unweighted (a) and
/// weighted by misses (b).
pub fn fig3(scale: &Scale) -> TextTable {
    let config = SystemConfig::isca03();
    let mut table = TextTable::new(
        "Figure 3: Degree of Sharing (percent of blocks / misses at degree n)",
        ["workload", "degree", "blocks %", "misses %"],
    );
    for w in Workload::ALL {
        let spec = spec_for(w, &config, scale);
        let r = characterize(
            &spec,
            &config,
            scale.trace_warmup,
            scale.trace_measured,
            SEED,
        );
        let total_blocks: u64 = r.degree_blocks.iter().sum();
        let total_misses: u64 = r.degree_misses.iter().sum();
        for d in 1..r.degree_blocks.len() {
            table.row([
                r.workload.clone(),
                d.to_string(),
                fmt_f(
                    100.0 * r.degree_blocks[d] as f64 / total_blocks.max(1) as f64,
                    2,
                ),
                fmt_f(
                    100.0 * r.degree_misses[d] as f64 / total_misses.max(1) as f64,
                    2,
                ),
            ]);
        }
    }
    table
}

/// Figure 4: cumulative distribution of cache-to-cache misses over the
/// hottest blocks / macroblocks / static instructions.
pub fn fig4(scale: &Scale) -> TextTable {
    let config = SystemConfig::isca03();
    let mut table = TextTable::new(
        "Figure 4: Sharing Locality (cumulative % of c2c misses in hottest k entities)",
        [
            "workload",
            "k",
            "64B blocks %",
            "1KB macroblocks %",
            "static PCs %",
        ],
    );
    for w in Workload::ALL {
        let spec = spec_for(w, &config, scale);
        let r = characterize(
            &spec,
            &config,
            scale.trace_warmup,
            scale.trace_measured,
            SEED,
        );
        for k in [100usize, 500, 1_000, 2_000, 5_000, 10_000] {
            table.row([
                r.workload.clone(),
                k.to_string(),
                fmt_f(r.block_locality.percent_covered_by(k), 1),
                fmt_f(r.macroblock_locality.percent_covered_by(k), 1),
                fmt_f(r.pc_locality.percent_covered_by(k), 1),
            ]);
        }
    }
    table
}

fn tradeoff_rows(
    table: &mut TextTable,
    workload: &str,
    trace: &[TraceRecord],
    configs: &[PredictorConfig],
    scale: &Scale,
) {
    let config = SystemConfig::isca03();
    let eval = TradeoffEvaluator::new(&config).warmup(scale.trace_warmup);
    let (snoop, dir) = eval.run_baselines(trace.iter().copied());
    for point in [snoop, dir] {
        table.row([
            workload.to_string(),
            point.label.clone(),
            fmt_f(point.request_messages_per_miss(), 2),
            fmt_f(point.indirection_pct(), 1),
        ]);
    }
    for cfg in configs {
        let point = eval.run(trace.iter().copied(), cfg);
        table.row([
            workload.to_string(),
            point.label.clone(),
            fmt_f(point.request_messages_per_miss(), 2),
            fmt_f(point.indirection_pct(), 1),
        ]);
    }
}

/// Figure 5: the four standout predictors against both baselines on
/// every workload (8192 entries, 1024 B macroblock indexing).
pub fn fig5(scale: &Scale) -> TextTable {
    let config = SystemConfig::isca03();
    let mut table = TextTable::new(
        "Figure 5: Standout Predictor Results (8192 entries, 1024B macroblock)",
        ["workload", "config", "request msgs/miss", "indirections %"],
    );
    let configs = standout_predictors();
    for w in Workload::ALL {
        let spec = spec_for(w, &config, scale);
        let trace = trace_for(&spec, scale);
        tradeoff_rows(&mut table, w.name(), &trace, &configs, scale);
    }
    table
}

/// Figure 6(a): program-counter vs data-block indexing (unbounded, OLTP).
pub fn fig6a(scale: &Scale) -> TextTable {
    let config = SystemConfig::isca03();
    let mut table = TextTable::new(
        "Figure 6a: PC vs data-block indexing (OLTP, unbounded)",
        ["workload", "config", "request msgs/miss", "indirections %"],
    );
    let mut configs = Vec::new();
    for ix in [Indexing::DataBlock, Indexing::ProgramCounter] {
        for base in [
            PredictorConfig::owner(),
            PredictorConfig::broadcast_if_shared(),
            PredictorConfig::group(),
            PredictorConfig::owner_group(),
        ] {
            configs.push(base.indexing(ix).entries(Capacity::Unbounded));
        }
    }
    let spec = spec_for(Workload::Oltp, &config, scale);
    let trace = trace_for(&spec, scale);
    tradeoff_rows(&mut table, "OLTP", &trace, &configs, scale);
    table
}

/// Figure 6(b): macroblock-size sensitivity (unbounded, OLTP).
pub fn fig6b(scale: &Scale) -> TextTable {
    let config = SystemConfig::isca03();
    let mut table = TextTable::new(
        "Figure 6b: Macroblock indexing (OLTP, unbounded)",
        ["workload", "config", "request msgs/miss", "indirections %"],
    );
    let mut configs = Vec::new();
    for bytes in [64u64, 256, 1024] {
        let ix = if bytes == 64 {
            Indexing::DataBlock
        } else {
            Indexing::Macroblock { bytes }
        };
        for base in [
            PredictorConfig::owner(),
            PredictorConfig::broadcast_if_shared(),
            PredictorConfig::group(),
            PredictorConfig::owner_group(),
        ] {
            configs.push(base.indexing(ix).entries(Capacity::Unbounded));
        }
    }
    let spec = spec_for(Workload::Oltp, &config, scale);
    let trace = trace_for(&spec, scale);
    tradeoff_rows(&mut table, "OLTP", &trace, &configs, scale);
    table
}

/// Figure 6(c): finite sizes (8192 / 32768 / unbounded) and the
/// Sticky-Spatial(1) prior-work baseline (OLTP, 1024 B macroblocks).
pub fn fig6c(scale: &Scale) -> TextTable {
    let config = SystemConfig::isca03();
    let mut table = TextTable::new(
        "Figure 6c: Predictor size and Sticky-Spatial(1) (OLTP, 1024B macroblock)",
        ["workload", "config", "request msgs/miss", "indirections %"],
    );
    let mb = Indexing::Macroblock { bytes: 1024 };
    let mut configs = Vec::new();
    for capacity in [
        Capacity::Unbounded,
        Capacity::Finite {
            entries: 32_768,
            ways: 4,
        },
        Capacity::Finite {
            entries: 8_192,
            ways: 4,
        },
    ] {
        for base in [
            PredictorConfig::owner(),
            PredictorConfig::broadcast_if_shared(),
            PredictorConfig::group(),
            PredictorConfig::owner_group(),
        ] {
            configs.push(base.indexing(mb).entries(capacity));
        }
    }
    for entries in [4_096usize, 8_192, 32_768] {
        configs.push(
            PredictorConfig::sticky_spatial(1).entries(Capacity::Finite { entries, ways: 1 }),
        );
    }
    let spec = spec_for(Workload::Oltp, &config, scale);
    let trace = trace_for(&spec, scale);
    tradeoff_rows(&mut table, "OLTP", &trace, &configs, scale);
    table
}

fn runtime_table(title: &str, workloads: &[Workload], cpu: CpuModel, scale: &Scale) -> TextTable {
    let config = SystemConfig::isca03();
    let mut table = TextTable::new(
        title,
        [
            "workload",
            "protocol",
            "norm runtime",
            "norm traffic/miss",
            "avg miss ns",
            "indirections %",
        ],
    );
    let protocols: Vec<ProtocolKind> = standout_predictors()
        .into_iter()
        .map(ProtocolKind::Multicast)
        .collect();
    let eval = RuntimeEvaluator::new(&config)
        .cpu(cpu)
        .misses(scale.sim_warmup, scale.sim_measured)
        .runs(scale.sim_runs)
        .seed(SEED);
    for w in workloads {
        let spec = spec_for(*w, &config, scale);
        for point in eval.run(&spec, &protocols) {
            table.row([
                w.name().to_string(),
                point.label.clone(),
                fmt_f(point.normalized_runtime, 1),
                fmt_f(point.normalized_traffic, 1),
                fmt_f(point.report.avg_miss_latency_ns(), 0),
                fmt_f(point.report.indirection_pct(), 1),
            ]);
        }
    }
    table
}

/// Figure 7: normalized runtime vs normalized traffic, simple CPU
/// model, all six workloads.
pub fn fig7(scale: &Scale) -> TextTable {
    runtime_table(
        "Figure 7: Runtime vs traffic (simple processor model; directory runtime = 100, snooping traffic = 100)",
        &Workload::ALL,
        CpuModel::Simple,
        scale,
    )
}

/// Figure 8: same with the detailed (out-of-order) CPU model on the
/// three workloads the paper simulates.
pub fn fig8(scale: &Scale) -> TextTable {
    runtime_table(
        "Figure 8: Runtime vs traffic (detailed processor model)",
        &[Workload::Apache, Workload::Oltp, Workload::SpecJbb],
        CpuModel::Detailed { max_outstanding: 4 },
        scale,
    )
}

/// Ablations of design choices DESIGN.md calls out: macroblock sizes
/// past 1024 B, Sticky-Spatial neighbor span, and table associativity.
pub fn ablations(scale: &Scale) -> TextTable {
    let config = SystemConfig::isca03();
    let mut table = TextTable::new(
        "Ablations (OLTP): macroblock size, sticky span, associativity",
        ["workload", "config", "request msgs/miss", "indirections %"],
    );
    let mut configs = Vec::new();
    // (a) Macroblock sweep beyond the paper's 1024 B.
    for bytes in [256u64, 1024, 2048, 4096] {
        configs.push(
            PredictorConfig::group()
                .indexing(Indexing::Macroblock { bytes })
                .entries(Capacity::ISCA03),
        );
    }
    // (b) Sticky-Spatial spans 0 / 1 / 2.
    for span in [0usize, 1, 2] {
        configs.push(PredictorConfig::sticky_spatial(span));
    }
    // (c) Associativity of the Group table at fixed capacity.
    for ways in [1usize, 2, 4, 8] {
        configs.push(
            PredictorConfig::group()
                .indexing(Indexing::Macroblock { bytes: 1024 })
                .entries(Capacity::Finite {
                    entries: 8192,
                    ways,
                }),
        );
    }
    let spec = spec_for(Workload::Oltp, &config, scale);
    let trace = trace_for(&spec, scale);
    let eval = TradeoffEvaluator::new(&config).warmup(scale.trace_warmup);
    for cfg in &configs {
        let point = eval.run(trace.iter().copied(), cfg);
        let label = match cfg.capacity() {
            Capacity::Finite { entries, ways } => {
                format!("{} [{}x{}]", point.label, entries / ways, ways)
            }
            Capacity::Unbounded => point.label.clone(),
        };
        table.row([
            "OLTP".to_string(),
            label,
            fmt_f(point.request_messages_per_miss(), 2),
            fmt_f(point.indirection_pct(), 1),
        ]);
    }
    table
}

/// Extension study: the Acacio-style predictive directory (cited in the
/// paper's introduction) against the paper's protocols, under the
/// timing model. Shows the 3-hop→2-hop conversion and where multicast
/// snooping still wins.
pub fn extensions(scale: &Scale) -> TextTable {
    let config = SystemConfig::isca03();
    let mut table = TextTable::new(
        "Extension: predictive directory (owner prediction) vs the paper's protocols",
        [
            "workload",
            "protocol",
            "norm runtime",
            "norm traffic/miss",
            "avg miss ns",
            "indirections %",
        ],
    );
    let owner_mb = PredictorConfig::owner().indexing(Indexing::Macroblock { bytes: 1024 });
    let two_level =
        PredictorConfig::two_level_owner().indexing(Indexing::Macroblock { bytes: 1024 });
    let protocols = vec![
        ProtocolKind::DirectoryPredicted(owner_mb),
        ProtocolKind::DirectoryPredicted(two_level),
        ProtocolKind::Multicast(owner_mb),
        ProtocolKind::Multicast(two_level),
    ];
    let eval = RuntimeEvaluator::new(&config)
        .misses(scale.sim_warmup, scale.sim_measured)
        .runs(scale.sim_runs)
        .seed(SEED);
    for w in [Workload::Oltp, Workload::Apache] {
        let spec = spec_for(w, &config, scale);
        for point in eval.run(&spec, &protocols) {
            table.row([
                w.name().to_string(),
                point.label.clone(),
                fmt_f(point.normalized_runtime, 1),
                fmt_f(point.normalized_traffic, 1),
                fmt_f(point.report.avg_miss_latency_ns(), 0),
                fmt_f(point.report.indirection_pct(), 1),
            ]);
        }
    }
    table
}

/// Scaling study: how the predictors behave as the machine grows from
/// 8 to 64 nodes (broadcast cost grows linearly; Group's advantage —
/// tracking sub-machine sharing groups — grows with it).
pub fn scaling(scale: &Scale) -> TextTable {
    let mut table = TextTable::new(
        "Scaling: request messages per miss vs system size (OLTP-like sharing)",
        [
            "nodes",
            "config",
            "request msgs/miss",
            "indirections %",
            "vs broadcast",
        ],
    );
    for nodes in [8usize, 16, 32, 64] {
        let config = SystemConfig::builder()
            .num_nodes(nodes)
            .build()
            .expect("valid");
        let spec = WorkloadSpec::preset(Workload::Oltp, &config).scaled(scale.footprint);
        let trace: Vec<TraceRecord> = spec
            .generator(SEED)
            .take(scale.trace_warmup + scale.trace_measured)
            .collect();
        let eval = TradeoffEvaluator::new(&config).warmup(scale.trace_warmup);
        let broadcast_cost = (nodes - 1) as f64;
        let mb = Indexing::Macroblock { bytes: 1024 };
        let configs = [
            PredictorConfig::owner().indexing(mb),
            PredictorConfig::group().indexing(mb),
            PredictorConfig::owner_group().indexing(mb),
        ];
        let (snoop, dir) = eval.run_baselines(trace.iter().copied());
        for point in [snoop, dir] {
            table.row([
                nodes.to_string(),
                point.label.clone(),
                fmt_f(point.request_messages_per_miss(), 2),
                fmt_f(point.indirection_pct(), 1),
                fmt_f(point.request_messages_per_miss() / broadcast_cost, 3),
            ]);
        }
        for cfg in configs {
            let point = eval.run(trace.iter().copied(), &cfg);
            table.row([
                nodes.to_string(),
                point.label.clone(),
                fmt_f(point.request_messages_per_miss(), 2),
                fmt_f(point.indirection_pct(), 1),
                fmt_f(point.request_messages_per_miss() / broadcast_cost, 3),
            ]);
        }
    }
    table
}

/// Bandwidth-sensitivity study (the design-point question the paper's
/// §5.3 sidesteps by assuming ample 10 GB/s links): sweep the link
/// bandwidth and watch snooping collapse under contention while the
/// bandwidth-efficient predictors hold their runtime advantage — the
/// motivation for the authors' earlier bandwidth-adaptive snooping.
pub fn bandwidth(scale: &Scale) -> TextTable {
    use dsp_sim::TargetSystem;
    let config = SystemConfig::isca03();
    let mut table = TextTable::new(
        "Bandwidth sweep (OLTP): runtime normalized to the 10 GB/s directory",
        [
            "link GB/s",
            "protocol",
            "runtime",
            "avg miss ns",
            "traffic B/miss",
        ],
    );
    let spec = spec_for(Workload::Oltp, &config, scale);
    let protocols: Vec<ProtocolKind> = vec![
        ProtocolKind::Snooping,
        ProtocolKind::Directory,
        ProtocolKind::Multicast(
            PredictorConfig::owner_group().indexing(Indexing::Macroblock { bytes: 1024 }),
        ),
    ];
    // Baseline runtime: 10 GB/s directory.
    let baseline = {
        let eval = RuntimeEvaluator::new(&config)
            .misses(scale.sim_warmup, scale.sim_measured)
            .runs(scale.sim_runs)
            .seed(SEED);
        eval.run(&spec, &[])[1].report.runtime_ns.max(1)
    };
    for gbps in [1.0f64, 2.5, 5.0, 10.0] {
        let mut target = TargetSystem::isca03_default();
        target.interconnect.link_bytes_per_ns = gbps;
        let eval = RuntimeEvaluator::new(&config)
            .target(target)
            .misses(scale.sim_warmup, scale.sim_measured)
            .runs(scale.sim_runs)
            .seed(SEED);
        for point in eval.run(&spec, &protocols[2..]) {
            table.row([
                format!("{gbps}"),
                point.label.clone(),
                fmt_f(100.0 * point.report.runtime_ns as f64 / baseline as f64, 1),
                fmt_f(point.report.avg_miss_latency_ns(), 0),
                fmt_f(point.report.bytes_per_miss(), 0),
            ]);
        }
    }
    table
}

/// Runs the explicit-state model checker over the multicast protocol
/// (2- and 3-node models, all destination sets, all interleavings) and
/// over each injected bug, reporting state counts and verdicts.
pub fn verify(_scale: &Scale) -> TextTable {
    use dsp_verify::{check, Bug, ModelConfig};
    let mut table = TextTable::new(
        "Protocol verification (exhaustive, all possible predictions)",
        ["model", "states", "transitions", "verdict"],
    );
    for nodes in [2usize, 3] {
        let report = check(&ModelConfig::new(nodes));
        table.row([
            format!("{nodes}-node multicast snooping"),
            report.states_explored.to_string(),
            report.transitions.to_string(),
            match &report.violation {
                None => "all invariants hold".to_string(),
                Some(v) => format!("VIOLATION: {}", v.invariant),
            },
        ]);
    }
    for bug in [
        Bug::SkipInvalidation,
        Bug::AcceptInsufficient,
        Bug::StaleDirectoryOwner,
    ] {
        let report = check(&ModelConfig::new(3).with_bug(bug));
        table.row([
            format!("3-node + {bug:?}"),
            report.states_explored.to_string(),
            report.transitions.to_string(),
            match &report.violation {
                Some(v) => format!("caught: {} ({} -event trace)", v.invariant, v.trace.len()),
                None => "NOT caught (checker bug!)".to_string(),
            },
        ]);
    }
    table
}

/// Verifies the paper's headline quantitative claims and prints
/// PASS/FAIL rows with the measured values.
pub fn claims(scale: &Scale) -> TextTable {
    let config = SystemConfig::isca03();
    let mut table = TextTable::new(
        "Headline claims (paper wording -> measured)",
        ["claim", "measured", "verdict"],
    );
    let mb = Indexing::Macroblock { bytes: 1024 };
    let mut row = |claim: &str, measured: String, pass: bool| {
        table.row([
            claim.to_string(),
            measured,
            if pass {
                "PASS".to_string()
            } else {
                "CHECK".to_string()
            },
        ]);
    };

    // Claim 1: up to 90% fewer indirections at < 1/3 snooping bandwidth.
    {
        let spec = spec_for(Workload::Slashcode, &config, scale);
        let trace = trace_for(&spec, scale);
        let eval = TradeoffEvaluator::new(&config).warmup(scale.trace_warmup);
        let (snoop, dir) = eval.run_baselines(trace.iter().copied());
        let mut best = 0.0f64;
        for cfg in [
            PredictorConfig::group().indexing(mb),
            PredictorConfig::owner().indexing(mb),
        ] {
            let p = eval.run(trace.iter().copied(), &cfg);
            if p.request_messages_per_miss() < snoop.request_messages_per_miss() / 3.0 {
                best = best.max(1.0 - p.indirections as f64 / dir.indirections.max(1) as f64);
            }
        }
        row(
            "reduce indirections up to ~90% using <1/3 snooping bandwidth",
            format!("{:.0}% reduction", 100.0 * best),
            best > 0.70,
        );
    }

    // Claim 2: Broadcast-If-Shared keeps indirections < ~6% everywhere.
    {
        let mut worst = 0.0f64;
        for w in Workload::ALL {
            let spec = spec_for(w, &config, scale);
            let trace = trace_for(&spec, scale);
            let eval = TradeoffEvaluator::new(&config).warmup(scale.trace_warmup);
            let p = eval.run(
                trace.iter().copied(),
                &PredictorConfig::broadcast_if_shared().indexing(mb),
            );
            worst = worst.max(p.indirection_pct());
        }
        row(
            "Broadcast-If-Shared indirections < ~6% on all workloads",
            format!("worst {worst:.1}%"),
            worst < 8.0,
        );
    }

    // Claim 3: Group <= half snooping traffic on all workloads.
    {
        let mut worst_ratio = 0.0f64;
        for w in Workload::ALL {
            let spec = spec_for(w, &config, scale);
            let trace = trace_for(&spec, scale);
            let eval = TradeoffEvaluator::new(&config).warmup(scale.trace_warmup);
            let (snoop, _) = eval.run_baselines(trace.iter().copied());
            let p = eval.run(
                trace.iter().copied(),
                &PredictorConfig::group().indexing(mb),
            );
            worst_ratio =
                worst_ratio.max(p.request_messages_per_miss() / snoop.request_messages_per_miss());
        }
        row(
            "Group <= half of snooping's request traffic on all workloads",
            format!("worst ratio {worst_ratio:.2}"),
            worst_ratio <= 0.55,
        );
    }

    // Claim 4: ~90% of snooping performance at ~15% over directory
    // bandwidth (runtime model).
    {
        let spec = spec_for(Workload::Oltp, &config, scale);
        let eval = RuntimeEvaluator::new(&config)
            .misses(scale.sim_warmup, scale.sim_measured)
            .runs(scale.sim_runs)
            .seed(SEED);
        let points = eval.run(
            &spec,
            &[ProtocolKind::Multicast(
                PredictorConfig::broadcast_if_shared().indexing(mb),
            )],
        );
        let snoop_rt = points[0].normalized_runtime;
        let perf = snoop_rt / points[2].normalized_runtime;
        row(
            "predictors reach ~90% of snooping's performance",
            format!("{:.0}% of snooping", 100.0 * perf),
            perf > 0.85,
        );
    }

    // Claim 5: snooping ~2x directory traffic; directory slower by up
    // to ~2x on OLTP/Apache.
    {
        let spec = spec_for(Workload::Oltp, &config, scale);
        let eval = RuntimeEvaluator::new(&config)
            .misses(scale.sim_warmup, scale.sim_measured)
            .runs(scale.sim_runs)
            .seed(SEED);
        let points = eval.run(&spec, &[]);
        let traffic_ratio = 100.0 / points[1].normalized_traffic;
        let runtime_gain = 100.0 / points[0].normalized_runtime;
        row(
            "snooping ~2x directory traffic, up to ~2x faster (OLTP)",
            format!("traffic {traffic_ratio:.1}x, speedup {runtime_gain:.2}x"),
            traffic_ratio > 1.5 && runtime_gain > 1.2,
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            footprint: 1.0 / 256.0,
            trace_warmup: 500,
            trace_measured: 2_000,
            sim_warmup: 20,
            sim_measured: 100,
            sim_runs: 1,
        }
    }

    #[test]
    fn table2_has_six_rows() {
        assert_eq!(table2(&tiny()).len(), 6);
    }

    #[test]
    fn fig2_has_four_bins_per_workload() {
        assert_eq!(fig2(&tiny()).len(), 24);
    }

    #[test]
    fn fig3_covers_all_degrees() {
        assert_eq!(fig3(&tiny()).len(), 6 * 16);
    }

    #[test]
    fn fig5_rows_per_workload() {
        // 2 baselines + 4 predictors per workload.
        assert_eq!(fig5(&tiny()).len(), 6 * 6);
    }

    #[test]
    fn fig6_tables_nonempty() {
        assert_eq!(fig6a(&tiny()).len(), 2 + 8);
        assert_eq!(fig6b(&tiny()).len(), 2 + 12);
        assert_eq!(fig6c(&tiny()).len(), 2 + 15);
    }

    #[test]
    fn fig7_rows() {
        // 6 workloads x (2 baselines + 4 predictors).
        assert_eq!(fig7(&tiny()).len(), 36);
    }

    #[test]
    fn ablation_rows() {
        assert_eq!(ablations(&tiny()).len(), 11);
    }

    #[test]
    fn extension_rows() {
        // 2 workloads x (2 baselines + 4 extras).
        assert_eq!(extensions(&tiny()).len(), 12);
    }

    #[test]
    fn scaling_rows() {
        // 4 sizes x (2 baselines + 3 predictors).
        assert_eq!(scaling(&tiny()).len(), 20);
    }

    #[test]
    fn claims_all_present() {
        let t = claims(&tiny());
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn bandwidth_rows() {
        // 4 bandwidths x (2 baselines + 1 predictor).
        assert_eq!(bandwidth(&tiny()).len(), 12);
    }

    #[test]
    fn standout_set_is_the_paper_config() {
        let configs = standout_predictors();
        assert_eq!(configs.len(), 4);
        for c in configs {
            assert_eq!(c.indexing_scheme(), Indexing::Macroblock { bytes: 1024 });
            assert_eq!(c.capacity(), Capacity::ISCA03);
        }
    }
}
