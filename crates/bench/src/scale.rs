//! Run-size presets for the experiment harness.

/// How big an experiment run should be.
///
/// The paper's runs use full-size footprints and one million misses of
/// warmup plus one million measured misses; that is `paper()`. The
/// `standard()` preset shrinks footprints 8× and trace lengths ~4× for
/// minute-scale runs with the same qualitative shapes; `quick()` is for
/// CI and unit tests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scale {
    /// Footprint scale factor applied to every workload pool.
    pub footprint: f64,
    /// Trace-driven warmup misses.
    pub trace_warmup: usize,
    /// Trace-driven measured misses.
    pub trace_measured: usize,
    /// Timing-sim warmup misses per node.
    pub sim_warmup: usize,
    /// Timing-sim measured misses per node.
    pub sim_measured: usize,
    /// Perturbed repetitions for runtime results.
    pub sim_runs: usize,
}

impl Scale {
    /// CI-sized: seconds per figure.
    pub fn quick() -> Self {
        Scale {
            footprint: 1.0 / 64.0,
            trace_warmup: 5_000,
            trace_measured: 20_000,
            sim_warmup: 100,
            sim_measured: 500,
            sim_runs: 1,
        }
    }

    /// Default for `repro`: minutes for the full set of figures.
    pub fn standard() -> Self {
        Scale {
            footprint: 1.0 / 8.0,
            trace_warmup: 100_000,
            trace_measured: 400_000,
            sim_warmup: 500,
            sim_measured: 4_000,
            sim_runs: 2,
        }
    }

    /// Paper-sized: full footprints, 1 M + 1 M misses (long).
    pub fn paper() -> Self {
        Scale {
            footprint: 1.0,
            trace_warmup: 1_000_000,
            trace_measured: 1_000_000,
            sim_warmup: 2_000,
            sim_measured: 15_000,
            sim_runs: 3,
        }
    }

    /// The exact-bits identity string of this scale: every run
    /// parameter, with the footprint as raw `f64` bits so two scales
    /// that differ in *any* way — even by one ULP of footprint —
    /// compare unequal. Checkpoint-journal headers and the fleet
    /// protocol's plan-identity handshake both embed this string, so a
    /// journal or a worker built against a different run size is
    /// rejected instead of silently folded in.
    pub fn identity(&self) -> String {
        format!(
            "{:016x}/{}/{}/{}/{}/{}",
            self.footprint.to_bits(),
            self.trace_warmup,
            self.trace_measured,
            self.sim_warmup,
            self.sim_measured,
            self.sim_runs
        )
    }

    /// Parses a scale name (`quick` / `standard` / `paper`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "quick" => Some(Self::quick()),
            "standard" => Some(Self::standard()),
            "paper" => Some(Self::paper()),
            _ => None,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        let q = Scale::quick();
        let s = Scale::standard();
        let p = Scale::paper();
        assert!(q.trace_measured < s.trace_measured && s.trace_measured < p.trace_measured);
        assert!(q.footprint < s.footprint && s.footprint <= p.footprint);
    }

    #[test]
    fn parse_names() {
        assert_eq!(Scale::parse("quick"), Some(Scale::quick()));
        assert_eq!(Scale::parse("standard"), Some(Scale::standard()));
        assert_eq!(Scale::parse("paper"), Some(Scale::paper()));
        assert_eq!(Scale::parse("bogus"), None);
        assert_eq!(Scale::default(), Scale::standard());
    }
}
