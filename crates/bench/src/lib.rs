//! Experiment harness regenerating every table and figure of the paper.
//!
//! The heavy lifting lives in [`experiments`]: one driver per paper
//! artifact (Table 2, Figures 2–8, plus ablations), each returning a
//! [`dsp_analysis::TextTable`]. The `repro` binary fronts them with a
//! CLI; the Criterion benches in `benches/` reuse the same drivers at
//! reduced scale.
//!
//! ```bash
//! cargo run --release -p dsp-fleet --bin repro -- all --scale standard
//! cargo run --release -p dsp-fleet --bin repro -- fig5 --scale paper
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod experiments;
mod scale;

pub use engine::{
    merge_journals, Cell, CellId, CellOutput, CellRecord, CellSink, Collector, ExperimentPlan,
    ProgressSink, SessionError, SessionReport, ShardSpec, SweepRunner, SweepSession,
};
pub use scale::Scale;
