//! `repro` — regenerate the paper's tables and figures.
//!
//! ```bash
//! repro <experiment> [--scale quick|standard|paper] [--out results/]
//!
//! experiments: table2 fig2 fig3 fig4 fig5 fig6a fig6b fig6c fig7 fig8
//!              ablations all
//! ```
//!
//! Each experiment prints an aligned text table and writes a CSV with
//! the same rows under the output directory.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use dsp_analysis::TextTable;
use dsp_bench::{experiments, Scale};

const EXPERIMENTS: &[&str] = &[
    "table2",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6a",
    "fig6b",
    "fig6c",
    "fig7",
    "fig8",
    "ablations",
    "extensions",
    "scaling",
    "claims",
    "bandwidth",
    "verify",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <experiment> [--scale quick|standard|paper] [--out DIR]\n\
         experiments: {} all",
        EXPERIMENTS.join(" ")
    );
    ExitCode::FAILURE
}

fn run_one(name: &str, scale: &Scale) -> Option<TextTable> {
    let table = match name {
        "table2" => experiments::table2(scale),
        "fig2" => experiments::fig2(scale),
        "fig3" => experiments::fig3(scale),
        "fig4" => experiments::fig4(scale),
        "fig5" => experiments::fig5(scale),
        "fig6a" => experiments::fig6a(scale),
        "fig6b" => experiments::fig6b(scale),
        "fig6c" => experiments::fig6c(scale),
        "fig7" => experiments::fig7(scale),
        "fig8" => experiments::fig8(scale),
        "ablations" => experiments::ablations(scale),
        "extensions" => experiments::extensions(scale),
        "scaling" => experiments::scaling(scale),
        "claims" => experiments::claims(scale),
        "bandwidth" => experiments::bandwidth(scale),
        "verify" => experiments::verify(scale),
        _ => return None,
    };
    Some(table)
}

fn save(out_dir: &Path, name: &str, table: &TextTable) {
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("warning: cannot create {}: {e}", out_dir.display());
        return;
    }
    let path = out_dir.join(format!("{name}.csv"));
    if let Err(e) = std::fs::write(&path, table.to_csv()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        println!("[saved {}]", path.display());
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment: Option<String> = None;
    let mut scale = Scale::standard();
    let mut out_dir = PathBuf::from("results");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    return usage();
                };
                match Scale::parse(name) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale '{name}'");
                        return usage();
                    }
                }
            }
            "--out" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    return usage();
                };
                out_dir = PathBuf::from(dir);
            }
            name if experiment.is_none() => experiment = Some(name.to_string()),
            other => {
                eprintln!("unexpected argument '{other}'");
                return usage();
            }
        }
        i += 1;
    }
    let Some(experiment) = experiment else {
        return usage();
    };
    let names: Vec<&str> = if experiment == "all" {
        EXPERIMENTS.to_vec()
    } else if EXPERIMENTS.contains(&experiment.as_str()) {
        vec![experiment.as_str()]
    } else {
        eprintln!("unknown experiment '{experiment}'");
        return usage();
    };
    for name in names {
        let started = Instant::now();
        let Some(table) = run_one(name, &scale) else {
            return usage();
        };
        println!("{table}");
        println!(
            "[{} finished in {:.1}s]\n",
            name,
            started.elapsed().as_secs_f64()
        );
        save(&out_dir, name, &table);
    }
    ExitCode::SUCCESS
}
