//! `repro` — regenerate the paper's tables and figures.
//!
//! ```bash
//! repro <experiment> [--scale quick|standard|paper] [--out DIR] [--threads N]
//!
//! experiments: table2 fig2 fig3 fig4 fig5 fig6a fig6b fig6c fig7 fig8
//!              ablations extensions scaling claims bandwidth verify
//!              sweep-bench all
//! ```
//!
//! Each experiment prints an aligned text table and writes a CSV with
//! the same rows under the output directory (created if absent). All
//! experiments run on one [`SweepRunner`], so `repro all` generates
//! each workload trace once and shares it across every table and
//! figure. `sweep-bench` times the sweep engine serial vs parallel and
//! writes `BENCH_sweep.json` to the output directory.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use dsp_analysis::TextTable;
use dsp_bench::engine::SweepRunner;
use dsp_bench::{experiments, Scale};

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <experiment> [--scale quick|standard|paper] [--out DIR] [--threads N]\n\
         experiments: {} sweep-bench all",
        experiments::ALL_EXPERIMENTS.join(" ")
    );
    ExitCode::FAILURE
}

fn save(out_dir: &Path, name: &str, contents: &str) -> bool {
    let path = out_dir.join(name);
    if let Err(e) = std::fs::write(&path, contents) {
        eprintln!("error: cannot write {}: {e}", path.display());
        false
    } else {
        println!("[saved {}]", path.display());
        true
    }
}

fn save_csv(out_dir: &Path, name: &str, table: &TextTable) -> bool {
    save(out_dir, &format!("{name}.csv"), &table.to_csv())
}

/// Times `table2 + fig5` (the Table 2 / Figure 5 reproduction path)
/// three ways — seed-style (one thread, traces shared within a driver
/// but regenerated across drivers, as the pre-engine code behaved),
/// the engine single-threaded, and the engine parallel — and returns
/// the `BENCH_sweep.json` payload.
fn sweep_bench(scale: &Scale, threads: Option<usize>) -> String {
    let plans = || {
        vec![
            experiments::table2_plan(scale),
            experiments::fig5_plan(scale),
        ]
    };
    let cells: usize = plans().iter().map(|p| p.len()).sum();
    let time_with = |runner: &SweepRunner| {
        let started = Instant::now();
        let tables: Vec<TextTable> = plans().iter().map(|p| runner.run(p)).collect();
        (started.elapsed().as_secs_f64(), tables)
    };

    // Seed-style: each driver generated every workload's trace afresh
    // (one generation per workload per driver) — a fresh runner per
    // plan reproduces exactly that cost.
    let (seed_s, seed_tables) = {
        let started = Instant::now();
        let tables: Vec<TextTable> = plans()
            .iter()
            .map(|p| SweepRunner::serial().run(p))
            .collect();
        (started.elapsed().as_secs_f64(), tables)
    };
    let (serial_s, serial_tables) = time_with(&SweepRunner::serial());
    let parallel_runner = match threads {
        Some(n) => SweepRunner::with_threads(n),
        None => SweepRunner::new(),
    };
    let (parallel_s, parallel_tables) = time_with(&parallel_runner);

    for (s, p) in seed_tables
        .iter()
        .zip(&parallel_tables)
        .chain(serial_tables.iter().zip(&parallel_tables))
    {
        assert_eq!(
            s.to_csv(),
            p.to_csv(),
            "parallel output must be byte-identical to serial"
        );
    }

    let threads = parallel_runner.threads();
    let speedup = seed_s / parallel_s.max(1e-9);
    println!(
        "sweep-bench: {cells} cells | seed-style serial {seed_s:.2}s ({:.1} cells/s) | \
         shared-trace serial {serial_s:.2}s | parallel[{threads}] {parallel_s:.2}s \
         ({:.1} cells/s) | speedup {speedup:.2}x",
        cells as f64 / seed_s.max(1e-9),
        cells as f64 / parallel_s.max(1e-9),
    );
    format!(
        "{{\n  \"benchmark\": \"sweep\",\n  \"plans\": [\"table2\", \"fig5\"],\n  \
         \"cells\": {cells},\n  \"threads\": {threads},\n  \
         \"seed_style_serial_wall_s\": {seed_s:.4},\n  \
         \"shared_trace_serial_wall_s\": {serial_s:.4},\n  \
         \"parallel_wall_s\": {parallel_s:.4},\n  \
         \"seed_style_cells_per_s\": {:.3},\n  \"parallel_cells_per_s\": {:.3},\n  \
         \"speedup\": {speedup:.3},\n  \"byte_identical\": true\n}}\n",
        cells as f64 / seed_s.max(1e-9),
        cells as f64 / parallel_s.max(1e-9),
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment: Option<String> = None;
    let mut scale = Scale::standard();
    let mut out_dir = PathBuf::from("results");
    let mut threads: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    return usage();
                };
                match Scale::parse(name) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale '{name}'");
                        return usage();
                    }
                }
            }
            "--out" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    return usage();
                };
                out_dir = PathBuf::from(dir);
            }
            "--threads" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|n| n.parse().ok()).filter(|n| *n > 0) else {
                    eprintln!("--threads needs a positive integer");
                    return usage();
                };
                threads = Some(n);
            }
            name if experiment.is_none() => experiment = Some(name.to_string()),
            other => {
                eprintln!("unexpected argument '{other}'");
                return usage();
            }
        }
        i += 1;
    }
    let Some(experiment) = experiment else {
        return usage();
    };
    let names: Vec<&str> = if experiment == "all" {
        experiments::ALL_EXPERIMENTS.to_vec()
    } else if experiment == "sweep-bench"
        || experiments::ALL_EXPERIMENTS.contains(&experiment.as_str())
    {
        vec![experiment.as_str()]
    } else {
        eprintln!("unknown experiment '{experiment}'");
        return usage();
    };
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!(
            "error: cannot create output directory {}: {e}",
            out_dir.display()
        );
        return ExitCode::FAILURE;
    }
    let runner = match threads {
        Some(n) => SweepRunner::with_threads(n),
        None => SweepRunner::new(),
    };
    for name in names {
        let started = Instant::now();
        if name == "sweep-bench" {
            let json = sweep_bench(&scale, threads);
            // The perf-trajectory artifact lives at the repo root so
            // successive PRs can diff it; a copy lands in --out too.
            if !save(Path::new("."), "BENCH_sweep.json", &json)
                || !save(&out_dir, "BENCH_sweep.json", &json)
            {
                return ExitCode::FAILURE;
            }
            continue;
        }
        let Some(table) = experiments::run_with(name, &scale, &runner) else {
            return usage();
        };
        println!("{table}");
        println!(
            "[{} finished in {:.1}s on {} threads, {} traces cached]\n",
            name,
            started.elapsed().as_secs_f64(),
            runner.threads(),
            runner.cached_traces(),
        );
        if !save_csv(&out_dir, name, &table) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
