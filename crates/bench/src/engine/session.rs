//! One shard of one plan, executed as a streaming, resumable session.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use dsp_analysis::TextTable;

use super::checkpoint::{read_journal, JournalWriter};
use super::{
    execute_cell, parallel_map, CellId, CellOutput, CellRecord, CellSink, Collector,
    ExperimentPlan, PartitionStore, ShardSpec, TraceKey, TraceStore,
};

/// Failures a session (or a merge) can hit. Pure in-memory sessions —
/// no checkpoint configured — cannot fail.
#[derive(Debug)]
pub enum SessionError {
    /// Filesystem failure on a journal file.
    Io {
        /// The journal path.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// A journal file exists but does not belong to this plan (or is
    /// corrupt beyond the tolerated torn final line).
    Journal {
        /// The journal path.
        path: PathBuf,
        /// What went wrong.
        message: String,
    },
    /// Outputs do not cover the plan (merging too few shards, or
    /// collecting from a partial-shard session).
    Incomplete {
        /// Cells with no output.
        missing: usize,
        /// Cells in the plan.
        total: usize,
    },
}

impl SessionError {
    pub(crate) fn io(path: &Path, error: std::io::Error) -> Self {
        SessionError::Io {
            path: path.to_path_buf(),
            error,
        }
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Io { path, error } => {
                write!(f, "journal i/o failed on {}: {error}", path.display())
            }
            SessionError::Journal { path, message } => {
                write!(f, "bad journal {}: {message}", path.display())
            }
            SessionError::Incomplete { missing, total } => write!(
                f,
                "outputs cover only {}/{total} cells ({missing} missing — merge every shard's \
                 journal, or run without --shard)",
                total - missing
            ),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Io { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// What a finished session did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionReport {
    /// Cells in the plan.
    pub cells: usize,
    /// Cells this shard owns.
    pub owned: usize,
    /// Owned cells replayed from the checkpoint journal.
    pub replayed: usize,
    /// Owned cells executed in this session.
    pub executed: usize,
}

/// A configured execution of one shard of an [`ExperimentPlan`].
///
/// The session owns the run policy — shard assignment, worker count,
/// trace/partition caches, checkpoint journal — while the plan stays a
/// pure description. Finished cells stream through the caller's
/// [`CellSink`]s as they complete; nothing is buffered beyond what the
/// sinks themselves keep.
///
/// ```
/// use dsp_bench::engine::{merge_journals, ShardSpec, SweepSession};
/// use dsp_bench::{experiments, Scale};
///
/// let scale = Scale::quick();
/// let plan = experiments::table2_plan(&scale);
/// let dir = std::env::temp_dir().join("dsp-session-doc");
/// let shard1 = dir.join("s1.jsonl");
/// let shard2 = dir.join("s2.jsonl");
/// // Two shards (normally two processes or machines), then a merge.
/// for (spec, path) in [("1/2", &shard1), ("2/2", &shard2)] {
///     SweepSession::new(&plan)
///         .shard(ShardSpec::parse(spec).unwrap())
///         .checkpoint(path)
///         .run(&mut [])?;
/// }
/// let merged = merge_journals(&plan, &[shard1, shard2])?;
/// let serial = SweepSession::new(&plan).run_table()?;
/// assert_eq!(merged.to_csv(), serial.to_csv());
/// # std::fs::remove_dir_all(dir).ok();
/// # Ok::<(), dsp_bench::engine::SessionError>(())
/// ```
#[derive(Debug)]
pub struct SweepSession<'p> {
    plan: &'p ExperimentPlan,
    shard: ShardSpec,
    threads: usize,
    share_traces: bool,
    store: Arc<TraceStore>,
    partitions: Arc<PartitionStore>,
    checkpoint: Option<PathBuf>,
    resume: bool,
}

impl<'p> SweepSession<'p> {
    /// A serial, full-coverage, in-memory session over `plan`.
    pub fn new(plan: &'p ExperimentPlan) -> Self {
        SweepSession {
            plan,
            shard: ShardSpec::full(),
            threads: 1,
            share_traces: true,
            store: Arc::new(TraceStore::default()),
            partitions: Arc::new(PartitionStore::default()),
            checkpoint: None,
            resume: false,
        }
    }

    /// Restricts the session to one shard of the plan.
    #[must_use]
    pub fn shard(mut self, shard: ShardSpec) -> Self {
        self.shard = shard;
        self
    }

    /// Sets the worker-thread count (minimum 1).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Disables (or re-enables) the shared trace cache; see
    /// [`SweepRunner::share_traces`](super::SweepRunner::share_traces).
    #[must_use]
    pub fn share_traces(mut self, share: bool) -> Self {
        self.share_traces = share;
        self
    }

    /// Shares a runner's trace and partition caches with this session.
    #[must_use]
    pub fn stores(mut self, store: Arc<TraceStore>, partitions: Arc<PartitionStore>) -> Self {
        self.store = store;
        self.partitions = partitions;
        self
    }

    /// Journals every completed cell to `path` (JSONL, flushed per
    /// cell). Without [`resume`](SweepSession::resume) an existing file
    /// is overwritten.
    #[must_use]
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// On [`run`](SweepSession::run), replay cells already present in
    /// the checkpoint journal instead of re-executing them, and append
    /// only the missing ones. A no-op when the journal does not exist
    /// yet.
    #[must_use]
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// The plan this session executes.
    pub fn plan(&self) -> &'p ExperimentPlan {
        self.plan
    }

    /// This session's shard.
    pub fn shard_spec(&self) -> ShardSpec {
        self.shard.clone()
    }

    /// Plan indices of the cells this shard owns, in plan order.
    pub fn owned_indices(&self) -> Vec<usize> {
        let ids = CellId::assign(&self.plan.cells);
        (0..self.plan.cells.len())
            .filter(|&i| self.shard.owns(ids[i]))
            .collect()
    }

    /// Executes the shard, streaming each finished cell through every
    /// sink: journaled cells are replayed first (in plan order, marked
    /// `replayed`), then missing cells execute on the worker pool and
    /// arrive in completion order.
    ///
    /// # Errors
    ///
    /// Only checkpoint I/O can fail: reading a resume journal that is
    /// corrupt or belongs to another plan, or writing the journal.
    pub fn run(&self, sinks: &mut [&mut dyn CellSink]) -> Result<SessionReport, SessionError> {
        let ids = CellId::assign(&self.plan.cells);
        let owned: Vec<usize> = (0..self.plan.cells.len())
            .filter(|&i| self.shard.owns(ids[i]))
            .collect();

        // Resume: load the journal's completed cells (last write wins;
        // outputs are deterministic so duplicates carry identical data)
        // and remember where its last intact line ends.
        let mut completed: HashMap<CellId, CellOutput> = HashMap::new();
        let mut journal_valid_bytes = 0u64;
        let resuming = self.resume && self.checkpoint.as_deref().is_some_and(|p| p.exists());
        if resuming {
            let path = self.checkpoint.as_deref().expect("checked");
            let contents = read_journal(path, self.plan, &ids)?;
            if contents.shard != self.shard.to_string() {
                return Err(SessionError::Journal {
                    path: path.to_path_buf(),
                    message: format!(
                        "shard mismatch: journal was written by shard {}, resuming as {} \
                         would mix two coverage patterns",
                        contents.shard, self.shard
                    ),
                });
            }
            journal_valid_bytes = contents.valid_bytes;
            for (id, _, output) in contents.records {
                completed.insert(id, output);
            }
        }

        // The journal is just another sink (it skips replayed records).
        // Resume appends after cutting off any torn crash remnant.
        let mut journal = match &self.checkpoint {
            Some(path) if resuming => Some(JournalWriter::append_to(path, journal_valid_bytes)?),
            Some(path) => Some(JournalWriter::create(path, self.plan, &self.shard)?),
            None => None,
        };
        let mut all_sinks: Vec<&mut dyn CellSink> = Vec::with_capacity(sinks.len() + 1);
        if let Some(journal) = journal.as_mut() {
            all_sinks.push(journal);
        }
        for sink in sinks.iter_mut() {
            all_sinks.push(&mut **sink);
        }

        // Replay journaled cells in plan order.
        let mut replayed = 0usize;
        let mut todo: Vec<usize> = Vec::with_capacity(owned.len());
        for &i in &owned {
            match completed.remove(&ids[i]) {
                Some(output) => {
                    let record = CellRecord {
                        id: ids[i],
                        index: i,
                        replayed: true,
                        output,
                    };
                    for sink in all_sinks.iter_mut() {
                        sink.on_cell(self.plan, &record);
                    }
                    replayed += 1;
                }
                None => todo.push(i),
            }
        }

        // Phase 1: materialize each distinct trace the remaining cells
        // need exactly once.
        if self.share_traces {
            let mut keys: Vec<TraceKey> = Vec::new();
            for &i in &todo {
                if let Some(key) = self.plan.cells[i].trace_key(self.plan) {
                    if !keys.contains(&key) {
                        keys.push(key);
                    }
                }
            }
            self.store.ensure(&keys, self.threads);
        }

        // Phase 2: execute in parallel, emitting each cell as it
        // finishes (under one lock so sinks see whole records).
        let emit = Mutex::new(all_sinks);
        let executed = AtomicUsize::new(0);
        parallel_map(&todo, self.threads, |&i| {
            let cell = &self.plan.cells[i];
            let trace = cell.trace_key(self.plan).map(|key| {
                if self.share_traces {
                    self.store.get(&key).expect("trace materialized in phase 1")
                } else {
                    key.generate()
                }
            });
            let output = execute_cell(cell, self.plan, trace, &self.partitions);
            let record = CellRecord {
                id: ids[i],
                index: i,
                replayed: false,
                output,
            };
            let mut sinks = emit.lock().expect("sink lock poisoned");
            for sink in sinks.iter_mut() {
                sink.on_cell(self.plan, &record);
            }
            executed.fetch_add(1, Ordering::Relaxed);
        });
        drop(emit);

        if let Some(journal) = journal {
            journal.finish()?;
        }
        Ok(SessionReport {
            cells: self.plan.cells.len(),
            owned: owned.len(),
            replayed,
            executed: executed.into_inner(),
        })
    }

    /// Runs the session into an in-memory collector and returns the
    /// plan-ordered outputs.
    ///
    /// # Errors
    ///
    /// Everything [`run`](SweepSession::run) can raise, plus
    /// [`SessionError::Incomplete`] when the session covers only part
    /// of the plan (partial shard) — merge journals instead.
    pub fn run_collect(&self) -> Result<Vec<CellOutput>, SessionError> {
        let mut collector = Collector::new(self.plan.cells.len());
        self.run(&mut [&mut collector])?;
        collector
            .into_outputs()
            .map_err(|missing| SessionError::Incomplete {
                missing,
                total: self.plan.cells.len(),
            })
    }

    /// [`run_collect`](SweepSession::run_collect) plus rendering.
    ///
    /// # Errors
    ///
    /// See [`run_collect`](SweepSession::run_collect).
    pub fn run_table(&self) -> Result<TextTable, SessionError> {
        Ok(self.plan.render_outputs(&self.run_collect()?))
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Cell, SweepRunner};
    use super::*;
    use crate::Scale;
    use dsp_core::PredictorConfig;
    use dsp_trace::Workload;
    use dsp_types::SystemConfig;

    fn tiny() -> Scale {
        Scale {
            footprint: 1.0 / 256.0,
            trace_warmup: 100,
            trace_measured: 500,
            sim_warmup: 10,
            sim_measured: 50,
            sim_runs: 1,
        }
    }

    fn plan(scale: &Scale) -> ExperimentPlan {
        let config = SystemConfig::isca03();
        let mut plan = ExperimentPlan::new("session-test", &["workload", "label", "msgs"], scale);
        for workload in [Workload::Oltp, Workload::Apache, Workload::BarnesHut] {
            plan.push(Cell::Baselines { config, workload });
            plan.push(Cell::Tradeoff {
                config,
                workload,
                predictor: PredictorConfig::group(),
            });
        }
        plan.render(|cells, outputs, table| {
            for (cell, output) in cells.iter().zip(outputs) {
                let workload = cell.workload().expect("trace cell").name().to_string();
                match output {
                    CellOutput::Baselines {
                        snooping,
                        directory,
                    } => {
                        for p in [snooping, directory] {
                            table.row([
                                workload.clone(),
                                p.label.clone(),
                                p.request_messages.to_string(),
                            ]);
                        }
                    }
                    CellOutput::Tradeoff(p) => {
                        table.row([workload, p.label.clone(), p.request_messages.to_string()])
                    }
                    other => panic!("unexpected output {other:?}"),
                }
            }
        })
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dsp-session-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn shards_partition_the_plan() {
        let scale = tiny();
        let plan = plan(&scale);
        for count in 1..=3 {
            let mut seen = vec![0usize; plan.len()];
            for index in 0..count {
                for i in SweepSession::new(&plan)
                    .shard(ShardSpec::new(index, count))
                    .owned_indices()
                {
                    seen[i] += 1;
                }
            }
            assert_eq!(seen, vec![1; plan.len()], "{count} shards");
        }
    }

    #[test]
    fn sharded_sessions_merge_byte_identical() {
        let scale = tiny();
        let plan = plan(&scale);
        let serial = SweepRunner::serial().run(&plan);
        let dir = tmp("merge");
        let paths: Vec<PathBuf> = (0..2).map(|i| dir.join(format!("s{i}.jsonl"))).collect();
        for (i, path) in paths.iter().enumerate() {
            let report = SweepSession::new(&plan)
                .shard(ShardSpec::new(i, 2))
                .threads(4)
                .checkpoint(path)
                .run(&mut [])
                .expect("shard session");
            assert_eq!(report.cells, plan.len());
            assert_eq!(report.executed, report.owned);
        }
        let merged = super::super::merge_journals(&plan, &paths).expect("merge");
        assert_eq!(merged.to_csv(), serial.to_csv());
        assert_eq!(merged.to_string(), serial.to_string());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn explicit_cell_lease_journals_merge_byte_identical() {
        let scale = tiny();
        let plan = plan(&scale);
        let serial = SweepRunner::serial().run(&plan);
        let ids = super::super::CellId::assign(&plan.cells);
        let dir = tmp("leases");
        // Three uneven leases (the coordinator's shape), plan coverage
        // split by explicit id sets rather than residues.
        let leases = [
            ShardSpec::cells(ids[..1].to_vec()),
            ShardSpec::cells(ids[1..4].to_vec()),
            ShardSpec::cells(ids[4..].to_vec()),
        ];
        let mut paths = Vec::new();
        for (i, lease) in leases.iter().enumerate() {
            let path = dir.join(format!("lease{i}.jsonl"));
            let report = SweepSession::new(&plan)
                .shard(lease.clone())
                .checkpoint(&path)
                .run(&mut [])
                .expect("lease session");
            assert_eq!(report.owned, report.executed);
            paths.push(path);
        }
        let merged = super::super::merge_journals(&plan, &paths).expect("merge");
        assert_eq!(merged.to_csv(), serial.to_csv());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn resume_skips_journaled_cells() {
        let scale = tiny();
        let plan = plan(&scale);
        let dir = tmp("resume");
        let path = dir.join("full.jsonl");
        let first = SweepSession::new(&plan)
            .checkpoint(&path)
            .run(&mut [])
            .expect("first run");
        assert_eq!(first.executed, plan.len());
        // A resumed run replays everything and executes nothing.
        let again = SweepSession::new(&plan)
            .checkpoint(&path)
            .resume(true)
            .run(&mut [])
            .expect("resume");
        assert_eq!(again.executed, 0);
        assert_eq!(again.replayed, plan.len());
        // Resumed outputs render byte-identical to a fresh run.
        let resumed_table = SweepSession::new(&plan)
            .checkpoint(&path)
            .resume(true)
            .run_table()
            .expect("resumed table");
        assert_eq!(
            resumed_table.to_csv(),
            SweepRunner::serial().run(&plan).to_csv()
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn crash_then_resume_completes_the_journal() {
        let scale = tiny();
        let plan = plan(&scale);
        let dir = tmp("crash");
        let path = dir.join("crashed.jsonl");
        SweepSession::new(&plan)
            .checkpoint(&path)
            .run(&mut [])
            .expect("full run");
        // Simulate a crash killed mid-write: keep header + 2 records
        // plus a torn fragment of the third, with no trailing newline.
        let text = std::fs::read_to_string(&path).expect("read");
        let mut keep: Vec<String> = text.lines().take(3).map(str::to_string).collect();
        let torn = text.lines().nth(3).expect("a fourth line");
        keep.push(torn[..torn.len() / 2].to_string());
        std::fs::write(&path, keep.join("\n")).expect("truncate");
        let resumed = SweepSession::new(&plan)
            .checkpoint(&path)
            .resume(true)
            .run(&mut [])
            .expect("resume");
        assert_eq!(resumed.replayed, 2);
        assert_eq!(resumed.executed, plan.len() - 2);
        // The completed journal now merges byte-identical to serial.
        let merged = super::super::merge_journals(&plan, &[path]).expect("merge");
        assert_eq!(merged.to_csv(), SweepRunner::serial().run(&plan).to_csv());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn resume_under_a_different_shard_is_rejected() {
        let scale = tiny();
        let plan = plan(&scale);
        let dir = tmp("shard-mismatch");
        let path = dir.join("s1of2.jsonl");
        SweepSession::new(&plan)
            .shard(ShardSpec::new(0, 2))
            .checkpoint(&path)
            .run(&mut [])
            .expect("shard 1/2 run");
        let err = SweepSession::new(&plan)
            .shard(ShardSpec::new(0, 3))
            .checkpoint(&path)
            .resume(true)
            .run(&mut [])
            .unwrap_err();
        assert!(err.to_string().contains("shard mismatch"), "{err}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn partial_shard_collection_is_incomplete() {
        let scale = tiny();
        let plan = plan(&scale);
        let err = SweepSession::new(&plan)
            .shard(ShardSpec::new(0, 2))
            .run_collect()
            .unwrap_err();
        assert!(matches!(err, SessionError::Incomplete { .. }), "{err}");
    }

    #[test]
    fn without_resume_the_journal_is_overwritten() {
        let scale = tiny();
        let plan = plan(&scale);
        let dir = tmp("overwrite");
        let path = dir.join("j.jsonl");
        SweepSession::new(&plan)
            .checkpoint(&path)
            .run(&mut [])
            .expect("first");
        let len_once = std::fs::metadata(&path).expect("meta").len();
        SweepSession::new(&plan)
            .checkpoint(&path)
            .run(&mut [])
            .expect("second");
        assert_eq!(
            std::fs::metadata(&path).expect("meta").len(),
            len_once,
            "re-running without --resume starts a fresh journal"
        );
        std::fs::remove_dir_all(dir).ok();
    }
}
