//! Streaming consumers of finished cells.
//!
//! A [`SweepSession`](super::SweepSession) does not hold its results
//! until the end of the run: every finished cell is pushed through the
//! [`CellSink`]s the caller passed in, as soon as it completes. The
//! built-in sinks cover the three uses the harness needs — the
//! checkpoint journal ([`JournalWriter`](super::JournalWriter) is a
//! sink too), live progress on long `paper`-scale runs
//! ([`ProgressSink`]), and the in-memory ordered collection the
//! existing render path consumes ([`Collector`]).

use super::{CellId, CellOutput, ExperimentPlan};

/// One finished cell, as delivered to sinks.
#[derive(Clone, Debug)]
pub struct CellRecord {
    /// Stable content identity of the cell.
    pub id: CellId,
    /// The cell's plan position (sinks that need plan order, like the
    /// collector, index with this; the id is what shards and journals
    /// match on).
    pub index: usize,
    /// `true` when the output was replayed from a checkpoint journal
    /// rather than executed in this session.
    pub replayed: bool,
    /// The cell's output.
    pub output: CellOutput,
}

/// A consumer of finished cells.
///
/// Executed cells arrive in *completion* order (worker threads race);
/// replayed cells arrive first, in plan order. Sinks needing plan
/// order must order by [`CellRecord::index`] themselves — outputs are
/// deterministic per cell, so any arrival order carries the same data.
pub trait CellSink: Send {
    /// Called once per finished (or replayed) cell.
    fn on_cell(&mut self, plan: &ExperimentPlan, record: &CellRecord);
}

/// Collects outputs into plan-ordered slots — the bridge from the
/// streaming session to the batch render path.
#[derive(Debug, Default)]
pub struct Collector {
    outputs: Vec<Option<CellOutput>>,
}

impl Collector {
    /// A collector with one slot per plan cell.
    pub fn new(cells: usize) -> Self {
        Collector {
            outputs: (0..cells).map(|_| None).collect(),
        }
    }

    /// Number of filled slots.
    pub fn filled(&self) -> usize {
        self.outputs.iter().filter(|o| o.is_some()).count()
    }

    /// The plan-ordered outputs, or `Err(missing_count)` if any cell
    /// never arrived (e.g. the session covered only one shard).
    pub fn into_outputs(self) -> Result<Vec<CellOutput>, usize> {
        let missing = self.outputs.iter().filter(|o| o.is_none()).count();
        if missing > 0 {
            return Err(missing);
        }
        Ok(self
            .outputs
            .into_iter()
            .map(|o| o.expect("checked"))
            .collect())
    }
}

impl CellSink for Collector {
    fn on_cell(&mut self, _plan: &ExperimentPlan, record: &CellRecord) {
        self.outputs[record.index] = Some(record.output.clone());
    }
}

/// Prints one progress line per finished cell to stderr — the
/// incremental rendering for long sharded runs, where the table itself
/// cannot exist until every shard merges.
#[derive(Debug)]
pub struct ProgressSink {
    done: usize,
    expected: usize,
}

impl ProgressSink {
    /// A reporter expecting `expected` cells (this shard's share).
    pub fn new(expected: usize) -> Self {
        ProgressSink { done: 0, expected }
    }
}

impl CellSink for ProgressSink {
    fn on_cell(&mut self, plan: &ExperimentPlan, record: &CellRecord) {
        self.done += 1;
        eprintln!(
            "[{}/{}] cell {} ({}){}",
            self.done,
            self.expected,
            record.id,
            plan.cells[record.index].summary(),
            if record.replayed { " [resumed]" } else { "" },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Cell, SweepSession};
    use super::*;
    use crate::Scale;

    #[test]
    fn collector_reports_missing_slots() {
        let mut c = Collector::new(2);
        assert_eq!(c.filled(), 0);
        let scale = Scale {
            footprint: 1.0 / 256.0,
            trace_warmup: 0,
            trace_measured: 100,
            sim_warmup: 0,
            sim_measured: 10,
            sim_runs: 1,
        };
        let mut plan = ExperimentPlan::new("t", &["c"], &scale);
        plan.push(Cell::Verify {
            nodes: 2,
            bug: None,
        });
        plan.push(Cell::Verify {
            nodes: 3,
            bug: None,
        });
        // Drive one cell through a real session, leaving slot coverage
        // partial on purpose.
        let session = SweepSession::new(&plan);
        session.run(&mut [&mut c]).expect("in-memory session");
        assert_eq!(c.filled(), 2);
        assert!(c.into_outputs().is_ok());
        match Collector::new(3).into_outputs() {
            Err(missing) => assert_eq!(missing, 3),
            Ok(outputs) => panic!("empty collector produced {} outputs", outputs.len()),
        }
    }
}
