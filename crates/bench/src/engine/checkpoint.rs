//! Checkpoint journals: durable JSONL records of completed cells.
//!
//! A journal is one JSON object per line. The first line is a
//! [`JournalHeader`] identifying the plan (title, cell count, seed, and
//! the full scale parameters) so a journal can never silently resume or
//! merge against a different experiment or run size. Every following
//! line is a [`JournalRecord`]: the cell's [`CellId`] plus its
//! serialized [`CellOutput`]. Records are flushed line-by-line as cells
//! finish, so a crash loses at most the cell in flight — a torn final
//! line is expected and tolerated on read.
//!
//! The same file format serves three roles:
//!
//! * **checkpoint** — `--resume` replays the journaled outputs and
//!   executes only the missing cells;
//! * **shard output** — a `--shard i/N` run's journal carries that
//!   shard's cells; record order is completion order and does not
//!   matter, because
//! * **merge** — [`merge_journals`] folds any set of journals covering
//!   a plan back into plan-ordered outputs and renders the table, which
//!   is byte-identical to a serial in-memory run (cell outputs are
//!   deterministic and the JSON layer round-trips them exactly).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use dsp_analysis::TextTable;
use serde::{Deserialize, Serialize};

use super::session::SessionError;
use super::{CellId, CellOutput, CellRecord, CellSink, ExperimentPlan, ShardSpec};

/// Magic string identifying the journal format (and its version).
const MAGIC: &str = "dsp-sweep-journal-v1";

/// First line of every journal: the plan identity.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub(crate) struct JournalHeader {
    journal: String,
    plan: String,
    cells: usize,
    seed: u64,
    scale: String,
    shard: String,
}

impl JournalHeader {
    fn for_plan(plan: &ExperimentPlan, shard: &ShardSpec) -> Self {
        JournalHeader {
            journal: MAGIC.to_string(),
            plan: plan.title.clone(),
            cells: plan.cells.len(),
            seed: plan.seed,
            // Exact footprint bits: two scales that differ in any run
            // parameter produce incompatible journals.
            scale: plan.scale.identity(),
            shard: shard.to_string(),
        }
    }

    fn validate(&self, plan: &ExperimentPlan, path: &Path) -> Result<(), SessionError> {
        let expect = JournalHeader::for_plan(plan, &ShardSpec::full());
        let mismatch = |what: &str, got: &str, want: &str| {
            Err(SessionError::Journal {
                path: path.to_path_buf(),
                message: format!("{what} mismatch: journal has {got:?}, plan has {want:?}"),
            })
        };
        if self.journal != expect.journal {
            return mismatch("format", &self.journal, &expect.journal);
        }
        if self.plan != expect.plan {
            return mismatch("plan title", &self.plan, &expect.plan);
        }
        if self.cells != expect.cells {
            return mismatch(
                "cell count",
                &self.cells.to_string(),
                &expect.cells.to_string(),
            );
        }
        if self.seed != expect.seed {
            return mismatch("seed", &self.seed.to_string(), &expect.seed.to_string());
        }
        if self.scale != expect.scale {
            return mismatch("scale", &self.scale, &expect.scale);
        }
        Ok(())
    }
}

/// One completed cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub(crate) struct JournalRecord {
    cell: String,
    index: usize,
    output: CellOutput,
}

/// Appends completed cells to a journal file, one flushed JSON line per
/// cell. Implements [`CellSink`], so a session streams into it like any
/// other consumer; records replayed *from* a journal are skipped (they
/// are already on disk).
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    file: BufWriter<File>,
    /// First write/serialization failure; surfaced by `finish`.
    error: Option<SessionError>,
}

impl JournalWriter {
    /// Creates (truncating) `path` and writes the header line.
    pub fn create(
        path: &Path,
        plan: &ExperimentPlan,
        shard: &ShardSpec,
    ) -> Result<Self, SessionError> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).map_err(|e| SessionError::io(path, e))?;
        }
        let file = File::create(path).map_err(|e| SessionError::io(path, e))?;
        let mut writer = JournalWriter {
            path: path.to_path_buf(),
            file: BufWriter::new(file),
            error: None,
        };
        let header = JournalHeader::for_plan(plan, shard);
        writer.write_line(&serde_json::to_string(&header).expect("header serializes"))?;
        Ok(writer)
    }

    /// Opens an existing journal for appending (resume), first cutting
    /// it back to `valid_bytes` — the end of its last intact line as
    /// reported by the reader — so a torn crash remnant can never fuse
    /// with the first appended record. The header is assumed to have
    /// been validated by the reader.
    pub fn append_to(path: &Path, valid_bytes: u64) -> Result<Self, SessionError> {
        let truncate = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| SessionError::io(path, e))?;
        truncate
            .set_len(valid_bytes)
            .map_err(|e| SessionError::io(path, e))?;
        drop(truncate);
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| SessionError::io(path, e))?;
        Ok(JournalWriter {
            path: path.to_path_buf(),
            file: BufWriter::new(file),
            error: None,
        })
    }

    fn write_line(&mut self, line: &str) -> Result<(), SessionError> {
        debug_assert!(!line.contains('\n'), "journal lines must be single-line");
        let io = |e| SessionError::io(&self.path, e);
        self.file.write_all(line.as_bytes()).map_err(io)?;
        self.file.write_all(b"\n").map_err(io)?;
        // One cell, one durable line: a crash loses at most the cell in
        // flight.
        self.file.flush().map_err(io)
    }

    /// Appends one completed cell.
    pub fn append(&mut self, record: &CellRecord) -> Result<(), SessionError> {
        let line = serde_json::to_string(&JournalRecord {
            cell: record.id.to_hex(),
            index: record.index,
            output: record.output.clone(),
        })
        .map_err(|e| SessionError::Journal {
            path: self.path.clone(),
            message: format!("cannot serialize cell {}: {e}", record.id),
        })?;
        self.write_line(&line)
    }

    /// The first error any [`CellSink`] delivery hit, ending the
    /// writer's useful life.
    pub fn finish(self) -> Result<(), SessionError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl CellSink for JournalWriter {
    fn on_cell(&mut self, _plan: &ExperimentPlan, record: &CellRecord) {
        if record.replayed || self.error.is_some() {
            return;
        }
        if let Err(e) = self.append(record) {
            self.error = Some(e);
        }
    }
}

/// All completed cells read from one journal, in file order.
#[derive(Debug)]
pub(crate) struct JournalContents {
    pub records: Vec<(CellId, usize, CellOutput)>,
    /// Byte offset just past the last intact line (every intact line
    /// ends in `\n`); a resumed writer truncates the file here so a
    /// torn crash remnant never fuses with the next appended record.
    pub valid_bytes: u64,
    /// The `i/N` shard spec the journal's writer ran under. Merging
    /// accepts any shard's journal; *resuming* must run the same shard,
    /// or the file would silently mix two coverage patterns.
    pub shard: String,
}

/// Reads and validates a journal against `plan`, whose cell ids are
/// `ids`.
///
/// Only newline-*terminated* lines count: the writer terminates and
/// flushes every line, so an unterminated final line is exactly the
/// remnant of a crash mid-write and is skipped (even if it happens to
/// parse — an unterminated record was never known durable). A malformed
/// *terminated* line, an unknown cell id, or a header mismatch is
/// corruption and errors out.
pub(crate) fn read_journal(
    path: &Path,
    plan: &ExperimentPlan,
    ids: &[CellId],
) -> Result<JournalContents, SessionError> {
    let text = std::fs::read_to_string(path).map_err(|e| SessionError::io(path, e))?;
    let lines: Vec<&str> = text.lines().collect();
    let complete = if text.ends_with('\n') {
        lines.len()
    } else {
        lines.len().saturating_sub(1)
    };
    let Some(header_line) = lines.first().filter(|_| complete > 0) else {
        return Err(SessionError::Journal {
            path: path.to_path_buf(),
            message: "empty or headerless journal".to_string(),
        });
    };
    let header: JournalHeader =
        serde_json::from_str(header_line).map_err(|e| SessionError::Journal {
            path: path.to_path_buf(),
            message: format!("malformed header: {e}"),
        })?;
    header.validate(plan, path)?;
    let known: HashMap<CellId, usize> = ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let mut records = Vec::new();
    let mut valid_bytes = (header_line.len() + 1) as u64;
    for (pos, line) in lines.iter().enumerate().take(complete).skip(1) {
        let record: JournalRecord =
            serde_json::from_str(line).map_err(|e| SessionError::Journal {
                path: path.to_path_buf(),
                message: format!("malformed record at line {}: {e}", pos + 1),
            })?;
        let Some(id) = CellId::from_hex(&record.cell) else {
            return Err(SessionError::Journal {
                path: path.to_path_buf(),
                message: format!("bad cell id {:?} at line {}", record.cell, pos + 1),
            });
        };
        let Some(&index) = known.get(&id) else {
            return Err(SessionError::Journal {
                path: path.to_path_buf(),
                message: format!(
                    "cell {id} at line {} is not in this plan (journal from another \
                     experiment or scale?)",
                    pos + 1
                ),
            });
        };
        records.push((id, index, record.output));
        valid_bytes += (line.len() + 1) as u64;
    }
    Ok(JournalContents {
        records,
        valid_bytes,
        shard: header.shard,
    })
}

/// Folds shard journals back into one table.
///
/// Plan identity (title, cell count, seed, and the exact scale bits) is
/// verified against *every* input journal — and since each header must
/// equal the plan's, all journals are transitively verified against
/// each other; a journal from a different experiment or run size fails
/// the merge instead of silently folding into it. Cells may repeat
/// across journals (e.g. a resumed shard re-merged with its pre-crash
/// journal, or a lease completed by a worker presumed dead *and* by
/// its stealer): outputs are deterministic, so repeats must carry
/// byte-identical serialized data — a conflicting repeat means the
/// journals came from incompatible runs and also fails the merge. The
/// rendered table is byte-identical to running the plan serially in
/// memory.
pub fn merge_journals(plan: &ExperimentPlan, paths: &[PathBuf]) -> Result<TextTable, SessionError> {
    let ids = CellId::assign(&plan.cells);
    let mut outputs: Vec<Option<(CellOutput, String, usize)>> =
        (0..plan.cells.len()).map(|_| None).collect();
    for (journal_idx, path) in paths.iter().enumerate() {
        let contents = read_journal(path, plan, &ids)?;
        for (id, index, output) in contents.records {
            let rendered = serde_json::to_string(&output).map_err(|e| SessionError::Journal {
                path: path.clone(),
                message: format!("cannot re-serialize cell {id}: {e}"),
            })?;
            match &outputs[index] {
                Some((_, have, from)) if *have != rendered => {
                    return Err(SessionError::Journal {
                        path: path.clone(),
                        message: format!(
                            "cell {id} conflicts with {}: the two journals carry different \
                             outputs for the same cell — they come from incompatible runs \
                             (code versions?) and must not be folded together",
                            paths[*from].display()
                        ),
                    });
                }
                Some(_) => {}
                None => outputs[index] = Some((output, rendered, journal_idx)),
            }
        }
    }
    let missing = outputs.iter().filter(|o| o.is_none()).count();
    if missing > 0 {
        return Err(SessionError::Incomplete {
            missing,
            total: plan.cells.len(),
        });
    }
    let outputs: Vec<CellOutput> = outputs.into_iter().map(|o| o.expect("checked").0).collect();
    Ok(plan.render_outputs(&outputs))
}

/// Reads every completed cell from one journal, validated against
/// `plan` — the coordinator's harvest path: when a worker's lease
/// expires, the cells it durably journaled before dying are recovered
/// here and only the rest are re-leased.
///
/// # Errors
///
/// Everything [`read_journal`] rejects: I/O failure, a header that does
/// not match the plan, or a corrupt terminated record. A torn final
/// line (crash mid-write) is tolerated and skipped.
pub fn harvest_journal(plan: &ExperimentPlan, path: &Path) -> Result<HarvestedCells, SessionError> {
    let ids = CellId::assign(&plan.cells);
    read_journal(path, plan, &ids).map(|contents| contents.records)
}

/// Durable cell records recovered from a journal: `(id, plan index,
/// output)` per cell, in journal order.
pub type HarvestedCells = Vec<(CellId, usize, CellOutput)>;

/// Like [`harvest_journal`], but also returns the intact byte length,
/// for callers that will both re-adopt the durable records *and* reopen
/// the file for appending — the fleet coordinator's crash recovery does
/// this with its master journal: `scan_journal`, then
/// [`JournalWriter::append_to`]`(path, valid_bytes)` resumes exactly
/// where the durable prefix ends.
///
/// # Errors
///
/// Same as [`harvest_journal`]: I/O failure, a header from a different
/// plan, or a corrupt terminated record.
pub fn scan_journal(
    plan: &ExperimentPlan,
    path: &Path,
) -> Result<(HarvestedCells, u64), SessionError> {
    let ids = CellId::assign(&plan.cells);
    read_journal(path, plan, &ids).map(|contents| (contents.records, contents.valid_bytes))
}

/// A cheap liveness probe of a (possibly live) journal file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalTail {
    /// File size in bytes (torn tail included).
    pub bytes: u64,
    /// Newline-terminated lines — the header plus one per durable cell.
    pub lines: usize,
}

impl JournalTail {
    /// Completed cell records (lines minus the header).
    pub fn records(&self) -> usize {
        self.lines.saturating_sub(1)
    }
}

/// Probes a journal for liveness without validating or deserializing
/// it: the coordinator tails every active lease's journal and treats
/// growth (more bytes or more terminated lines) as a heartbeat, so a
/// worker that is making durable progress is never expired just because
/// its network messages are delayed.
///
/// # Errors
///
/// Propagates filesystem errors; a journal that does not exist yet is
/// an error the caller treats as "no progress observed".
pub fn tail_journal(path: &Path) -> std::io::Result<JournalTail> {
    let text = std::fs::read(path)?;
    Ok(JournalTail {
        bytes: text.len() as u64,
        lines: text.iter().filter(|&&b| b == b'\n').count(),
    })
}

#[cfg(test)]
mod tests {
    use super::super::{Cell, SweepSession};
    use super::*;
    use crate::Scale;
    use dsp_core::PredictorConfig;
    use dsp_trace::Workload;
    use dsp_types::SystemConfig;

    fn tiny() -> Scale {
        Scale {
            footprint: 1.0 / 256.0,
            trace_warmup: 100,
            trace_measured: 500,
            sim_warmup: 10,
            sim_measured: 50,
            sim_runs: 1,
        }
    }

    fn plan(scale: &Scale) -> ExperimentPlan {
        let config = SystemConfig::isca03();
        let mut plan = ExperimentPlan::new("ckpt-test", &["workload", "msgs"], scale);
        for workload in [Workload::Oltp, Workload::BarnesHut] {
            plan.push(Cell::Tradeoff {
                config,
                workload,
                predictor: PredictorConfig::owner(),
            });
        }
        plan.render(|cells, outputs, table| {
            for (cell, output) in cells.iter().zip(outputs) {
                table.row([
                    cell.workload().expect("trace cell").name().to_string(),
                    output.tradeoff().request_messages.to_string(),
                ]);
            }
        })
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dsp-ckpt-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn journal_round_trips_and_merges() {
        let scale = tiny();
        let plan = plan(&scale);
        let dir = tmp("roundtrip");
        let path = dir.join("full.jsonl");
        let session = SweepSession::new(&plan).checkpoint(&path);
        let report = session.run(&mut []).expect("session");
        assert_eq!(report.executed, 2);
        let merged = merge_journals(&plan, &[path]).expect("merge");
        let direct = SweepSession::new(&plan).run_table().expect("direct");
        assert_eq!(merged.to_csv(), direct.to_csv());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_final_line_is_tolerated() {
        let scale = tiny();
        let plan = plan(&scale);
        let dir = tmp("torn");
        let path = dir.join("torn.jsonl");
        SweepSession::new(&plan)
            .checkpoint(&path)
            .run(&mut [])
            .expect("session");
        // Simulate a crash mid-write: chop the last record in half.
        let text = std::fs::read_to_string(&path).expect("read");
        let cut = text.len() - text.len() / 4;
        std::fs::write(&path, &text[..cut]).expect("write");
        let ids = CellId::assign(&plan.cells);
        let contents = read_journal(&path, &plan, &ids).expect("torn line tolerated");
        assert_eq!(contents.records.len(), 1, "only the intact record");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn mismatched_plan_is_rejected() {
        let scale = tiny();
        let plan_a = plan(&scale);
        let dir = tmp("mismatch");
        let path = dir.join("a.jsonl");
        SweepSession::new(&plan_a)
            .checkpoint(&path)
            .run(&mut [])
            .expect("session");
        // Different scale -> scale mismatch.
        let bigger = Scale {
            trace_measured: 600,
            ..scale
        };
        let err = merge_journals(&plan(&bigger), std::slice::from_ref(&path)).unwrap_err();
        assert!(err.to_string().contains("scale mismatch"), "{err}");
        // Different title -> plan mismatch.
        let mut renamed = plan(&scale);
        renamed.title = "other".to_string();
        let err = merge_journals(&renamed, &[path]).unwrap_err();
        assert!(err.to_string().contains("plan title mismatch"), "{err}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn merge_rejects_conflicting_duplicates() {
        let scale = tiny();
        let plan = plan(&scale);
        let dir = tmp("conflict");
        let a = dir.join("a.jsonl");
        SweepSession::new(&plan)
            .checkpoint(&a)
            .run(&mut [])
            .expect("session");
        // Forge a second journal whose first cell carries the *second*
        // cell's output: same plan identity, same cell id, different
        // data — the shape of a stale journal from an older code
        // version.
        let text = std::fs::read_to_string(&a).expect("read");
        let lines: Vec<&str> = text.lines().collect();
        let r1: JournalRecord = serde_json::from_str(lines[1]).expect("rec1");
        let r2: JournalRecord = serde_json::from_str(lines[2]).expect("rec2");
        assert_ne!(
            serde_json::to_string(&r1.output).unwrap(),
            serde_json::to_string(&r2.output).unwrap(),
            "test needs two cells with distinct outputs"
        );
        let forged = JournalRecord {
            cell: r1.cell.clone(),
            index: r1.index,
            output: r2.output.clone(),
        };
        let b = dir.join("b.jsonl");
        std::fs::write(
            &b,
            format!(
                "{}\n{}\n",
                lines[0],
                serde_json::to_string(&forged).expect("forged")
            ),
        )
        .expect("write");
        let err = merge_journals(&plan, &[a.clone(), b]).unwrap_err();
        assert!(err.to_string().contains("conflicts with"), "{err}");
        // Identical duplicates stay mergeable: the same journal twice
        // is a complete, conflict-free input set.
        merge_journals(&plan, &[a.clone(), a]).expect("identical duplicates merge");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn harvest_and_tail_observe_journal_progress() {
        let scale = tiny();
        let plan = plan(&scale);
        let dir = tmp("harvest");
        let path = dir.join("j.jsonl");
        assert!(tail_journal(&path).is_err(), "no journal yet");
        SweepSession::new(&plan)
            .checkpoint(&path)
            .run(&mut [])
            .expect("session");
        let tail = tail_journal(&path).expect("tail");
        assert_eq!(tail.lines, 3, "header + 2 cells");
        assert_eq!(tail.records(), 2);
        let harvested = harvest_journal(&plan, &path).expect("harvest");
        assert_eq!(harvested.len(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn merge_reports_missing_cells() {
        let scale = tiny();
        let plan = plan(&scale);
        let dir = tmp("missing");
        let path = dir.join("half.jsonl");
        // A 2-shard session journals only its own cells.
        let session = SweepSession::new(&plan)
            .shard(ShardSpec::new(0, 2))
            .checkpoint(&path);
        session.run(&mut []).expect("session");
        match merge_journals(&plan, &[path]) {
            Err(SessionError::Incomplete { missing, total }) => {
                assert_eq!(total, 2);
                assert!(missing >= 1);
            }
            other => panic!("expected incomplete merge, got {other:?}"),
        }
        std::fs::remove_dir_all(dir).ok();
    }
}
