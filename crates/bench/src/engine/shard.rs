//! Stable cell identity and deterministic cell→shard assignment.
//!
//! A [`CellId`] is a content hash of a cell's parameters — workload,
//! system configuration, predictor, protocol set, model size — not its
//! plan position, so two processes that build the same plan
//! independently agree on every id without exchanging anything, and
//! reordering unrelated cells in a plan does not reshuffle which shard
//! owns a cell. A [`ShardSpec`] then assigns each id to exactly one of
//! `count` shards by residue, which is what lets N machines split one
//! plan: every cell is owned by exactly one shard, and the union of all
//! shards' journals covers the plan.

use std::collections::HashMap;
use std::fmt;

use dsp_types::hash::mix64;

use super::Cell;

/// Stable identity of one [`Cell`]: a content hash of its parameters.
///
/// The hash is FNV-1a over the cell's canonical debug rendering (all
/// cell components are plain data with derived, platform-independent
/// `Debug` output — enum names, integers, and shortest-round-trip
/// floats), folded through [`mix64`] so shard residues see avalanched
/// bits. When a plan contains several cells with *identical*
/// parameters, each later duplicate mixes in its occurrence index so
/// ids stay unique within the plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CellId(u64);

impl CellId {
    /// Ids for every cell of a plan, in plan order, deduplicated by
    /// occurrence index.
    pub fn assign(cells: &[Cell]) -> Vec<CellId> {
        let mut occurrences: HashMap<u64, u64> = HashMap::new();
        cells
            .iter()
            .map(|cell| {
                let content = content_hash(cell);
                let occ = occurrences.entry(content).or_insert(0);
                let id = mix64(content.wrapping_add(*occ));
                *occ += 1;
                CellId(id)
            })
            .collect()
    }

    /// The raw 64-bit id.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Fixed-width lowercase hex, the journal encoding.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the journal encoding.
    pub fn from_hex(text: &str) -> Option<CellId> {
        if text.len() != 16 {
            return None;
        }
        u64::from_str_radix(text, 16).ok().map(CellId)
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// FNV-1a over the cell's debug rendering.
fn content_hash(cell: &Cell) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in format!("{cell:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One shard of a sharded sweep: this process owns every cell whose
/// [`CellId`] lands on `index` modulo `count`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    index: usize,
    count: usize,
}

impl ShardSpec {
    /// Shard `index` (0-based) of `count`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `index >= count`.
    pub fn new(index: usize, count: usize) -> Self {
        assert!(count > 0, "shard count must be positive");
        assert!(index < count, "shard index {index} out of range 0..{count}");
        ShardSpec { index, count }
    }

    /// The single shard covering the whole plan.
    pub fn full() -> Self {
        ShardSpec { index: 0, count: 1 }
    }

    /// 0-based shard index.
    pub fn index(self) -> usize {
        self.index
    }

    /// Total shard count.
    pub fn count(self) -> usize {
        self.count
    }

    /// Whether this spec covers the whole plan.
    pub fn is_full(self) -> bool {
        self.count == 1
    }

    /// Whether this shard owns the cell with id `id`.
    pub fn owns(self, id: CellId) -> bool {
        id.raw() % self.count as u64 == self.index as u64
    }

    /// Parses the CLI form `i/N` (1-based index, e.g. `1/2`, `2/2`).
    pub fn parse(text: &str) -> Option<ShardSpec> {
        let (i, n) = text.split_once('/')?;
        let index: usize = i.parse().ok()?;
        let count: usize = n.parse().ok()?;
        if index == 0 || count == 0 || index > count {
            return None;
        }
        Some(ShardSpec::new(index - 1, count))
    }
}

impl fmt::Display for ShardSpec {
    /// The 1-based CLI form, `i/N`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index + 1, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_core::PredictorConfig;
    use dsp_trace::Workload;
    use dsp_types::SystemConfig;

    fn cells() -> Vec<Cell> {
        let config = SystemConfig::isca03();
        let mut cells = Vec::new();
        for workload in [Workload::Oltp, Workload::Apache] {
            cells.push(Cell::Baselines { config, workload });
            cells.push(Cell::Tradeoff {
                config,
                workload,
                predictor: PredictorConfig::group(),
            });
        }
        cells
    }

    #[test]
    fn ids_are_content_based_not_positional() {
        let forward = cells();
        let mut reversed = cells();
        reversed.reverse();
        let a = CellId::assign(&forward);
        let mut b = CellId::assign(&reversed);
        b.reverse();
        assert_eq!(a, b, "reordering distinct cells must not change ids");
    }

    #[test]
    fn duplicate_cells_get_distinct_ids() {
        let one = cells();
        let mut twice = cells();
        twice.extend(cells());
        let ids = CellId::assign(&twice);
        let mut unique: Vec<u64> = ids.iter().map(|id| id.raw()).collect();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), ids.len(), "ids must be unique within a plan");
        // The first occurrence keeps the pure content hash.
        assert_eq!(ids[..one.len()], CellId::assign(&one)[..]);
    }

    #[test]
    fn hex_round_trips() {
        for id in CellId::assign(&cells()) {
            assert_eq!(CellId::from_hex(&id.to_hex()), Some(id));
        }
        assert_eq!(CellId::from_hex("xyz"), None);
        assert_eq!(CellId::from_hex(""), None);
    }

    #[test]
    fn every_cell_owned_by_exactly_one_shard() {
        let ids = CellId::assign(&cells());
        for count in 1..=5 {
            for &id in &ids {
                let owners = (0..count)
                    .filter(|&i| ShardSpec::new(i, count).owns(id))
                    .count();
                assert_eq!(owners, 1, "{id} under {count} shards");
            }
        }
    }

    #[test]
    fn parse_is_one_based() {
        assert_eq!(ShardSpec::parse("1/2"), Some(ShardSpec::new(0, 2)));
        assert_eq!(ShardSpec::parse("2/2"), Some(ShardSpec::new(1, 2)));
        assert_eq!(ShardSpec::parse("1/1"), Some(ShardSpec::full()));
        assert_eq!(ShardSpec::parse("0/2"), None);
        assert_eq!(ShardSpec::parse("3/2"), None);
        assert_eq!(ShardSpec::parse("2"), None);
        assert_eq!(ShardSpec::new(0, 2).to_string(), "1/2");
    }
}
