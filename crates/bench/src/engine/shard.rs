//! Stable cell identity and deterministic cell→shard assignment.
//!
//! A [`CellId`] is a content hash of a cell's parameters — workload,
//! system configuration, predictor, protocol set, model size — not its
//! plan position, so two processes that build the same plan
//! independently agree on every id without exchanging anything, and
//! reordering unrelated cells in a plan does not reshuffle which shard
//! owns a cell. A [`ShardSpec`] then assigns each id to exactly one
//! owner. Two assignment shapes exist:
//!
//! * [`ShardSpec::new`] — residue classes (`i/N`): the static split
//!   hand-run multi-machine sweeps use, where every machine derives its
//!   own coverage from nothing but its index.
//! * [`ShardSpec::cells`] — an explicit `CellId` set: the dynamic
//!   split the fleet coordinator uses, where a lease names exactly the
//!   cells a worker owns and the tail of a straggling lease can be
//!   re-sharded onto an idle worker.
//!
//! Either way every cell is owned by exactly one shard of a covering
//! family, and the union of all shards' journals covers the plan.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use dsp_types::hash::mix64;

use super::Cell;

/// Stable identity of one [`Cell`]: a content hash of its parameters.
///
/// The hash is FNV-1a over the cell's canonical debug rendering (all
/// cell components are plain data with derived, platform-independent
/// `Debug` output — enum names, integers, and shortest-round-trip
/// floats), folded through [`mix64`] so shard residues see avalanched
/// bits. When a plan contains several cells with *identical*
/// parameters, each later duplicate mixes in its occurrence index so
/// ids stay unique within the plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(u64);

impl CellId {
    /// Ids for every cell of a plan, in plan order, deduplicated by
    /// occurrence index.
    pub fn assign(cells: &[Cell]) -> Vec<CellId> {
        let mut occurrences: HashMap<u64, u64> = HashMap::new();
        cells
            .iter()
            .map(|cell| {
                let content = content_hash(cell);
                let occ = occurrences.entry(content).or_insert(0);
                let id = mix64(content.wrapping_add(*occ));
                *occ += 1;
                CellId(id)
            })
            .collect()
    }

    /// The raw 64-bit id.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Fixed-width lowercase hex, the journal encoding.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the journal encoding.
    pub fn from_hex(text: &str) -> Option<CellId> {
        if text.len() != 16 {
            return None;
        }
        u64::from_str_radix(text, 16).ok().map(CellId)
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// FNV-1a over the cell's debug rendering.
fn content_hash(cell: &Cell) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in format!("{cell:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Order-sensitive digest of a plan's full `CellId` manifest.
///
/// `repro plan` prints it, the fleet coordinator advertises it in its
/// welcome message, and every worker recomputes it from its own copy of
/// the plan — one source of truth for "are we leasing against the same
/// cell universe". FNV-1a over the little-endian id bytes in plan
/// order, folded through [`mix64`].
pub fn manifest_digest(ids: &[CellId]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for id in ids {
        for b in id.raw().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    mix64(h)
}

/// One shard of a sharded sweep: either a residue class (`i/N`) or an
/// explicit `CellId` set (a fleet lease).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardSpec {
    /// This shard owns every cell whose [`CellId`] lands on `index`
    /// modulo `count`.
    Residue {
        /// 0-based shard index.
        index: usize,
        /// Total shard count.
        count: usize,
    },
    /// This shard owns exactly the listed cells (sorted by raw id,
    /// deduplicated). The fleet coordinator leases these.
    Cells(Arc<[CellId]>),
}

impl ShardSpec {
    /// Shard `index` (0-based) of `count`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `index >= count`.
    pub fn new(index: usize, count: usize) -> Self {
        assert!(count > 0, "shard count must be positive");
        assert!(index < count, "shard index {index} out of range 0..{count}");
        ShardSpec::Residue { index, count }
    }

    /// The single shard covering the whole plan.
    pub fn full() -> Self {
        ShardSpec::Residue { index: 0, count: 1 }
    }

    /// The shard owning exactly `ids` (sorted and deduplicated here, so
    /// two callers naming the same set in any order build equal specs).
    pub fn cells(mut ids: Vec<CellId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        ShardSpec::Cells(ids.into())
    }

    /// Whether this spec covers the whole plan. Explicit cell sets are
    /// never considered full: even one that happens to enumerate every
    /// cell was built as a lease, and callers use fullness to decide
    /// whether a lone journal can render the whole table.
    pub fn is_full(&self) -> bool {
        matches!(self, ShardSpec::Residue { count: 1, .. })
    }

    /// Whether this shard owns the cell with id `id`.
    pub fn owns(&self, id: CellId) -> bool {
        match self {
            ShardSpec::Residue { index, count } => id.raw() % *count as u64 == *index as u64,
            ShardSpec::Cells(ids) => ids.binary_search(&id).is_ok(),
        }
    }

    /// Parses the CLI form `i/N` (1-based index, e.g. `1/2`, `2/2`).
    pub fn parse(text: &str) -> Option<ShardSpec> {
        let (i, n) = text.split_once('/')?;
        let index: usize = i.parse().ok()?;
        let count: usize = n.parse().ok()?;
        if index == 0 || count == 0 || index > count {
            return None;
        }
        Some(ShardSpec::new(index - 1, count))
    }

    /// Parses a comma-separated list of cell ids in the hex form
    /// `repro plan` prints (e.g. `1a2b...,3c4d...`).
    pub fn parse_cells(text: &str) -> Option<ShardSpec> {
        let ids: Option<Vec<CellId>> = text.split(',').map(CellId::from_hex).collect();
        let ids = ids?;
        if ids.is_empty() {
            return None;
        }
        Some(ShardSpec::cells(ids))
    }

    /// A filesystem-safe tag for default journal names:
    /// `shard1of2` / `cells4-0123456789abcdef`.
    pub fn file_stem(&self) -> String {
        match self {
            ShardSpec::Residue { index, count } => format!("shard{}of{count}", index + 1),
            ShardSpec::Cells(ids) => {
                format!("cells{}-{:016x}", ids.len(), manifest_digest(ids))
            }
        }
    }
}

impl fmt::Display for ShardSpec {
    /// Residue shards render as the 1-based CLI form `i/N`; explicit
    /// sets as `cells:<len>:<digest>` — equal sets render equally, which
    /// is what the resume-time shard-identity check compares.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardSpec::Residue { index, count } => write!(f, "{}/{}", index + 1, count),
            ShardSpec::Cells(ids) => {
                write!(f, "cells:{}:{:016x}", ids.len(), manifest_digest(ids))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsp_core::PredictorConfig;
    use dsp_trace::Workload;
    use dsp_types::SystemConfig;

    fn cells() -> Vec<Cell> {
        let config = SystemConfig::isca03();
        let mut cells = Vec::new();
        for workload in [Workload::Oltp, Workload::Apache] {
            cells.push(Cell::Baselines { config, workload });
            cells.push(Cell::Tradeoff {
                config,
                workload,
                predictor: PredictorConfig::group(),
            });
        }
        cells
    }

    #[test]
    fn ids_are_content_based_not_positional() {
        let forward = cells();
        let mut reversed = cells();
        reversed.reverse();
        let a = CellId::assign(&forward);
        let mut b = CellId::assign(&reversed);
        b.reverse();
        assert_eq!(a, b, "reordering distinct cells must not change ids");
    }

    #[test]
    fn duplicate_cells_get_distinct_ids() {
        let one = cells();
        let mut twice = cells();
        twice.extend(cells());
        let ids = CellId::assign(&twice);
        let mut unique: Vec<u64> = ids.iter().map(|id| id.raw()).collect();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), ids.len(), "ids must be unique within a plan");
        // The first occurrence keeps the pure content hash.
        assert_eq!(ids[..one.len()], CellId::assign(&one)[..]);
    }

    #[test]
    fn hex_round_trips() {
        for id in CellId::assign(&cells()) {
            assert_eq!(CellId::from_hex(&id.to_hex()), Some(id));
        }
        assert_eq!(CellId::from_hex("xyz"), None);
        assert_eq!(CellId::from_hex(""), None);
    }

    #[test]
    fn every_cell_owned_by_exactly_one_shard() {
        let ids = CellId::assign(&cells());
        for count in 1..=5 {
            for &id in &ids {
                let owners = (0..count)
                    .filter(|&i| ShardSpec::new(i, count).owns(id))
                    .count();
                assert_eq!(owners, 1, "{id} under {count} shards");
            }
        }
    }

    #[test]
    fn explicit_cell_shards_own_exactly_their_set() {
        let ids = CellId::assign(&cells());
        let spec = ShardSpec::cells(vec![ids[2], ids[0], ids[2]]);
        assert!(spec.owns(ids[0]));
        assert!(!spec.owns(ids[1]));
        assert!(spec.owns(ids[2]));
        assert!(!spec.owns(ids[3]));
        assert!(!spec.is_full());
        // Order and duplicates do not change identity.
        assert_eq!(spec, ShardSpec::cells(vec![ids[0], ids[2]]));
        assert_eq!(
            spec.to_string(),
            ShardSpec::cells(vec![ids[0], ids[2]]).to_string()
        );
        // A disjoint family of explicit shards covers like residues do.
        let a = ShardSpec::cells(ids[..2].to_vec());
        let b = ShardSpec::cells(ids[2..].to_vec());
        for &id in &ids {
            let owners = [&a, &b].iter().filter(|s| s.owns(id)).count();
            assert_eq!(owners, 1);
        }
    }

    #[test]
    fn parse_is_one_based() {
        assert_eq!(ShardSpec::parse("1/2"), Some(ShardSpec::new(0, 2)));
        assert_eq!(ShardSpec::parse("2/2"), Some(ShardSpec::new(1, 2)));
        assert_eq!(ShardSpec::parse("1/1"), Some(ShardSpec::full()));
        assert_eq!(ShardSpec::parse("0/2"), None);
        assert_eq!(ShardSpec::parse("3/2"), None);
        assert_eq!(ShardSpec::parse("2"), None);
        assert_eq!(ShardSpec::new(0, 2).to_string(), "1/2");
    }

    #[test]
    fn parse_cells_round_trips_hex_lists() {
        let ids = CellId::assign(&cells());
        let text = format!("{},{}", ids[1].to_hex(), ids[3].to_hex());
        let spec = ShardSpec::parse_cells(&text).expect("valid list");
        assert_eq!(spec, ShardSpec::cells(vec![ids[1], ids[3]]));
        assert_eq!(ShardSpec::parse_cells(""), None);
        assert_eq!(ShardSpec::parse_cells("zz"), None);
    }

    #[test]
    fn manifest_digest_is_order_sensitive_and_stable() {
        let ids = CellId::assign(&cells());
        let d1 = manifest_digest(&ids);
        let d2 = manifest_digest(&ids);
        assert_eq!(d1, d2);
        let mut rev = ids.clone();
        rev.reverse();
        assert_ne!(d1, manifest_digest(&rev), "digest must be order-sensitive");
    }

    #[test]
    fn file_stems_are_filesystem_safe() {
        let ids = CellId::assign(&cells());
        assert_eq!(ShardSpec::new(1, 3).file_stem(), "shard2of3");
        let stem = ShardSpec::cells(ids).file_stem();
        assert!(stem.starts_with("cells4-"), "{stem}");
        assert!(!stem.contains([':', '/']), "{stem}");
    }
}
