//! The sweep engine: declarative experiment plans executed as
//! streaming, shardable, resumable *sessions*.
//!
//! The paper's evaluation is a cross-product — predictor policy ×
//! workload × table size × indexing granularity × protocol — and every
//! table/figure driver used to walk its slice of that product serially,
//! regenerating the full synthetic trace for each cell. This module
//! factors the sweep into:
//!
//! * [`Cell`] — one unit of evaluation (a characterization, a pair of
//!   protocol baselines, one predictor tradeoff point, a timing-sim
//!   protocol set, or a model-checking run).
//! * [`ExperimentPlan`] — an ordered list of cells plus a render
//!   function that turns their outputs into [`TextTable`] rows. Every
//!   `table*`/`fig*` driver in [`crate::experiments`] is a plan
//!   declaration plus a row formatter.
//! * [`SweepSession`] ([`session`]) — executes one shard of a plan:
//!   each cell is identified by a stable content-hash [`CellId`]
//!   ([`shard`]), assigned to a shard by a [`ShardSpec`], streamed out
//!   through [`CellSink`]s ([`sink`]) as it finishes, and journaled to
//!   a checkpoint file ([`checkpoint`]) so a crashed run resumes from
//!   its last completed cell and N shard journals merge into one table
//!   byte-identical to a serial run.
//! * [`SweepRunner`] — the batch convenience wrapper: a single-shard
//!   in-memory session per plan, sharing one trace cache and one
//!   timing-sim partition cache across plans (`repro all` generates
//!   each workload's trace once).
//!
//! # Determinism
//!
//! Output is byte-identical across thread counts, shard counts, and
//! crash/resume points:
//!
//! * every trace is produced by a generator seeded from the plan's
//!   fixed seed, never by a generator shared between cells or threads;
//! * each cell builds its own evaluator/tracker/predictor state, so a
//!   cell's output is a pure function of the plan — which is what makes
//!   journaled outputs safe to replay and shards safe to merge;
//! * rendering walks outputs in plan order on the calling thread,
//!   whether they come from slots filled in parallel, a checkpoint
//!   journal, or a merge of several shard journals.
//!
//! ```
//! use dsp_bench::engine::SweepRunner;
//! use dsp_bench::{experiments, Scale};
//!
//! let scale = Scale::quick();
//! let plan = experiments::table2_plan(&scale);
//! let parallel = SweepRunner::new().run(&plan);
//! let serial = SweepRunner::serial().run(&experiments::table2_plan(&scale));
//! assert_eq!(parallel.to_csv(), serial.to_csv());
//! ```

pub mod checkpoint;
pub mod session;
pub mod shard;
pub mod sink;

pub use checkpoint::{
    harvest_journal, merge_journals, scan_journal, tail_journal, JournalTail, JournalWriter,
};
pub use session::{SessionError, SessionReport, SweepSession};
pub use shard::{manifest_digest, CellId, ShardSpec};
pub use sink::{CellRecord, CellSink, Collector, ProgressSink};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use dsp_analysis::{
    characterize_trace, CharacterizationReport, RuntimeEvaluator, RuntimePoint, TextTable,
    TradeoffEvaluator, TradeoffPoint,
};
use dsp_core::PredictorConfig;
use dsp_sim::{
    CpuModel, DispatchMode, ProtocolKind, SetWidth, TargetSystem, TopologySpec, ToxicSpec,
    TracePartition, TrainingMode,
};
use dsp_trace::{TraceRecord, Workload, WorkloadSpec};
use dsp_types::SystemConfig;
use dsp_verify::{check, Bug, CheckReport, ModelConfig};

use crate::scale::Scale;

/// One unit of evaluation inside an [`ExperimentPlan`].
///
/// Trace-driven cells (`Characterize`, `Baselines`, `Tradeoff`) share
/// one generated trace per distinct [`TraceKey`]; execution-driven and
/// model-checking cells generate their own inputs internally.
#[derive(Clone, Debug)]
pub enum Cell {
    /// Workload characterization (Table 2, Figures 2–4).
    Characterize {
        /// Simulated system.
        config: SystemConfig,
        /// Workload preset.
        workload: Workload,
    },
    /// The broadcast-snooping and directory endpoints (two rows).
    Baselines {
        /// Simulated system.
        config: SystemConfig,
        /// Workload preset.
        workload: Workload,
    },
    /// One predictor configuration's latency/bandwidth point.
    Tradeoff {
        /// Simulated system.
        config: SystemConfig,
        /// Workload preset.
        workload: Workload,
        /// Predictor under evaluation.
        predictor: PredictorConfig,
    },
    /// Timing simulation of snooping, directory, and extra protocols.
    Runtime {
        /// Simulated system.
        config: SystemConfig,
        /// Workload preset.
        workload: Workload,
        /// Processor model.
        cpu: CpuModel,
        /// Optional target-machine override (latencies, bandwidth).
        target: Option<TargetSystem>,
        /// Optional fault-injection override (falls back to the plan's
        /// chain).
        toxics: Option<ToxicSpec>,
        /// Optional network-shape override (falls back to the plan's
        /// topology).
        topology: Option<TopologySpec>,
        /// Protocols simulated after the two baselines.
        protocols: Vec<ProtocolKind>,
    },
    /// Explicit-state model check of the multicast protocol.
    Verify {
        /// Model size in nodes.
        nodes: usize,
        /// Injected bug, if any.
        bug: Option<Bug>,
    },
}

impl Cell {
    /// The workload driving this cell, if it is trace- or
    /// execution-driven.
    pub fn workload(&self) -> Option<Workload> {
        match self {
            Cell::Characterize { workload, .. }
            | Cell::Baselines { workload, .. }
            | Cell::Tradeoff { workload, .. }
            | Cell::Runtime { workload, .. } => Some(*workload),
            Cell::Verify { .. } => None,
        }
    }

    /// The system configuration the cell simulates, if any.
    pub fn config(&self) -> Option<SystemConfig> {
        match self {
            Cell::Characterize { config, .. }
            | Cell::Baselines { config, .. }
            | Cell::Tradeoff { config, .. }
            | Cell::Runtime { config, .. } => Some(*config),
            Cell::Verify { .. } => None,
        }
    }

    /// A short human-readable label for progress reporting.
    pub fn summary(&self) -> String {
        match self {
            Cell::Characterize { workload, .. } => format!("characterize {}", workload.name()),
            Cell::Baselines { workload, .. } => format!("baselines {}", workload.name()),
            Cell::Tradeoff {
                workload,
                predictor,
                ..
            } => format!("tradeoff {} [{}]", workload.name(), predictor.label()),
            Cell::Runtime {
                workload,
                protocols,
                ..
            } => format!(
                "runtime {} (+{} protocols)",
                workload.name(),
                protocols.len()
            ),
            Cell::Verify { nodes, bug } => match bug {
                None => format!("verify {nodes}-node"),
                Some(bug) => format!("verify {nodes}-node + {bug:?}"),
            },
        }
    }

    /// The trace this cell replays, if it is trace-driven.
    pub(crate) fn trace_key(&self, plan: &ExperimentPlan) -> Option<TraceKey> {
        match self {
            Cell::Characterize { config, workload }
            | Cell::Baselines { config, workload }
            | Cell::Tradeoff {
                config, workload, ..
            } => Some(TraceKey {
                workload: *workload,
                config: *config,
                footprint_bits: plan.scale.footprint.to_bits(),
                seed: plan.seed,
                len: plan.scale.trace_warmup + plan.scale.trace_measured,
            }),
            Cell::Runtime { .. } | Cell::Verify { .. } => None,
        }
    }
}

/// The output of one executed [`Cell`], in the same order as the plan's
/// cell list.
///
/// Serializes for the checkpoint journals: every payload round-trips
/// through the JSON layer exactly (integers verbatim, floats via
/// shortest-round-trip formatting), which is what makes a merged or
/// resumed table byte-identical to a freshly computed one.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum CellOutput {
    /// From [`Cell::Characterize`].
    Characterization(Box<CharacterizationReport>),
    /// From [`Cell::Baselines`].
    Baselines {
        /// Broadcast snooping endpoint.
        snooping: TradeoffPoint,
        /// Directory endpoint.
        directory: TradeoffPoint,
    },
    /// From [`Cell::Tradeoff`].
    Tradeoff(TradeoffPoint),
    /// From [`Cell::Runtime`]: snooping, directory, then the extras.
    Runtime(Vec<RuntimePoint>),
    /// From [`Cell::Verify`].
    Verify(CheckReport),
}

impl CellOutput {
    /// The characterization report; panics on a different variant.
    pub fn characterization(&self) -> &CharacterizationReport {
        match self {
            CellOutput::Characterization(r) => r,
            other => panic!("expected characterization output, got {other:?}"),
        }
    }

    /// The `(snooping, directory)` endpoints; panics otherwise.
    pub fn baselines(&self) -> (&TradeoffPoint, &TradeoffPoint) {
        match self {
            CellOutput::Baselines {
                snooping,
                directory,
            } => (snooping, directory),
            other => panic!("expected baseline output, got {other:?}"),
        }
    }

    /// The tradeoff point; panics on a different variant.
    pub fn tradeoff(&self) -> &TradeoffPoint {
        match self {
            CellOutput::Tradeoff(p) => p,
            other => panic!("expected tradeoff output, got {other:?}"),
        }
    }

    /// The runtime points; panics on a different variant.
    pub fn runtime(&self) -> &[RuntimePoint] {
        match self {
            CellOutput::Runtime(points) => points,
            other => panic!("expected runtime output, got {other:?}"),
        }
    }

    /// The model-checking report; panics on a different variant.
    pub fn verify(&self) -> &CheckReport {
        match self {
            CellOutput::Verify(r) => r,
            other => panic!("expected verify output, got {other:?}"),
        }
    }
}

/// Renders cell outputs (ordered by plan index) into table rows.
pub type RenderFn = Box<dyn Fn(&[Cell], &[CellOutput], &mut TextTable) + Send + Sync>;

/// A declarative experiment: title, columns, ordered cell grid, and a
/// render function mapping cell outputs to rows.
pub struct ExperimentPlan {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<&'static str>,
    /// Run-size parameters (footprint, warmup, measured, sim runs).
    pub scale: Scale,
    /// Base seed for trace generation and the timing simulator.
    pub seed: u64,
    /// Predictor-training delivery for the plan's timing simulations
    /// (lazy by default; the eager seed path is selectable so the
    /// golden suite can diff both modes through whole experiments).
    pub training: TrainingMode,
    /// Destination-set word width for the plan's timing simulations
    /// (auto by default: one word up to 64 nodes, four beyond; the
    /// explicit widths let the golden suite pin both monomorphizations
    /// to identical output).
    pub width: SetWidth,
    /// Event-dispatch mode for the plan's timing simulations (batched
    /// by default; per-event is selectable so the golden suite can
    /// diff both loops through whole experiments).
    pub dispatch: DispatchMode,
    /// Fault-injection chain for the plan's timing simulations (empty
    /// by default; [`Cell::Runtime`] cells may override per cell). The
    /// empty chain on the crossbar topology is byte-identical to the
    /// pre-toxic engine, which the golden suite pins.
    pub toxics: ToxicSpec,
    /// Network shape for the plan's timing simulations (the paper's
    /// crossbar by default; [`Cell::Runtime`] cells may override).
    pub topology: TopologySpec,
    /// The cells, in output order.
    pub cells: Vec<Cell>,
    render: RenderFn,
}

impl std::fmt::Debug for ExperimentPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentPlan")
            .field("title", &self.title)
            .field("columns", &self.columns)
            .field("scale", &self.scale)
            .field("seed", &self.seed)
            .field("training", &self.training)
            .field("width", &self.width)
            .field("dispatch", &self.dispatch)
            .field("toxics", &self.toxics)
            .field("topology", &self.topology)
            .field("cells", &self.cells.len())
            .finish()
    }
}

impl ExperimentPlan {
    /// Creates an empty plan with the experiments' default seed.
    pub fn new(title: impl Into<String>, columns: &[&'static str], scale: &Scale) -> Self {
        ExperimentPlan {
            title: title.into(),
            columns: columns.to_vec(),
            scale: *scale,
            seed: crate::experiments::SEED,
            training: TrainingMode::default(),
            width: SetWidth::default(),
            dispatch: DispatchMode::default(),
            toxics: ToxicSpec::none(),
            topology: TopologySpec::Crossbar,
            cells: Vec::new(),
            render: Box::new(|_, _, _| {}),
        }
    }

    /// Selects the training-delivery mode for the plan's timing
    /// simulations. Output must not change — `golden_outputs.rs` pins
    /// every experiment golden under both modes.
    #[must_use]
    pub fn training(mut self, training: TrainingMode) -> Self {
        self.training = training;
        self
    }

    /// Selects the destination-set word width for the plan's timing
    /// simulations. Output must not change — `golden_outputs.rs` pins
    /// experiment goldens under both explicit widths.
    #[must_use]
    pub fn width(mut self, width: SetWidth) -> Self {
        self.width = width;
        self
    }

    /// Selects the event-dispatch mode for the plan's timing
    /// simulations. Output must not change — `golden_outputs.rs` pins
    /// experiment goldens under both modes.
    #[must_use]
    pub fn dispatch(mut self, dispatch: DispatchMode) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Sets the fault-injection chain for the plan's timing
    /// simulations. The empty chain must not change output —
    /// `golden_outputs.rs` pins every experiment golden with it set
    /// explicitly.
    #[must_use]
    pub fn toxics(mut self, toxics: ToxicSpec) -> Self {
        self.toxics = toxics;
        self
    }

    /// Selects the network shape for the plan's timing simulations.
    /// The explicit crossbar must not change output —
    /// `golden_outputs.rs` pins every experiment golden with it.
    #[must_use]
    pub fn topology(mut self, topology: TopologySpec) -> Self {
        self.topology = topology;
        self
    }

    /// Appends a cell, returning its plan index.
    pub fn push(&mut self, cell: Cell) -> usize {
        self.cells.push(cell);
        self.cells.len() - 1
    }

    /// Appends many cells.
    pub fn extend(&mut self, cells: impl IntoIterator<Item = Cell>) {
        self.cells.extend(cells);
    }

    /// Sets the render function and returns the plan.
    #[must_use]
    pub fn render(
        mut self,
        f: impl Fn(&[Cell], &[CellOutput], &mut TextTable) + Send + Sync + 'static,
    ) -> Self {
        self.render = Box::new(f);
        self
    }

    /// Renders `outputs` (one per cell, in plan order) into the plan's
    /// table. This is the single formatting path every execution mode
    /// funnels through — parallel slots, resumed journals, and merged
    /// shards produce byte-identical tables because they all end here
    /// with the same ordered outputs.
    pub fn render_outputs(&self, outputs: &[CellOutput]) -> TextTable {
        let mut table = TextTable::new(self.title.clone(), self.columns.iter().copied());
        (self.render)(&self.cells, outputs, &mut table);
        table
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plan has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Identity of one generated trace. Two cells with equal keys replay
/// the *same* `Arc<[TraceRecord]>`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceKey {
    /// Workload preset.
    pub workload: Workload,
    /// Full system configuration (node count, macroblock size, ...).
    pub config: SystemConfig,
    /// Footprint scale factor, as exact bits.
    pub footprint_bits: u64,
    /// Generator seed.
    pub seed: u64,
    /// Record count (warmup + measured).
    pub len: usize,
}

impl TraceKey {
    pub(crate) fn generate(&self) -> Arc<[TraceRecord]> {
        let spec = WorkloadSpec::preset(self.workload, &self.config)
            .scaled(f64::from_bits(self.footprint_bits));
        let records: Vec<TraceRecord> = spec.generator(self.seed).take(self.len).collect();
        Arc::from(records)
    }
}

/// Cache of generated traces, keyed by [`TraceKey`]. Shared (behind an
/// `Arc`) by every session a [`SweepRunner`] spawns, so traces persist
/// across plans run by the same runner (e.g. `repro all` generates each
/// workload's trace once).
#[derive(Debug, Default)]
pub struct TraceStore {
    traces: Mutex<Vec<(TraceKey, Arc<[TraceRecord]>)>>,
}

impl TraceStore {
    pub(crate) fn get(&self, key: &TraceKey) -> Option<Arc<[TraceRecord]>> {
        let traces = self.traces.lock().expect("trace store poisoned");
        traces
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, t)| Arc::clone(t))
    }

    /// Generates every missing key (in parallel when `threads > 1`) and
    /// inserts the results.
    pub(crate) fn ensure(&self, keys: &[TraceKey], threads: usize) {
        let missing: Vec<TraceKey> = {
            let traces = self.traces.lock().expect("trace store poisoned");
            keys.iter()
                .filter(|k| !traces.iter().any(|(have, _)| have == *k))
                .copied()
                .collect()
        };
        if missing.is_empty() {
            return;
        }
        let generated: Vec<Arc<[TraceRecord]>> =
            parallel_map(&missing, threads, |key| key.generate());
        let mut traces = self.traces.lock().expect("trace store poisoned");
        traces.extend(missing.into_iter().zip(generated));
    }

    pub(crate) fn len(&self) -> usize {
        self.traces.lock().expect("trace store poisoned").len()
    }
}

/// Identity of one set of timing-sim trace partitions: everything the
/// per-node programs depend on — and nothing they don't (the protocol
/// set, CPU model, and target machine all replay the same programs).
#[derive(Clone, Copy, Debug, PartialEq)]
struct PartitionKey {
    workload: Workload,
    config: SystemConfig,
    footprint_bits: u64,
    seed: u64,
    warmup: usize,
    measured: usize,
    runs: usize,
}

/// Cache of timing-sim [`TracePartition`] sets (one partition per
/// perturbed-seed repetition), shared across the [`Cell::Runtime`]
/// cells of a runner's sessions. Partitioning the miss stream costs a
/// sizeable fraction of short runs, so repeated cells over one
/// workload — every design point of the bandwidth sweep, say — stop
/// re-partitioning.
#[derive(Debug, Default)]
pub struct PartitionStore {
    inner: Mutex<Vec<(PartitionKey, Vec<TracePartition>)>>,
}

impl PartitionStore {
    /// Returns the cached partitions for `key`, building (outside the
    /// lock) and inserting them if absent. Builds are deterministic, so
    /// a racing duplicate build yields identical programs and either
    /// copy may win.
    fn get_or_build(
        &self,
        key: PartitionKey,
        build: impl FnOnce() -> Vec<TracePartition>,
    ) -> Vec<TracePartition> {
        {
            let cached = self.inner.lock().expect("partition store poisoned");
            if let Some((_, parts)) = cached.iter().find(|(k, _)| *k == key) {
                return parts.clone();
            }
        }
        let built = build();
        let mut cached = self.inner.lock().expect("partition store poisoned");
        if let Some((_, parts)) = cached.iter().find(|(k, _)| *k == key) {
            return parts.clone();
        }
        cached.push((key, built.clone()));
        built
    }

    pub(crate) fn len(&self) -> usize {
        self.inner.lock().expect("partition store poisoned").len()
    }
}

/// Runs each index of `items` through `f` on a scoped worker pool,
/// returning outputs in input order. Panics in workers propagate.
pub(crate) fn parallel_map<T: Sync, O: Send + Sync>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> O + Sync,
) -> Vec<O> {
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let slots: Vec<OnceLock<O>> = items.iter().map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let out = f(item);
                slots[i].set(out).map_err(|_| "slot filled twice").unwrap();
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("worker filled every slot"))
        .collect()
}

/// Executes one cell. The cell's output is a pure function of `(cell,
/// plan)`: `trace` and `partitions` are caches of deterministic
/// derivations, never sources of new state.
pub(crate) fn execute_cell(
    cell: &Cell,
    plan: &ExperimentPlan,
    trace: Option<Arc<[TraceRecord]>>,
    partitions: &PartitionStore,
) -> CellOutput {
    let scale = &plan.scale;
    match cell {
        Cell::Characterize { config, workload } => {
            let trace = trace.expect("characterize is trace-driven");
            let spec = WorkloadSpec::preset(*workload, config).scaled(scale.footprint);
            CellOutput::Characterization(Box::new(characterize_trace(
                trace.iter().copied(),
                spec.name(),
                spec.misses_per_kilo_instr(),
                config,
                scale.trace_warmup,
            )))
        }
        Cell::Baselines { config, .. } => {
            let trace = trace.expect("baselines are trace-driven");
            let eval = TradeoffEvaluator::new(config).warmup(scale.trace_warmup);
            let (snooping, directory) = eval.run_baselines(trace.iter().copied());
            CellOutput::Baselines {
                snooping,
                directory,
            }
        }
        Cell::Tradeoff {
            config, predictor, ..
        } => {
            let trace = trace.expect("tradeoff is trace-driven");
            let eval = TradeoffEvaluator::new(config).warmup(scale.trace_warmup);
            CellOutput::Tradeoff(eval.run(trace.iter().copied(), predictor))
        }
        Cell::Runtime {
            config,
            workload,
            cpu,
            target,
            toxics,
            topology,
            protocols,
        } => {
            let spec = WorkloadSpec::preset(*workload, config).scaled(scale.footprint);
            let mut eval = RuntimeEvaluator::new(config)
                .cpu(*cpu)
                .misses(scale.sim_warmup, scale.sim_measured)
                .runs(scale.sim_runs)
                .seed(plan.seed)
                .training(plan.training)
                .width(plan.width)
                .dispatch(plan.dispatch)
                .toxics(toxics.clone().unwrap_or_else(|| plan.toxics.clone()))
                .topology(topology.unwrap_or(plan.topology));
            if let Some(target) = target {
                eval = eval.target(*target);
            }
            let key = PartitionKey {
                workload: *workload,
                config: *config,
                footprint_bits: scale.footprint.to_bits(),
                seed: plan.seed,
                warmup: scale.sim_warmup,
                measured: scale.sim_measured,
                runs: scale.sim_runs.max(1),
            };
            let parts = partitions.get_or_build(key, || eval.partitions(&spec));
            CellOutput::Runtime(eval.run_partitioned(&spec, protocols, &parts))
        }
        Cell::Verify { nodes, bug } => {
            let mut model = ModelConfig::new(*nodes);
            if let Some(bug) = bug {
                model = model.with_bug(*bug);
            }
            CellOutput::Verify(check(&model))
        }
    }
}

/// Batch front-end over [`SweepSession`]: runs whole plans in memory
/// (single shard, no checkpoint), sharing one trace cache and one
/// partition cache across every plan it executes.
#[derive(Debug)]
pub struct SweepRunner {
    threads: usize,
    share_traces: bool,
    store: Arc<TraceStore>,
    partitions: Arc<PartitionStore>,
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::new()
    }
}

impl SweepRunner {
    /// A runner using all available hardware parallelism.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        SweepRunner::with_threads(threads)
    }

    /// A runner with an explicit worker count (minimum 1).
    pub fn with_threads(threads: usize) -> Self {
        SweepRunner {
            threads: threads.max(1),
            share_traces: true,
            store: Arc::new(TraceStore::default()),
            partitions: Arc::new(PartitionStore::default()),
        }
    }

    /// Disables (or re-enables) the shared trace cache. With sharing
    /// off every cell regenerates its own trace — the seed drivers'
    /// behavior, kept as the reference for equivalence tests and as the
    /// baseline the sweep benchmark measures against.
    #[must_use]
    pub fn share_traces(mut self, share: bool) -> Self {
        self.share_traces = share;
        self
    }

    /// A single-threaded runner (the reference for byte-identical
    /// output comparisons).
    pub fn serial() -> Self {
        SweepRunner::with_threads(1)
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of distinct traces currently cached.
    pub fn cached_traces(&self) -> usize {
        self.store.len()
    }

    /// Number of distinct timing-sim partition sets currently cached.
    pub fn cached_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// A full-coverage in-memory session over `plan`, wired to this
    /// runner's thread count and shared caches. Callers needing
    /// sharding or checkpointing configure the returned session
    /// further.
    pub fn session<'p>(&self, plan: &'p ExperimentPlan) -> SweepSession<'p> {
        SweepSession::new(plan)
            .threads(self.threads)
            .share_traces(self.share_traces)
            .stores(Arc::clone(&self.store), Arc::clone(&self.partitions))
    }

    /// Executes `plan` and renders its table.
    pub fn run(&self, plan: &ExperimentPlan) -> TextTable {
        plan.render_outputs(&self.run_cells(plan))
    }

    /// Executes `plan`'s cells without rendering, returning outputs
    /// ordered by plan index.
    pub fn run_cells(&self, plan: &ExperimentPlan) -> Vec<CellOutput> {
        self.session(plan)
            .run_collect()
            .expect("in-memory full-shard session cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            footprint: 1.0 / 256.0,
            trace_warmup: 200,
            trace_measured: 1_000,
            sim_warmup: 20,
            sim_measured: 100,
            sim_runs: 1,
        }
    }

    fn small_plan(scale: &Scale) -> ExperimentPlan {
        let config = SystemConfig::isca03();
        let mut plan = ExperimentPlan::new("test", &["workload", "label", "msgs"], scale);
        for workload in [Workload::Oltp, Workload::Apache] {
            plan.push(Cell::Baselines { config, workload });
            plan.push(Cell::Tradeoff {
                config,
                workload,
                predictor: PredictorConfig::group(),
            });
        }
        plan.render(|cells, outputs, table| {
            for (cell, output) in cells.iter().zip(outputs) {
                let workload = cell.workload().expect("trace cell").name().to_string();
                match output {
                    CellOutput::Baselines {
                        snooping,
                        directory,
                    } => {
                        for point in [snooping, directory] {
                            table.row([
                                workload.clone(),
                                point.label.clone(),
                                point.request_messages.to_string(),
                            ]);
                        }
                    }
                    CellOutput::Tradeoff(point) => table.row([
                        workload,
                        point.label.clone(),
                        point.request_messages.to_string(),
                    ]),
                    other => panic!("unexpected output {other:?}"),
                }
            }
        })
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = parallel_map(&items, 8, |x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_serial() {
        let scale = tiny();
        let serial = SweepRunner::serial().run(&small_plan(&scale));
        let parallel = SweepRunner::with_threads(8).run(&small_plan(&scale));
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(serial.to_string(), parallel.to_string());
        assert_eq!(serial.len(), 6);
    }

    #[test]
    fn traces_are_shared_not_regenerated() {
        let scale = tiny();
        let runner = SweepRunner::new();
        let plan = small_plan(&scale);
        runner.run(&plan);
        // 4 trace-driven cells over 2 workloads -> 2 distinct traces.
        assert_eq!(runner.cached_traces(), 2);
        // A second run at the same scale reuses them.
        runner.run(&plan);
        assert_eq!(runner.cached_traces(), 2);
    }

    #[test]
    fn verify_cells_run_without_traces() {
        let scale = tiny();
        let mut plan = ExperimentPlan::new("verify", &["model", "verdict"], &scale);
        plan.push(Cell::Verify {
            nodes: 2,
            bug: None,
        });
        let plan = plan.render(|_, outputs, table| {
            let report = outputs[0].verify();
            table.row(["2-node".to_string(), report.violation.is_none().to_string()]);
        });
        let runner = SweepRunner::serial();
        let table = runner.run(&plan);
        assert_eq!(table.len(), 1);
        assert_eq!(runner.cached_traces(), 0);
        assert!(table.to_csv().contains("true"));
    }

    #[test]
    fn runtime_partitions_are_shared_across_cells() {
        let scale = tiny();
        let config = SystemConfig::isca03();
        let mut plan = ExperimentPlan::new("rt", &["label"], &scale);
        // Three Runtime cells over one workload (different protocol
        // sets, one with a target override): one partition set total.
        for protocols in [
            Vec::new(),
            vec![ProtocolKind::Multicast(PredictorConfig::owner())],
            vec![ProtocolKind::Multicast(PredictorConfig::group())],
        ] {
            plan.push(Cell::Runtime {
                config,
                workload: Workload::Oltp,
                cpu: CpuModel::Simple,
                target: (protocols.len() == 1).then(TargetSystem::isca03_default),
                toxics: None,
                topology: None,
                protocols,
            });
        }
        let runner = SweepRunner::serial();
        runner.run_cells(&plan);
        assert_eq!(runner.cached_partitions(), 1);
    }

    #[test]
    fn cell_output_round_trips_through_json() {
        let scale = tiny();
        let outputs = SweepRunner::serial().run_cells(&small_plan(&scale));
        for output in &outputs {
            let json = serde_json::to_string(output).expect("serialize");
            let back: CellOutput = serde_json::from_str(&json).expect("deserialize");
            match (output, &back) {
                (CellOutput::Tradeoff(a), CellOutput::Tradeoff(b)) => assert_eq!(a, b),
                (
                    CellOutput::Baselines {
                        snooping: s1,
                        directory: d1,
                    },
                    CellOutput::Baselines {
                        snooping: s2,
                        directory: d2,
                    },
                ) => {
                    assert_eq!(s1, s2);
                    assert_eq!(d1, d2);
                }
                other => panic!("variant changed across round-trip: {other:?}"),
            }
        }
    }
}
