//! Cost of the fault-injection topology layer on the crossbar send
//! path.
//!
//! Three microloops over the same mixed unicast / small-multicast /
//! broadcast message stream:
//!
//! - `raw_crossbar` — the bare [`Crossbar`], the PR 6 baseline every
//!   clean run ultimately executes;
//! - `clean_topology` — a [`Topology`] with no toxics on the crossbar
//!   shape: the production fast path, which must stay within noise of
//!   the raw crossbar (it adds one branch and two ledger adds per
//!   message);
//! - `severe_chain` — the full four-toxic chain on the same crossbar,
//!   the pay-for-what-you-use price of the modeled path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use dsp_interconnect::{
    Arrivals, Crossbar, InterconnectConfig, Message, Topology, TopologySpec, Toxic, ToxicSpec,
};
use dsp_types::{DestSet, MessageClass, NodeId, SystemConfig};

const NODES: usize = 16;
const SENDS: usize = 4096;

/// The trace every variant replays: round-robin sources, a
/// unicast/multicast/broadcast destination mix, all message classes.
fn messages() -> Vec<(u64, Message<1>)> {
    let sys = SystemConfig::isca03();
    (0..SENDS)
        .map(|i| {
            let src = NodeId::new(i % NODES);
            let dests = match i % 3 {
                0 => DestSet::single(NodeId::new((i / 3) % NODES)),
                1 => DestSet::from_bits(0b1011 << (i % 12)),
                _ => sys.broadcast_set_w::<1>().without(src),
            };
            let class = MessageClass::ALL[i % MessageClass::COUNT];
            (3 * i as u64, Message { src, dests, class })
        })
        .collect()
}

fn severe_chain() -> ToxicSpec {
    ToxicSpec::none()
        .with(Toxic::LatencyJitter { max_ns: 50 })
        .with(Toxic::BandwidthDerate { percent: 50 })
        .with(Toxic::CongestionBurst {
            period_ns: 10_000,
            burst_ns: 2_500,
            slowdown: 8,
        })
        .with(Toxic::Outage {
            period_ns: 50_000,
            down_ns: 5_000,
        })
}

fn bench_toxic_overhead(c: &mut Criterion) {
    let msgs = messages();
    let mut group = c.benchmark_group("toxic_overhead");
    group.throughput(Throughput::Elements(SENDS as u64));

    group.bench_function("raw_crossbar", |b| {
        b.iter(|| {
            let mut x = Crossbar::new(InterconnectConfig::isca03(), NODES);
            let mut arrivals = Arrivals::new();
            let mut acc = 0u64;
            for (now, msg) in &msgs {
                acc = acc.wrapping_add(x.send_into(*now, msg, &mut arrivals));
                for (_, t) in &arrivals {
                    acc = acc.wrapping_add(*t);
                }
            }
            std::hint::black_box(acc)
        })
    });

    let variants = [
        ("clean_topology", ToxicSpec::none()),
        ("severe_chain", severe_chain()),
    ];
    for (name, toxics) in variants {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut x = Topology::new(
                    InterconnectConfig::isca03(),
                    NODES,
                    &TopologySpec::Crossbar,
                    &toxics,
                    0x70c5_1c5e,
                );
                let mut arrivals = Arrivals::new();
                let mut acc = 0u64;
                for (now, msg) in &msgs {
                    acc = acc.wrapping_add(x.send_into(*now, msg, &mut arrivals));
                    for (_, t) in &arrivals {
                        acc = acc.wrapping_add(*t);
                    }
                }
                x.assert_conserved();
                std::hint::black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_toxic_overhead);
criterion_main!(benches);
