//! Batched vs per-event dispatch throughput across system sizes.
//!
//! The data-oriented run loop drains whole timing-wheel slots into a
//! struct-of-arrays `EventBatch` and dispatches kind-runs in tight
//! loops; this bench measures what that buys over the per-event
//! baseline at 16 (paper scale, `DestSet<1>`), 64 (narrow-width
//! ceiling), and 256 nodes (the wide `DestSet<4>` scaling study) on
//! the multicast protocol, whose prediction + training path is the
//! richest per-event workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dsp_core::{Indexing, PredictorConfig};
use dsp_sim::{simulate, DispatchMode, ProtocolKind, SimConfig, TargetSystem};
use dsp_trace::{Workload, WorkloadSpec};
use dsp_types::SystemConfig;

fn bench_dispatch(c: &mut Criterion) {
    let misses_per_node = 300usize;
    let mut group = c.benchmark_group("dispatch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(4));
    for nodes in [16usize, 64, 256] {
        let sys = SystemConfig::builder()
            .num_nodes(nodes)
            .macroblock_bytes(1024)
            .build()
            .expect("valid config");
        let spec = WorkloadSpec::preset(Workload::Oltp, &sys).scaled(1.0 / 64.0);
        let protocol = ProtocolKind::Multicast(
            PredictorConfig::owner_group().indexing(Indexing::Macroblock { bytes: 1024 }),
        );
        group.throughput(Throughput::Elements((misses_per_node * nodes) as u64));
        for (label, mode) in [
            ("batched", DispatchMode::Batched),
            ("per-event", DispatchMode::PerEvent),
        ] {
            group.bench_function(BenchmarkId::new(label, nodes), |b| {
                b.iter(|| {
                    let sim = SimConfig::new(protocol)
                        .misses(0, misses_per_node)
                        .seed(11)
                        .dispatch(mode);
                    let report = simulate(&sys, TargetSystem::isca03_default(), &spec, sim);
                    std::hint::black_box(report.runtime_ns)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
