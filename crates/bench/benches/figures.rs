//! End-to-end pipelines for every paper table/figure at reduced scale.
//!
//! Each bench runs the exact driver the `repro` binary uses, so `cargo
//! bench` exercises — and times — the full reproduction path of every
//! artifact: table2 and figs 2-4 (characterization), figs 5/6
//! (trace-driven tradeoff), figs 7/8 (execution-driven timing).

use criterion::{criterion_group, criterion_main, Criterion};

use dsp_bench::{experiments, Scale};

fn bench_scale() -> Scale {
    Scale {
        footprint: 1.0 / 256.0,
        trace_warmup: 500,
        trace_measured: 2_000,
        sim_warmup: 20,
        sim_measured: 100,
        sim_runs: 1,
    }
}

fn bench_figures(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(5));
    group.bench_function("table2", |b| b.iter(|| experiments::table2(&scale)));
    group.bench_function("fig2", |b| b.iter(|| experiments::fig2(&scale)));
    group.bench_function("fig3", |b| b.iter(|| experiments::fig3(&scale)));
    group.bench_function("fig4", |b| b.iter(|| experiments::fig4(&scale)));
    group.bench_function("fig5", |b| b.iter(|| experiments::fig5(&scale)));
    group.bench_function("fig6a", |b| b.iter(|| experiments::fig6a(&scale)));
    group.bench_function("fig6b", |b| b.iter(|| experiments::fig6b(&scale)));
    group.bench_function("fig6c", |b| b.iter(|| experiments::fig6c(&scale)));
    group.bench_function("fig7", |b| b.iter(|| experiments::fig7(&scale)));
    group.bench_function("fig8", |b| b.iter(|| experiments::fig8(&scale)));
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
