//! Ablation benches for the design choices DESIGN.md calls out:
//! macroblock size, Sticky-Spatial neighbor span, table associativity,
//! and predictor capacity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dsp_analysis::TradeoffEvaluator;
use dsp_core::{Capacity, Indexing, PredictorConfig};
use dsp_trace::{TraceRecord, Workload, WorkloadSpec};
use dsp_types::SystemConfig;

fn trace() -> Vec<TraceRecord> {
    let config = SystemConfig::isca03();
    WorkloadSpec::preset(Workload::Oltp, &config)
        .scaled(1.0 / 256.0)
        .generator(7)
        .take(4_000)
        .collect()
}

fn bench_macroblock_sizes(c: &mut Criterion) {
    let config = SystemConfig::isca03();
    let t = trace();
    let eval = TradeoffEvaluator::new(&config).warmup(500);
    let mut group = c.benchmark_group("ablation_macroblock");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(4));
    for bytes in [64u64, 256, 1024, 4096] {
        let ix = if bytes == 64 {
            Indexing::DataBlock
        } else {
            Indexing::Macroblock { bytes }
        };
        let cfg = PredictorConfig::group()
            .indexing(ix)
            .entries(Capacity::ISCA03);
        group.bench_function(BenchmarkId::from_parameter(bytes), |b| {
            b.iter(|| std::hint::black_box(eval.run(t.iter().copied(), &cfg)))
        });
    }
    group.finish();
}

fn bench_sticky_span(c: &mut Criterion) {
    let config = SystemConfig::isca03();
    let t = trace();
    let eval = TradeoffEvaluator::new(&config).warmup(500);
    let mut group = c.benchmark_group("ablation_sticky_span");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(4));
    for span in [0usize, 1, 2] {
        let cfg = PredictorConfig::sticky_spatial(span);
        group.bench_function(BenchmarkId::from_parameter(span), |b| {
            b.iter(|| std::hint::black_box(eval.run(t.iter().copied(), &cfg)))
        });
    }
    group.finish();
}

fn bench_capacity(c: &mut Criterion) {
    let config = SystemConfig::isca03();
    let t = trace();
    let eval = TradeoffEvaluator::new(&config).warmup(500);
    let mut group = c.benchmark_group("ablation_capacity");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(4));
    for entries in [1024usize, 8192, 32_768] {
        let cfg = PredictorConfig::group()
            .indexing(Indexing::Macroblock { bytes: 1024 })
            .entries(Capacity::Finite { entries, ways: 4 });
        group.bench_function(BenchmarkId::from_parameter(entries), |b| {
            b.iter(|| std::hint::black_box(eval.run(t.iter().copied(), &cfg)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_macroblock_sizes,
    bench_sticky_span,
    bench_capacity
);
criterion_main!(benches);
